//! Quickstart: observe, introspect, adapt — in ~60 lines.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a `LookingGlass` instance and a work-stealing pool, runs some
//! named tasks, inspects the profiles the observation layer collected,
//! and lets a policy turn a knob in response to an event.

use looking_glass::core::policy::{FnPolicy, PolicyDecision, Trigger};
use looking_glass::core::{Event, LookingGlass};
use looking_glass::runtime::{PoolConfig, ThreadPool};

fn main() {
    // 1. Observation: every instance wires a profiler, a concurrency
    //    tracker, and a policy engine onto its event dispatcher.
    let lg = LookingGlass::builder().trace(1024).build();
    let pool = ThreadPool::new(lg.clone(), PoolConfig::default());

    // 2. Instrument and run work. Tasks are named; the profiler
    //    aggregates per name.
    pool.scope(|s| {
        for i in 0..64 {
            s.spawn_named("quickstart_task", move || {
                let mut acc = 0u64;
                for j in 0..(10_000 * (1 + i % 4)) {
                    acc = acc.wrapping_add(j * j);
                }
                std::hint::black_box(acc);
            });
        }
    });

    // 3. Introspection: query what was observed.
    println!("-- profiles --");
    for p in lg.profiles().snapshot() {
        println!(
            "{:<20} count={:<5} mean={:>10.0} ns  stddev={:>10.0} ns  min={:>8.0}  max={:>8.0}",
            p.name, p.count, p.mean_ns, p.stddev_ns, p.min_ns, p.max_ns
        );
    }
    println!(
        "peak concurrent tasks: {} | workers online: {}",
        lg.concurrency().peak_tasks(),
        lg.concurrency().online_workers()
    );
    println!(
        "scheduler: spawned={} executed={} steals={} parks={}",
        pool.counters().counter("rt.spawned").get(),
        pool.counters().counter("rt.executed").get(),
        pool.counters().counter("rt.steals").get(),
        pool.counters().counter("rt.parks").get(),
    );
    // The fast-path counters: small closures live inline in the task
    // record (zero-allocation spawns), worker-spawned tasks hit the LIFO
    // slot, and batch submissions are counted per call, not per task.
    println!(
        "fast path: inline={} boxed={} lifo_hits={} batch_spawns={}",
        pool.counters().counter("rt.inline_tasks").get(),
        pool.counters().counter("rt.boxed_tasks").get(),
        pool.counters().counter("rt.lifo_hits").get(),
        pool.counters().counter("rt.batch_spawns").get(),
    );

    // 4. Adaptation: a policy reacts to a phase marker by throttling the
    //    pool through the knob registry (it knows nothing about the pool).
    lg.policy_engine().register_triggered(
        FnPolicy::new("throttle-on-phase", |_, trigger, _snapshot| {
            if matches!(trigger, Trigger::Event(Event::PhaseBegin { .. })) {
                PolicyDecision::set("thread_cap", 2)
            } else {
                PolicyDecision::noop()
            }
        }),
        Box::new(|e| matches!(e, Event::PhaseBegin { .. })),
    );
    println!(
        "\nthread_cap before phase: {:?}",
        lg.knobs().value("thread_cap")
    );
    lg.phase_begin("memory-bound-phase");
    println!(
        "thread_cap after phase:  {:?}",
        lg.knobs().value("thread_cap")
    );
    println!("knob actuations logged: {:?}", lg.knobs().changes());

    // The trace listener kept the most recent events for post-mortem use.
    let trace = lg.trace().unwrap();
    println!(
        "\ntrace captured {} events ({} overwritten)",
        trace.captured(),
        trace.overwritten()
    );
}
