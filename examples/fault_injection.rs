//! Fault injection and self-healing, end to end on real components.
//!
//! ```sh
//! cargo run --release --example fault_injection
//! ```
//!
//! Three demonstrations in one process:
//! 1. A thread pool with seeded task faults (crash + straggler
//!    injection): every join handle still resolves, and the injected
//!    counts are observable.
//! 2. A policy that panics on every evaluation is contained and
//!    quarantined while a healthy policy keeps actuating.
//! 3. The [`RegressionWatchdog`] rolls back a knob write that tanked the
//!    observed rate.

use looking_glass::core::knob::AtomicKnob;
use looking_glass::core::policy::{FnPolicy, PolicyDecision};
use looking_glass::core::{KnobSpec, LookingGlass, RegressionWatchdog};
use looking_glass::runtime::{FaultConfig, PoolConfig, ThreadPool};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // Every panic below is injected on purpose; keep stderr readable.
    std::panic::set_hook(Box::new(|_| {}));

    // 1. Injected task faults: 5% crash, 2% straggle, deterministic seed.
    let lg = LookingGlass::builder().build();
    let pool = ThreadPool::new(
        lg.clone(),
        PoolConfig {
            workers: 4,
            spin_rounds: 8,
            register_knobs: false,
            faults: Some(
                FaultConfig::seeded(42)
                    .panic_prob(0.05)
                    .straggler(0.02, Duration::from_millis(1)),
            ),
        },
    );
    let done = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = (0..400)
        .map(|_| {
            let done = done.clone();
            pool.spawn("flaky_task", move || {
                done.fetch_add(1, Ordering::Relaxed);
            })
        })
        .collect();
    let (mut ok, mut crashed) = (0u64, 0u64);
    for h in handles {
        match h.join() {
            Ok(()) => ok += 1,
            Err(_) => crashed += 1,
        }
    }
    println!("tasks: {ok} completed, {crashed} crashed (all joins resolved)");
    println!(
        "injected: {} panics, {} stragglers",
        pool.injected_panics(),
        pool.injected_stragglers()
    );
    assert_eq!(ok + crashed, 400, "no join may hang or be lost");
    assert_eq!(ok, done.load(Ordering::Relaxed), "completed tasks all ran");
    assert_eq!(crashed as usize, pool.injected_panics());
    drop(pool);

    // 2. Panic containment + quarantine in the policy engine.
    let lg = LookingGlass::builder().build();
    lg.knobs()
        .register(AtomicKnob::new(KnobSpec::new("cap", 0, 100), 50));
    let engine = lg.policy_engine();
    engine.register_periodic(
        FnPolicy::new("faulty", |_, _, _| panic!("injected policy fault")),
        1_000,
        0,
    );
    engine.register_periodic(
        FnPolicy::new("healthy", |_, _, _| PolicyDecision::set("cap", 60)),
        1_000,
        0,
    );
    for t in 1..=10u64 {
        engine.step(t * 1_000);
    }
    println!(
        "policies: {} contained panics, quarantined = {:?}, cap = {:?}",
        engine.panics(),
        engine.quarantined(),
        lg.knobs().value("cap")
    );
    assert_eq!(engine.quarantined(), vec!["faulty".to_string()]);

    // 3. Watchdog rollback of a regressing actuation.
    let rate = Arc::new(AtomicU64::new(1_000));
    let r = rate.clone();
    engine.register_periodic(
        RegressionWatchdog::new(
            engine.journal().clone(),
            move || r.load(Ordering::Relaxed) as f64,
            0.2,
        ),
        1_000,
        10_000,
    );
    engine.register_periodic(
        FnPolicy::new("misguided", |_, _, _| {
            PolicyDecision::set("cap", 5).and_retire()
        }),
        1_000,
        10_000,
    );
    engine.step(11_000); // misguided actuation lands
    engine.step(12_000); // watchdog baselines it
    rate.store(100, Ordering::Relaxed); // throughput collapses
    engine.step(13_000); // watchdog rolls it back
    println!(
        "watchdog: cap restored to {:?} after the rate collapsed",
        lg.knobs().value("cap")
    );
    assert_eq!(lg.knobs().value("cap"), Some(60));
}
