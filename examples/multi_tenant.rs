//! Two tenants, one machine, one governor.
//!
//! ```sh
//! cargo run --release --example multi_tenant
//! ```
//!
//! A latency-class serving pipeline and a batch-class simulated compute
//! slice are colocated on a 32-thread machine under an [`Arbiter`]. Each
//! tenant is a full looking-glass instance — own knobs, journal,
//! policies — and the governor only ever talks to them through their
//! actuation journals. Two acts:
//!
//! 1. **Spike** — serve traffic doubles mid-run; the serve tenant's p99
//!    pressure crosses its SLO and the arbiter preempts threads from the
//!    batch tenant (never below its floor), then hands them back when
//!    the spike passes.
//! 2. **Noisy neighbor** — the batch jobs turn into bandwidth bombs and
//!    a selfish local policy doubles the batch `thread_cap` anyway; its
//!    own regression watchdog (ops per joule) rolls the grab back, and
//!    the rollback record trips the arbiter's quarantine: the tenant is
//!    pinned to its floor and re-pinned every round it fights back.
//! 3. **Demand-aware re-sharing** — a fresh machine colocates the
//!    serving tenant with a [`DagTenant`] draining a wide stencil DAG,
//!    and both publish native [`looking_glass::core::DemandProfile`]s
//!    instead of scalar pressure: serve declares its useful width from
//!    live queue depth, the DAG declares its ready frontier. The
//!    governor hands serve's unused share to the DAG while the frontier
//!    is wide and takes the threads back as the critical-path tail sets
//!    in — finishing on the floor it started from.
//!
//! Everything runs on one shared virtual clock, so the run is
//! deterministic on any host.

use looking_glass::core::{Arbiter, ArbiterConfig, SloClass, TenantSpec, VirtualClock};
use looking_glass::sim::{MachineShares, MachineSpec};
use looking_glass::workloads::dag::{generate, CostModel, DagConfig, DagPattern};
use looking_glass::workloads::serve::{ArrivalGen, ArrivalPattern};
use looking_glass::workloads::{BatchTenant, DagTenant, ServeTenant};
use std::sync::Arc;

const HORIZON_NS: u64 = 400_000_000; // 400 ms
const TOTAL_THREADS: i64 = 32;

fn main() {
    let clock = Arc::new(VirtualClock::new());

    // Tenant 1: the fig9 serving pipeline; its bulkhead limit IS its
    // thread share (one slot ≈ 1k req/s of capacity).
    let mut serve = ServeTenant::new(clock.clone(), 32, 7);
    serve.install_brownout(50e6);

    // Tenant 2: a simulated 28-core compute slice fed 8k jobs/s, with a
    // mid-run storm of bandwidth-bound jobs and a greedy local policy —
    // guarded by its own watchdog (rate = ops per joule).
    let host = MachineSpec {
        stall_intensity: 1.0,
        ..MachineSpec::server32()
    };
    let mut batch = BatchTenant::new(MachineShares::new(host).sub_spec(28), 8_000.0, HORIZON_NS)
        .with_storm(HORIZON_NS / 4, HORIZON_NS / 2);
    let period = serve.control_period_ns();
    batch.install_greedy(250, period);
    batch.install_watchdog(0.25, period);

    // The governor: machine budget, power envelope, quarantine policy.
    let arb = Arbiter::with_instance(
        ArbiterConfig::new(TOTAL_THREADS)
            .with_power_cap_w(130.0)
            .with_quarantine_rounds(8),
        looking_glass::core::LookingGlass::builder()
            .clock(clock.clone())
            .build(),
    );
    let ts = arb.admit(
        serve.lg().clone(),
        TenantSpec::new("serve", SloClass::Latency, TOTAL_THREADS)
            .with_min_threads(2)
            .with_pressure("serve.p99_window_ns", 25e6),
        "serve.bulkhead_limit",
    );
    let tb = arb.admit(
        batch.lg().clone(),
        TenantSpec::new("batch", SloClass::Batch, 28)
            .with_min_threads(2)
            .with_power_metric("batch.power_w"),
        "thread_cap",
    );

    // Serve traffic: 8k req/s base, 2x spike over the middle half.
    let requests = ArrivalGen {
        pattern: ArrivalPattern::Spike {
            base_per_sec: 8_000.0,
            factor: 2.0,
            start_ns: HORIZON_NS / 4,
            end_ns: HORIZON_NS / 2,
        },
        seed: 7,
        optional_frac: 0.3,
        service_mean_ns: 1_000_000,
        mandatory_budget_ns: 50_000_000,
        optional_budget_ns: 25_000_000,
        dests: 4,
    }
    .generate(HORIZON_NS);

    println!("round  t_ms  serve  batch  quarantined  writes");
    let report = serve.run(&requests, |t| {
        clock.advance_to(t);
        batch.step(t);
        let r = arb.control_round(t);
        if (t / period).is_multiple_of(4) || !r.quarantined.is_empty() {
            println!(
                "{:>5} {:>5}  {:>5} {:>6}  {:>11} {:>7}",
                r.round,
                t / 1_000_000,
                arb.allocation(ts).unwrap(),
                arb.allocation(tb).unwrap(),
                if r.quarantined.is_empty() {
                    "-"
                } else {
                    "batch"
                },
                r.knob_writes,
            );
        }
    });

    let horizon_s = HORIZON_NS as f64 / 1e9;
    println!(
        "\nserve: goodput {:.3}, {} of {} on time",
        report.goodput_frac(),
        report.goodput,
        report.offered
    );
    println!(
        "batch: {} jobs done ({:.0} jobs/s)",
        batch.good_jobs(),
        batch.good_jobs() as f64 / horizon_s
    );
    println!(
        "governor: {} rounds, {} quarantine entries",
        arb.round(),
        arb.quarantine_entries()
    );

    // The run's safety facts, asserted: budget held, the watchdog fired,
    // the arbiter quarantined the noisy tenant at least once.
    assert!(
        arb.quarantine_entries() > 0,
        "storm never tripped quarantine"
    );
    let rolled_back = batch
        .lg()
        .knobs()
        .journal()
        .records()
        .iter()
        .any(|r| r.rolled_back);
    assert!(rolled_back, "watchdog never rolled the greedy grab back");
    println!("ok: budget held, greedy grab rolled back, quarantine fired");

    // ── Act 3: demand-aware re-sharing across serve + DAG ──────────────
    // A fresh machine: light serve traffic next to a wide stencil DAG,
    // both publishing native demand profiles.
    let clock = Arc::new(VirtualClock::new());
    let mut serve = ServeTenant::new(clock.clone(), 32, 9);
    let dag_spec = generate(
        &DagConfig {
            pattern: DagPattern::Stencil1d,
            width: 28,
            depth: 10,
            grain_ops: 3e6,
            grain_spread: 0.5,
            comm_bytes: 0.0,
            seed: 9,
        },
        &CostModel::default(),
    );
    let mut dag = DagTenant::new(
        MachineShares::new(MachineSpec::server32()).sub_spec(28),
        dag_spec,
    );
    let arb = Arbiter::with_instance(
        ArbiterConfig::new(TOTAL_THREADS),
        looking_glass::core::LookingGlass::builder()
            .clock(clock.clone())
            .build(),
    );
    let sp = serve.demand_probe(25e6);
    let ts = arb.admit(
        serve.lg().clone(),
        TenantSpec::new("serve", SloClass::Latency, TOTAL_THREADS)
            .with_min_threads(2)
            .with_demand_probe(move |snap, alloc| sp(snap, alloc)),
        "serve.bulkhead_limit",
    );
    let dp = dag.demand_probe();
    let td = arb.admit(
        dag.lg().clone(),
        TenantSpec::new("dag", SloClass::Batch, 28)
            .with_min_threads(2)
            .with_demand_probe(move |snap, alloc| dp(snap, alloc)),
        "thread_cap",
    );

    // Light, steady serve load: its declared width sits far below its
    // fair share, and that headroom is what the DAG gets to borrow.
    let requests = ArrivalGen {
        pattern: ArrivalPattern::Spike {
            base_per_sec: 3_000.0,
            factor: 2.0,
            start_ns: HORIZON_NS / 4,
            end_ns: HORIZON_NS / 2,
        },
        seed: 9,
        optional_frac: 0.3,
        service_mean_ns: 1_000_000,
        mandatory_budget_ns: 50_000_000,
        optional_budget_ns: 25_000_000,
        dests: 4,
    }
    .generate(HORIZON_NS);

    println!("\nround  t_ms  serve    dag  frontier");
    let mut peak_dag = 0i64;
    let mut tail_dag = i64::MAX;
    serve.run(&requests, |t| {
        clock.advance_to(t);
        dag.step(t);
        let r = arb.control_round(t);
        let a = arb.allocation(td).unwrap();
        peak_dag = peak_dag.max(a);
        tail_dag = a;
        if (t / period).is_multiple_of(4) {
            println!(
                "{:>5} {:>5}  {:>5} {:>6}  {:>8.0}",
                r.round,
                t / 1_000_000,
                arb.allocation(ts).unwrap(),
                a,
                dag.stats().ready_width(),
            );
        }
    });

    assert!(dag.done(), "DAG failed to drain within the horizon");
    println!(
        "dag: {} nodes drained, makespan {:.1} ms",
        dag.completed(),
        dag.makespan_ns().unwrap() as f64 / 1e6
    );
    // The demand-aware story, asserted: the governor pushed the DAG
    // past its fair half while the frontier was wide, and the drained
    // tenant ends back on its floor.
    assert!(
        peak_dag > TOTAL_THREADS / 2,
        "DAG never got past fair share: peak {peak_dag}"
    );
    assert_eq!(tail_dag, 2, "drained DAG should end on its floor");
    println!("ok: frontier claimed {peak_dag} threads at peak, floor restored after the tail");
}
