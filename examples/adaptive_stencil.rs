//! Adaptive concurrency throttling on the simulated machine.
//!
//! ```sh
//! cargo run --release --example adaptive_stencil
//! ```
//!
//! Runs the memory-bound heat-diffusion workload on a 32-core simulated
//! machine and lets an online tuning session (hill climbing on the
//! energy-delay product) find the thread cap at the bandwidth knee —
//! the core loop of the paper, end to end, in deterministic virtual time.

use looking_glass::core::{Clock as _, SessionConfig, SessionStep, TuningSession};
use looking_glass::sim::{MachineSpec, SimRuntime, SimWorkload};
use looking_glass::tuning::{Dim, HillClimb, Space};

fn main() {
    let spec = MachineSpec::server32();
    let workload = SimWorkload::stencil(5e8, 64);
    println!(
        "machine: {} cores, {:.0} GB/s; stencil knee at ~{:.1} cores",
        spec.cores,
        spec.mem_bw / 1e9,
        spec.bandwidth_knee(workload.bytes_per_op)
    );

    let mut sim = SimRuntime::new(spec);
    let space = Space::new(vec![Dim::values("thread_cap", vec![1, 2, 4, 8, 16, 32])]);
    let search = Box::new(HillClimb::from_start(space, &[32]));
    let mut session = TuningSession::new(
        SessionConfig::single("thread_cap", 0, 0),
        search,
        sim.lg().knobs().clone(),
    );

    println!("\nepoch  cap  time_ms  energy_j      edp");
    loop {
        match session.next(sim.clock().now_ns()) {
            SessionStep::Done { best } => {
                let (point, edp) = best.expect("measured at least one epoch");
                println!(
                    "\nconverged: thread_cap = {} (edp {:.3}) after {} epochs",
                    point[0],
                    edp,
                    session.history().len()
                );
                println!(
                    "knob left applied: thread_cap = {:?}",
                    sim.lg().knobs().value("thread_cap")
                );
                break;
            }
            SessionStep::Measure { point, .. } => {
                // One measurement epoch = four workload timesteps.
                let mut elapsed = 0u64;
                let mut energy = 0.0;
                for _ in 0..4 {
                    sim.submit_all(workload.step_batch());
                    let r = sim.run_until_idle();
                    elapsed += r.elapsed_ns;
                    energy += r.energy_j;
                }
                let time_s = elapsed as f64 * 1e-9;
                let edp = energy * time_s;
                println!(
                    "{:>5}  {:>3}  {:>7.2}  {:>8.3}  {:>8.4}",
                    session.history().len(),
                    point[0],
                    time_s * 1e3,
                    energy,
                    edp
                );
                session.complete(edp);
            }
        }
    }

    // Show the final profile the observation layer accumulated.
    let prof = sim.lg().profiles().get("stencil").expect("stencil profile");
    println!(
        "\nstencil tasks executed: {} (mean {:.1} us each)",
        prof.count,
        prof.mean_ns / 1e3
    );
    println!(
        "total energy: {:.2} J over the whole session",
        sim.total_energy_j()
    );
}
