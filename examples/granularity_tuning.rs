//! Online task-granularity tuning on the real runtime.
//!
//! ```sh
//! cargo run --release --example granularity_tuning
//! ```
//!
//! Repeatedly runs a compute kernel through `parallel_for` while an
//! online tuning session adjusts the chunk-size knob between passes.
//! Small chunks drown in per-task scheduling overhead; the tuner walks
//! to the flat part of the curve. Everything here is real execution on
//! this host — no simulation.
//!
//! Control-plane idiom on display: the chunk knob is addressed by its
//! interned [`KnobId`], the power-of-two search space is derived from
//! the knob's own spec (`chunk_knob` registers with Pow2 scale), and
//! the closing stats are read from one coherent
//! [`IntrospectionSnapshot`] instead of poking listeners directly.
//!
//! `parallel_for` rides the batched zero-allocation spawn path: each
//! pass is **one** injector batch push whose chunk tasks share one `Arc`
//! of the body and store their `(Arc, start, end)` captures inline in
//! the task record. The `rt.*` counters in the final snapshot prove it —
//! `rt.batch_spawns` counts passes, not chunks, and `rt.boxed_tasks`
//! stays zero no matter how small the chunks get.

use looking_glass::core::{LookingGlass, SessionConfig, SessionStep, TuningSession};
use looking_glass::runtime::{PoolConfig, ThreadPool};
use looking_glass::tuning::HillClimb;
use looking_glass::workloads::ComputeKernel;
use std::time::Instant;

fn main() {
    let lg = LookingGlass::builder().build();
    let pool = ThreadPool::new(lg.clone(), PoolConfig::default());
    let n = 200_000;
    let mut kernel = ComputeKernel::new(n, 30);

    // The knob parallel_for reads at each pass, addressed by interned id.
    pool.chunk_knob("chunk", 1, 1 << 14, 1);
    let chunk_id = lg.knobs().id("chunk").expect("just registered");

    // Reference sweep so the tuner's answer can be judged.
    println!("-- reference sweep --");
    println!("chunk    time_ms");
    for e in [0u32, 2, 4, 6, 8, 10, 12, 14] {
        let chunk = 1usize << e;
        let t0 = Instant::now();
        kernel.run_parallel(&pool, chunk);
        println!("{:>6}  {:>8.2}", chunk, t0.elapsed().as_secs_f64() * 1e3);
    }

    // Online tuning session over the pow2 lattice the knob's spec
    // declares — no hand-built `Space` mirroring the registration site.
    let space = lg.knobs().space_for(&["chunk"]);
    let search = Box::new(HillClimb::from_start(space, &[1]).with_min_improvement(0.03));
    let mut session = TuningSession::new(
        SessionConfig::single("chunk", 0, 0),
        search,
        lg.knobs().clone(),
    );

    println!("\n-- online tuning --");
    println!("epoch  chunk    time_ms");
    loop {
        match session.next(lg.now_ns()) {
            SessionStep::Done { best } => {
                let (point, secs) = best.expect("tuned");
                println!(
                    "\ntuned chunk = {} ({:.2} ms/pass) in {} epochs",
                    point[0],
                    secs * 1e3,
                    session.history().len()
                );
                break;
            }
            SessionStep::Measure { .. } => {
                let chunk = lg.knobs().value_id(chunk_id).unwrap().max(1) as usize;
                let t0 = Instant::now();
                kernel.run_parallel(&pool, chunk);
                // The objective is host wall time, which no snapshot
                // gauge can supply — score it directly.
                let secs = t0.elapsed().as_secs_f64();
                println!(
                    "{:>5}  {:>6}  {:>8.2}",
                    session.history().len(),
                    chunk,
                    secs * 1e3
                );
                session.complete(secs);
            }
        }
    }

    // One coherent snapshot carries everything the wrap-up prints:
    // profiles, the pool's rt.* counters, and the knob's final value.
    let snap = lg.snapshot();
    let prof = snap.profile("compute_chunk").expect("profile");
    println!(
        "observed {} chunk tasks, mean {:.1} us",
        prof.count,
        prof.mean_ns / 1e3
    );
    // The representation counters: every chunk task stayed inline (no
    // per-task allocation) and each pass was a single batch submission.
    println!(
        "spawn path: batch_spawns={} inline_tasks={} boxed_tasks={} lifo_hits={}",
        snap.counter("rt.batch_spawns").unwrap_or(0),
        snap.counter("rt.inline_tasks").unwrap_or(0),
        snap.counter("rt.boxed_tasks").unwrap_or(0),
        snap.counter("rt.lifo_hits").unwrap_or(0),
    );
    println!(
        "actuation journal: {} records ({} total writes)",
        lg.knobs().journal().len(),
        lg.knobs().change_count()
    );
}
