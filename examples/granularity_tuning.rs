//! Online task-granularity tuning on the real runtime.
//!
//! ```sh
//! cargo run --release --example granularity_tuning
//! ```
//!
//! Repeatedly runs a compute kernel through `parallel_for` while an
//! online tuning session adjusts the chunk-size knob between passes.
//! Small chunks drown in per-task scheduling overhead; the tuner walks
//! to the flat part of the curve. Everything here is real execution on
//! this host — no simulation.
//!
//! `parallel_for` rides the batched zero-allocation spawn path: each
//! pass is **one** injector batch push whose chunk tasks share one `Arc`
//! of the body and store their `(Arc, start, end)` captures inline in
//! the task record. The `rt.*` counters printed at the end prove it —
//! `rt.batch_spawns` counts passes, not chunks, and `rt.boxed_tasks`
//! stays zero no matter how small the chunks get.

use looking_glass::core::{Knob as _, LookingGlass, SessionConfig, SessionStep, TuningSession};
use looking_glass::runtime::{PoolConfig, ThreadPool};
use looking_glass::tuning::{Dim, HillClimb, Space};
use looking_glass::workloads::ComputeKernel;
use std::time::Instant;

fn main() {
    let lg = LookingGlass::builder().build();
    let pool = ThreadPool::new(lg.clone(), PoolConfig::default());
    let n = 200_000;
    let mut kernel = ComputeKernel::new(n, 30);

    // The knob parallel_for reads at each pass.
    let chunk_knob = pool.chunk_knob("chunk", 1, 1 << 14, 1);

    // Reference sweep so the tuner's answer can be judged.
    println!("-- reference sweep --");
    println!("chunk    time_ms");
    for e in [0u32, 2, 4, 6, 8, 10, 12, 14] {
        let chunk = 1usize << e;
        let t0 = Instant::now();
        kernel.run_parallel(&pool, chunk);
        println!("{:>6}  {:>8.2}", chunk, t0.elapsed().as_secs_f64() * 1e3);
    }

    // Online tuning session over power-of-two chunk sizes.
    let space = Space::new(vec![Dim::pow2("chunk", 0, 14)]);
    let search = Box::new(HillClimb::from_start(space, &[1]).with_min_improvement(0.03));
    let mut session = TuningSession::new(
        SessionConfig::single("chunk", 0, 0),
        search,
        lg.knobs().clone(),
    );

    println!("\n-- online tuning --");
    println!("epoch  chunk    time_ms");
    loop {
        match session.next(lg.now_ns()) {
            SessionStep::Done { best } => {
                let (point, secs) = best.expect("tuned");
                println!(
                    "\ntuned chunk = {} ({:.2} ms/pass) in {} epochs",
                    point[0],
                    secs * 1e3,
                    session.history().len()
                );
                break;
            }
            SessionStep::Measure { .. } => {
                let chunk = chunk_knob.get().max(1) as usize;
                let t0 = Instant::now();
                kernel.run_parallel(&pool, chunk);
                let secs = t0.elapsed().as_secs_f64();
                println!(
                    "{:>5}  {:>6}  {:>8.2}",
                    session.history().len(),
                    chunk,
                    secs * 1e3
                );
                session.complete(secs);
            }
        }
    }

    let prof = lg.profiles().get("compute_chunk").expect("profile");
    println!(
        "observed {} chunk tasks, mean {:.1} us",
        prof.count,
        prof.mean_ns / 1e3
    );
    // The representation counters: every chunk task stayed inline (no
    // per-task allocation) and each pass was a single batch submission.
    println!(
        "spawn path: batch_spawns={} inline_tasks={} boxed_tasks={} lifo_hits={}",
        pool.counters().counter("rt.batch_spawns").get(),
        pool.counters().counter("rt.inline_tasks").get(),
        pool.counters().counter("rt.boxed_tasks").get(),
        pool.counters().counter("rt.lifo_hits").get(),
    );
}
