//! Overload-robust serving on a live thread pool, end to end.
//!
//! ```sh
//! cargo run --release --example overload_shedding
//! ```
//!
//! Three phases of paced open-loop arrivals, all through [`PoolServer`]
//! (brownout → rate gate → bulkhead → pool):
//!
//! 1. **Light load** — everything is admitted and completes quickly.
//! 2. **Unprotected overload** — a wide-open bulkhead admits the whole
//!    burst; every request completes, but the backlog pushes most of them
//!    past their deadline (completed ≠ goodput).
//! 3. **Protected overload** — the brownout sheds optional work, the
//!    gate caps the admit rate, and a small bulkhead bounces the rest as
//!    busy; the pool's backlog stays bounded, so what is served finishes
//!    near its budget.
//!
//! The assertions here are *accounting* facts (conservation, shed
//! ordering, journaling) that hold on any machine; the latency columns
//! are printed for inspection because wall-clock numbers depend on the
//! host. Every knob write flows through the [`KnobRegistry`], so the
//! phase-3 degradation (raising `serve.shed_level`) lands in the same
//! actuation journal the fig9 experiment's policies use.

use looking_glass::core::{AdmissionGate, Brownout, Bulkhead, LookingGlass, RequestClass};
use looking_glass::runtime::{PoolConfig, ThreadPool};
use looking_glass::workloads::serve::{PoolServeReport, PoolServer};
use std::time::Duration;

const REQUESTS: u64 = 200;
const BUDGET_NS: u64 = 4_000_000; // 4 ms deadline

struct Phase {
    label: &'static str,
    limit: i64,
    gate_rate: i64,
    shed_level: i64,
    gap: Duration,
    service_ns: u64,
}

fn run_phase(phase: &Phase) -> (PoolServeReport, usize) {
    let lg = LookingGlass::builder().build();
    let pool = ThreadPool::new(lg.clone(), PoolConfig::with_workers(2));

    let bulkhead = Bulkhead::new("serve.bulkhead_limit", 1, 1_024, phase.limit);
    let gate = AdmissionGate::new("serve.admit_rate", 1, 2_000_000, phase.gate_rate, 64.0, 8.0);
    let brownout = Brownout::new("serve.shed_level");
    lg.knobs().register(bulkhead.limit_knob().clone());
    lg.knobs().register(gate.rate_knob().clone());
    lg.knobs().register(brownout.level_knob().clone());

    let server = PoolServer::new(pool, bulkhead, gate, brownout);
    // Actuate degradation through the registry: clamped + journaled.
    lg.knobs()
        .set("serve.shed_level", phase.shed_level)
        .expect("registered knob");

    for i in 0..REQUESTS {
        let class = if i % 2 == 0 {
            RequestClass::Mandatory
        } else {
            RequestClass::Optional
        };
        server.submit(class, phase.service_ns, BUDGET_NS);
        std::thread::sleep(phase.gap);
    }
    let report = server.finish();
    (report, lg.knobs().journal().records().len())
}

fn main() {
    let phases = [
        Phase {
            label: "light load, no protection",
            limit: 64,
            gate_rate: 2_000_000,
            shed_level: 0,
            gap: Duration::from_micros(500),
            service_ns: 100_000,
        },
        Phase {
            label: "overload, wide open",
            limit: 1_024,
            gate_rate: 2_000_000,
            shed_level: 0,
            gap: Duration::from_micros(100),
            service_ns: 1_000_000,
        },
        Phase {
            label: "overload, admission + brownout",
            limit: 4,
            gate_rate: 4_000,
            shed_level: 4,
            gap: Duration::from_micros(100),
            service_ns: 1_000_000,
        },
    ];

    println!(
        "{:<32} {:>8} {:>6} {:>6} {:>9} {:>8} {:>9} {:>9}",
        "phase", "offered", "shed", "busy", "completed", "goodput", "p50 ms", "p99 ms"
    );
    for (i, phase) in phases.iter().enumerate() {
        let (r, journal_len) = run_phase(phase);
        println!(
            "{:<32} {:>8} {:>6} {:>6} {:>9} {:>8} {:>9.2} {:>9.2}",
            phase.label,
            r.offered,
            r.shed,
            r.busy,
            r.completed,
            r.goodput,
            r.p50_latency_ns as f64 / 1e6,
            r.p99_latency_ns as f64 / 1e6,
        );

        // Conservation: every request resolves exactly one way, and the
        // shed-level actuation is always on the audit trail.
        assert_eq!(r.offered, REQUESTS);
        assert_eq!(r.shed + r.busy + r.completed, r.offered);
        assert!(journal_len >= 1, "the shed-level write must be journaled");
        match i {
            // Wide open: nothing is rejected, everything completes —
            // late or not (lateness is the collapse the table shows).
            1 => {
                assert_eq!(r.shed, 0, "wide-open gate sheds nothing");
                assert_eq!(r.busy, 0, "a 1024-wide bulkhead never fills");
                assert_eq!(r.completed, REQUESTS);
            }
            // Protected: level 4 sheds every optional request up front
            // (half the stream), so the pool only ever sees mandatory
            // work, bounded by the gate and the bulkhead.
            2 => {
                assert!(r.shed >= REQUESTS / 2, "all optional work shed");
                assert!(r.completed <= REQUESTS / 2);
            }
            _ => {}
        }
    }
    println!("\nevery rejection was free: shed/busy requests never reached the pool");
}
