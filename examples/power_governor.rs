//! A reactive power-cap governor on the real runtime.
//!
//! ```sh
//! cargo run --release --example power_governor
//! ```
//!
//! Wires the stock [`PowerCapPolicy`] end to end on real components: a
//! background [`Sampler`] feeds "power" samples (synthesized here from
//! the pool's active concurrency, standing in for RAPL) through the event
//! dispatcher into the instance's sample history; a window-mean metric
//! registered on the introspection facade exposes the trailing mean, and
//! the periodic policy reads it from the snapshot it is handed each
//! evaluation, throttling the pool's thread cap when it exceeds the cap
//! and recovering when load subsides.

use looking_glass::core::{LookingGlass, PowerCapPolicy};
use looking_glass::metrics::{FnSource, Sampled, Sampler, SamplerConfig};
use looking_glass::runtime::{PoolConfig, ThreadPool};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let lg = LookingGlass::builder().sample_history(512).build();
    let pool = Arc::new(ThreadPool::new(
        lg.clone(),
        PoolConfig {
            workers: 8,
            spin_rounds: 8,
            register_knobs: true,
            faults: None,
        },
    ));

    // Introspection: a trailing 50 ms mean of the sampled power, addressed
    // by a typed MetricId from here on.
    let history = lg.samples().expect("sample_history enabled").clone();
    let power_mean =
        lg.introspection()
            .register_window_mean("power.mean_w", history, "power", 50_000_000);

    // Synthetic power source: idle 25 W + 12 W per busy-or-queued task,
    // saturating at the worker count (a RAPL stand-in that tracks real
    // pool load; on a many-core host this is just per-core activity, and
    // on a small host queue depth carries the same demand signal).
    let conc = lg.concurrency().clone();
    let load_pool = pool.clone();
    let power_source: Vec<Arc<dyn Sampled>> = vec![Arc::new(FnSource::new("power", move || {
        let demand = conc.active_tasks().max(0) as usize + load_pool.pending();
        25.0 + 12.0 * demand.min(8) as f64
    }))];
    let sink_lg = lg.clone();
    let sampler = Sampler::start(
        SamplerConfig {
            period: Duration::from_millis(2),
            sample_immediately: true,
        },
        power_source,
        move |_t, name, v| sink_lg.sample(name, v),
    );

    // Adaptation: keep mean power under 80 W; recover below 50 W. The
    // knob is addressed by its interned id — no name lookup per actuation.
    let cap_knob = lg.knobs().id("thread_cap").expect("pool registered it");
    lg.policy_engine().register_periodic(
        PowerCapPolicy::new(power_mean, cap_knob, 80.0, 50.0, 8, 8),
        10_000_000, // evaluate every 10 ms
        0,
    );
    let _ticker = lg
        .policy_engine()
        .spawn_ticker(lg.clock().clone(), Duration::from_millis(10));

    let mean_now = |lg: &Arc<LookingGlass>| lg.snapshot().value(power_mean).unwrap_or(0.0);

    // Phase 1: heavy offered load — the governor should clamp down.
    println!("phase 1: heavy load (watch the cap fall)");
    for burst in 0..5 {
        pool.scope(|s| {
            for _ in 0..64 {
                s.spawn_named("hot", || {
                    // Serially dependent so the optimizer cannot fold the
                    // loop to a closed form — this must burn real time.
                    let mut x = 1u64;
                    for i in 0..2_000_000u64 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
                    }
                    std::hint::black_box(x);
                });
            }
        });
        println!(
            "  burst {burst}: cap={:?} mean_power={:.0} W",
            lg.knobs().value_id(cap_knob),
            mean_now(&lg)
        );
    }
    let clamped = lg.knobs().value_id(cap_knob).unwrap();

    // Phase 2: idle — the governor should recover headroom.
    println!("phase 2: idle (watch the cap recover)");
    for i in 0..8 {
        std::thread::sleep(Duration::from_millis(30));
        println!(
            "  t+{}ms: cap={:?} mean_power={:.0} W",
            30 * (i + 1),
            lg.knobs().value_id(cap_knob),
            mean_now(&lg)
        );
    }
    let recovered = lg.knobs().value_id(cap_knob).unwrap();
    sampler.stop();

    println!("\nclamped to {clamped} under load; recovered to {recovered} at idle");
    println!("actuation log: {} knob writes", lg.knobs().change_count());
}
