//! Adaptive message coalescing under a shifting offered load.
//!
//! ```sh
//! cargo run --release --example parcel_coalescing
//! ```
//!
//! Drives the coalescer + simulated link with a parcel storm that starts
//! as a heavy steady stream and then drops to a trickle. A hill-climbing
//! tuner adjusts the coalescing window online; watch it choose a large
//! window under load (amortizing the per-message cost) and shrink it when
//! the load disappears (buffering would only add latency).

use looking_glass::core::Knob as _;
use looking_glass::net::parcel::Parcel;
use looking_glass::net::{Coalescer, SimLink, TransportCost};
use looking_glass::tuning::{Dim, HillClimb, Search, Space};
use looking_glass::workloads::ParcelStorm;

const PAYLOAD: usize = 64;

fn main() {
    // Two regimes, concatenated: 60k parcels at 1.2M/s, then 10k at 60k/s.
    let heavy = ParcelStorm::steady(1.2e6, PAYLOAD, 1).schedule(60_000);
    let offset = *heavy.last().unwrap() + 1_000_000;
    let trickle: Vec<u64> = ParcelStorm::trickle(1.2e6, PAYLOAD, 2)
        .schedule(10_000)
        .into_iter()
        .map(|t| t + offset)
        .collect();
    let schedule: Vec<u64> = heavy.iter().chain(trickle.iter()).copied().collect();

    let mut coal = Coalescer::new(8, 512, 50_000);
    let mut link = SimLink::new(TransportCost::cluster());
    let offer_times = schedule.clone();

    let space = Space::new(vec![Dim::pow2("coalesce_window", 0, 9)]);
    let mut search = HillClimb::from_start(space, &[8]).with_min_improvement(0.05);
    // The coalescing window is never "done" tuning online: when the local
    // search converges we keep the winner but keep watching; a real system
    // would re-arm on drift. Here we re-arm on a fixed cadence.
    let mut pending = search.propose();
    if let Some(p) = &pending {
        coal.window_knob().set(p[0]);
    }

    let epoch = 2_000usize;
    let mut count = 0usize;
    let mut lat_sum = 0.0f64;
    let mut epoch_idx = 0usize;
    println!("epoch  window  mean_latency_us");

    let handle = |link: &mut SimLink,
                  msg: &looking_glass::net::coalesce::WireMessage,
                  count: &mut usize,
                  lat_sum: &mut f64| {
        for d in link.transmit(msg, |seq| offer_times[seq as usize]) {
            *count += 1;
            *lat_sum += (d.arrived_ns - offer_times[d.seq as usize]) as f64;
        }
    };

    for (seq, &t) in schedule.iter().enumerate() {
        while let Some(d) = coal.next_deadline_ns() {
            if d > t {
                break;
            }
            for msg in coal.poll(d) {
                handle(&mut link, &msg, &mut count, &mut lat_sum);
            }
        }
        let parcel = Parcel::new(0, 1, 0, seq as u64, vec![0u8; PAYLOAD]);
        if let Some(msg) = coal.offer(parcel, t) {
            handle(&mut link, &msg, &mut count, &mut lat_sum);
        }
        if count >= epoch {
            let mean_lat = lat_sum / count as f64 / 1e3;
            println!("{:>5}  {:>6}  {:>10.2}", epoch_idx, coal.window(), mean_lat);
            if let Some(p) = pending.take() {
                search.report(&p, mean_lat);
            }
            match search.propose() {
                Some(p) => {
                    coal.window_knob().set(p[0]);
                    pending = Some(p);
                }
                None => {
                    // Re-arm: fresh climber seeded at the current winner,
                    // so a regime change can pull the window elsewhere.
                    if let Some((best, _)) = search.best() {
                        coal.window_knob().set(best[0]);
                        let space = Space::new(vec![Dim::pow2("coalesce_window", 0, 9)]);
                        search = HillClimb::from_start(space, &best).with_min_improvement(0.05);
                        pending = search.propose();
                        if let Some(p) = &pending {
                            coal.window_knob().set(p[0]);
                        }
                    }
                }
            }
            count = 0;
            lat_sum = 0.0;
            epoch_idx += 1;
        }
    }
    for msg in coal.flush_all(*schedule.last().unwrap()) {
        handle(&mut link, &msg, &mut count, &mut lat_sum);
    }

    let r = link.report();
    println!("\n-- totals --");
    println!("parcels delivered : {}", r.parcels);
    println!("wire messages     : {}", r.wire_messages);
    println!("mean coalesce     : {:.1} parcels/message", r.mean_coalesce);
    println!("mean latency      : {:.1} us", r.mean_latency_ns / 1e3);
    println!(
        "p99 latency       : {:.1} us",
        r.p99_latency_ns as f64 / 1e3
    );
}
