//! A task DAG under critical-path steering, end to end.
//!
//! ```sh
//! cargo run --release --example dag_pipeline
//! ```
//!
//! The workload is a triangular-solve sweep (forward substitution): each
//! elimination step's diagonal node gates the entire next level, so the
//! DAG has a long serial spine threaded through wide-but-shrinking
//! levels. Two acts:
//!
//! 1. **Offline (simulated)** — the same DAG replayed on a deterministic
//!    8-core fluid machine under FIFO and critical-path-first ordering,
//!    against the schedule-independent bound `max(cp, work/P)`. This is
//!    the headroom the online loop is chasing.
//! 2. **Online (real pool)** — the DAG drains on the work-stealing pool
//!    while release/completion accounting feeds the `dag.*` gauges, and
//!    a [`CriticalPathPolicy`] on a sidecar control thread watches the
//!    ready frontier and journals the `dag.critical_bias` knob. When the
//!    bias is on, the runtime routes critical nodes to the priority lane
//!    (front of the local deque) — an online approximation of the list
//!    schedule from act 1, with every node body on the zero-allocation
//!    inline tier.

use looking_glass::core::{CriticalPathPolicy, DagStats, LookingGlass, PolicyEngine};
use looking_glass::metrics::PowerModel;
use looking_glass::runtime::{PoolConfig, ThreadPool};
use looking_glass::sim::{MachineSpec, SimRuntime};
use looking_glass::workloads::dag::{
    expected_checksum, generate, run_on_pool_observed, run_on_sim, CostModel, DagConfig,
    DagPattern, DagSched,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const WORKERS: usize = 8;

fn main() {
    let cfg = DagConfig {
        pattern: DagPattern::Sweep,
        width: 16,
        depth: 64,
        grain_ops: 1e5,
        grain_spread: 8.0,
        comm_bytes: 1e3,
        seed: 42,
    };
    let spec = generate(&cfg, &CostModel::default());
    println!(
        "sweep DAG: {} nodes, {} edges, critical path {} levels",
        spec.nodes(),
        spec.edges(),
        cfg.depth
    );

    // Act 1: what does ordering alone buy? Same DAG, same machine, only
    // the ready-queue policy differs.
    let machine = MachineSpec {
        cores: WORKERS,
        core_flops: 1e9,
        mem_bw: 1e12,
        power: PowerModel::new(10.0, 2.0),
        sched_overhead_ns: 0,
        stall_intensity: 0.5,
    };
    let fifo = run_on_sim(&mut SimRuntime::new(machine), &spec, DagSched::Fifo);
    let cp = run_on_sim(&mut SimRuntime::new(machine), &spec, DagSched::CriticalPath);
    println!(
        "simulated {WORKERS}-core makespan: fifo {:.2} ms, critical-path {:.2} ms \
         (bound {:.2} ms) -> {:.1}% gain",
        fifo.makespan_ns as f64 / 1e6,
        cp.makespan_ns as f64 / 1e6,
        cp.bound_ns as f64 / 1e6,
        (fifo.makespan_ns as f64 - cp.makespan_ns as f64) / fifo.makespan_ns as f64 * 100.0,
    );

    // Act 2: the closed loop. Stats sink -> introspection gauges ->
    // periodic policy -> journaled knob -> runtime priority lane.
    let pool = ThreadPool::new(
        LookingGlass::builder().build(),
        PoolConfig::with_workers(WORKERS),
    );
    let stats = DagStats::new();
    stats.register_on(pool.lg().introspection());
    let engine = PolicyEngine::new(pool.lg().knobs().clone());
    engine.attach_introspection(pool.lg().introspection().clone());
    // Bias starts off so the policy's first decision is a real actuation.
    pool.lg().knobs().set("dag.critical_bias", 0);
    engine.register_periodic(
        Box::new(CriticalPathPolicy::new("dag.critical_bias", WORKERS)),
        200_000,
        pool.lg().clock().now_ns(),
    );

    // The control plane runs beside the workload, not inside it: a
    // sidecar thread steps the engine and samples the gauges while the
    // pool drains the scope.
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = {
        let engine = engine.clone();
        let stats = stats.clone();
        let stop = stop.clone();
        let clock = pool.lg().clock().clone();
        std::thread::spawn(move || {
            let (mut peak_width, mut peak_cp) = (0f64, 0f64);
            while !stop.load(Ordering::Acquire) {
                engine.step(clock.now_ns());
                peak_width = peak_width.max(stats.ready_width());
                peak_cp = peak_cp.max(stats.critical_path_ns());
                std::thread::sleep(std::time::Duration::from_micros(100));
            }
            (peak_width, peak_cp)
        })
    };

    let ops_scale = 0.3;
    let report = run_on_pool_observed(&pool, &spec, ops_scale, stats);
    stop.store(true, Ordering::Release);
    let (peak_width, peak_cp) = sampler.join().expect("sampler thread");

    assert_eq!(
        report.checksum,
        expected_checksum(&spec, ops_scale),
        "pool run diverged from the sequential oracle"
    );
    println!(
        "pool run: {} nodes in {:.2} ms, checksum ok",
        report.nodes,
        report.elapsed_ns as f64 / 1e6
    );
    println!(
        "observed frontier: peak dag.ready_width {:.0}, peak dag.critical_path_len {:.2} ms",
        peak_width,
        peak_cp / 1e6
    );
    println!(
        "control plane: {} journaled actuation(s); runtime took the priority lane {} times, \
         boxed {} task bodies",
        engine.actuations(),
        pool.counters().counter("rt.priority_pushes").get(),
        pool.counters().counter("rt.boxed_tasks").get(),
    );
}
