//! Phase-aware adaptation on the simulated machine.
//!
//! ```sh
//! cargo run --release --example phase_adaptation
//! ```
//!
//! The workload alternates memory-bound and compute-bound phases. A
//! per-phase tuning session (restarted at each boundary, warm-started at
//! the previous winner) re-converges the thread cap each time the
//! workload character flips — compare the cap trace against what a
//! per-phase oracle would pick.

use looking_glass::core::{Clock as _, SessionConfig, SessionStep, TuningSession};
use looking_glass::sim::workload_model::PhasedSimWorkload;
use looking_glass::sim::{MachineSpec, SimRuntime, SimWorkload};
use looking_glass::tuning::{Dim, HillClimb, Space};

fn pow2_caps(cores: usize) -> Vec<i64> {
    (0..)
        .map(|e| 1i64 << e)
        .take_while(|&c| c <= cores as i64)
        .collect()
}

fn main() {
    let spec = MachineSpec::server32();
    let period = 30;
    let phases = 4;
    let w = PhasedSimWorkload::new(
        SimWorkload::stencil(2e8, 64),
        SimWorkload::compute(2e8, 64),
        period,
    );

    let mut sim = SimRuntime::new(spec);
    let mut session: Option<TuningSession> = None;
    let mut last_phase = usize::MAX;
    println!("step  phase     cap  note");
    let mut total_energy = 0.0;
    let mut total_time = 0.0;
    let mut step = 0usize;
    let total_steps = period * phases;
    while step < total_steps {
        let phase = w.phase_index(step);
        if phase != last_phase {
            last_phase = phase;
            let current = sim.lg().knobs().value("thread_cap").unwrap_or(32);
            let space = Space::new(vec![Dim::values("thread_cap", pow2_caps(spec.cores))]);
            let search =
                Box::new(HillClimb::from_start(space, &[current]).with_min_improvement(0.01));
            session = Some(TuningSession::new(
                SessionConfig::single("thread_cap", 0, 0),
                search,
                sim.lg().knobs().clone(),
            ));
            println!(
                "---- phase {} begins ({}) ----",
                phase,
                w.active_at(step).name
            );
        }
        let s = session.as_mut().unwrap();
        let (cap, note);
        if s.is_finished() {
            cap = sim.lg().knobs().value("thread_cap").unwrap();
            note = "steady";
            sim.submit_all(w.step_batch(step));
            let r = sim.run_until_idle();
            total_energy += r.energy_j;
            total_time += r.elapsed_s();
            step += 1;
        } else {
            match s.next(sim.clock().now_ns()) {
                SessionStep::Done { .. } => continue,
                SessionStep::Measure { point, .. } => {
                    cap = point[0];
                    note = "searching";
                    sim.submit_all(w.step_batch(step));
                    let r = sim.run_until_idle();
                    total_energy += r.energy_j;
                    total_time += r.elapsed_s();
                    step += 1;
                    s.complete(r.energy_j * r.elapsed_s());
                }
            }
        }
        if step.is_multiple_of(5) || note == "searching" {
            println!(
                "{:>4}  {:<8}  {:>3}  {}",
                step,
                w.active_at(step.saturating_sub(1)).name,
                cap,
                note
            );
        }
    }
    println!(
        "\ntotal: {:.3} s, {:.1} J, EDP {:.2}",
        total_time,
        total_energy,
        total_energy * total_time
    );
}
