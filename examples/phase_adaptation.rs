//! Phase-aware adaptation on the simulated machine.
//!
//! ```sh
//! cargo run --release --example phase_adaptation
//! ```
//!
//! The workload alternates memory-bound and compute-bound phases. A
//! per-phase tuning session (restarted at each boundary, warm-started at
//! the previous winner) re-converges the thread cap each time the
//! workload character flips — compare the cap trace against what a
//! per-phase oracle would pick.
//!
//! Control-plane idiom on display: the cap is addressed by its interned
//! [`KnobId`], the search space is derived from the registry's specs
//! (the sim registers `thread_cap` with Pow2 scale), and each epoch is
//! scored through the snapshot pair the session captures around it
//! (ΔE · Δt from the `sim.energy_j` gauge).

use looking_glass::core::{Clock as _, SessionConfig, SessionStep, TuningSession};
use looking_glass::sim::workload_model::PhasedSimWorkload;
use looking_glass::sim::{MachineSpec, SimRuntime, SimWorkload};
use looking_glass::tuning::HillClimb;

fn main() {
    let spec = MachineSpec::server32();
    let period = 30;
    let phases = 4;
    let w = PhasedSimWorkload::new(
        SimWorkload::stencil(2e8, 64),
        SimWorkload::compute(2e8, 64),
        period,
    );

    let mut sim = SimRuntime::new(spec);
    let cap_id = sim.lg().knobs().id("thread_cap").expect("sim registers it");
    let energy = sim
        .lg()
        .introspection()
        .metric_id("sim.energy_j")
        .expect("sim registers it");
    let mut session: Option<TuningSession> = None;
    let mut last_phase = usize::MAX;
    println!("step  phase     cap  note");
    let mut total_energy = 0.0;
    let mut total_time = 0.0;
    let mut step = 0usize;
    let total_steps = period * phases;
    while step < total_steps {
        let phase = w.phase_index(step);
        if phase != last_phase {
            last_phase = phase;
            let current = sim.lg().knobs().value_id(cap_id).unwrap_or(32);
            // The pow2 cap lattice comes straight from the knob's spec.
            let space = sim.lg().knobs().space_for(&["thread_cap"]);
            let search =
                Box::new(HillClimb::from_start(space, &[current]).with_min_improvement(0.01));
            session = Some(
                TuningSession::new(
                    SessionConfig::single("thread_cap", 0, 0),
                    search,
                    sim.lg().knobs().clone(),
                )
                .with_introspection(sim.lg().introspection().clone()),
            );
            println!(
                "---- phase {} begins ({}) ----",
                phase,
                w.active_at(step).name
            );
        }
        let s = session.as_mut().unwrap();
        let (cap, note);
        if s.is_finished() {
            cap = sim.lg().knobs().value_id(cap_id).unwrap();
            note = "steady";
            sim.submit_all(w.step_batch(step));
            let r = sim.run_until_idle();
            total_energy += r.energy_j;
            total_time += r.elapsed_s();
            step += 1;
        } else {
            match s.next(sim.clock().now_ns()) {
                SessionStep::Done { .. } => continue,
                SessionStep::Measure { point, .. } => {
                    cap = point[0];
                    note = "searching";
                    sim.submit_all(w.step_batch(step));
                    let r = sim.run_until_idle();
                    total_energy += r.energy_j;
                    total_time += r.elapsed_s();
                    step += 1;
                    s.complete_via(sim.clock().now_ns(), |begin, end| {
                        let de =
                            end.value(energy).unwrap_or(0.0) - begin.value(energy).unwrap_or(0.0);
                        let dt = (end.t_ns - begin.t_ns) as f64 / 1e9;
                        de * dt
                    });
                }
            }
        }
        if step.is_multiple_of(5) || note == "searching" {
            println!(
                "{:>4}  {:<8}  {:>3}  {}",
                step,
                w.active_at(step.saturating_sub(1)).name,
                cap,
                note
            );
        }
    }
    println!(
        "\ntotal: {:.3} s, {:.1} J, EDP {:.2}",
        total_time,
        total_energy,
        total_energy * total_time
    );
    println!(
        "actuation journal: {} records ({} total writes)",
        sim.lg().knobs().journal().len(),
        sim.lg().knobs().change_count()
    );
}
