//! Cross-crate integration: the full observe → decide → actuate loop.
//!
//! These tests close the loop end-to-end on both substrates: policies
//! driven by real events actuate real runtime knobs; tuning sessions
//! converge on the simulated machine; and the same session code drives
//! a real `parallel_for` chunk knob.

use looking_glass::core::policy::{FnPolicy, PolicyDecision, Trigger};
use looking_glass::core::{
    Clock as _, Event, Knob as _, LookingGlass, SessionConfig, SessionStep, TuningSession,
};
use looking_glass::runtime::{PoolConfig, ThreadPool};
use looking_glass::sim::{MachineSpec, SimRuntime, SimWorkload};
use looking_glass::tuning::{Dim, HillClimb, Space};
use looking_glass::workloads::Stencil1d;

#[test]
fn policy_throttles_real_pool_on_sample_threshold() {
    let lg = LookingGlass::builder().build();
    let pool = ThreadPool::new(
        lg.clone(),
        PoolConfig {
            workers: 4,
            spin_rounds: 2,
            register_knobs: true,
            faults: None,
        },
    );
    // Policy: if a "power" sample exceeds 100 W, halve the thread cap.
    lg.policy_engine().register_triggered(
        FnPolicy::new("power-guard", |_, trigger, _snapshot| {
            if let Trigger::Event(Event::SampleValue { value, .. }) = trigger {
                if *value > 100.0 {
                    return PolicyDecision::set("thread_cap", 2);
                }
            }
            PolicyDecision::noop()
        }),
        Box::new(|e| matches!(e, Event::SampleValue { .. })),
    );
    assert_eq!(pool.thread_cap().current(), 4);
    lg.sample("power", 80.0);
    assert_eq!(pool.thread_cap().current(), 4, "below threshold: no action");
    lg.sample("power", 130.0);
    assert_eq!(
        pool.thread_cap().current(),
        2,
        "policy must actuate the pool"
    );
    // Work still completes under the throttled cap.
    pool.scope(|s| {
        for _ in 0..50 {
            s.spawn_named("after_throttle", || {});
        }
    });
    assert_eq!(lg.profiles().get("after_throttle").unwrap().count, 50);
}

#[test]
fn sim_session_converges_and_profiles_agree() {
    let spec = MachineSpec::server32();
    let w = SimWorkload::stencil(5e7, 64);
    let mut sim = SimRuntime::new(spec);
    let space = Space::new(vec![Dim::values("thread_cap", vec![1, 2, 4, 8, 16, 32])]);
    let search = Box::new(HillClimb::from_start(space, &[32]));
    let mut session = TuningSession::new(
        SessionConfig::single("thread_cap", 0, 0),
        search,
        sim.lg().knobs().clone(),
    );
    let mut steps = 0u64;
    let best = loop {
        match session.next(sim.clock().now_ns()) {
            SessionStep::Done { best } => break best.unwrap(),
            SessionStep::Measure { .. } => {
                sim.submit_all(w.step_batch());
                let r = sim.run_until_idle();
                steps += 1;
                session.complete(r.energy_j * r.elapsed_s());
            }
        }
    };
    // Converged to a throttled cap (memory-bound), not the full machine.
    assert!(
        best.0[0] < 32,
        "memory-bound workload should throttle: {:?}",
        best.0
    );
    assert!(best.0[0] >= 2, "but not strangle: {:?}", best.0);
    // The profiler saw exactly the tasks the session ran.
    let prof = sim.lg().profiles().get("stencil").unwrap();
    assert_eq!(prof.count, steps * 64);
}

#[test]
fn real_chunk_tuning_session_reaches_sane_chunk() {
    let lg = LookingGlass::builder().build();
    let pool = ThreadPool::new(lg.clone(), PoolConfig::default());
    let knob = pool.chunk_knob("chunk", 1, 4096, 1);
    let mut stencil = Stencil1d::new(40_000, 0.25);
    let space = Space::new(vec![Dim::pow2("chunk", 0, 12)]);
    let search = Box::new(HillClimb::from_start(space, &[1]).with_min_improvement(0.05));
    let mut session = TuningSession::new(
        SessionConfig::single("chunk", 0, 0),
        search,
        lg.knobs().clone(),
    );
    let best = loop {
        match session.next(lg.now_ns()) {
            SessionStep::Done { best } => break best.unwrap(),
            SessionStep::Measure { .. } => {
                let chunk = knob.get().max(1) as usize;
                // Best of two: a single wall-clock sample on a loaded host
                // is noisy enough to stall the hill climb prematurely.
                let mut best_t = f64::INFINITY;
                for _ in 0..2 {
                    let t0 = std::time::Instant::now();
                    stencil.step_parallel(&pool, chunk);
                    best_t = best_t.min(t0.elapsed().as_secs_f64());
                }
                session.complete(best_t);
            }
        }
    };
    // On any host, chunk=1 for a 40k-point stencil (one task per point!)
    // is dreadful; the tuner must move well away from it.
    assert!(
        best.0[0] >= 16,
        "tuner stayed at pathological chunk {:?}",
        best.0
    );
    // The stencil still computed the right thing while being tuned.
    assert!(stencil.state().iter().all(|v| (0.0..=1.0).contains(v)));
}

#[test]
fn knob_actuation_log_audits_the_whole_session() {
    let spec = MachineSpec::small8();
    let w = SimWorkload::compute(1e7, 16);
    let mut sim = SimRuntime::new(spec);
    let space = Space::new(vec![Dim::values("thread_cap", vec![1, 2, 4, 8])]);
    let search = Box::new(HillClimb::from_start(space, &[8]));
    let mut session = TuningSession::new(
        SessionConfig::single("thread_cap", 0, 0),
        search,
        sim.lg().knobs().clone(),
    );
    let mut epochs = 0;
    loop {
        match session.next(sim.clock().now_ns()) {
            SessionStep::Done { .. } => break,
            SessionStep::Measure { .. } => {
                sim.submit_all(w.step_batch());
                let r = sim.run_until_idle();
                epochs += 1;
                session.complete(r.energy_j * r.elapsed_s());
            }
        }
    }
    // One knob write per epoch plus the final winner re-application.
    let changes = sim.lg().knobs().changes();
    assert_eq!(changes.len(), epochs + 1);
    assert!(changes.iter().all(|c| c.name == "thread_cap"));
    assert!(changes.iter().all(|c| (1..=8).contains(&c.to)));
}

#[test]
fn periodic_policy_ticks_under_virtual_time() {
    // Policies stepped manually with virtual timestamps — the simulation
    // path — fire on schedule without any wall-clock thread.
    let lg = LookingGlass::builder().build();
    lg.knobs()
        .register(looking_glass::core::knob::AtomicKnob::new(
            looking_glass::core::KnobSpec::new("k", 0, 100),
            0,
        ));
    let engine = lg.policy_engine();
    engine.register_periodic(
        FnPolicy::new("bump", |_, _, _| PolicyDecision::set("k", 7)),
        1_000,
        0,
    );
    engine.step(500);
    assert_eq!(lg.knobs().value("k"), Some(0));
    engine.step(1_000);
    assert_eq!(lg.knobs().value("k"), Some(7));
}
