//! Cross-crate integration: runtime → observation → introspection.
//!
//! Verifies that the pieces compose: tasks run on the real pool produce
//! balanced lifecycle events, consistent profiles, concurrency history,
//! and traces — across throttling changes and panics.

use looking_glass::core::listener::FnListener;
use looking_glass::core::{Event, LookingGlass};
use looking_glass::runtime::{PoolConfig, ThreadPool};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

fn pool_with(workers: usize) -> (Arc<LookingGlass>, ThreadPool) {
    let lg = LookingGlass::builder().trace(1 << 14).build();
    let pool = ThreadPool::new(
        lg.clone(),
        PoolConfig {
            workers,
            spin_rounds: 4,
            register_knobs: true,
            faults: None,
        },
    );
    (lg, pool)
}

#[test]
fn begin_end_events_balance_exactly() {
    let (lg, pool) = pool_with(3);
    let begins = Arc::new(AtomicU64::new(0));
    let ends = Arc::new(AtomicU64::new(0));
    let (b, e) = (begins.clone(), ends.clone());
    lg.add_listener(Arc::new(FnListener::new("balance", move |ev| match ev {
        Event::TaskBegin { .. } => {
            b.fetch_add(1, Ordering::Relaxed);
        }
        Event::TaskEnd { .. } => {
            e.fetch_add(1, Ordering::Relaxed);
        }
        _ => {}
    })));
    pool.scope(|s| {
        for _ in 0..500 {
            s.spawn_named("balanced", || {});
        }
    });
    pool.wait_idle();
    assert_eq!(begins.load(Ordering::Relaxed), 500);
    assert_eq!(ends.load(Ordering::Relaxed), 500);
    let prof = lg.profiles().get("balanced").unwrap();
    assert_eq!(prof.count, 500);
    assert_eq!(prof.active, 0);
}

#[test]
fn profile_totals_match_scheduler_counters() {
    let (lg, pool) = pool_with(2);
    for i in 0..100 {
        pool.spawn_named(if i % 2 == 0 { "even" } else { "odd" }, || {});
    }
    pool.wait_idle();
    let executed = pool.counters().counter("rt.executed").get();
    assert_eq!(lg.profiles().total_completed(), executed);
    assert_eq!(lg.profiles().get("even").unwrap().count, 50);
    assert_eq!(lg.profiles().get("odd").unwrap().count, 50);
}

#[test]
fn trace_sequence_numbers_are_gapless_for_small_runs() {
    let (lg, pool) = pool_with(1);
    pool.scope(|s| {
        for _ in 0..10 {
            s.spawn_named("traced", || {});
        }
    });
    pool.wait_idle();
    let recs = lg.trace().unwrap().records();
    assert!(
        recs.windows(2).all(|w| w[0].seq < w[1].seq),
        "non-monotone seq"
    );
    assert_eq!(lg.trace().unwrap().overwritten(), 0);
    // Worker start + N begin + N end events at minimum.
    assert!(recs.len() >= 21);
}

#[test]
fn throttling_mid_run_keeps_observation_consistent() {
    let (lg, pool) = pool_with(4);
    let cap = pool.thread_cap();
    pool.scope(|s| {
        for i in 0..300 {
            if i == 100 {
                cap.set_cap(1);
            }
            if i == 200 {
                cap.set_cap(4);
            }
            s.spawn_named("throttled", || {
                std::hint::black_box((0..100).sum::<u64>());
            });
        }
    });
    pool.wait_idle();
    let prof = lg.profiles().get("throttled").unwrap();
    assert_eq!(prof.count, 300);
    assert_eq!(prof.active, 0);
    assert_eq!(lg.concurrency().active_tasks(), 0);
}

#[test]
fn concurrency_listener_never_goes_negative_under_load() {
    let (lg, pool) = pool_with(3);
    let min_seen = Arc::new(AtomicI64::new(0));
    let ms = min_seen.clone();
    let conc = lg.concurrency().clone();
    lg.add_listener(Arc::new(FnListener::new("floor", move |_| {
        ms.fetch_min(conc.active_tasks(), Ordering::Relaxed);
    })));
    pool.scope(|s| {
        for _ in 0..200 {
            s.spawn_named("c", || {});
        }
    });
    pool.wait_idle();
    assert!(
        min_seen.load(Ordering::Relaxed) >= 0,
        "active task count went negative"
    );
}

#[test]
fn panicking_tasks_do_not_corrupt_profiles() {
    let (lg, pool) = pool_with(2);
    for i in 0..50 {
        pool.spawn_named("mixed", move || {
            if i % 10 == 0 {
                panic!("intentional");
            }
        });
    }
    pool.wait_idle();
    let prof = lg.profiles().get("mixed").unwrap();
    assert_eq!(prof.count, 50, "panicking tasks still emit TaskEnd");
    assert_eq!(prof.active, 0);
    assert_eq!(pool.panics(), 5);
}

#[test]
fn two_pools_one_instance_share_observation() {
    let lg = LookingGlass::builder().build();
    let a = ThreadPool::new(
        lg.clone(),
        PoolConfig {
            workers: 2,
            spin_rounds: 2,
            register_knobs: false,
            faults: None,
        },
    );
    let b = ThreadPool::new(
        lg.clone(),
        PoolConfig {
            workers: 2,
            spin_rounds: 2,
            register_knobs: false,
            faults: None,
        },
    );
    a.scope(|s| {
        for _ in 0..10 {
            s.spawn_named("from_a", || {});
        }
    });
    b.scope(|s| {
        for _ in 0..20 {
            s.spawn_named("from_b", || {});
        }
    });
    assert_eq!(lg.profiles().get("from_a").unwrap().count, 10);
    assert_eq!(lg.profiles().get("from_b").unwrap().count, 20);
}
