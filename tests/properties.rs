//! Property-based tests on cross-crate invariants (proptest).
//!
//! These complement the per-module unit tests with randomized coverage of
//! the invariants DESIGN.md §6 calls out: statistics correctness on
//! arbitrary inputs, no-loss/no-reorder through the coalescer, search
//! proposals staying on the lattice, simulator determinism, and the
//! energy ≥ idle-envelope bound.

use looking_glass::metrics::{Histogram, Welford};
use looking_glass::net::parcel::Parcel;
use looking_glass::net::Coalescer;
use looking_glass::sim::{machine::alloc_rates, MachineSpec, SimRuntime, SimTask};
use looking_glass::tuning::{Dim, HillClimb, RandomSearch, Search, SimulatedAnnealing, Space};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn welford_matches_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.update(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() <= 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.population_variance() - var).abs() <= 1e-4 * (1.0 + var));
        prop_assert_eq!(w.count(), xs.len() as u64);
    }

    #[test]
    fn welford_merge_equals_concat(
        xs in proptest::collection::vec(-1e3f64..1e3, 0..100),
        ys in proptest::collection::vec(-1e3f64..1e3, 0..100),
    ) {
        let mut whole = Welford::new();
        for &v in xs.iter().chain(&ys) {
            whole.update(v);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        xs.iter().for_each(|&v| a.update(v));
        ys.iter().for_each(|&v| b.update(v));
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-9);
        prop_assert!((a.population_variance() - whole.population_variance()).abs() < 1e-6);
    }

    #[test]
    fn histogram_preserves_count_and_bounds(values in proptest::collection::vec(0u64..u64::MAX / 2, 1..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        // Quantiles monotone and within [min, max].
        let mut prev = 0u64;
        for i in 0..=10 {
            let q = h.value_at_quantile(i as f64 / 10.0);
            prop_assert!(q >= prev);
            prop_assert!(q >= h.min() && q <= h.max());
            prev = q;
        }
    }

    #[test]
    fn coalescer_loses_nothing_reorders_nothing(
        window in 1usize..32,
        max_delay in 1u64..10_000,
        gaps in proptest::collection::vec(0u64..2_000, 1..300),
    ) {
        let mut c = Coalescer::new(window, 512, max_delay);
        let mut t = 0u64;
        let mut delivered: Vec<u64> = Vec::new();
        for (seq, gap) in gaps.iter().enumerate() {
            t += gap;
            if let Some(m) = c.offer(Parcel::new(0, 1, 0, seq as u64, Vec::new()), t) {
                delivered.extend(m.parcels.iter().map(|p| p.seq));
            }
            for m in c.poll(t) {
                delivered.extend(m.parcels.iter().map(|p| p.seq));
            }
        }
        for m in c.flush_all(t) {
            delivered.extend(m.parcels.iter().map(|p| p.seq));
        }
        prop_assert_eq!(delivered.len(), gaps.len(), "parcel lost or duplicated");
        prop_assert!(delivered.windows(2).all(|w| w[0] < w[1]), "reordered");
    }

    #[test]
    fn searches_stay_on_lattice(
        lo in -50i64..0,
        hi in 1i64..50,
        step in 1i64..7,
        seed in 0u64..1000,
    ) {
        let space = Space::new(vec![
            Dim::range("a", lo, hi, step),
            Dim::pow2("b", 0, 6),
        ]);
        let searches: Vec<Box<dyn Search>> = vec![
            Box::new(RandomSearch::new(space.clone(), 40, seed)),
            Box::new(HillClimb::new(space.clone())),
            Box::new(SimulatedAnnealing::new(
                space.clone(),
                looking_glass::tuning::anneal::AnnealConfig { budget: 40, ..Default::default() },
                seed,
            )),
        ];
        for mut s in searches {
            let mut evals = 0;
            while let Some(p) = s.propose() {
                prop_assert!(space.contains(&p), "{} proposed off-lattice {:?}", s.name(), p);
                s.report(&p, (p[0] + p[1]) as f64);
                evals += 1;
                if evals > 500 { break; }
            }
            if let Some((best, _)) = s.best() {
                prop_assert!(space.contains(&best));
            }
        }
    }

    #[test]
    fn alloc_rates_never_oversubscribe(
        bpos in proptest::collection::vec(0.0f64..64.0, 1..32),
        bw_ghz in 1.0f64..100.0,
    ) {
        let spec = MachineSpec {
            cores: 32,
            core_flops: 1e9,
            mem_bw: bw_ghz * 1e9,
            power: looking_glass::metrics::PowerModel::new(10.0, 2.0),
            sched_overhead_ns: 0,
            stall_intensity: 0.5,
        };
        let rates = alloc_rates(&spec, &bpos);
        let used_bw: f64 = rates.iter().zip(&bpos).map(|(r, b)| r * b).sum();
        prop_assert!(used_bw <= spec.mem_bw * 1.0001, "bandwidth oversubscribed");
        for &r in &rates {
            prop_assert!(r > 0.0 && r <= spec.core_flops + 1.0, "rate out of range: {r}");
        }
    }

    #[test]
    fn sim_is_deterministic_and_conserves_work(
        ntasks in 1usize..40,
        ops_k in 1u64..1000,
        bytes_per_op in 0u64..16,
        cap in 1usize..8,
    ) {
        let run = || {
            let mut sim = SimRuntime::new(MachineSpec::small8());
            sim.set_cap(cap);
            let ops = ops_k as f64 * 1_000.0;
            sim.submit_all((0..ntasks).map(|_| {
                SimTask::new("p", ops, ops * bytes_per_op as f64)
            }));
            let r = sim.run_until_idle();
            (r.elapsed_ns, r.energy_j.to_bits(), r.tasks, r.ops.to_bits())
        };
        let a = run();
        let b = run();
        prop_assert_eq!(a, b, "simulation must be bit-deterministic");
        prop_assert_eq!(a.2, ntasks as u64);
    }

    #[test]
    fn sim_energy_at_least_idle_envelope(
        ntasks in 1usize..30,
        cap in 1usize..8,
        memory in proptest::bool::ANY,
    ) {
        let spec = MachineSpec::small8();
        let mut sim = SimRuntime::new(spec);
        sim.set_cap(cap);
        let bytes = if memory { 1e6 } else { 0.0 };
        sim.submit_all((0..ntasks).map(|_| SimTask::new("e", 1e6, bytes)));
        let r = sim.run_until_idle();
        let idle_energy = spec.power.p_idle * r.elapsed_s();
        prop_assert!(r.energy_j >= idle_energy - 1e-9, "energy below idle envelope");
        // And no more than every core saturated the whole time.
        let max_energy = spec.power.power(spec.cores, 1.0) * r.elapsed_s();
        prop_assert!(r.energy_j <= max_energy + 1e-9);
    }

    #[test]
    fn space_roundtrip_arbitrary_dims(
        dims in proptest::collection::vec((0i64..20, 1i64..5), 1..4),
    ) {
        let space = Space::new(
            dims.iter()
                .enumerate()
                .map(|(i, (extra, step))| Dim::range(format!("d{i}"), 0, 1 + extra, *step))
                .collect(),
        );
        for p in space.iter_points().take(200) {
            let levels = space.levels_of(&p).expect("own points are on lattice");
            prop_assert_eq!(space.point_at(&levels), p);
        }
        prop_assert!(space.contains(&space.center()));
        prop_assert!(space.contains(&space.clamp(&vec![i64::MAX; space.ndims()])));
    }
}

#[test]
fn hillclimb_always_terminates_on_random_landscapes() {
    // Deterministic pseudo-random landscape; climbing must terminate on
    // every seed (strict-improvement argument).
    for seed in 0..20u64 {
        let space = Space::new(vec![Dim::range("x", 0, 40, 1), Dim::range("y", 0, 40, 1)]);
        let mut hc = HillClimb::new(space);
        let mut evals = 0;
        while let Some(p) = hc.propose() {
            let mut h = seed ^ (p[0] as u64) << 32 ^ (p[1] as u64);
            h ^= h >> 33;
            h = h.wrapping_mul(0xFF51AFD7ED558CCD);
            hc.report(&p, (h % 1000) as f64);
            evals += 1;
            assert!(
                evals < 42 * 42 + 100,
                "hillclimb failed to terminate (seed {seed})"
            );
        }
    }
}
