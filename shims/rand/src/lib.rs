//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset of rand 0.8's API this workspace uses —
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::{gen_range,
//! gen_bool, gen}` — over a xoshiro256++ generator seeded via SplitMix64.
//! Streams are deterministic per seed (a property the experiments rely
//! on) but are **not** the same streams the real crate produces.

#![warn(missing_docs)]

/// Low-level uniform bit source.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Sized {
    /// Samples uniformly from `[lo, hi)`. `lo < hi` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Rejection-free-enough uniform integer sampling: widening multiply of a
// 64-bit draw by the span. Bias is < span/2^64 — immaterial for the spans
// used in tests and workloads.
macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let x = rng.next_u64() as u128;
                let off = (x * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = lo + unit * (hi - lo);
        // Floating rounding can land exactly on `hi`; clamp back inside.
        if v >= hi {
            hi - (hi - lo) * f64::EPSILON
        } else {
            v
        }
    }
}

impl SampleUniform for f32 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_half_open(rng, lo as f64, hi as f64) as f32
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

macro_rules! impl_sample_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                if hi < <$t>::MAX {
                    <$t>::sample_half_open(rng, lo, hi + 1)
                } else if lo > <$t>::MIN {
                    <$t>::sample_half_open(rng, lo - 1, hi).max(lo)
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

impl_sample_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling methods, blanket-implemented for every bit source.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// A uniform `f64` in `[0, 1)` (the only `gen` output type used here).
    fn gen(&mut self) -> f64
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore> Rng for R {}

/// Named RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's StdRng).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the standard xoshiro seeding routine.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
        let mut c = StdRng::seed_from_u64(43);
        let same = (0..100)
            .filter(|_| a.gen_range(0u64..100) == c.gen_range(0u64..100))
            .count();
        assert!(same < 30, "different seeds should diverge");
    }

    #[test]
    fn ranges_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = r.gen_range(3u64..17);
            assert!((3..17).contains(&v));
            let f = r.gen_range(1e-12f64..1.0);
            assert!((1e-12..1.0).contains(&f));
            let i = r.gen_range(-50i64..-10);
            assert!((-50..-10).contains(&i));
            let inc = r.gen_range(2u32..=4);
            assert!((2..=4).contains(&inc));
        }
    }

    #[test]
    fn gen_bool_probability_sane() {
        let mut r = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!((0..100).all(|_| !r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn mean_is_centered() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
