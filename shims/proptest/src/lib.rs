//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset of proptest's surface this workspace's property
//! tests use: the `proptest!` macro with `#![proptest_config(..)]`,
//! numeric range strategies, tuple strategies, `collection::vec`,
//! `option::of`, `prop_map`, and `prop_assert!`/`prop_assert_eq!`.
//!
//! Differences from the real crate: case generation is **deterministic**
//! (seeded from the test's module path and name, then the case index), and
//! there is **no shrinking** — a failing case panics with the regular
//! assert message. Determinism is a feature for CI; the lost shrinking is
//! the price of building offline.

#![warn(missing_docs)]

/// Per-test configuration. Only `cases` is honored; the other fields exist
/// so `..ProptestConfig::default()` struct-update syntax works.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Unused; retained for struct-update compatibility.
    pub max_shrink_iters: u32,
    /// Unused; retained for struct-update compatibility.
    pub max_local_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 256,
            max_shrink_iters: 0,
            max_local_rejects: 65_536,
        }
    }
}

/// Deterministic per-case RNG (xoshiro256++ seeded from test identity).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for case `case` of the test identified by `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the identity, perturbed by the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        let seed = h ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        // SplitMix64 expansion into xoshiro state.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Post-processes drawn values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.end - (self.end - self.start) * f64::EPSILON
        } else {
            v
        }
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        (self.start as f64..self.end as f64).sample(rng) as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0 0)
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Half-open length range for collection strategies, mirroring the
    /// real crate's `SizeRange` (which converts from integer ranges of
    /// any primitive type via untyped literals).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    macro_rules! impl_size_range_from {
        ($($t:ty),*) => {$(
            impl From<std::ops::Range<$t>> for SizeRange {
                fn from(r: std::ops::Range<$t>) -> Self {
                    Self { lo: r.start as usize, hi: r.end as usize }
                }
            }
            impl From<std::ops::RangeInclusive<$t>> for SizeRange {
                fn from(r: std::ops::RangeInclusive<$t>) -> Self {
                    let (lo, hi) = r.into_inner();
                    Self { lo: lo as usize, hi: hi as usize + 1 }
                }
            }
        )*};
    }

    impl_size_range_from!(usize, u8, u16, u32, u64, i8, i16, i32, i64);

    /// Strategy for `Vec`s with a random length in a [`SizeRange`].
    pub struct VecStrategy<S> {
        element: S,
        len: SizeRange,
    }

    /// Generates vectors whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: impl Into<SizeRange>) -> VecStrategy<S> {
        let len = len.into();
        assert!(len.lo < len.hi, "collection::vec: empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = (self.len.lo..self.len.hi).sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Boolean strategies.
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding `true` and `false` with equal probability.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Option strategies.
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy for `Option`s (`Some` three times out of four, matching
    /// the real crate's default weighting).
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some(value)` most of the time and `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Binds `name in strategy` argument lists one binding at a time (the
/// tt-munch sidesteps macro follow-set limits on `expr` fragments).
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Expands each `#[test] fn name(args) { body }` item into a looped test.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident ( $($args:tt)* ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut __proptest_rng = $crate::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $crate::__proptest_bind!(__proptest_rng; $($args)*);
                $body
            }
        }
        $crate::__proptest_fns!{ [$cfg] $($rest)* }
    };
}

/// The property-test entry macro. Mirrors proptest's syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in proptest::collection::vec(0u32..5, 1..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!{ [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!{ [$crate::ProptestConfig::default()] $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u64, u64)> {
        (0u64..50, 50u64..100)
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

        #[test]
        fn ranges_hold(x in 5u64..10, y in -3i64..3, f in 0.5f64..2.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((-3..3).contains(&y));
            prop_assert!((0.5..2.0).contains(&f));
        }

        #[test]
        fn vec_lengths_hold(v in crate::collection::vec(0u32..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn tuples_and_options(pair in arb_pair(), opt in crate::option::of(1u32..4)) {
            prop_assert!(pair.0 < pair.1);
            if let Some(o) = opt {
                prop_assert!((1..4).contains(&o));
            }
        }

        #[test]
        fn prop_map_applies(doubled in (1u64..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert!((2..20).contains(&doubled));
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
