//! Offline stand-in for the `criterion` crate.
//!
//! Implements the macro and builder surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion` builders,
//! benchmark groups with throughput annotations, `Bencher::iter` /
//! `iter_batched`) over a simple mean-of-N timing loop. No statistics,
//! plots, or comparisons — it keeps `cargo bench` runnable and the bench
//! targets compiling without network access.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Re-export of the standard black box (criterion's is equivalent).
pub use std::hint::black_box;

/// Throughput annotation attached to a group (printed, not analyzed).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How `iter_batched` amortizes setup; only a hint here.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// A fresh batch every iteration.
    PerIteration,
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Builds an id from just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled by `iter`/`iter_batched`.
    mean_ns: f64,
    target: Duration,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Self {
            mean_ns: 0.0,
            target,
        }
    }

    /// Times `routine`, storing the mean cost per call.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up and calibration: run until ~1/10 of target or 3 iters.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < self.target / 10 || calib_iters < 3 {
            black_box(routine());
            calib_iters += 1;
            if calib_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = calib_start.elapsed().as_nanos() as f64 / calib_iters as f64;
        let measured_iters =
            ((self.target.as_nanos() as f64 / per_iter.max(1.0)) as u64).clamp(3, 10_000_000);
        let start = Instant::now();
        for _ in 0..measured_iters {
            black_box(routine());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / measured_iters as f64;
    }

    /// Times a routine that measures itself: `routine(iters)` must run
    /// the workload `iters` times and return the elapsed wall time (the
    /// real crate's escape hatch for multi-threaded benchmarks).
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        // Calibrate with a small fixed batch, then spend the budget.
        let calib_iters = 16u64;
        let calib = routine(calib_iters);
        let per_iter = calib.as_nanos() as f64 / calib_iters as f64;
        let measured_iters =
            ((self.target.as_nanos() as f64 / per_iter.max(1.0)) as u64).clamp(3, 10_000_000);
        let total = routine(measured_iters);
        self.mean_ns = total.as_nanos() as f64 / measured_iters as f64;
    }

    /// Times `routine` over inputs produced by `setup` (setup excluded
    /// from timing).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.target && iters < 1_000_000 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.mean_ns = total.as_nanos() as f64 / iters.max(1) as f64;
    }
}

/// The benchmark harness configuration and runner.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration (absorbed into calibration here).
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        // The real crate spends `d` per sample set; a flat fraction keeps
        // the whole suite fast while preserving relative budgets.
        self.measurement_time = d / 10;
        self
    }

    /// Sets the sample count (collapsed into the time budget here).
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.measurement_time);
        f(&mut b);
        println!("{id:<40} {:>14.1} ns/iter", b.mean_ns);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Sets the sample count (collapsed into the time budget here).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.criterion.measurement_time);
        f(&mut b);
        self.report(&id, b.mean_ns);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.measurement_time);
        f(&mut b, input);
        self.report(&id.to_string(), b.mean_ns);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}

    fn report(&self, id: &str, mean_ns: f64) {
        let label = format!("{}/{}", self.name, id);
        match self.throughput {
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                let rate = n as f64 * 1e9 / mean_ns;
                println!("{label:<40} {mean_ns:>14.1} ns/iter {rate:>14.0} elem/s");
            }
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                let rate = n as f64 * 1e9 / mean_ns;
                println!("{label:<40} {mean_ns:>14.1} ns/iter {rate:>14.0} B/s");
            }
            _ => println!("{label:<40} {mean_ns:>14.1} ns/iter"),
        }
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.throughput(Throughput::Elements(4));
        group.bench_function("sum", |b| b.iter(|| (0..4u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(20));
        sample_bench(&mut c);
    }

    #[test]
    fn iter_custom_runs() {
        let mut b = Bencher::new(Duration::from_millis(5));
        b.iter_custom(|iters| {
            let start = Instant::now();
            for i in 0..iters {
                black_box(i.wrapping_mul(3));
            }
            start.elapsed()
        });
        assert!(b.mean_ns >= 0.0);
    }

    #[test]
    fn iter_batched_runs() {
        let mut b = Bencher::new(Duration::from_millis(5));
        let mut n = 0u64;
        b.iter_batched(
            || {
                n += 1;
                n
            },
            |x| x * 2,
            BatchSize::SmallInput,
        );
        assert!(b.mean_ns >= 0.0);
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().measurement_time(Duration::from_millis(10));
        targets = sample_bench
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        benches();
    }
}
