//! Work-stealing deque and injector.
//!
//! Lock-based but lock-shaped like crossbeam: a [`Worker`] owns a deque
//! other threads can steal from via [`Stealer`] handles, and an
//! [`Injector`] is a shared MPMC task pool supporting batch steals. The
//! `Steal::Retry` variant exists for API compatibility; this
//! implementation never needs to report it.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Result of a steal attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steal<T> {
    /// A task was stolen.
    Success(T),
    /// Nothing to steal.
    Empty,
    /// Transient contention; try again (never produced here, kept for
    /// interface parity with crossbeam).
    Retry,
}

/// A worker-owned deque; `push`/`pop` from the owner, steals from others.
pub struct Worker<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

/// Stealing handle onto a [`Worker`]'s deque.
pub struct Stealer<T> {
    queue: Arc<Mutex<VecDeque<T>>>,
}

impl<T> Worker<T> {
    /// Creates a FIFO worker deque (owner pops oldest first).
    pub fn new_fifo() -> Self {
        Self {
            queue: Arc::new(Mutex::new(VecDeque::new())),
        }
    }

    /// Creates a LIFO worker deque (owner pops newest first). This shim
    /// stores both the same way; owners of FIFO deques pop the front.
    pub fn new_lifo() -> Self {
        Self::new_fifo()
    }

    /// Pushes a task onto the owner's end.
    pub fn push(&self, task: T) {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(task);
    }

    /// Pushes a task onto the *pop* end, so the owner runs it next —
    /// ahead of everything already queued. Deviation from crossbeam
    /// (which has no front push); the runtime uses it as the priority
    /// lane for critical-path DAG tasks displaced from the LIFO slot.
    pub fn push_front(&self, task: T) {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_front(task);
    }

    /// Pops the owner's next task.
    pub fn pop(&self) -> Option<T> {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_front()
    }

    /// True if the deque is empty right now.
    pub fn is_empty(&self) -> bool {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }

    /// Creates a stealing handle.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            queue: self.queue.clone(),
        }
    }
}

impl<T> Stealer<T> {
    /// True if the owner's deque is empty right now (used by parking
    /// workers to re-check for visible work; a racy read is fine because
    /// parks are time-bounded). Extension over crossbeam's `Stealer`,
    /// which exposes the same check as `is_empty` on recent versions.
    pub fn is_empty(&self) -> bool {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }

    /// Steals one task from the opposite end of the owner.
    pub fn steal(&self) -> Steal<T> {
        match self
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .pop_back()
        {
            Some(t) => Steal::Success(t),
            None => Steal::Empty,
        }
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Self {
            queue: self.queue.clone(),
        }
    }
}

/// Shared MPMC injection queue.
pub struct Injector<T> {
    queue: Mutex<VecDeque<T>>,
}

impl<T> Injector<T> {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Pushes a task.
    pub fn push(&self, task: T) {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(task);
    }

    /// Pushes a task at the *steal* end, so the next `steal_batch_and_pop`
    /// returns it first. Deviation from crossbeam (which has no front
    /// push); this is the injector's priority lane for critical-path DAG
    /// tasks released from a non-worker thread.
    pub fn push_front(&self, task: T) {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_front(task);
    }

    /// True if nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .is_empty()
    }

    /// Pushes a whole batch of tasks under one lock acquisition — the
    /// submission half of batched spawning (deviation from crossbeam,
    /// which has no batch push; here it turns N lock round-trips into 1).
    pub fn push_batch(&self, tasks: impl IntoIterator<Item = T>) {
        self.queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend(tasks);
    }

    /// Steals a batch of tasks into `dest` and pops one of them.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut q = self.queue.lock().unwrap_or_else(|e| e.into_inner());
        let first = match q.pop_front() {
            Some(t) => t,
            None => return Steal::Empty,
        };
        // Move up to half of the remainder (capped) to the destination,
        // mirroring crossbeam's batch sizing intent.
        let batch = (q.len() / 2).min(16);
        if batch > 0 {
            let mut dq = dest.queue.lock().unwrap_or_else(|e| e.into_inner());
            for _ in 0..batch {
                match q.pop_front() {
                    Some(t) => dq.push_back(t),
                    None => break,
                }
            }
        }
        Steal::Success(first)
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worker_push_pop_fifo() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_takes_from_other_end() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        assert_eq!(s.steal(), Steal::Success(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(s.steal(), Steal::Empty);
    }

    #[test]
    fn injector_batch_moves_tasks() {
        let inj = Injector::new();
        for i in 0..10 {
            inj.push(i);
        }
        let w = Worker::new_fifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(0));
        assert!(!w.is_empty(), "batch should have landed in the worker");
        let mut total = 1 + {
            let mut n = 0;
            while w.pop().is_some() {
                n += 1;
            }
            n
        };
        while let Steal::Success(_) = inj.steal_batch_and_pop(&w) {
            total += 1;
            while w.pop().is_some() {
                total += 1;
            }
        }
        assert_eq!(total, 10);
    }

    #[test]
    fn push_batch_preserves_order_and_count() {
        let inj = Injector::new();
        inj.push_batch(0..5);
        inj.push_batch(5..8);
        assert!(!inj.is_empty());
        let w = Worker::new_fifo();
        let mut seen = Vec::new();
        loop {
            match inj.steal_batch_and_pop(&w) {
                Steal::Success(t) => seen.push(t),
                Steal::Retry => continue,
                Steal::Empty => break,
            }
            while let Some(t) = w.pop() {
                seen.push(t);
            }
        }
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn worker_push_front_runs_next() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        w.push_front(99);
        assert_eq!(w.pop(), Some(99));
        assert_eq!(w.pop(), Some(1));
    }

    #[test]
    fn injector_push_front_steals_first() {
        let inj = Injector::new();
        inj.push(1);
        inj.push(2);
        inj.push_front(99);
        let w = Worker::new_fifo();
        assert_eq!(inj.steal_batch_and_pop(&w), Steal::Success(99));
    }

    #[test]
    fn stealer_reports_emptiness() {
        let w = Worker::new_fifo();
        let s = w.stealer();
        assert!(s.is_empty());
        w.push(1);
        assert!(!s.is_empty());
        assert_eq!(w.pop(), Some(1));
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_steals_conserve_tasks() {
        let inj = Arc::new(Injector::new());
        for i in 0..1000 {
            inj.push(i);
        }
        let counts: Vec<_> = (0..4)
            .map(|_| {
                let inj = inj.clone();
                std::thread::spawn(move || {
                    let w = Worker::new_fifo();
                    let mut n = 0u64;
                    loop {
                        match inj.steal_batch_and_pop(&w) {
                            Steal::Success(_) => n += 1,
                            Steal::Retry => continue,
                            Steal::Empty => break,
                        }
                        while w.pop().is_some() {
                            n += 1;
                        }
                    }
                    n
                })
            })
            .collect();
        let total: u64 = counts.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(total, 1000);
    }
}
