//! Offline stand-in for the `crossbeam` crate.
//!
//! Provides the two APIs this workspace uses — `channel::unbounded` and
//! `deque::{Injector, Worker, Stealer}` — implemented over `std::sync`
//! primitives. Semantics (MPMC cloneable endpoints, `Steal` result enum,
//! batch-steal) match crossbeam; performance is adequate for tests and
//! experiments, and the interface lets the real crate drop back in when a
//! registry is reachable.

#![warn(missing_docs)]

pub mod channel;
pub mod deque;
