//! Unbounded MPMC channel with cloneable, `Sync` endpoints.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is empty and
/// every sender is gone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::try_recv`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Empty and every sender dropped.
    Disconnected,
}

/// The sending half; clone freely.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; clone freely (each message goes to one receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueues `value`; fails only if every receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back(value);
        drop(q);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake blocked receivers so they observe the hangup.
            self.shared.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(v) = q.pop_front() {
            return Ok(v);
        }
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks until a message arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(v) = q.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            q = self.shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Number of queued messages (racy, for diagnostics).
    pub fn len(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .len()
    }

    /// True if nothing is queued right now (racy, for diagnostics).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Self {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_try_recv_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_observed() {
        let (tx, rx) = unbounded::<u32>();
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_to_no_receiver_fails() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn mpmc_conserves_messages() {
        let (tx, rx) = unbounded();
        let senders: Vec<_> = (0..4)
            .map(|_| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..500u64 {
                        tx.send(i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let receivers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut n = 0u64;
                    while rx.recv().is_ok() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        drop(rx);
        senders.into_iter().for_each(|t| t.join().unwrap());
        let total: u64 = receivers.into_iter().map(|t| t.join().unwrap()).sum();
        assert_eq!(total, 2000);
    }
}
