//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind parking_lot's poison-free API so the
//! workspace builds without network access. Guards ignore poisoning (a
//! panicking holder does not wedge the lock), matching parking_lot
//! semantics closely enough for this codebase.

#![warn(missing_docs)]

use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual-exclusion lock with a poison-free `lock()`.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so a `Condvar` can temporarily take the std guard during a
    // wait and put it back; it is `Some` at every other moment.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A reader-writer lock with poison-free accessors.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: ?Sized + std::fmt::Debug> std::fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RwLock")
            .field("data", &&*self.read())
            .finish()
    }
}

/// Shared read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// Exclusive write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// Condition variable usable with [`MutexGuard`] by mutable reference.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, r) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: r.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
