//! Bounded journal of policy actuations.
//!
//! The [`KnobRegistry`](crate::KnobRegistry) logs every knob write, but
//! recovery needs more: *who* wrote, *when*, and what the value was
//! before — enough for a watchdog to correlate a throughput regression
//! with the actuation that caused it and undo exactly that write. The
//! [`ActuationJournal`] keeps a bounded ring of such records; when full,
//! the oldest records fall off and are counted, never silently lost.

use parking_lot::Mutex;
use std::collections::VecDeque;

/// One policy-driven knob write.
#[derive(Clone, Debug, PartialEq)]
pub struct ActuationRecord {
    /// Monotonic sequence number (unique within a journal).
    pub seq: u64,
    /// Virtual or wall time of the write.
    pub t_ns: u64,
    /// Name of the policy that decided the write.
    pub policy: String,
    /// Knob written.
    pub knob: String,
    /// Value before the write.
    pub from: i64,
    /// Value applied (post-clamp).
    pub to: i64,
    /// Whether this write has since been rolled back.
    pub rolled_back: bool,
}

struct Inner {
    records: VecDeque<ActuationRecord>,
    next_seq: u64,
    evicted: u64,
}

/// Thread-safe bounded actuation history. Cheap to share via `Arc`.
pub struct ActuationJournal {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl ActuationJournal {
    /// Creates a journal retaining at most `capacity` records.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "journal capacity must be positive");
        Self {
            inner: Mutex::new(Inner {
                records: VecDeque::new(),
                next_seq: 1,
                evicted: 0,
            }),
            capacity,
        }
    }

    /// Appends a record, evicting the oldest if at capacity. Returns the
    /// record's sequence number.
    pub fn record(
        &self,
        t_ns: u64,
        policy: impl Into<String>,
        knob: impl Into<String>,
        from: i64,
        to: i64,
    ) -> u64 {
        let mut g = self.inner.lock();
        let seq = g.next_seq;
        g.next_seq += 1;
        if g.records.len() == self.capacity {
            g.records.pop_front();
            g.evicted += 1;
        }
        g.records.push_back(ActuationRecord {
            seq,
            t_ns,
            policy: policy.into(),
            knob: knob.into(),
            from,
            to,
            rolled_back: false,
        });
        seq
    }

    /// Marks the record with `seq` rolled back; returns false if it has
    /// already been evicted.
    pub fn mark_rolled_back(&self, seq: u64) -> bool {
        let mut g = self.inner.lock();
        match g.records.iter_mut().find(|r| r.seq == seq) {
            Some(r) => {
                r.rolled_back = true;
                true
            }
            None => false,
        }
    }

    /// All retained records, oldest first.
    pub fn records(&self) -> Vec<ActuationRecord> {
        self.inner.lock().records.iter().cloned().collect()
    }

    /// Retained records with `seq > after`, oldest first.
    pub fn records_since(&self, after: u64) -> Vec<ActuationRecord> {
        self.inner
            .lock()
            .records
            .iter()
            .filter(|r| r.seq > after)
            .cloned()
            .collect()
    }

    /// The most recent non-rolled-back record for `knob`, if retained.
    pub fn latest_for(&self, knob: &str) -> Option<ActuationRecord> {
        self.inner
            .lock()
            .records
            .iter()
            .rev()
            .find(|r| r.knob == knob && !r.rolled_back)
            .cloned()
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted by the capacity bound so far.
    pub fn evicted(&self) -> u64 {
        self.inner.lock().evicted
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl std::fmt::Debug for ActuationJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let g = self.inner.lock();
        f.debug_struct("ActuationJournal")
            .field("len", &g.records.len())
            .field("capacity", &self.capacity)
            .field("evicted", &g.evicted)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_seqs() {
        let j = ActuationJournal::new(8);
        let a = j.record(10, "p1", "cap", 32, 16);
        let b = j.record(20, "p2", "window", 1, 64);
        assert!(a < b);
        let rs = j.records();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].knob, "cap");
        assert_eq!((rs[0].from, rs[0].to), (32, 16));
        assert_eq!(rs[1].policy, "p2");
    }

    #[test]
    fn capacity_bounds_and_counts_evictions() {
        let j = ActuationJournal::new(3);
        for i in 0..10 {
            j.record(i, "p", "k", 0, i as i64);
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.evicted(), 7);
        let rs = j.records();
        assert_eq!(rs[0].to, 7, "oldest retained is the 8th write");
    }

    #[test]
    fn records_since_filters() {
        let j = ActuationJournal::new(8);
        let a = j.record(0, "p", "k", 0, 1);
        j.record(1, "p", "k", 1, 2);
        j.record(2, "q", "k2", 0, 5);
        let newer = j.records_since(a);
        assert_eq!(newer.len(), 2);
        assert!(newer.iter().all(|r| r.seq > a));
    }

    #[test]
    fn rollback_marking() {
        let j = ActuationJournal::new(4);
        let s = j.record(0, "p", "k", 3, 9);
        assert_eq!(j.latest_for("k").unwrap().seq, s);
        assert!(j.mark_rolled_back(s));
        assert!(
            j.latest_for("k").is_none(),
            "rolled-back writes are not candidates"
        );
        assert!(j.records()[0].rolled_back);
        assert!(!j.mark_rolled_back(999));
    }

    #[test]
    fn latest_for_picks_most_recent() {
        let j = ActuationJournal::new(8);
        j.record(0, "p", "k", 0, 1);
        let b = j.record(1, "p", "k", 1, 2);
        j.record(2, "p", "other", 0, 1);
        assert_eq!(j.latest_for("k").unwrap().seq, b);
    }
}
