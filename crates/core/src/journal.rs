//! The actuation journal — the single, bounded audit trail of knob writes.
//!
//! Every write that goes through the [`KnobRegistry`](crate::KnobRegistry)
//! lands here: *who* wrote (policy, session, watchdog, or a direct caller),
//! *when*, and what the value was before — enough for a watchdog to
//! correlate a throughput regression with the actuation that caused it and
//! undo exactly that write. The [`ActuationJournal`] keeps a bounded ring
//! of such records; when full, the oldest records fall off and are
//! counted, never silently lost.
//!
//! The ring is lock-free on the write path so journaling never serialises
//! actuators: a writer claims a slot with one `fetch_add` on the head
//! ticket and publishes the record seqlock-style (the slot's `seq` field
//! is zeroed while the payload is being written and set to the record's
//! sequence number when it is complete). Readers validate `seq` before
//! *and* after copying the payload and skip slots caught mid-write.
//! Policy and knob names are interned into `u32` ids via a shared
//! [`TaskNames`] table, so recording costs no allocation for names seen
//! before; hot consumers (the watchdog) read the raw id-based records and
//! only resolve ids to strings at the edge.

use crate::event::{TaskId, TaskNames};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

/// Journal capacity used when a registry or engine builds its own journal.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 256;

/// One knob write, with names resolved to strings (the audit view).
#[derive(Clone, Debug, PartialEq)]
pub struct ActuationRecord {
    /// Monotonic sequence number (unique within a journal, starts at 1).
    pub seq: u64,
    /// Virtual or wall time of the write.
    pub t_ns: u64,
    /// Name of the policy (or other actor) that decided the write.
    pub policy: String,
    /// Knob written.
    pub knob: String,
    /// Value before the write.
    pub from: i64,
    /// Value applied (post-clamp).
    pub to: i64,
    /// Whether this write has since been rolled back.
    pub rolled_back: bool,
    /// If this write *is* a rollback, the seq of the record it undoes.
    pub rollback_of: Option<u64>,
}

/// One knob write with interned ids — the allocation-free consumer view.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RawActuationRecord {
    /// Monotonic sequence number (unique within a journal, starts at 1).
    pub seq: u64,
    /// Virtual or wall time of the write.
    pub t_ns: u64,
    /// Interned actor name (resolve via [`ActuationJournal::names`]).
    pub policy: TaskId,
    /// Interned knob name.
    pub knob: TaskId,
    /// Value before the write.
    pub from: i64,
    /// Value applied (post-clamp).
    pub to: i64,
    /// Whether this write has since been rolled back.
    pub rolled_back: bool,
    /// If this write *is* a rollback, the seq of the record it undoes.
    pub rollback_of: Option<u64>,
}

/// One ring slot. `seq == 0` means empty or mid-write; otherwise it holds
/// the record's 1-based sequence number, which doubles as the seqlock
/// version: readers load it before and after the payload and discard the
/// copy on mismatch.
struct Slot {
    seq: AtomicU64,
    t_ns: AtomicU64,
    policy: AtomicU64,
    knob: AtomicU64,
    from: AtomicI64,
    to: AtomicI64,
    rolled_back: AtomicBool,
    /// 0 = not a rollback; otherwise the seq this record undoes.
    rollback_of: AtomicU64,
}

impl Slot {
    fn empty() -> Self {
        Self {
            seq: AtomicU64::new(0),
            t_ns: AtomicU64::new(0),
            policy: AtomicU64::new(0),
            knob: AtomicU64::new(0),
            from: AtomicI64::new(0),
            to: AtomicI64::new(0),
            rolled_back: AtomicBool::new(false),
            rollback_of: AtomicU64::new(0),
        }
    }
}

/// Thread-safe bounded actuation history. Cheap to share via `Arc`.
///
/// Writes are lock-free (one `fetch_add` plus plain atomic stores); reads
/// never block writers. A record can momentarily be invisible to a reader
/// racing the writer mid-publish — it becomes visible once the write
/// completes, and sequence numbers stay gap-free either way.
pub struct ActuationJournal {
    slots: Vec<Slot>,
    /// Next 0-based ticket; record `seq` is `ticket + 1`.
    head: AtomicU64,
    names: TaskNames,
    capacity: usize,
}

impl ActuationJournal {
    /// Creates a journal retaining at most `capacity` records.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "journal capacity must be positive");
        Self {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
            names: TaskNames::new(),
            capacity,
        }
    }

    /// The interner shared by every record's `policy`/`knob` ids. The
    /// registry pre-interns knob names here at registration so steady-state
    /// recording is allocation-free.
    pub fn names(&self) -> &TaskNames {
        &self.names
    }

    /// Interns an actor name for use with [`ActuationJournal::record_interned`].
    pub fn intern(&self, name: &str) -> TaskId {
        self.names.intern(name)
    }

    /// Appends a record, evicting the oldest if at capacity. Returns the
    /// record's sequence number.
    pub fn record(
        &self,
        t_ns: u64,
        policy: impl AsRef<str>,
        knob: impl AsRef<str>,
        from: i64,
        to: i64,
    ) -> u64 {
        let policy = self.names.intern(policy.as_ref());
        let knob = self.names.intern(knob.as_ref());
        self.record_interned(t_ns, policy, knob, from, to, None)
    }

    /// Appends a record using pre-interned ids — the allocation-free path
    /// used by the registry. `rollback_of` marks this write as the undo of
    /// an earlier record.
    pub fn record_interned(
        &self,
        t_ns: u64,
        policy: TaskId,
        knob: TaskId,
        from: i64,
        to: i64,
        rollback_of: Option<u64>,
    ) -> u64 {
        let ticket = self.head.fetch_add(1, Ordering::AcqRel);
        let seq = ticket + 1;
        let slot = &self.slots[(ticket % self.capacity as u64) as usize];
        // Invalidate the slot, publish the payload, then publish the seq.
        slot.seq.store(0, Ordering::Release);
        slot.t_ns.store(t_ns, Ordering::Relaxed);
        slot.policy.store(policy.0 as u64, Ordering::Relaxed);
        slot.knob.store(knob.0 as u64, Ordering::Relaxed);
        slot.from.store(from, Ordering::Relaxed);
        slot.to.store(to, Ordering::Relaxed);
        slot.rolled_back.store(false, Ordering::Relaxed);
        slot.rollback_of
            .store(rollback_of.unwrap_or(0), Ordering::Relaxed);
        slot.seq.store(seq, Ordering::Release);
        seq
    }

    /// Seqlock read of the slot that should hold `seq`. Returns `None` if
    /// the record was evicted, is mid-write, or was torn by a wrapping
    /// writer during the copy.
    fn read_seq(&self, seq: u64) -> Option<RawActuationRecord> {
        debug_assert!(seq >= 1);
        let slot = &self.slots[((seq - 1) % self.capacity as u64) as usize];
        if slot.seq.load(Ordering::Acquire) != seq {
            return None;
        }
        let rec = RawActuationRecord {
            seq,
            t_ns: slot.t_ns.load(Ordering::Relaxed),
            policy: TaskId(slot.policy.load(Ordering::Relaxed) as u32),
            knob: TaskId(slot.knob.load(Ordering::Relaxed) as u32),
            from: slot.from.load(Ordering::Relaxed),
            to: slot.to.load(Ordering::Relaxed),
            rolled_back: slot.rolled_back.load(Ordering::Relaxed),
            rollback_of: match slot.rollback_of.load(Ordering::Relaxed) {
                0 => None,
                s => Some(s),
            },
        };
        if slot.seq.load(Ordering::Acquire) != seq {
            return None;
        }
        Some(rec)
    }

    /// Marks the record with `seq` rolled back; returns false if it has
    /// already been evicted.
    pub fn mark_rolled_back(&self, seq: u64) -> bool {
        if seq == 0 || seq > self.head.load(Ordering::Acquire) {
            return false;
        }
        let slot = &self.slots[((seq - 1) % self.capacity as u64) as usize];
        if slot.seq.load(Ordering::Acquire) != seq {
            return false; // evicted (or mid-overwrite, which implies evicted)
        }
        slot.rolled_back.store(true, Ordering::Release);
        // If a wrapping writer reclaimed the slot between the check and the
        // store, the flag landed on a *newer* record; report failure so the
        // caller knows the target is gone. The stray flag is repaired by
        // the writer protocol (every publish resets `rolled_back`), so this
        // race can only mis-mark a record that is itself being evicted.
        slot.seq.load(Ordering::Acquire) == seq
    }

    /// Oldest retained sequence number (1-based); `None` when empty.
    fn oldest_seq(&self) -> Option<u64> {
        let head = self.head.load(Ordering::Acquire);
        if head == 0 {
            return None;
        }
        Some(head.saturating_sub(self.capacity as u64 - 1).max(1))
    }

    /// Retained raw records with `seq > after`, oldest first. The
    /// allocation-free view: names stay interned.
    pub fn raw_records_since(&self, after: u64) -> Vec<RawActuationRecord> {
        let head = self.head.load(Ordering::Acquire);
        let Some(oldest) = self.oldest_seq() else {
            return Vec::new();
        };
        (oldest.max(after + 1)..=head)
            .filter_map(|s| self.read_seq(s))
            .collect()
    }

    fn resolve(&self, raw: RawActuationRecord) -> ActuationRecord {
        ActuationRecord {
            seq: raw.seq,
            t_ns: raw.t_ns,
            policy: self.names.resolve(raw.policy).unwrap_or_default(),
            knob: self.names.resolve(raw.knob).unwrap_or_default(),
            from: raw.from,
            to: raw.to,
            rolled_back: raw.rolled_back,
            rollback_of: raw.rollback_of,
        }
    }

    /// All retained records, oldest first.
    pub fn records(&self) -> Vec<ActuationRecord> {
        self.records_since(0)
    }

    /// Retained records with `seq > after`, oldest first.
    pub fn records_since(&self, after: u64) -> Vec<ActuationRecord> {
        self.raw_records_since(after)
            .into_iter()
            .map(|r| self.resolve(r))
            .collect()
    }

    /// The most recent record for `knob` that is neither rolled back nor
    /// itself a rollback — i.e. the newest write a rollback could undo.
    pub fn latest_for(&self, knob: &str) -> Option<ActuationRecord> {
        let id = self.names.lookup(knob)?;
        self.latest_for_id(id).map(|r| self.resolve(r))
    }

    /// Id-based variant of [`ActuationJournal::latest_for`].
    pub fn latest_for_id(&self, knob: TaskId) -> Option<RawActuationRecord> {
        let head = self.head.load(Ordering::Acquire);
        let oldest = self.oldest_seq()?;
        (oldest..=head)
            .rev()
            .filter_map(|s| self.read_seq(s))
            .find(|r| r.knob == knob && !r.rolled_back && r.rollback_of.is_none())
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        (self.head.load(Ordering::Acquire) as usize).min(self.capacity)
    }

    /// True if nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records evicted by the capacity bound so far.
    pub fn evicted(&self) -> u64 {
        self.head
            .load(Ordering::Acquire)
            .saturating_sub(self.capacity as u64)
    }

    /// Total records ever written (retained + evicted).
    pub fn total_recorded(&self) -> u64 {
        self.head.load(Ordering::Acquire)
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl std::fmt::Debug for ActuationJournal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActuationJournal")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("evicted", &self.evicted())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_seqs() {
        let j = ActuationJournal::new(8);
        let a = j.record(10, "p1", "cap", 32, 16);
        let b = j.record(20, "p2", "window", 1, 64);
        assert!(a < b);
        let rs = j.records();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].knob, "cap");
        assert_eq!((rs[0].from, rs[0].to), (32, 16));
        assert_eq!(rs[1].policy, "p2");
    }

    #[test]
    fn capacity_bounds_and_counts_evictions() {
        let j = ActuationJournal::new(3);
        for i in 0..10 {
            j.record(i, "p", "k", 0, i as i64);
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.evicted(), 7);
        assert_eq!(j.total_recorded(), 10);
        let rs = j.records();
        assert_eq!(rs[0].to, 7, "oldest retained is the 8th write");
    }

    #[test]
    fn records_since_filters() {
        let j = ActuationJournal::new(8);
        let a = j.record(0, "p", "k", 0, 1);
        j.record(1, "p", "k", 1, 2);
        j.record(2, "q", "k2", 0, 5);
        let newer = j.records_since(a);
        assert_eq!(newer.len(), 2);
        assert!(newer.iter().all(|r| r.seq > a));
    }

    #[test]
    fn rollback_marking() {
        let j = ActuationJournal::new(4);
        let s = j.record(0, "p", "k", 3, 9);
        assert_eq!(j.latest_for("k").unwrap().seq, s);
        assert!(j.mark_rolled_back(s));
        assert!(
            j.latest_for("k").is_none(),
            "rolled-back writes are not candidates"
        );
        assert!(j.records()[0].rolled_back);
        assert!(!j.mark_rolled_back(999));
    }

    #[test]
    fn latest_for_picks_most_recent() {
        let j = ActuationJournal::new(8);
        j.record(0, "p", "k", 0, 1);
        let b = j.record(1, "p", "k", 1, 2);
        j.record(2, "p", "other", 0, 1);
        assert_eq!(j.latest_for("k").unwrap().seq, b);
    }

    #[test]
    fn rollback_records_are_not_rollback_candidates() {
        let j = ActuationJournal::new(8);
        let s = j.record(0, "p", "k", 7, 1);
        // The undo of `s`: restores 7, tagged as a rollback.
        let p = j.intern("rollback");
        let k = j.names().lookup("k").unwrap();
        j.record_interned(1, p, k, 1, 7, Some(s));
        assert!(j.mark_rolled_back(s));
        assert!(
            j.latest_for("k").is_none(),
            "neither the rolled-back write nor its undo is a candidate"
        );
        let rs = j.records();
        assert_eq!(rs[1].rollback_of, Some(s));
        assert!(!rs[1].rolled_back);
    }

    #[test]
    fn mark_rolled_back_fails_after_eviction() {
        let j = ActuationJournal::new(2);
        let s = j.record(0, "p", "k", 0, 1);
        j.record(1, "p", "k", 1, 2);
        j.record(2, "p", "k", 2, 3); // evicts seq 1
        assert!(!j.mark_rolled_back(s));
    }

    #[test]
    fn concurrent_writers_never_tear_records() {
        let j = std::sync::Arc::new(ActuationJournal::new(4096));
        let p = j.intern("p");
        let k = j.intern("k");
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let j = j.clone();
                std::thread::spawn(move || {
                    for i in 0..500 {
                        let v = (t * 1000 + i) as i64;
                        j.record_interned(v as u64, p, k, v, v, None);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let rs = j.records();
        assert_eq!(rs.len(), 2000);
        for r in &rs {
            assert_eq!(r.from, r.to, "payload halves must come from one write");
            assert_eq!(r.t_ns, r.from as u64);
        }
        let mut seqs: Vec<u64> = rs.iter().map(|r| r.seq).collect();
        seqs.dedup();
        assert_eq!(seqs.len(), 2000, "seqs are unique and ordered");
    }
}
