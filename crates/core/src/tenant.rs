//! Tenant identity and the scoped addressing scheme.
//!
//! A *tenant* is one full looking-glass instance (its own dispatcher,
//! introspection, knob registry, and actuation journal) living alongside
//! siblings on a shared machine. The [`Arbiter`](crate::arbiter::Arbiter)
//! hosts N of them and arbitrates machine-wide budgets; everything the
//! governor mirrors from a tenant — gauges, allocation knobs — is
//! addressed under a per-tenant namespace so one flat registry can hold
//! the whole fleet without collisions.
//!
//! The namespace is purely textual: tenant 3's `thread_cap` mirror lives
//! at `"t3.thread_cap"`. [`TenantId::scoped`] builds such names and
//! [`TenantId::parse_scoped`] inverts them, so reporting code can walk a
//! governor snapshot and group metrics back by tenant.

use std::fmt;

/// Identity of one tenant under an arbiter. Copyable, ordered, and dense:
/// arbiters hand out ids as small slot indexes so per-tenant state can
/// live in plain vectors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The tenant's namespace prefix, without the trailing dot (`"t3"`).
    pub fn prefix(&self) -> String {
        format!("t{}", self.0)
    }

    /// Scope a metric or knob name under this tenant: `"t3.thread_cap"`.
    pub fn scoped(&self, name: &str) -> String {
        format!("t{}.{name}", self.0)
    }

    /// Invert [`TenantId::scoped`]: split `"t3.thread_cap"` into
    /// `(TenantId(3), "thread_cap")`. Returns `None` for names outside
    /// any tenant namespace.
    pub fn parse_scoped(scoped: &str) -> Option<(TenantId, &str)> {
        let rest = scoped.strip_prefix('t')?;
        let dot = rest.find('.')?;
        let (digits, tail) = rest.split_at(dot);
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let n: u32 = digits.parse().ok()?;
        Some((TenantId(n), &tail[1..]))
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Service-level class of a tenant — the coarse priority the governor's
/// preemption rule keys on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SloClass {
    /// Latency-sensitive: may preempt [`SloClass::Batch`] capacity (down
    /// to batch floors) when its pressure signal crosses its SLO.
    Latency,
    /// Throughput-oriented: yields to latency tenants under pressure,
    /// soaks up slack capacity otherwise.
    Batch,
}

impl SloClass {
    /// Preemption rank — higher preempts lower.
    pub fn rank(&self) -> u8 {
        match self {
            SloClass::Latency => 1,
            SloClass::Batch => 0,
        }
    }

    /// Short label for tables and traces.
    pub fn label(&self) -> &'static str {
        match self {
            SloClass::Latency => "latency",
            SloClass::Batch => "batch",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_round_trips() {
        let id = TenantId(7);
        let name = id.scoped("serve.p99_window_ns");
        assert_eq!(name, "t7.serve.p99_window_ns");
        assert_eq!(
            TenantId::parse_scoped(&name),
            Some((id, "serve.p99_window_ns"))
        );
    }

    #[test]
    fn parse_rejects_unscoped_names() {
        assert_eq!(TenantId::parse_scoped("thread_cap"), None);
        assert_eq!(TenantId::parse_scoped("tx.thread_cap"), None);
        assert_eq!(TenantId::parse_scoped("t.thread_cap"), None);
        assert_eq!(TenantId::parse_scoped("t12"), None);
        // A bare "t<digits>." with an empty tail parses to an empty name;
        // scoped() never produces one, so reject is not required — but the
        // tenant id must still be right.
        assert_eq!(TenantId::parse_scoped("t12.x"), Some((TenantId(12), "x")));
    }

    #[test]
    fn slo_rank_orders_preemption() {
        assert!(SloClass::Latency.rank() > SloClass::Batch.rank());
        assert_eq!(SloClass::Latency.label(), "latency");
        assert_eq!(SloClass::Batch.label(), "batch");
    }

    #[test]
    fn display_matches_prefix() {
        assert_eq!(TenantId(3).to_string(), "t3");
        assert_eq!(TenantId(3).prefix(), "t3");
    }
}
