//! Reusable built-in policies.
//!
//! The policy engine takes arbitrary [`crate::policy::Policy`]
//! implementations; these are the stock ones the original system ships as
//! presets, built only on the public introspection/actuation surfaces:
//! they read their input metric from the [`IntrospectionSnapshot`] each
//! evaluation receives (resolve the [`MetricId`] once, up front, e.g. via
//! [`crate::snapshot::Introspection::register_window_mean`]) and actuate
//! through a [`KnobTarget`]:
//!
//! * [`PowerCapPolicy`] — RCR-style reactive governor: keep a sampled
//!   power metric under a cap by stepping a knob down, with hysteresis
//!   and a recovery watermark.
//! * [`HighWatermarkPolicy`] — generic threshold rule mapping a metric
//!   range to a knob value (the building block for queue-depth and
//!   memory-pressure governors).

use crate::knob::KnobTarget;
use crate::policy::{Policy, PolicyDecision, Trigger};
use crate::snapshot::{IntrospectionSnapshot, MetricId};

/// Reactive power-cap governor.
///
/// Every evaluation (register it periodically), reads `metric` from the
/// snapshot (typically a trailing window mean registered on the
/// introspection facade):
///
/// * value > `cap_w` → multiply the knob by `decrease_factor` (< 1);
/// * value < `recover_w` → increase the knob by one `step`;
/// * otherwise hold.
pub struct PowerCapPolicy {
    metric: MetricId,
    knob: KnobTarget,
    cap_w: f64,
    recover_w: f64,
    decrease_factor: f64,
    step: i64,
    knob_max: i64,
    /// Last value this policy wrote (tracks its own actuation without
    /// reading the registry, which it cannot access from `evaluate`).
    current: i64,
}

impl PowerCapPolicy {
    /// Creates a governor over `knob ∈ [1, knob_max]`, starting from
    /// `initial`.
    ///
    /// # Panics
    /// Panics on malformed thresholds (`cap_w <= recover_w`).
    pub fn new(
        metric: MetricId,
        knob: impl Into<KnobTarget>,
        cap_w: f64,
        recover_w: f64,
        initial: i64,
        knob_max: i64,
    ) -> Box<Self> {
        assert!(cap_w > recover_w, "cap must exceed the recovery watermark");
        Box::new(Self {
            metric,
            knob: knob.into(),
            cap_w,
            recover_w,
            decrease_factor: 0.5,
            step: 1,
            knob_max,
            current: initial,
        })
    }

    /// Current value the governor believes the knob holds.
    pub fn current(&self) -> i64 {
        self.current
    }
}

impl Policy for PowerCapPolicy {
    fn name(&self) -> &str {
        "power-cap"
    }

    fn evaluate(
        &mut self,
        _now_ns: u64,
        _trigger: Trigger<'_>,
        snapshot: &IntrospectionSnapshot,
    ) -> PolicyDecision {
        let Some(mean) = snapshot.value(self.metric) else {
            return PolicyDecision::noop();
        };
        if mean > self.cap_w {
            let next = ((self.current as f64 * self.decrease_factor).floor() as i64).max(1);
            if next != self.current {
                self.current = next;
                return PolicyDecision::set(self.knob.clone(), next);
            }
        } else if mean < self.recover_w && self.current < self.knob_max {
            self.current = (self.current + self.step).min(self.knob_max);
            return PolicyDecision::set(self.knob.clone(), self.current);
        }
        PolicyDecision::noop()
    }
}

/// Maps a snapshot metric onto a knob through ordered thresholds: the
/// knob is set to the value of the highest band whose threshold the
/// metric meets or exceeds (bands must be sorted by threshold ascending).
pub struct HighWatermarkPolicy {
    metric: MetricId,
    knob: KnobTarget,
    /// `(threshold, knob_value)` sorted ascending by threshold.
    bands: Vec<(f64, i64)>,
    /// Knob value when the metric is below every threshold.
    default: i64,
    last_set: Option<i64>,
}

impl HighWatermarkPolicy {
    /// Creates a banded governor.
    ///
    /// # Panics
    /// Panics if `bands` is empty or not sorted ascending by threshold.
    pub fn new(
        metric: MetricId,
        knob: impl Into<KnobTarget>,
        bands: Vec<(f64, i64)>,
        default: i64,
    ) -> Box<Self> {
        assert!(!bands.is_empty(), "need at least one band");
        assert!(
            bands.windows(2).all(|w| w[0].0 < w[1].0),
            "bands must be sorted ascending by threshold"
        );
        Box::new(Self {
            metric,
            knob: knob.into(),
            bands,
            default,
            last_set: None,
        })
    }
}

impl Policy for HighWatermarkPolicy {
    fn name(&self) -> &str {
        "high-watermark"
    }

    fn evaluate(
        &mut self,
        _now_ns: u64,
        _trigger: Trigger<'_>,
        snapshot: &IntrospectionSnapshot,
    ) -> PolicyDecision {
        let Some(mean) = snapshot.value(self.metric) else {
            return PolicyDecision::noop();
        };
        let target = self
            .bands
            .iter()
            .rev()
            .find(|(thr, _)| mean >= *thr)
            .map(|(_, v)| *v)
            .unwrap_or(self.default);
        if self.last_set == Some(target) {
            return PolicyDecision::noop(); // no redundant actuation
        }
        self.last_set = Some(target);
        PolicyDecision::set(self.knob.clone(), target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrency::ConcurrencyListener;
    use crate::event::{Event, TaskNames};
    use crate::knob::{AtomicKnob, KnobRegistry, KnobSpec};
    use crate::listener::Listener as _;
    use crate::policy::PolicyEngine;
    use crate::profile::ProfileListener;
    use crate::samples::SampleHistoryListener;
    use crate::snapshot::Introspection;
    use std::sync::Arc;

    struct Rig {
        names: TaskNames,
        history: Arc<SampleHistoryListener>,
        knobs: Arc<KnobRegistry>,
        engine: Arc<PolicyEngine>,
        power: MetricId,
    }

    fn setup() -> Rig {
        let names = TaskNames::new();
        let history = Arc::new(SampleHistoryListener::new(names.clone(), 128));
        let knobs = Arc::new(KnobRegistry::new());
        knobs.register(AtomicKnob::new(KnobSpec::new("thread_cap", 1, 32), 32));
        let engine = PolicyEngine::new(knobs.clone());
        let intro = Arc::new(Introspection::new(
            Arc::new(ProfileListener::new(names.clone())),
            Arc::new(ConcurrencyListener::new(16)),
        ));
        let power = intro.register_window_mean("power.mean_w", history.clone(), "power", 1_000_000);
        engine.attach_introspection(intro);
        Rig {
            names,
            history,
            knobs,
            engine,
            power,
        }
    }

    fn feed(names: &TaskNames, h: &SampleHistoryListener, t: u64, watts: f64) {
        let id = names.intern("power");
        h.on_event(&Event::SampleValue {
            metric: id,
            t_ns: t,
            value: watts,
        });
    }

    #[test]
    fn power_cap_halves_until_under_cap() {
        let rig = setup();
        rig.engine.register_periodic(
            PowerCapPolicy::new(rig.power, "thread_cap", 100.0, 40.0, 32, 32),
            1_000,
            0,
        );
        // Hot: 150 W sustained.
        for i in 0..5 {
            feed(&rig.names, &rig.history, i * 100, 150.0);
        }
        rig.engine.step(1_000);
        assert_eq!(rig.knobs.value("thread_cap"), Some(16));
        rig.engine.step(2_000);
        assert_eq!(rig.knobs.value("thread_cap"), Some(8));
    }

    #[test]
    fn power_cap_recovers_below_watermark() {
        let rig = setup();
        rig.engine.register_periodic(
            PowerCapPolicy::new(rig.power, "thread_cap", 100.0, 40.0, 4, 32),
            1_000,
            0,
        );
        rig.knobs.set("thread_cap", 4);
        for i in 0..5 {
            feed(&rig.names, &rig.history, i * 100, 20.0); // cool
        }
        rig.engine.step(1_000);
        assert_eq!(rig.knobs.value("thread_cap"), Some(5));
        rig.engine.step(2_000);
        assert_eq!(rig.knobs.value("thread_cap"), Some(6));
    }

    #[test]
    fn power_cap_holds_in_deadband() {
        let rig = setup();
        rig.engine.register_periodic(
            PowerCapPolicy::new(rig.power, "thread_cap", 100.0, 40.0, 8, 32),
            1_000,
            0,
        );
        rig.knobs.set("thread_cap", 8);
        for i in 0..5 {
            feed(&rig.names, &rig.history, i * 100, 70.0); // between watermarks
        }
        let before = rig.knobs.change_count();
        rig.engine.step(1_000);
        assert_eq!(rig.knobs.value("thread_cap"), Some(8));
        assert_eq!(
            rig.knobs.change_count(),
            before,
            "deadband must not actuate"
        );
    }

    #[test]
    fn power_cap_noop_without_samples() {
        let rig = setup();
        rig.engine.register_periodic(
            PowerCapPolicy::new(rig.power, "thread_cap", 100.0, 40.0, 32, 32),
            1_000,
            0,
        );
        rig.engine.step(1_000);
        assert_eq!(rig.knobs.value("thread_cap"), Some(32));
    }

    #[test]
    fn policies_can_target_knob_ids_directly() {
        let rig = setup();
        let cap = rig.knobs.id("thread_cap").unwrap();
        rig.engine.register_periodic(
            PowerCapPolicy::new(rig.power, cap, 100.0, 40.0, 32, 32),
            1_000,
            0,
        );
        for i in 0..5 {
            feed(&rig.names, &rig.history, i * 100, 150.0);
        }
        rig.engine.step(1_000);
        assert_eq!(rig.knobs.value("thread_cap"), Some(16));
    }

    #[test]
    fn watermark_bands_select_and_dedupe() {
        let rig = setup();
        rig.knobs
            .register(AtomicKnob::new(KnobSpec::new("window", 1, 512), 1));
        rig.engine.register_periodic(
            HighWatermarkPolicy::new(rig.power, "window", vec![(50.0, 8), (100.0, 64)], 1),
            1_000,
            0,
        );
        feed(&rig.names, &rig.history, 0, 120.0);
        rig.engine.step(1_000);
        assert_eq!(rig.knobs.value("window"), Some(64));
        let changes_after_first = rig.knobs.change_count();
        // Same band again: no redundant actuation.
        feed(&rig.names, &rig.history, 1_500, 110.0);
        rig.engine.step(2_000);
        assert_eq!(rig.knobs.change_count(), changes_after_first);
        // Drop below every threshold: default band.
        for t in [2_100u64, 2_200, 2_300, 2_400] {
            feed(&rig.names, &rig.history, t * 1_000, 10.0);
        }
        rig.engine.step(3_000);
        assert_eq!(rig.knobs.value("window"), Some(1));
    }

    #[test]
    #[should_panic(expected = "cap must exceed")]
    fn rejects_inverted_thresholds() {
        let _ = PowerCapPolicy::new(MetricId(0), "k", 10.0, 20.0, 1, 8);
    }
}
