//! Reusable built-in policies.
//!
//! The policy engine takes arbitrary [`crate::policy::Policy`]
//! implementations; these are the stock ones the original system ships as
//! presets, built only on public introspection/actuation surfaces:
//!
//! * [`PowerCapPolicy`] — RCR-style reactive governor: keep a sampled
//!   power metric under a cap by stepping a knob down, with hysteresis
//!   and a recovery watermark.
//! * [`HighWatermarkPolicy`] — generic threshold rule mapping a metric
//!   range to a knob value (the building block for queue-depth and
//!   memory-pressure governors).

use crate::policy::{Policy, PolicyDecision, Trigger};
use crate::samples::SampleHistoryListener;
use std::sync::Arc;

/// Reactive power-cap governor.
///
/// Every evaluation (register it periodically), reads the trailing mean
/// of `metric` from the sample history:
///
/// * mean > `cap_w` → multiply the knob by `decrease_factor` (< 1);
/// * mean < `recover_w` → increase the knob by one `step`;
/// * otherwise hold.
pub struct PowerCapPolicy {
    history: Arc<SampleHistoryListener>,
    metric: String,
    knob: String,
    cap_w: f64,
    recover_w: f64,
    window_ns: u64,
    decrease_factor: f64,
    step: i64,
    knob_max: i64,
    /// Last value this policy wrote (tracks its own actuation without
    /// reading the registry, which it cannot access from `evaluate`).
    current: i64,
}

impl PowerCapPolicy {
    /// Creates a governor over `knob ∈ [1, knob_max]`, starting from
    /// `initial`.
    ///
    /// # Panics
    /// Panics on malformed thresholds (`cap_w <= recover_w`) or factors.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        history: Arc<SampleHistoryListener>,
        metric: impl Into<String>,
        knob: impl Into<String>,
        cap_w: f64,
        recover_w: f64,
        window_ns: u64,
        initial: i64,
        knob_max: i64,
    ) -> Box<Self> {
        assert!(cap_w > recover_w, "cap must exceed the recovery watermark");
        assert!(window_ns > 0, "window must be positive");
        Box::new(Self {
            history,
            metric: metric.into(),
            knob: knob.into(),
            cap_w,
            recover_w,
            window_ns,
            decrease_factor: 0.5,
            step: 1,
            knob_max,
            current: initial,
        })
    }

    /// Current value the governor believes the knob holds.
    pub fn current(&self) -> i64 {
        self.current
    }
}

impl Policy for PowerCapPolicy {
    fn name(&self) -> &str {
        "power-cap"
    }

    fn evaluate(&mut self, _now_ns: u64, _trigger: Trigger<'_>) -> PolicyDecision {
        let Some(mean) = self.history.mean_over(&self.metric, self.window_ns) else {
            return PolicyDecision::noop();
        };
        if mean > self.cap_w {
            let next = ((self.current as f64 * self.decrease_factor).floor() as i64).max(1);
            if next != self.current {
                self.current = next;
                return PolicyDecision::set(self.knob.clone(), next);
            }
        } else if mean < self.recover_w && self.current < self.knob_max {
            self.current = (self.current + self.step).min(self.knob_max);
            return PolicyDecision::set(self.knob.clone(), self.current);
        }
        PolicyDecision::noop()
    }
}

/// Maps a metric's trailing mean onto a knob through ordered thresholds:
/// the knob is set to the value of the highest band whose threshold the
/// metric meets or exceeds (bands must be sorted by threshold ascending).
pub struct HighWatermarkPolicy {
    history: Arc<SampleHistoryListener>,
    metric: String,
    knob: String,
    window_ns: u64,
    /// `(threshold, knob_value)` sorted ascending by threshold.
    bands: Vec<(f64, i64)>,
    /// Knob value when the metric is below every threshold.
    default: i64,
    last_set: Option<i64>,
}

impl HighWatermarkPolicy {
    /// Creates a banded governor.
    ///
    /// # Panics
    /// Panics if `bands` is empty or not sorted ascending by threshold.
    pub fn new(
        history: Arc<SampleHistoryListener>,
        metric: impl Into<String>,
        knob: impl Into<String>,
        window_ns: u64,
        bands: Vec<(f64, i64)>,
        default: i64,
    ) -> Box<Self> {
        assert!(!bands.is_empty(), "need at least one band");
        assert!(
            bands.windows(2).all(|w| w[0].0 < w[1].0),
            "bands must be sorted ascending by threshold"
        );
        Box::new(Self {
            history,
            metric: metric.into(),
            knob: knob.into(),
            window_ns,
            bands,
            default,
            last_set: None,
        })
    }
}

impl Policy for HighWatermarkPolicy {
    fn name(&self) -> &str {
        "high-watermark"
    }

    fn evaluate(&mut self, _now_ns: u64, _trigger: Trigger<'_>) -> PolicyDecision {
        let Some(mean) = self.history.mean_over(&self.metric, self.window_ns) else {
            return PolicyDecision::noop();
        };
        let target = self
            .bands
            .iter()
            .rev()
            .find(|(thr, _)| mean >= *thr)
            .map(|(_, v)| *v)
            .unwrap_or(self.default);
        if self.last_set == Some(target) {
            return PolicyDecision::noop(); // no redundant actuation
        }
        self.last_set = Some(target);
        PolicyDecision::set(self.knob.clone(), target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, TaskNames};
    use crate::knob::{AtomicKnob, KnobRegistry, KnobSpec};
    use crate::listener::Listener as _;
    use crate::policy::PolicyEngine;

    fn setup() -> (
        TaskNames,
        Arc<SampleHistoryListener>,
        Arc<KnobRegistry>,
        Arc<PolicyEngine>,
    ) {
        let names = TaskNames::new();
        let history = Arc::new(SampleHistoryListener::new(names.clone(), 128));
        let knobs = Arc::new(KnobRegistry::new());
        knobs.register(AtomicKnob::new(KnobSpec::new("thread_cap", 1, 32), 32));
        let engine = PolicyEngine::new(knobs.clone());
        (names, history, knobs, engine)
    }

    fn feed(names: &TaskNames, h: &SampleHistoryListener, t: u64, watts: f64) {
        let id = names.intern("power");
        h.on_event(&Event::SampleValue {
            metric: id,
            t_ns: t,
            value: watts,
        });
    }

    #[test]
    fn power_cap_halves_until_under_cap() {
        let (names, history, knobs, engine) = setup();
        engine.register_periodic(
            PowerCapPolicy::new(
                history.clone(),
                "power",
                "thread_cap",
                100.0,
                40.0,
                1_000_000,
                32,
                32,
            ),
            1_000,
            0,
        );
        // Hot: 150 W sustained.
        for i in 0..5 {
            feed(&names, &history, i * 100, 150.0);
        }
        engine.step(1_000);
        assert_eq!(knobs.value("thread_cap"), Some(16));
        engine.step(2_000);
        assert_eq!(knobs.value("thread_cap"), Some(8));
    }

    #[test]
    fn power_cap_recovers_below_watermark() {
        let (names, history, knobs, engine) = setup();
        engine.register_periodic(
            PowerCapPolicy::new(
                history.clone(),
                "power",
                "thread_cap",
                100.0,
                40.0,
                1_000_000,
                4,
                32,
            ),
            1_000,
            0,
        );
        knobs.set("thread_cap", 4);
        for i in 0..5 {
            feed(&names, &history, i * 100, 20.0); // cool
        }
        engine.step(1_000);
        assert_eq!(knobs.value("thread_cap"), Some(5));
        engine.step(2_000);
        assert_eq!(knobs.value("thread_cap"), Some(6));
    }

    #[test]
    fn power_cap_holds_in_deadband() {
        let (names, history, knobs, engine) = setup();
        engine.register_periodic(
            PowerCapPolicy::new(
                history.clone(),
                "power",
                "thread_cap",
                100.0,
                40.0,
                1_000_000,
                8,
                32,
            ),
            1_000,
            0,
        );
        knobs.set("thread_cap", 8);
        for i in 0..5 {
            feed(&names, &history, i * 100, 70.0); // between watermarks
        }
        let before = knobs.change_count();
        engine.step(1_000);
        assert_eq!(knobs.value("thread_cap"), Some(8));
        assert_eq!(knobs.change_count(), before, "deadband must not actuate");
    }

    #[test]
    fn power_cap_noop_without_samples() {
        let (_names, history, knobs, engine) = setup();
        engine.register_periodic(
            PowerCapPolicy::new(
                history,
                "power",
                "thread_cap",
                100.0,
                40.0,
                1_000_000,
                32,
                32,
            ),
            1_000,
            0,
        );
        engine.step(1_000);
        assert_eq!(knobs.value("thread_cap"), Some(32));
    }

    #[test]
    fn watermark_bands_select_and_dedupe() {
        let (names, history, knobs, engine) = setup();
        knobs.register(AtomicKnob::new(KnobSpec::new("window", 1, 512), 1));
        engine.register_periodic(
            HighWatermarkPolicy::new(
                history.clone(),
                "power",
                "window",
                1_000_000,
                vec![(50.0, 8), (100.0, 64)],
                1,
            ),
            1_000,
            0,
        );
        feed(&names, &history, 0, 120.0);
        engine.step(1_000);
        assert_eq!(knobs.value("window"), Some(64));
        let changes_after_first = knobs.change_count();
        // Same band again: no redundant actuation.
        feed(&names, &history, 1_500, 110.0);
        engine.step(2_000);
        assert_eq!(knobs.change_count(), changes_after_first);
        // Drop below every threshold: default band.
        for t in [2_100u64, 2_200, 2_300, 2_400] {
            feed(&names, &history, t * 1_000, 10.0);
        }
        engine.step(3_000);
        assert_eq!(knobs.value("window"), Some(1));
    }

    #[test]
    #[should_panic(expected = "cap must exceed")]
    fn rejects_inverted_thresholds() {
        let names = TaskNames::new();
        let history = Arc::new(SampleHistoryListener::new(names, 16));
        let _ = PowerCapPolicy::new(history, "m", "k", 10.0, 20.0, 1, 1, 8);
    }
}
