//! Wall and virtual clocks behind one trait.
//!
//! Every timestamp in the observation layer is "nanoseconds since the
//! clock's origin" as a `u64`. The real runtime uses [`WallClock`]
//! (monotonic `Instant`); the simulator uses [`VirtualClock`], a shared
//! atomic advanced only by the discrete-event loop. Policies, profiles,
//! energy meters, and tuning sessions are all written against [`Clock`],
//! which is what lets the *same* adaptation code run in both worlds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic nanosecond clock.
pub trait Clock: Send + Sync {
    /// Nanoseconds since the clock's origin.
    fn now_ns(&self) -> u64;
}

/// Monotonic wall clock anchored at construction time.
#[derive(Clone, Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// Creates a wall clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// Shared virtual clock advanced explicitly by a simulator.
///
/// Cloning shares the underlying time cell.
#[derive(Clone, Debug, Default)]
pub struct VirtualClock {
    now: Arc<AtomicU64>,
}

impl VirtualClock {
    /// Creates a virtual clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock to `t_ns`.
    ///
    /// # Panics
    /// Panics if `t_ns` is earlier than the current time — virtual time
    /// must be monotone; a violation indicates a simulator bug.
    pub fn advance_to(&self, t_ns: u64) {
        let prev = self.now.swap(t_ns, Ordering::SeqCst);
        assert!(
            prev <= t_ns,
            "virtual time went backwards: {prev} -> {t_ns}"
        );
    }

    /// Advances the clock by `dt_ns`.
    pub fn advance_by(&self, dt_ns: u64) {
        self.now.fetch_add(dt_ns, Ordering::SeqCst);
    }
}

impl Clock for VirtualClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

impl Clock for Arc<dyn Clock> {
    fn now_ns(&self) -> u64 {
        (**self).now_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_monotone_and_advancing() {
        let c = WallClock::new();
        let a = c.now_ns();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = c.now_ns();
        assert!(b > a);
    }

    #[test]
    fn virtual_clock_starts_at_zero() {
        let c = VirtualClock::new();
        assert_eq!(c.now_ns(), 0);
    }

    #[test]
    fn virtual_clock_advances() {
        let c = VirtualClock::new();
        c.advance_to(100);
        assert_eq!(c.now_ns(), 100);
        c.advance_by(50);
        assert_eq!(c.now_ns(), 150);
    }

    #[test]
    fn virtual_clock_clones_share_time() {
        let a = VirtualClock::new();
        let b = a.clone();
        a.advance_to(42);
        assert_eq!(b.now_ns(), 42);
    }

    #[test]
    #[should_panic(expected = "virtual time went backwards")]
    fn virtual_clock_rejects_regression() {
        let c = VirtualClock::new();
        c.advance_to(100);
        c.advance_to(99);
    }

    #[test]
    fn dyn_clock_arc_works() {
        let c: Arc<dyn Clock> = Arc::new(VirtualClock::new());
        assert_eq!(c.now_ns(), 0);
    }
}
