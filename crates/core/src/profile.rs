//! Per-task-type streaming profiles.
//!
//! The profiler listener folds every `TaskEnd` into a per-task
//! [`TaskProfile`] (count, total, mean, variance, min, max — Welford under
//! the hood) and maintains begin/end balance so structural bugs in the
//! instrumentation (unmatched begins) are observable.
//!
//! ## Sharding
//!
//! Events are folded into **per-thread stripes** (a fixed array of
//! `STRIPE_COUNT` mutex-guarded cell maps, indexed by
//! [`lg_metrics::stripe::thread_index`], with runtime workers pinned to
//! their worker id and other threads drawing overflow indexes). In steady
//! state each emitting thread locks only its own uncontended stripe, so
//! the per-event cost is an uncontended lock + hash lookup + Welford
//! update no matter how many threads emit. Snapshots merge the stripes
//! with the parallel-Welford (Chan et al.) combine, which is exactly
//! equivalent (up to FP rounding) to having folded every event into one
//! accumulator; `active` and `yields` are plain sums, so begin/end pairs
//! observed on different threads still balance.

use crate::event::{Event, TaskId, TaskNames};
use crate::listener::Listener;
use lg_metrics::stripe::{thread_index, CacheAligned, STRIPE_COUNT};
use lg_metrics::Welford;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Aggregated statistics for one task type.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskProfile {
    /// Task type name (resolved at snapshot time).
    pub name: String,
    /// Completed executions.
    pub count: u64,
    /// Currently executing (begun, not ended) instances.
    pub active: i64,
    /// Total execution time, nanoseconds.
    pub total_ns: f64,
    /// Mean execution time, nanoseconds.
    pub mean_ns: f64,
    /// Population standard deviation of execution time, nanoseconds.
    pub stddev_ns: f64,
    /// Fastest execution, nanoseconds.
    pub min_ns: f64,
    /// Slowest execution, nanoseconds.
    pub max_ns: f64,
    /// Yields observed for this task type.
    pub yields: u64,
}

/// A point-in-time copy of all task profiles.
pub type ProfileSnapshot = Vec<TaskProfile>;

#[derive(Default, Clone)]
struct ProfileCell {
    stats: Welford,
    active: i64,
    yields: u64,
}

impl ProfileCell {
    fn merge(&mut self, other: &ProfileCell) {
        self.stats.merge(&other.stats);
        self.active += other.active;
        self.yields += other.yields;
    }

    fn to_profile(&self, name: String) -> TaskProfile {
        TaskProfile {
            name,
            count: self.stats.count(),
            active: self.active,
            total_ns: self.stats.sum(),
            mean_ns: self.stats.mean(),
            stddev_ns: self.stats.stddev(),
            min_ns: if self.stats.is_empty() {
                0.0
            } else {
                self.stats.min()
            },
            max_ns: if self.stats.is_empty() {
                0.0
            } else {
                self.stats.max()
            },
            yields: self.yields,
        }
    }
}

/// One profile shard: its cell map plus a write-generation stamp bumped
/// after every mutation (the snapshot delta protocol's dirtiness signal).
struct StripeData {
    gen: AtomicU64,
    cells: Mutex<HashMap<TaskId, ProfileCell>>,
}

type Stripe = CacheAligned<StripeData>;

/// The persistent merged base behind [`ProfileListener::snapshot_shared`]:
/// per-stripe cell copies taken at the generation recorded in `gens`, the
/// merged+sorted profile vector they fold into, and a task-name cache so
/// rebuilds don't re-intern `String`s.
struct SnapCache {
    valid: bool,
    gens: [u64; STRIPE_COUNT],
    copies: Vec<HashMap<TaskId, ProfileCell>>,
    resolved: HashMap<TaskId, String>,
    merged: Arc<ProfileSnapshot>,
    total_completed: u64,
}

impl SnapCache {
    fn new() -> Self {
        Self {
            valid: false,
            gens: [0; STRIPE_COUNT],
            copies: (0..STRIPE_COUNT).map(|_| HashMap::new()).collect(),
            resolved: HashMap::new(),
            merged: Arc::new(Vec::new()),
            total_completed: 0,
        }
    }
}

/// Listener that aggregates task lifecycle events into profiles.
///
/// Sharded per emitting thread (see the module docs): per-event work is an
/// uncontended stripe lock, a hash lookup, and a Welford update; queries
/// merge the stripes on demand. Each stripe carries a generation stamp
/// bumped after every mutation, and [`snapshot_shared`] keeps a persistent
/// merged base: a clean call returns the previous `Arc` with zero merges,
/// a dirty call re-copies only the stripes whose stamp moved and re-folds
/// the cached copies in fixed stripe order — bitwise-identical to a
/// from-scratch merge once writers quiesce.
///
/// [`snapshot_shared`]: ProfileListener::snapshot_shared
pub struct ProfileListener {
    names: TaskNames,
    stripes: Box<[Stripe]>,
    cache: Mutex<SnapCache>,
}

impl ProfileListener {
    /// Creates a profiler resolving names through `names`.
    pub fn new(names: TaskNames) -> Self {
        Self {
            names,
            stripes: (0..STRIPE_COUNT)
                .map(|_| {
                    CacheAligned(StripeData {
                        gen: AtomicU64::new(0),
                        cells: Mutex::new(HashMap::new()),
                    })
                })
                .collect(),
            cache: Mutex::new(SnapCache::new()),
        }
    }

    #[inline]
    fn stripe(&self) -> &StripeData {
        &self.stripes[thread_index() & (STRIPE_COUNT - 1)].0
    }

    /// Merges every stripe's cells into one map (parallel-Welford combine).
    fn merged(&self) -> HashMap<TaskId, ProfileCell> {
        let mut out: HashMap<TaskId, ProfileCell> = HashMap::new();
        for stripe in self.stripes.iter() {
            for (id, cell) in stripe.0.cells.lock().iter() {
                out.entry(*id).or_default().merge(cell);
            }
        }
        out
    }

    fn resolve_name(
        names: &TaskNames,
        resolved: &mut HashMap<TaskId, String>,
        id: TaskId,
    ) -> String {
        if let Some(n) = resolved.get(&id) {
            return n.clone();
        }
        match names.resolve(id) {
            // Cache only successful resolutions: a placeholder could be
            // interned later, and must not be pinned forever.
            Some(n) => {
                resolved.insert(id, n.clone());
                n
            }
            None => format!("<task {}>", id.0),
        }
    }

    /// Snapshot of every task profile, sorted by name.
    pub fn snapshot(&self) -> ProfileSnapshot {
        (*self.snapshot_shared().0).clone()
    }

    /// From-scratch snapshot that bypasses the merged-base cache: clones
    /// and folds every stripe. Kept as the verification oracle (the delta
    /// path must produce field-for-field identical output) and as the
    /// benchmark baseline.
    pub fn snapshot_uncached(&self) -> ProfileSnapshot {
        let mut out: Vec<TaskProfile> = self
            .merged()
            .iter()
            .map(|(id, c)| {
                c.to_profile(
                    self.names
                        .resolve(*id)
                        .unwrap_or_else(|| format!("<task {}>", id.0)),
                )
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// The shared merged view plus delta accounting:
    /// `(profiles, total_completed, dirty_stripes, clean_stripes)`.
    ///
    /// Reads each stripe's generation stamp (`Acquire`) *before* locking
    /// and copying it, so a mutation racing the copy leaves a stale
    /// recorded generation and the next call simply re-copies — staleness
    /// can only over-refresh, never miss a write. When no stamp moved, the
    /// previous `Arc` is returned untouched: zero locks on stripes, zero
    /// Welford merges, zero allocation.
    pub fn snapshot_shared(&self) -> (Arc<ProfileSnapshot>, u64, usize, usize) {
        let mut cache = self.cache.lock();
        let cache = &mut *cache;
        let mut dirty = 0usize;
        for (i, stripe) in self.stripes.iter().enumerate() {
            let gen = stripe.0.gen.load(Ordering::Acquire);
            if cache.valid && gen == cache.gens[i] {
                continue;
            }
            cache.gens[i] = gen;
            cache.copies[i] = stripe.0.cells.lock().clone();
            dirty += 1;
        }
        if dirty > 0 || !cache.valid {
            // Re-fold the cached copies in fixed stripe order — the same
            // per-id merge sequence as `merged()`, so the result is
            // bitwise-identical to a from-scratch recompute.
            let mut folded: HashMap<TaskId, ProfileCell> = HashMap::new();
            for copy in cache.copies.iter() {
                for (id, cell) in copy.iter() {
                    folded.entry(*id).or_default().merge(cell);
                }
            }
            cache.total_completed = folded.values().map(|c| c.stats.count()).sum();
            let mut out: Vec<TaskProfile> = folded
                .iter()
                .map(|(id, c)| {
                    c.to_profile(Self::resolve_name(&self.names, &mut cache.resolved, *id))
                })
                .collect();
            out.sort_by(|a, b| a.name.cmp(&b.name));
            cache.merged = Arc::new(out);
            cache.valid = true;
        }
        (
            cache.merged.clone(),
            cache.total_completed,
            dirty,
            STRIPE_COUNT - dirty,
        )
    }

    /// Profile for one task name, if any executions were recorded.
    pub fn get(&self, name: &str) -> Option<TaskProfile> {
        let id = self.names.lookup(name)?;
        let mut merged: Option<ProfileCell> = None;
        for stripe in self.stripes.iter() {
            if let Some(cell) = stripe.0.cells.lock().get(&id) {
                merged.get_or_insert_with(ProfileCell::default).merge(cell);
            }
        }
        merged.map(|c| c.to_profile(name.to_owned()))
    }

    /// Total completed tasks across all types (live fold of every stripe;
    /// [`snapshot_shared`] carries a cached total coherent with its merge).
    ///
    /// [`snapshot_shared`]: ProfileListener::snapshot_shared
    pub fn total_completed(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| {
                s.0.cells
                    .lock()
                    .values()
                    .map(|c| c.stats.count())
                    .sum::<u64>()
            })
            .sum()
    }

    /// Clears all profiles (used at measurement-epoch boundaries). Bumps
    /// every stripe's generation so cached merges notice the clear.
    pub fn reset(&self) {
        for stripe in self.stripes.iter() {
            stripe.0.cells.lock().clear();
            stripe.0.gen.fetch_add(1, Ordering::Release);
        }
    }
}

impl Listener for ProfileListener {
    fn name(&self) -> &str {
        "profile"
    }

    fn on_event(&self, event: &Event) {
        // Each arm mutates under the stripe lock, then Release-bumps the
        // stripe generation: a reader whose recorded generation matches a
        // later Acquire-read is guaranteed its copy includes every
        // completed mutation.
        let stripe = self.stripe();
        match *event {
            Event::TaskBegin { task, .. } => {
                stripe.cells.lock().entry(task).or_default().active += 1;
            }
            Event::TaskEnd {
                task, elapsed_ns, ..
            } => {
                let mut cells = stripe.cells.lock();
                let c = cells.entry(task).or_default();
                c.stats.update(elapsed_ns as f64);
                c.active -= 1;
            }
            Event::TaskYield { task, .. } => {
                stripe.cells.lock().entry(task).or_default().yields += 1;
            }
            _ => return,
        }
        stripe.gen.fetch_add(1, Ordering::Release);
    }
}

impl std::fmt::Debug for ProfileListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfileListener")
            .field("task_types", &self.merged().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (TaskNames, ProfileListener) {
        let names = TaskNames::new();
        let p = ProfileListener::new(names.clone());
        (names, p)
    }

    fn run_task(p: &ProfileListener, task: TaskId, t0: u64, dur: u64) {
        p.on_event(&Event::TaskBegin {
            task,
            worker: 0,
            t_ns: t0,
        });
        p.on_event(&Event::TaskEnd {
            task,
            worker: 0,
            t_ns: t0 + dur,
            elapsed_ns: dur,
        });
    }

    #[test]
    fn aggregates_basic_stats() {
        let (names, p) = setup();
        let id = names.intern("work");
        for (i, dur) in [100u64, 200, 300].iter().enumerate() {
            run_task(&p, id, i as u64 * 1000, *dur);
        }
        let prof = p.get("work").unwrap();
        assert_eq!(prof.count, 3);
        assert_eq!(prof.active, 0);
        assert_eq!(prof.total_ns, 600.0);
        assert_eq!(prof.mean_ns, 200.0);
        assert_eq!(prof.min_ns, 100.0);
        assert_eq!(prof.max_ns, 300.0);
    }

    #[test]
    fn tracks_active_balance() {
        let (names, p) = setup();
        let id = names.intern("w");
        p.on_event(&Event::TaskBegin {
            task: id,
            worker: 0,
            t_ns: 0,
        });
        p.on_event(&Event::TaskBegin {
            task: id,
            worker: 1,
            t_ns: 1,
        });
        assert_eq!(p.get("w").unwrap().active, 2);
        p.on_event(&Event::TaskEnd {
            task: id,
            worker: 0,
            t_ns: 5,
            elapsed_ns: 5,
        });
        assert_eq!(p.get("w").unwrap().active, 1);
        assert_eq!(p.get("w").unwrap().count, 1);
    }

    #[test]
    fn distinct_tasks_do_not_mix() {
        let (names, p) = setup();
        let a = names.intern("a");
        let b = names.intern("b");
        run_task(&p, a, 0, 10);
        run_task(&p, b, 0, 1000);
        assert_eq!(p.get("a").unwrap().mean_ns, 10.0);
        assert_eq!(p.get("b").unwrap().mean_ns, 1000.0);
        assert_eq!(p.total_completed(), 2);
    }

    #[test]
    fn snapshot_sorted_and_complete() {
        let (names, p) = setup();
        for n in ["zz", "aa", "mm"] {
            run_task(&p, names.intern(n), 0, 1);
        }
        let snap = p.snapshot();
        let got: Vec<&str> = snap.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(got, vec!["aa", "mm", "zz"]);
    }

    #[test]
    fn yields_counted() {
        let (names, p) = setup();
        let id = names.intern("y");
        p.on_event(&Event::TaskBegin {
            task: id,
            worker: 0,
            t_ns: 0,
        });
        p.on_event(&Event::TaskYield {
            task: id,
            worker: 0,
            t_ns: 1,
        });
        p.on_event(&Event::TaskResume {
            task: id,
            worker: 0,
            t_ns: 2,
        });
        p.on_event(&Event::TaskEnd {
            task: id,
            worker: 0,
            t_ns: 3,
            elapsed_ns: 2,
        });
        assert_eq!(p.get("y").unwrap().yields, 1);
    }

    #[test]
    fn get_unknown_is_none() {
        let (_names, p) = setup();
        assert!(p.get("nothing").is_none());
    }

    #[test]
    fn reset_clears() {
        let (names, p) = setup();
        run_task(&p, names.intern("x"), 0, 1);
        p.reset();
        assert_eq!(p.total_completed(), 0);
        assert!(p.snapshot().is_empty());
    }

    #[test]
    fn ignores_unrelated_events() {
        let (_names, p) = setup();
        p.on_event(&Event::PeriodicTick { t_ns: 0 });
        p.on_event(&Event::WorkerStart { worker: 0, t_ns: 0 });
        assert!(p.snapshot().is_empty());
    }

    #[test]
    fn concurrent_updates_consistent() {
        let (names, p) = setup();
        let p = std::sync::Arc::new(p);
        let id = names.intern("c");
        let mut joins = Vec::new();
        for w in 0..4 {
            let p = p.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    p.on_event(&Event::TaskBegin {
                        task: id,
                        worker: w,
                        t_ns: i,
                    });
                    p.on_event(&Event::TaskEnd {
                        task: id,
                        worker: w,
                        t_ns: i + 7,
                        elapsed_ns: 7,
                    });
                }
            }));
        }
        joins.into_iter().for_each(|j| j.join().unwrap());
        let prof = p.get("c").unwrap();
        assert_eq!(prof.count, 4000);
        assert_eq!(prof.active, 0);
        assert_eq!(prof.mean_ns, 7.0);
    }

    #[test]
    fn shared_snapshot_reuses_arc_when_idle_and_matches_uncached() {
        let (names, p) = setup();
        run_task(&p, names.intern("a"), 0, 10);
        let (s1, total1, dirty1, _) = p.snapshot_shared();
        assert!(dirty1 >= 1, "first capture copies the written stripe");
        assert_eq!(total1, 1);
        // Idle: same Arc back, zero stripes copied.
        let (s2, total2, dirty2, clean2) = p.snapshot_shared();
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!((dirty2, clean2), (0, STRIPE_COUNT));
        assert_eq!(total2, 1);
        assert_eq!(*s2, p.snapshot_uncached());
        // A write dirties exactly the writer's stripe and the rebuild
        // matches a from-scratch recompute field for field.
        run_task(&p, names.intern("a"), 100, 30);
        let (s3, total3, dirty3, _) = p.snapshot_shared();
        assert!(!Arc::ptr_eq(&s2, &s3));
        assert_eq!(dirty3, 1);
        assert_eq!(total3, 2);
        assert_eq!(*s3, p.snapshot_uncached());
    }

    #[test]
    fn reset_invalidates_shared_snapshot() {
        let (names, p) = setup();
        run_task(&p, names.intern("a"), 0, 10);
        let (s1, _, _, _) = p.snapshot_shared();
        assert_eq!(s1.len(), 1);
        p.reset();
        let (s2, total, dirty, _) = p.snapshot_shared();
        assert!(s2.is_empty());
        assert_eq!(total, 0);
        assert!(dirty >= 1, "reset bumps the cleared stripes' generations");
    }

    #[test]
    fn cross_thread_begin_end_pairs_still_balance() {
        // Begin observed on one thread, end on another: the deltas land in
        // different stripes and must cancel at merge time.
        let (names, p) = setup();
        let p = std::sync::Arc::new(p);
        let id = names.intern("migrated");
        let pb = p.clone();
        std::thread::spawn(move || {
            for i in 0..100 {
                pb.on_event(&Event::TaskBegin {
                    task: id,
                    worker: 0,
                    t_ns: i,
                });
            }
        })
        .join()
        .unwrap();
        let pe = p.clone();
        std::thread::spawn(move || {
            for i in 0..100 {
                pe.on_event(&Event::TaskEnd {
                    task: id,
                    worker: 1,
                    t_ns: i + 5,
                    elapsed_ns: 5,
                });
            }
        })
        .join()
        .unwrap();
        let prof = p.get("migrated").unwrap();
        assert_eq!(prof.count, 100);
        assert_eq!(prof.active, 0);
        assert_eq!(prof.mean_ns, 5.0);
    }
}
