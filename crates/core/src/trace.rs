//! Bounded ring-buffer event tracing.
//!
//! Keeps recent events verbatim for post-hoc inspection (the experiment
//! harness dumps them; tests assert on ordering). When a ring fills, the
//! oldest record is overwritten and a drop counter increments — tracing
//! must never grow without bound or apply backpressure to the runtime.
//!
//! ## Per-thread rings
//!
//! Capture — previously one `Mutex` every event serialized on — writes to
//! a per-emitting-thread stripe: a global sequence number is stamped with
//! one relaxed `fetch_add` (the only shared write; it is what makes the
//! drain totally ordered) and the record lands in the calling thread's
//! own ring under an uncontended lock. [`TraceListener::records`] merges
//! the stripes sorted by sequence number — capture order, which is also
//! timestamp-stable for monotone clocks. Each stripe holds a full
//! `capacity` ring, so a single-threaded emission sequence drains exactly
//! as the unsharded tracer did; with `k` emitting threads total retention
//! is bounded by `k × capacity` and per-stripe overwrite counting is
//! preserved (summed by [`TraceListener::overwritten`]).

use crate::event::Event;
use crate::listener::Listener;
use lg_metrics::stripe::{thread_index, CacheAligned, STRIPE_COUNT};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One retained trace record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceRecord {
    /// Monotone sequence number assigned at capture (global across
    /// emitting threads).
    pub seq: u64,
    /// The event.
    pub event: Event,
}

struct Ring {
    buf: Vec<Option<TraceRecord>>,
    head: usize,
    overwritten: u64,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Self {
            buf: vec![None; capacity],
            head: 0,
            overwritten: 0,
        }
    }

    fn push(&mut self, rec: TraceRecord) {
        if self.buf[self.head].is_some() {
            self.overwritten += 1;
        }
        self.buf[self.head] = Some(rec);
        self.head = (self.head + 1) % self.buf.len();
    }

    fn clear(&mut self) {
        self.buf.iter_mut().for_each(|s| *s = None);
        self.head = 0;
        self.overwritten = 0;
    }
}

/// Listener retaining the most recent events in per-thread ring buffers.
pub struct TraceListener {
    rings: Box<[CacheAligned<Mutex<Ring>>]>,
    seq: AtomicU64,
    capacity: usize,
}

impl TraceListener {
    /// Creates a tracer retaining at most `capacity` events per emitting
    /// thread.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Self {
            rings: (0..STRIPE_COUNT)
                .map(|_| CacheAligned(Mutex::new(Ring::new(capacity))))
                .collect(),
            seq: AtomicU64::new(0),
            capacity,
        }
    }

    /// Copies the retained records oldest → newest (capture order, merged
    /// across emitting threads).
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.capacity);
        for ring in self.rings.iter() {
            let ring = ring.0.lock();
            let cap = ring.buf.len();
            for i in 0..cap {
                if let Some(r) = ring.buf[(ring.head + i) % cap] {
                    out.push(r);
                }
            }
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Number of events overwritten after a ring filled (summed across
    /// threads).
    pub fn overwritten(&self) -> u64 {
        self.rings.iter().map(|r| r.0.lock().overwritten).sum()
    }

    /// Total events ever captured.
    pub fn captured(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Clears the buffers and counters. Not atomic with respect to
    /// concurrent capture: events in flight may land with pre-reset
    /// sequence numbers — quiesce emitters before clearing between
    /// measurement epochs.
    pub fn clear(&self) {
        for ring in self.rings.iter() {
            ring.0.lock().clear();
        }
        self.seq.store(0, Ordering::Relaxed);
    }
}

impl Listener for TraceListener {
    fn name(&self) -> &str {
        "trace"
    }

    fn on_event(&self, event: &Event) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.rings[thread_index() & (STRIPE_COUNT - 1)]
            .0
            .lock()
            .push(TraceRecord { seq, event: *event });
    }
}

impl std::fmt::Debug for TraceListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceListener")
            .field("capacity", &self.capacity)
            .field("captured", &self.captured())
            .field("overwritten", &self.overwritten())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(t: u64) -> Event {
        Event::PeriodicTick { t_ns: t }
    }

    #[test]
    fn retains_in_order_under_capacity() {
        let tr = TraceListener::new(8);
        for t in 0..5 {
            tr.on_event(&tick(t));
        }
        let recs = tr.records();
        assert_eq!(recs.len(), 5);
        assert!(recs.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        assert_eq!(recs[0].event, tick(0));
        assert_eq!(recs[4].event, tick(4));
        assert_eq!(tr.overwritten(), 0);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let tr = TraceListener::new(4);
        for t in 0..10 {
            tr.on_event(&tick(t));
        }
        let recs = tr.records();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].event, tick(6));
        assert_eq!(recs[3].event, tick(9));
        assert_eq!(tr.overwritten(), 6);
        assert_eq!(tr.captured(), 10);
    }

    #[test]
    fn sequence_numbers_are_global() {
        let tr = TraceListener::new(2);
        for t in 0..5 {
            tr.on_event(&tick(t));
        }
        let recs = tr.records();
        assert_eq!(recs.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn clear_resets_everything() {
        let tr = TraceListener::new(4);
        for t in 0..10 {
            tr.on_event(&tick(t));
        }
        tr.clear();
        assert!(tr.records().is_empty());
        assert_eq!(tr.overwritten(), 0);
        assert_eq!(tr.captured(), 0);
        tr.on_event(&tick(99));
        assert_eq!(tr.records()[0].seq, 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TraceListener::new(0);
    }

    #[test]
    fn multi_thread_capture_merges_in_sequence_order() {
        let tr = std::sync::Arc::new(TraceListener::new(64));
        let mut joins = Vec::new();
        for w in 0..4u64 {
            let tr = tr.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..10 {
                    tr.on_event(&tick(w * 100 + i));
                }
            }));
        }
        joins.into_iter().for_each(|j| j.join().unwrap());
        let recs = tr.records();
        assert_eq!(recs.len(), 40);
        assert_eq!(tr.captured(), 40);
        // Drain is totally ordered by capture sequence with no gaps or
        // duplicates (nothing overwritten at this capacity).
        assert!(recs.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        assert_eq!(recs[0].seq, 0);
        assert_eq!(tr.overwritten(), 0);
    }

    #[test]
    fn per_thread_overwrite_counts_sum() {
        let tr = std::sync::Arc::new(TraceListener::new(4));
        let mut joins = Vec::new();
        for _ in 0..2 {
            let tr = tr.clone();
            joins.push(std::thread::spawn(move || {
                for t in 0..10 {
                    tr.on_event(&tick(t));
                }
            }));
        }
        joins.into_iter().for_each(|j| j.join().unwrap());
        // Each thread's stripe overwrote 6 of its 10 events.
        assert_eq!(tr.overwritten(), 12);
        assert_eq!(tr.captured(), 20);
        assert_eq!(tr.records().len(), 8);
    }
}
