//! Bounded ring-buffer event tracing.
//!
//! Keeps the last `capacity` events verbatim for post-hoc inspection (the
//! experiment harness dumps them; tests assert on ordering). When full, the
//! oldest record is overwritten and a drop counter increments — tracing
//! must never grow without bound or apply backpressure to the runtime.

use crate::event::Event;
use crate::listener::Listener;
use parking_lot::Mutex;

/// One retained trace record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceRecord {
    /// Monotone sequence number assigned at capture.
    pub seq: u64,
    /// The event.
    pub event: Event,
}

struct TraceInner {
    buf: Vec<Option<TraceRecord>>,
    head: usize,
    seq: u64,
    overwritten: u64,
}

/// Listener retaining the most recent events in a ring buffer.
pub struct TraceListener {
    inner: Mutex<TraceInner>,
    capacity: usize,
}

impl TraceListener {
    /// Creates a tracer retaining at most `capacity` events.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        Self {
            inner: Mutex::new(TraceInner {
                buf: vec![None; capacity],
                head: 0,
                seq: 0,
                overwritten: 0,
            }),
            capacity,
        }
    }

    /// Copies the retained records oldest → newest.
    pub fn records(&self) -> Vec<TraceRecord> {
        let inner = self.inner.lock();
        let mut out = Vec::with_capacity(self.capacity);
        for i in 0..self.capacity {
            let idx = (inner.head + i) % self.capacity;
            if let Some(r) = inner.buf[idx] {
                out.push(r);
            }
        }
        out
    }

    /// Number of events that were overwritten after the buffer filled.
    pub fn overwritten(&self) -> u64 {
        self.inner.lock().overwritten
    }

    /// Total events ever captured.
    pub fn captured(&self) -> u64 {
        self.inner.lock().seq
    }

    /// Clears the buffer and counters.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.buf.iter_mut().for_each(|s| *s = None);
        inner.head = 0;
        inner.seq = 0;
        inner.overwritten = 0;
    }
}

impl Listener for TraceListener {
    fn name(&self) -> &str {
        "trace"
    }

    fn on_event(&self, event: &Event) {
        let mut inner = self.inner.lock();
        let seq = inner.seq;
        inner.seq += 1;
        let head = inner.head;
        if inner.buf[head].is_some() {
            inner.overwritten += 1;
        }
        inner.buf[head] = Some(TraceRecord { seq, event: *event });
        inner.head = (head + 1) % self.capacity;
    }
}

impl std::fmt::Debug for TraceListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("TraceListener")
            .field("capacity", &self.capacity)
            .field("captured", &inner.seq)
            .field("overwritten", &inner.overwritten)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tick(t: u64) -> Event {
        Event::PeriodicTick { t_ns: t }
    }

    #[test]
    fn retains_in_order_under_capacity() {
        let tr = TraceListener::new(8);
        for t in 0..5 {
            tr.on_event(&tick(t));
        }
        let recs = tr.records();
        assert_eq!(recs.len(), 5);
        assert!(recs.windows(2).all(|w| w[0].seq + 1 == w[1].seq));
        assert_eq!(recs[0].event, tick(0));
        assert_eq!(recs[4].event, tick(4));
        assert_eq!(tr.overwritten(), 0);
    }

    #[test]
    fn overwrites_oldest_when_full() {
        let tr = TraceListener::new(4);
        for t in 0..10 {
            tr.on_event(&tick(t));
        }
        let recs = tr.records();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[0].event, tick(6));
        assert_eq!(recs[3].event, tick(9));
        assert_eq!(tr.overwritten(), 6);
        assert_eq!(tr.captured(), 10);
    }

    #[test]
    fn sequence_numbers_are_global() {
        let tr = TraceListener::new(2);
        for t in 0..5 {
            tr.on_event(&tick(t));
        }
        let recs = tr.records();
        assert_eq!(recs.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![3, 4]);
    }

    #[test]
    fn clear_resets_everything() {
        let tr = TraceListener::new(4);
        for t in 0..10 {
            tr.on_event(&tick(t));
        }
        tr.clear();
        assert!(tr.records().is_empty());
        assert_eq!(tr.overwritten(), 0);
        assert_eq!(tr.captured(), 0);
        tr.on_event(&tick(99));
        assert_eq!(tr.records()[0].seq, 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = TraceListener::new(0);
    }
}
