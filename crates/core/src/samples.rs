//! Sampled-metric history: the introspection face of async observation.
//!
//! The sampler (and the simulator's power accounting) emit
//! [`Event::SampleValue`] observations; this listener retains a bounded
//! [`TimeSeries`] per metric so policies can ask trend questions —
//! "what was mean power over the last 100 ms?", "is latency rising?" —
//! without touching the sampling machinery.

use crate::event::{Event, TaskId, TaskNames};
use crate::listener::Listener;
use lg_metrics::TimeSeries;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Listener retaining per-metric sample history.
pub struct SampleHistoryListener {
    names: TaskNames,
    capacity: usize,
    series: Mutex<HashMap<TaskId, TimeSeries>>,
    /// Bumped after every accepted sample (and on [`clear`]); window-mean
    /// metric sources use it as their dirtiness stamp so idle captures
    /// reuse the previously computed mean.
    ///
    /// [`clear`]: SampleHistoryListener::clear
    write_gen: Arc<AtomicU64>,
}

impl SampleHistoryListener {
    /// Creates a history keeping ~`capacity` points per metric
    /// (decimating beyond that; see [`TimeSeries`]).
    pub fn new(names: TaskNames, capacity: usize) -> Self {
        Self {
            names,
            capacity: capacity.max(4),
            series: Mutex::new(HashMap::new()),
            write_gen: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The write-generation stamp: unchanged between two reads ⇔ no sample
    /// arrived in between.
    pub fn write_stamp(&self) -> Arc<AtomicU64> {
        self.write_gen.clone()
    }

    /// Latest `(t_ns, value)` for `metric`, if any samples arrived.
    pub fn latest(&self, metric: &str) -> Option<(u64, f64)> {
        let id = self.names.lookup(metric)?;
        self.series.lock().get(&id)?.last()
    }

    /// Mean of `metric` over the trailing `horizon_ns` (relative to its
    /// newest sample).
    pub fn mean_over(&self, metric: &str, horizon_ns: u64) -> Option<f64> {
        let id = self.names.lookup(metric)?;
        self.series.lock().get(&id)?.mean_over_trailing(horizon_ns)
    }

    /// Linear trend of `metric` (units/second) over the trailing window.
    pub fn slope_over(&self, metric: &str, horizon_ns: u64) -> Option<f64> {
        let id = self.names.lookup(metric)?;
        self.series.lock().get(&id)?.slope_over_trailing(horizon_ns)
    }

    /// Copies the retained history of `metric`.
    pub fn history(&self, metric: &str) -> Vec<(u64, f64)> {
        self.names
            .lookup(metric)
            .and_then(|id| self.series.lock().get(&id).map(|s| s.iter().collect()))
            .unwrap_or_default()
    }

    /// Names of all metrics seen so far, sorted.
    pub fn metrics(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .series
            .lock()
            .keys()
            .filter_map(|id| self.names.resolve(*id))
            .collect();
        out.sort();
        out
    }

    /// Clears all history.
    pub fn clear(&self) {
        self.series.lock().clear();
        self.write_gen.fetch_add(1, Ordering::Release);
    }
}

impl Listener for SampleHistoryListener {
    fn name(&self) -> &str {
        "sample-history"
    }

    fn on_event(&self, event: &Event) {
        if let Event::SampleValue {
            metric,
            t_ns,
            value,
        } = *event
        {
            let mut series = self.series.lock();
            series
                .entry(metric)
                .or_insert_with(|| TimeSeries::new(self.capacity))
                .push(t_ns, value);
            drop(series);
            self.write_gen.fetch_add(1, Ordering::Release);
        }
    }
}

impl std::fmt::Debug for SampleHistoryListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SampleHistoryListener")
            .field("metrics", &self.series.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(names: &TaskNames, h: &SampleHistoryListener, metric: &str, t: u64, v: f64) {
        let id = names.intern(metric);
        h.on_event(&Event::SampleValue {
            metric: id,
            t_ns: t,
            value: v,
        });
    }

    #[test]
    fn retains_per_metric_series() {
        let names = TaskNames::new();
        let h = SampleHistoryListener::new(names.clone(), 64);
        sample(&names, &h, "power", 0, 10.0);
        sample(&names, &h, "power", 100, 20.0);
        sample(&names, &h, "rss", 50, 5.0);
        assert_eq!(h.latest("power"), Some((100, 20.0)));
        assert_eq!(h.latest("rss"), Some((50, 5.0)));
        assert_eq!(h.history("power").len(), 2);
        assert_eq!(h.metrics(), vec!["power", "rss"]);
    }

    #[test]
    fn mean_and_slope_queries() {
        let names = TaskNames::new();
        let h = SampleHistoryListener::new(names.clone(), 64);
        for i in 0..10u64 {
            sample(&names, &h, "p", i * 1_000_000_000, (i * 10) as f64);
        }
        // Trailing 2.5 s from t=9 s: samples at 7, 8, 9 → mean 80.
        assert_eq!(h.mean_over("p", 2_500_000_000), Some(80.0));
        // 10 units/second trend.
        let slope = h.slope_over("p", u64::MAX).unwrap();
        assert!((slope - 10.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_metric_is_none() {
        let names = TaskNames::new();
        let h = SampleHistoryListener::new(names, 64);
        assert!(h.latest("nope").is_none());
        assert!(h.mean_over("nope", 1000).is_none());
        assert!(h.history("nope").is_empty());
    }

    #[test]
    fn ignores_non_sample_events() {
        let names = TaskNames::new();
        let h = SampleHistoryListener::new(names.clone(), 64);
        let id = names.intern("t");
        h.on_event(&Event::TaskBegin {
            task: id,
            worker: 0,
            t_ns: 0,
        });
        assert!(h.metrics().is_empty());
    }

    #[test]
    fn bounded_memory_under_flood() {
        let names = TaskNames::new();
        let h = SampleHistoryListener::new(names.clone(), 32);
        for i in 0..100_000u64 {
            sample(&names, &h, "flood", i, 1.0);
        }
        assert!(h.history("flood").len() <= 32);
    }

    #[test]
    fn clear_resets() {
        let names = TaskNames::new();
        let h = SampleHistoryListener::new(names.clone(), 16);
        sample(&names, &h, "x", 0, 1.0);
        h.clear();
        assert!(h.metrics().is_empty());
    }
}
