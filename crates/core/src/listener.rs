//! Listener trait and fan-out dispatcher.
//!
//! The dispatcher is the single point every event flows through, so its
//! hot path must not touch shared mutable cache lines. Dispatch uses a
//! **generation-stamped thread-local snapshot**: each emitting thread
//! caches an `Arc<Vec<ListenerEntry>>` of the listener list, revalidated
//! per event by one atomic load of a generation counter that registration
//! bumps. In steady state (no registrations) a dispatch is: one `enabled`
//! load, one generation load, a thread-local lookup, and the listener
//! calls — no lock, no shared `Arc` refcount traffic, no shared counter
//! RMW (the dispatch counters are striped per thread and folded on read).
//!
//! ## Grace-period semantics of `deregister`
//!
//! Removing a listener bumps the generation, so any dispatch that *begins*
//! after [`Dispatcher::deregister`] returns revalidates, misses the
//! generation, refreshes from the shared list, and does not deliver to the
//! removed listener. A thread already *inside* `dispatch` (its generation
//! load happened before the bump) finishes delivering its current event to
//! the old snapshot. The staleness is therefore bounded by **one in-flight
//! event per emitting thread** — never unbounded — which is benign for
//! observation: listeners are passive consumers and must already tolerate
//! events racing their registration. The same bound applies to
//! [`Dispatcher::set_enabled`] for the same reason.
//!
//! Thread-local snapshots also pin the listener `Arc`s of up to
//! [`SNAPSHOT_CACHE_MAX`] recently used dispatchers per thread (evicted
//! FIFO), so a dropped listener's memory may outlive deregistration until
//! the caching threads dispatch again, evict, or exit.

use crate::event::Event;
use lg_metrics::StripedCounter;
use parking_lot::RwLock;
use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A consumer of observation events.
///
/// Listeners must be fast and must not block: they run inline on the
/// emitting thread (a runtime worker, the sampler, or the policy ticker).
pub trait Listener: Send + Sync {
    /// Short name for diagnostics.
    fn name(&self) -> &str;
    /// Handles one event.
    fn on_event(&self, event: &Event);
}

/// Handle returned by [`Dispatcher::register`]; pass to
/// [`Dispatcher::deregister`] to remove the listener.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ListenerHandle(u64);

/// A registered listener with its registration id.
type ListenerEntry = (u64, Arc<dyn Listener>);

/// Max dispatchers a thread caches snapshots for (FIFO eviction beyond).
pub const SNAPSHOT_CACHE_MAX: usize = 16;

/// One thread's cached view of one dispatcher's listener list.
struct CachedSnapshot {
    dispatcher: u64,
    generation: u64,
    listeners: Arc<Vec<ListenerEntry>>,
}

thread_local! {
    /// Per-thread snapshot cache, keyed by dispatcher id (linear scan; a
    /// thread emits to a handful of dispatchers at most). `RefCell` so a
    /// listener that recursively dispatches falls back to the shared-list
    /// slow path instead of aliasing the cache.
    static SNAPSHOTS: RefCell<Vec<CachedSnapshot>> = const { RefCell::new(Vec::new()) };
}

static NEXT_DISPATCHER_ID: AtomicU64 = AtomicU64::new(1);

/// Generation-snapshot fan-out of events to registered listeners.
///
/// Registration is copy-on-write under a lock and bumps `generation`;
/// dispatch validates a thread-local snapshot against `generation` and
/// runs the listeners with no lock held and no shared-line writes.
pub struct Dispatcher {
    /// Process-unique id keying the thread-local snapshot cache.
    id: u64,
    /// Shared listener list (slow path; read under lock only on refresh).
    listeners: RwLock<Arc<Vec<ListenerEntry>>>,
    /// Bumped (under the write lock) by every register/deregister.
    generation: AtomicU64,
    next_id: AtomicU64,
    enabled: AtomicBool,
    /// Events accepted by `dispatch` while enabled (striped per thread).
    events: StripedCounter,
    /// Listener invocations, i.e. events × listeners (striped per thread).
    deliveries: StripedCounter,
}

impl Default for Dispatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Dispatcher {
    /// Creates a dispatcher with no listeners, enabled.
    pub fn new() -> Self {
        Self {
            id: NEXT_DISPATCHER_ID.fetch_add(1, Ordering::Relaxed),
            listeners: RwLock::new(Arc::new(Vec::new())),
            generation: AtomicU64::new(0),
            next_id: AtomicU64::new(1),
            enabled: AtomicBool::new(true),
            events: StripedCounter::new(),
            deliveries: StripedCounter::new(),
        }
    }

    /// Registers a listener; events are delivered from this call onward.
    pub fn register(&self, listener: Arc<dyn Listener>) -> ListenerHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.listeners.write();
        let mut next = (**guard).clone();
        next.push((id, listener));
        *guard = Arc::new(next);
        // Published while holding the write lock, so a refresh that reads
        // this generation under the read lock pairs it with this list.
        self.generation.fetch_add(1, Ordering::Release);
        ListenerHandle(id)
    }

    /// Removes a previously registered listener. Returns true if found.
    ///
    /// Removal has a bounded grace period: emitters already inside
    /// `dispatch` deliver at most their one in-flight event to the old
    /// snapshot; dispatches beginning after this returns never deliver to
    /// the removed listener (see the module docs).
    pub fn deregister(&self, handle: ListenerHandle) -> bool {
        let mut guard = self.listeners.write();
        let before = guard.len();
        let next: Vec<ListenerEntry> = guard
            .iter()
            .filter(|(id, _)| *id != handle.0)
            .cloned()
            .collect();
        let removed = next.len() != before;
        *guard = Arc::new(next);
        self.generation.fetch_add(1, Ordering::Release);
        removed
    }

    /// Globally enables or disables dispatch (the "observation off" switch;
    /// the overhead experiment measures both sides of it).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Release);
    }

    /// Whether dispatch is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Number of registered listeners.
    pub fn listener_count(&self) -> usize {
        self.listeners.read().len()
    }

    /// Events accepted by [`Dispatcher::dispatch`] while enabled,
    /// regardless of how many listeners (possibly zero) received them.
    pub fn events_dispatched(&self) -> u64 {
        self.events.sum()
    }

    /// Listener invocations: each event counts once per listener it was
    /// delivered to. With `L` listeners registered throughout,
    /// `deliveries == events_dispatched × L`.
    pub fn deliveries(&self) -> u64 {
        self.deliveries.sum()
    }

    /// Delivers `event` to every registered listener.
    #[inline]
    pub fn dispatch(&self, event: &Event) {
        if !self.enabled.load(Ordering::Acquire) {
            return;
        }
        self.events.inc();
        // Revalidate the thread-local snapshot with a single generation
        // load. Acquire pairs with the Release bump in register/deregister
        // so a fresh generation is never observed with a stale list.
        let generation = self.generation.load(Ordering::Acquire);
        let done = SNAPSHOTS.with(|cell| {
            // A listener recursively dispatching (to this or any other
            // dispatcher) finds the cache borrowed and takes the slow
            // path; the outer dispatch's snapshot stays pinned meanwhile.
            let Ok(mut cache) = cell.try_borrow_mut() else {
                return false;
            };
            let entry = match cache.iter().position(|s| s.dispatcher == self.id) {
                Some(i) => {
                    if cache[i].generation != generation {
                        let snap = self.load_snapshot();
                        cache[i].generation = snap.generation;
                        cache[i].listeners = snap.listeners;
                    }
                    &cache[i]
                }
                None => {
                    if cache.len() == SNAPSHOT_CACHE_MAX {
                        cache.remove(0);
                    }
                    let snap = self.load_snapshot();
                    cache.push(snap);
                    cache.last().expect("just pushed")
                }
            };
            for (_, l) in entry.listeners.iter() {
                l.on_event(event);
            }
            self.deliveries.add(entry.listeners.len() as u64);
            true
        });
        if !done {
            self.dispatch_uncached(event);
        }
    }

    /// Reads a consistent (generation, listener list) pair under the read
    /// lock: registration bumps the generation while holding the write
    /// lock, so the pair cannot interleave with an update.
    fn load_snapshot(&self) -> CachedSnapshot {
        let guard = self.listeners.read();
        CachedSnapshot {
            dispatcher: self.id,
            generation: self.generation.load(Ordering::Acquire),
            listeners: guard.clone(),
        }
    }

    /// Slow path for reentrant dispatch: snapshot under the read lock,
    /// deliver with no lock held (the pre-generation-cache protocol).
    #[cold]
    fn dispatch_uncached(&self, event: &Event) {
        let snapshot = { self.listeners.read().clone() };
        for (_, l) in snapshot.iter() {
            l.on_event(event);
        }
        self.deliveries.add(snapshot.len() as u64);
    }
}

impl std::fmt::Debug for Dispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dispatcher")
            .field("listeners", &self.listener_count())
            .field("enabled", &self.is_enabled())
            .field("events_dispatched", &self.events_dispatched())
            .field("deliveries", &self.deliveries())
            .finish()
    }
}

/// A listener that forwards events to a closure — handy in tests and for
/// one-off hooks.
pub struct FnListener<F: Fn(&Event) + Send + Sync> {
    name: String,
    f: F,
}

impl<F: Fn(&Event) + Send + Sync> FnListener<F> {
    /// Wraps `f` as a listener called `name`.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Self {
            name: name.into(),
            f,
        }
    }
}

impl<F: Fn(&Event) + Send + Sync> Listener for FnListener<F> {
    fn name(&self) -> &str {
        &self.name
    }
    fn on_event(&self, event: &Event) {
        (self.f)(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TaskNames;
    use std::sync::atomic::AtomicUsize;

    fn tick(t: u64) -> Event {
        Event::PeriodicTick { t_ns: t }
    }

    #[test]
    fn delivers_to_all_listeners() {
        let d = Dispatcher::new();
        let a = Arc::new(AtomicUsize::new(0));
        let b = Arc::new(AtomicUsize::new(0));
        let (ac, bc) = (a.clone(), b.clone());
        d.register(Arc::new(FnListener::new("a", move |_| {
            ac.fetch_add(1, Ordering::Relaxed);
        })));
        d.register(Arc::new(FnListener::new("b", move |_| {
            bc.fetch_add(1, Ordering::Relaxed);
        })));
        d.dispatch(&tick(1));
        d.dispatch(&tick(2));
        assert_eq!(a.load(Ordering::Relaxed), 2);
        assert_eq!(b.load(Ordering::Relaxed), 2);
        assert_eq!(d.events_dispatched(), 2);
        assert_eq!(d.deliveries(), 4);
    }

    #[test]
    fn deregister_stops_delivery() {
        let d = Dispatcher::new();
        let n = Arc::new(AtomicUsize::new(0));
        let nc = n.clone();
        let h = d.register(Arc::new(FnListener::new("x", move |_| {
            nc.fetch_add(1, Ordering::Relaxed);
        })));
        d.dispatch(&tick(1));
        assert!(d.deregister(h));
        d.dispatch(&tick(2));
        assert_eq!(n.load(Ordering::Relaxed), 1);
        assert!(!d.deregister(h), "double deregister must return false");
    }

    #[test]
    fn disabled_dispatch_is_a_noop() {
        let d = Dispatcher::new();
        let n = Arc::new(AtomicUsize::new(0));
        let nc = n.clone();
        d.register(Arc::new(FnListener::new("x", move |_| {
            nc.fetch_add(1, Ordering::Relaxed);
        })));
        d.set_enabled(false);
        d.dispatch(&tick(1));
        assert_eq!(n.load(Ordering::Relaxed), 0);
        assert_eq!(d.events_dispatched(), 0, "disabled events are not counted");
        d.set_enabled(true);
        d.dispatch(&tick(2));
        assert_eq!(n.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn empty_dispatcher_counts_events_but_no_deliveries() {
        let d = Dispatcher::new();
        d.dispatch(&tick(1));
        assert_eq!(d.events_dispatched(), 1);
        assert_eq!(d.deliveries(), 0);
    }

    #[test]
    fn adding_a_listener_no_longer_inflates_event_count() {
        // The pre-split `dispatched` counter counted events × listeners;
        // `events_dispatched` must stay listener-count-independent.
        let d = Dispatcher::new();
        d.register(Arc::new(FnListener::new("a", |_| {})));
        d.dispatch(&tick(1));
        d.register(Arc::new(FnListener::new("b", |_| {})));
        d.dispatch(&tick(2));
        assert_eq!(d.events_dispatched(), 2);
        assert_eq!(d.deliveries(), 3, "1×1 listener + 1×2 listeners");
    }

    #[test]
    fn listener_can_be_registered_during_concurrent_dispatch() {
        let d = Arc::new(Dispatcher::new());
        let stop = Arc::new(AtomicBool::new(false));
        let emitter = {
            let d = d.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut t = 0;
                while !stop.load(Ordering::Relaxed) {
                    d.dispatch(&tick(t));
                    t += 1;
                }
            })
        };
        for i in 0..50 {
            let h = d.register(Arc::new(FnListener::new(format!("l{i}"), |_| {})));
            if i % 2 == 0 {
                d.deregister(h);
            }
        }
        stop.store(true, Ordering::Relaxed);
        emitter.join().unwrap();
        assert_eq!(d.listener_count(), 25);
    }

    #[test]
    fn events_carry_payloads_through() {
        let names = TaskNames::new();
        let id = names.intern("t");
        let d = Dispatcher::new();
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sc = seen.clone();
        d.register(Arc::new(FnListener::new("rec", move |e| {
            sc.lock().push(*e)
        })));
        let e = Event::TaskEnd {
            task: id,
            worker: 3,
            t_ns: 77,
            elapsed_ns: 11,
        };
        d.dispatch(&e);
        assert_eq!(seen.lock().as_slice(), &[e]);
    }

    #[test]
    fn reentrant_dispatch_falls_back_and_delivers() {
        // A listener that dispatches to a second dispatcher from inside
        // the first's delivery: the inner dispatch must still deliver
        // (via the uncached slow path) and count correctly.
        let inner = Arc::new(Dispatcher::new());
        let hits = Arc::new(AtomicUsize::new(0));
        let hc = hits.clone();
        inner.register(Arc::new(FnListener::new("inner", move |_| {
            hc.fetch_add(1, Ordering::Relaxed);
        })));
        let outer = Dispatcher::new();
        let ic = inner.clone();
        outer.register(Arc::new(FnListener::new("relay", move |e| {
            ic.dispatch(e);
        })));
        outer.dispatch(&tick(1));
        outer.dispatch(&tick(2));
        assert_eq!(hits.load(Ordering::Relaxed), 2);
        assert_eq!(inner.events_dispatched(), 2);
        assert_eq!(inner.deliveries(), 2);
        assert_eq!(outer.deliveries(), 2);
    }

    #[test]
    fn listener_registering_listener_does_not_deadlock() {
        let d = Arc::new(Dispatcher::new());
        let dc = d.clone();
        let registered = Arc::new(AtomicBool::new(false));
        let rc = registered.clone();
        d.register(Arc::new(FnListener::new("self-mod", move |_| {
            if !rc.swap(true, Ordering::Relaxed) {
                dc.register(Arc::new(FnListener::new("late", |_| {})));
            }
        })));
        d.dispatch(&tick(1));
        // The registration from inside dispatch is visible afterwards.
        assert_eq!(d.listener_count(), 2);
        d.dispatch(&tick(2));
        assert_eq!(d.deliveries(), 1 + 2);
    }

    #[test]
    fn many_dispatchers_on_one_thread_stay_correct_past_cache_capacity() {
        // More live dispatchers than SNAPSHOT_CACHE_MAX: eviction must
        // only cost a refresh, never misdeliver or miscount.
        let hits = Arc::new(AtomicUsize::new(0));
        let ds: Vec<Dispatcher> = (0..SNAPSHOT_CACHE_MAX + 4)
            .map(|_| {
                let d = Dispatcher::new();
                let hc = hits.clone();
                d.register(Arc::new(FnListener::new("l", move |_| {
                    hc.fetch_add(1, Ordering::Relaxed);
                })));
                d
            })
            .collect();
        for round in 0..3u64 {
            for d in &ds {
                d.dispatch(&tick(round));
            }
        }
        assert_eq!(hits.load(Ordering::Relaxed), 3 * ds.len());
        for d in &ds {
            assert_eq!(d.events_dispatched(), 3);
            assert_eq!(d.deliveries(), 3);
        }
    }
}
