//! Listener trait and fan-out dispatcher.
//!
//! The dispatcher is the single point every event flows through, so its
//! hot path matters: dispatch reads an `Arc` snapshot of the listener list
//! under a briefly-held lock and then runs the listeners with no lock held.
//! Registration swaps in a new snapshot (copy-on-write), so registering or
//! removing listeners never blocks in-flight dispatches, and a dispatch
//! that races a removal simply delivers to the old set once more — benign
//! for observation.

use crate::event::Event;
use parking_lot::RwLock;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A consumer of observation events.
///
/// Listeners must be fast and must not block: they run inline on the
/// emitting thread (a runtime worker, the sampler, or the policy ticker).
pub trait Listener: Send + Sync {
    /// Short name for diagnostics.
    fn name(&self) -> &str;
    /// Handles one event.
    fn on_event(&self, event: &Event);
}

/// Handle returned by [`Dispatcher::register`]; pass to
/// [`Dispatcher::deregister`] to remove the listener.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ListenerHandle(u64);

/// A registered listener with its registration id.
type ListenerEntry = (u64, Arc<dyn Listener>);

/// Copy-on-write fan-out of events to registered listeners.
pub struct Dispatcher {
    listeners: RwLock<Arc<Vec<ListenerEntry>>>,
    next_id: AtomicU64,
    enabled: AtomicBool,
    dispatched: AtomicU64,
}

impl Default for Dispatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Dispatcher {
    /// Creates a dispatcher with no listeners, enabled.
    pub fn new() -> Self {
        Self {
            listeners: RwLock::new(Arc::new(Vec::new())),
            next_id: AtomicU64::new(1),
            enabled: AtomicBool::new(true),
            dispatched: AtomicU64::new(0),
        }
    }

    /// Registers a listener; events are delivered from this call onward.
    pub fn register(&self, listener: Arc<dyn Listener>) -> ListenerHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.listeners.write();
        let mut next = (**guard).clone();
        next.push((id, listener));
        *guard = Arc::new(next);
        ListenerHandle(id)
    }

    /// Removes a previously registered listener. Returns true if found.
    pub fn deregister(&self, handle: ListenerHandle) -> bool {
        let mut guard = self.listeners.write();
        let before = guard.len();
        let next: Vec<ListenerEntry> = guard
            .iter()
            .filter(|(id, _)| *id != handle.0)
            .cloned()
            .collect();
        let removed = next.len() != before;
        *guard = Arc::new(next);
        removed
    }

    /// Globally enables or disables dispatch (the "observation off" switch;
    /// the overhead experiment measures both sides of it).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Release);
    }

    /// Whether dispatch is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Number of registered listeners.
    pub fn listener_count(&self) -> usize {
        self.listeners.read().len()
    }

    /// Total events delivered (multiplied across listeners).
    pub fn dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    /// Delivers `event` to every registered listener.
    #[inline]
    pub fn dispatch(&self, event: &Event) {
        if !self.enabled.load(Ordering::Acquire) {
            return;
        }
        let snapshot = { self.listeners.read().clone() };
        if snapshot.is_empty() {
            return;
        }
        for (_, l) in snapshot.iter() {
            l.on_event(event);
        }
        self.dispatched
            .fetch_add(snapshot.len() as u64, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Dispatcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dispatcher")
            .field("listeners", &self.listener_count())
            .field("enabled", &self.is_enabled())
            .field("dispatched", &self.dispatched())
            .finish()
    }
}

/// A listener that forwards events to a closure — handy in tests and for
/// one-off hooks.
pub struct FnListener<F: Fn(&Event) + Send + Sync> {
    name: String,
    f: F,
}

impl<F: Fn(&Event) + Send + Sync> FnListener<F> {
    /// Wraps `f` as a listener called `name`.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Self {
            name: name.into(),
            f,
        }
    }
}

impl<F: Fn(&Event) + Send + Sync> Listener for FnListener<F> {
    fn name(&self) -> &str {
        &self.name
    }
    fn on_event(&self, event: &Event) {
        (self.f)(event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TaskNames;
    use std::sync::atomic::AtomicUsize;

    fn tick(t: u64) -> Event {
        Event::PeriodicTick { t_ns: t }
    }

    #[test]
    fn delivers_to_all_listeners() {
        let d = Dispatcher::new();
        let a = Arc::new(AtomicUsize::new(0));
        let b = Arc::new(AtomicUsize::new(0));
        let (ac, bc) = (a.clone(), b.clone());
        d.register(Arc::new(FnListener::new("a", move |_| {
            ac.fetch_add(1, Ordering::Relaxed);
        })));
        d.register(Arc::new(FnListener::new("b", move |_| {
            bc.fetch_add(1, Ordering::Relaxed);
        })));
        d.dispatch(&tick(1));
        d.dispatch(&tick(2));
        assert_eq!(a.load(Ordering::Relaxed), 2);
        assert_eq!(b.load(Ordering::Relaxed), 2);
        assert_eq!(d.dispatched(), 4);
    }

    #[test]
    fn deregister_stops_delivery() {
        let d = Dispatcher::new();
        let n = Arc::new(AtomicUsize::new(0));
        let nc = n.clone();
        let h = d.register(Arc::new(FnListener::new("x", move |_| {
            nc.fetch_add(1, Ordering::Relaxed);
        })));
        d.dispatch(&tick(1));
        assert!(d.deregister(h));
        d.dispatch(&tick(2));
        assert_eq!(n.load(Ordering::Relaxed), 1);
        assert!(!d.deregister(h), "double deregister must return false");
    }

    #[test]
    fn disabled_dispatch_is_a_noop() {
        let d = Dispatcher::new();
        let n = Arc::new(AtomicUsize::new(0));
        let nc = n.clone();
        d.register(Arc::new(FnListener::new("x", move |_| {
            nc.fetch_add(1, Ordering::Relaxed);
        })));
        d.set_enabled(false);
        d.dispatch(&tick(1));
        assert_eq!(n.load(Ordering::Relaxed), 0);
        d.set_enabled(true);
        d.dispatch(&tick(2));
        assert_eq!(n.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn empty_dispatcher_counts_nothing() {
        let d = Dispatcher::new();
        d.dispatch(&tick(1));
        assert_eq!(d.dispatched(), 0);
    }

    #[test]
    fn listener_can_be_registered_during_concurrent_dispatch() {
        let d = Arc::new(Dispatcher::new());
        let stop = Arc::new(AtomicBool::new(false));
        let emitter = {
            let d = d.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut t = 0;
                while !stop.load(Ordering::Relaxed) {
                    d.dispatch(&tick(t));
                    t += 1;
                }
            })
        };
        for i in 0..50 {
            let h = d.register(Arc::new(FnListener::new(format!("l{i}"), |_| {})));
            if i % 2 == 0 {
                d.deregister(h);
            }
        }
        stop.store(true, Ordering::Relaxed);
        emitter.join().unwrap();
        assert_eq!(d.listener_count(), 25);
    }

    #[test]
    fn events_carry_payloads_through() {
        let names = TaskNames::new();
        let id = names.intern("t");
        let d = Dispatcher::new();
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sc = seen.clone();
        d.register(Arc::new(FnListener::new("rec", move |e| {
            sc.lock().push(*e)
        })));
        let e = Event::TaskEnd {
            task: id,
            worker: 3,
            t_ns: 77,
            elapsed_ns: 11,
        };
        d.dispatch(&e);
        assert_eq!(seen.lock().as_slice(), &[e]);
    }
}
