//! The `LookingGlass` instance: wiring and the instrumentation facade.
//!
//! One instance owns a clock, the name table, the dispatcher, the standard
//! listeners (profiler, concurrency tracker, optional tracer), the knob
//! registry, and the policy engine. Instances are explicit and `Arc`-shared
//! — there is no global singleton, so tests and simulations can run many
//! isolated instances in one process.
//!
//! Application code instruments itself with the RAII [`Timer`]:
//!
//! ```
//! use lg_core::LookingGlass;
//! let lg = LookingGlass::builder().build();
//! {
//!     let _t = lg.timer("solve");
//!     // ... work ...
//! } // TaskEnd emitted here
//! assert_eq!(lg.profiles().get("solve").unwrap().count, 1);
//! ```

use crate::clock::{Clock, WallClock};
use crate::concurrency::ConcurrencyListener;
use crate::event::{Event, TaskId, TaskNames};
use crate::knob::KnobRegistry;
use crate::listener::{Dispatcher, Listener, ListenerHandle};
use crate::policy::PolicyEngine;
use crate::profile::ProfileListener;
use crate::samples::SampleHistoryListener;
use crate::snapshot::{Introspection, IntrospectionSnapshot};
use crate::trace::TraceListener;
use std::sync::Arc;

/// Builder for [`LookingGlass`].
pub struct LookingGlassBuilder {
    clock: Option<Arc<dyn Clock>>,
    trace_capacity: Option<usize>,
    concurrency_history: usize,
    sample_history: Option<usize>,
    with_policy_engine: bool,
}

impl Default for LookingGlassBuilder {
    fn default() -> Self {
        Self {
            clock: None,
            trace_capacity: None,
            concurrency_history: 1024,
            sample_history: None,
            with_policy_engine: true,
        }
    }
}

impl LookingGlassBuilder {
    /// Uses a custom clock (e.g. a [`crate::clock::VirtualClock`]).
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Enables event tracing with the given ring capacity.
    pub fn trace(mut self, capacity: usize) -> Self {
        self.trace_capacity = Some(capacity);
        self
    }

    /// Sets the concurrency history length (default 1024 points).
    pub fn concurrency_history(mut self, len: usize) -> Self {
        self.concurrency_history = len;
        self
    }

    /// Enables the sample-history listener with the given per-metric ring
    /// capacity, so window-mean metrics can be registered on the
    /// introspection facade.
    pub fn sample_history(mut self, capacity: usize) -> Self {
        self.sample_history = Some(capacity);
        self
    }

    /// Disables the policy engine listener (observation-only instances).
    pub fn without_policy_engine(mut self) -> Self {
        self.with_policy_engine = false;
        self
    }

    /// Builds the instance.
    pub fn build(self) -> Arc<LookingGlass> {
        let clock: Arc<dyn Clock> = self.clock.unwrap_or_else(|| Arc::new(WallClock::new()));
        let names = TaskNames::new();
        let dispatcher = Arc::new(Dispatcher::new());
        let profiles = Arc::new(ProfileListener::new(names.clone()));
        dispatcher.register(profiles.clone());
        let concurrency = Arc::new(ConcurrencyListener::new(self.concurrency_history));
        dispatcher.register(concurrency.clone());
        let trace = self.trace_capacity.map(|cap| {
            let t = Arc::new(TraceListener::new(cap));
            dispatcher.register(t.clone());
            t
        });
        let samples = self.sample_history.map(|cap| {
            let s = Arc::new(SampleHistoryListener::new(names.clone(), cap));
            dispatcher.register(s.clone());
            s
        });
        let knobs = Arc::new(KnobRegistry::new());
        knobs.attach_clock(clock.clone());
        let introspection = Arc::new(Introspection::new(profiles.clone(), concurrency.clone()));
        let policy_engine = PolicyEngine::new(knobs.clone());
        policy_engine.attach_introspection(introspection.clone());
        // Adaptation latency (trigger → journaled knob write) rides along
        // in every snapshot. Stamped with the engine's record counter, so
        // the gauge is only re-read after rounds that actually actuated
        // (NaN → None until the first one).
        let latency_engine = policy_engine.clone();
        introspection.register_gauge_stamped(
            "policy.adaptation_latency_ns",
            policy_engine.latency_stamp(),
            move || {
                latency_engine
                    .adaptation_latency_last_ns()
                    .map_or(f64::NAN, |ns| ns as f64)
            },
        );
        if self.with_policy_engine {
            dispatcher.register(policy_engine.clone());
        }
        Arc::new(LookingGlass {
            clock,
            names,
            dispatcher,
            profiles,
            concurrency,
            trace,
            samples,
            introspection,
            knobs,
            policy_engine,
        })
    }
}

/// A fully wired observation/adaptation instance.
pub struct LookingGlass {
    clock: Arc<dyn Clock>,
    names: TaskNames,
    dispatcher: Arc<Dispatcher>,
    profiles: Arc<ProfileListener>,
    concurrency: Arc<ConcurrencyListener>,
    trace: Option<Arc<TraceListener>>,
    samples: Option<Arc<SampleHistoryListener>>,
    introspection: Arc<Introspection>,
    knobs: Arc<KnobRegistry>,
    policy_engine: Arc<PolicyEngine>,
}

impl LookingGlass {
    /// Starts building an instance.
    pub fn builder() -> LookingGlassBuilder {
        LookingGlassBuilder::default()
    }

    /// The instance clock.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Current time on the instance clock.
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// The shared name table.
    pub fn names(&self) -> &TaskNames {
        &self.names
    }

    /// The event dispatcher (register custom listeners here).
    pub fn dispatcher(&self) -> &Arc<Dispatcher> {
        &self.dispatcher
    }

    /// The task profiler.
    pub fn profiles(&self) -> &Arc<ProfileListener> {
        &self.profiles
    }

    /// The concurrency tracker.
    pub fn concurrency(&self) -> &Arc<ConcurrencyListener> {
        &self.concurrency
    }

    /// The event tracer, if enabled at build time.
    pub fn trace(&self) -> Option<&Arc<TraceListener>> {
        self.trace.as_ref()
    }

    /// The sample-history listener, if enabled at build time.
    pub fn samples(&self) -> Option<&Arc<SampleHistoryListener>> {
        self.samples.as_ref()
    }

    /// The introspection facade (register gauges and window means here;
    /// the policy engine measures through it).
    pub fn introspection(&self) -> &Arc<Introspection> {
        &self.introspection
    }

    /// Captures a coherent point-in-time snapshot at the instance clock's
    /// current time.
    pub fn snapshot(&self) -> IntrospectionSnapshot {
        self.introspection.capture(self.now_ns())
    }

    /// The knob registry.
    pub fn knobs(&self) -> &Arc<KnobRegistry> {
        &self.knobs
    }

    /// The policy engine.
    pub fn policy_engine(&self) -> &Arc<PolicyEngine> {
        &self.policy_engine
    }

    /// Registers an additional listener.
    pub fn add_listener(&self, l: Arc<dyn Listener>) -> ListenerHandle {
        self.dispatcher.register(l)
    }

    /// Emits an event with no further processing — the low-level hook used
    /// by the runtime and simulator.
    #[inline]
    pub fn emit(&self, event: &Event) {
        self.dispatcher.dispatch(event);
    }

    /// Interns a task/metric/phase name.
    pub fn intern(&self, name: &str) -> TaskId {
        self.names.intern(name)
    }

    /// Starts a named timer on the calling thread; the returned guard
    /// emits `TaskBegin` now and `TaskEnd` when dropped. `worker` is 0 —
    /// use [`LookingGlass::timer_on`] from runtime workers.
    pub fn timer(self: &Arc<Self>, name: &str) -> Timer {
        self.timer_on(name, 0)
    }

    /// Starts a named timer attributed to a specific worker index.
    pub fn timer_on(self: &Arc<Self>, name: &str, worker: usize) -> Timer {
        let task = self.intern(name);
        let t0 = self.now_ns();
        self.emit(&Event::TaskBegin {
            task,
            worker,
            t_ns: t0,
        });
        Timer {
            lg: self.clone(),
            task,
            worker,
            t0,
            stopped: false,
        }
    }

    /// Emits a sampled metric value.
    pub fn sample(&self, metric: &str, value: f64) {
        let metric = self.intern(metric);
        self.emit(&Event::SampleValue {
            metric,
            t_ns: self.now_ns(),
            value,
        });
    }

    /// Emits a phase begin marker.
    pub fn phase_begin(&self, name: &str) {
        let phase = self.intern(name);
        self.emit(&Event::PhaseBegin {
            phase,
            t_ns: self.now_ns(),
        });
    }

    /// Emits a phase end marker.
    pub fn phase_end(&self, name: &str) {
        let phase = self.intern(name);
        self.emit(&Event::PhaseEnd {
            phase,
            t_ns: self.now_ns(),
        });
    }
}

impl std::fmt::Debug for LookingGlass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LookingGlass")
            .field("names", &self.names.len())
            .field("dispatcher", &self.dispatcher)
            .finish()
    }
}

/// RAII task timer; emits `TaskEnd` on drop (or [`Timer::stop`]).
pub struct Timer {
    lg: Arc<LookingGlass>,
    task: TaskId,
    worker: usize,
    t0: u64,
    stopped: bool,
}

impl Timer {
    /// Stops the timer early, returning the elapsed nanoseconds.
    pub fn stop(mut self) -> u64 {
        self.finish()
    }

    /// Emits a `TaskYield` for this task (cooperative suspension point).
    pub fn yield_point(&self) {
        self.lg.emit(&Event::TaskYield {
            task: self.task,
            worker: self.worker,
            t_ns: self.lg.now_ns(),
        });
        self.lg.emit(&Event::TaskResume {
            task: self.task,
            worker: self.worker,
            t_ns: self.lg.now_ns(),
        });
    }

    fn finish(&mut self) -> u64 {
        if self.stopped {
            return 0;
        }
        self.stopped = true;
        let t1 = self.lg.now_ns();
        let elapsed = t1.saturating_sub(self.t0);
        self.lg.emit(&Event::TaskEnd {
            task: self.task,
            worker: self.worker,
            t_ns: t1,
            elapsed_ns: elapsed,
        });
        elapsed
    }
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::VirtualClock;

    #[test]
    fn timer_produces_profile() {
        let clock = Arc::new(VirtualClock::new());
        let lg = LookingGlass::builder().clock(clock.clone()).build();
        {
            let _t = lg.timer("work");
            clock.advance_by(500);
        }
        let p = lg.profiles().get("work").unwrap();
        assert_eq!(p.count, 1);
        assert_eq!(p.mean_ns, 500.0);
        assert_eq!(p.active, 0);
    }

    #[test]
    fn stop_returns_elapsed() {
        let clock = Arc::new(VirtualClock::new());
        let lg = LookingGlass::builder().clock(clock.clone()).build();
        let t = lg.timer("w");
        clock.advance_by(123);
        assert_eq!(t.stop(), 123);
        assert_eq!(lg.profiles().get("w").unwrap().count, 1);
    }

    #[test]
    fn nested_timers_profile_independently() {
        let clock = Arc::new(VirtualClock::new());
        let lg = LookingGlass::builder().clock(clock.clone()).build();
        {
            let _outer = lg.timer("outer");
            clock.advance_by(10);
            {
                let _inner = lg.timer("inner");
                clock.advance_by(5);
            }
            clock.advance_by(10);
        }
        assert_eq!(lg.profiles().get("outer").unwrap().mean_ns, 25.0);
        assert_eq!(lg.profiles().get("inner").unwrap().mean_ns, 5.0);
    }

    #[test]
    fn concurrency_tracks_timers() {
        let lg = LookingGlass::builder().build();
        let t1 = lg.timer("a");
        let _t2 = lg.timer("b");
        assert_eq!(lg.concurrency().active_tasks(), 2);
        drop(t1);
        assert_eq!(lg.concurrency().active_tasks(), 1);
    }

    #[test]
    fn trace_captures_when_enabled() {
        let lg = LookingGlass::builder().trace(16).build();
        {
            let _t = lg.timer("x");
        }
        let recs = lg.trace().unwrap().records();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].event.kind_str(), "task_begin");
        assert_eq!(recs[1].event.kind_str(), "task_end");
    }

    #[test]
    fn trace_absent_by_default() {
        let lg = LookingGlass::builder().build();
        assert!(lg.trace().is_none());
    }

    #[test]
    fn sample_reaches_custom_listener() {
        use crate::listener::FnListener;
        let lg = LookingGlass::builder().build();
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let sc = seen.clone();
        lg.add_listener(Arc::new(FnListener::new("rec", move |e| {
            if let Event::SampleValue { value, .. } = e {
                sc.lock().push(*value);
            }
        })));
        lg.sample("power", 42.5);
        assert_eq!(seen.lock().as_slice(), &[42.5]);
    }

    #[test]
    fn phases_flow_to_policy_engine() {
        use crate::knob::{AtomicKnob, KnobSpec};
        use crate::policy::{FnPolicy, PolicyDecision, Trigger};
        let lg = LookingGlass::builder().build();
        lg.knobs()
            .register(AtomicKnob::new(KnobSpec::new("k", 0, 10), 0));
        lg.policy_engine().register_triggered(
            FnPolicy::new("phase-react", |_, trigger, _snapshot| {
                if matches!(trigger, Trigger::Event(Event::PhaseBegin { .. })) {
                    PolicyDecision::set("k", 7)
                } else {
                    PolicyDecision::noop()
                }
            }),
            Box::new(|e| matches!(e, Event::PhaseBegin { .. })),
        );
        lg.phase_begin("compute");
        assert_eq!(lg.knobs().value("k"), Some(7));
        lg.phase_end("compute");
    }

    #[test]
    fn yield_point_counted() {
        let lg = LookingGlass::builder().build();
        {
            let t = lg.timer("y");
            t.yield_point();
        }
        assert_eq!(lg.profiles().get("y").unwrap().yields, 1);
    }

    #[test]
    fn snapshot_is_a_coherent_point_in_time_view() {
        let clock = Arc::new(VirtualClock::new());
        let lg = LookingGlass::builder().clock(clock.clone()).build();
        {
            let _t = lg.timer("work");
            clock.advance_by(500);
        }
        let gauge = lg.introspection().register_gauge("answer", || 42.0);
        let snap = lg.snapshot();
        assert_eq!(snap.t_ns, clock.now_ns());
        assert_eq!(snap.total_completed, 1);
        assert_eq!(snap.value(gauge), Some(42.0));
        assert_eq!(snap.profile("work").unwrap().count, 1);
    }

    #[test]
    fn sample_history_feeds_window_mean_metrics() {
        let clock = Arc::new(VirtualClock::new());
        let lg = LookingGlass::builder()
            .clock(clock.clone())
            .sample_history(64)
            .build();
        let history = lg.samples().expect("enabled at build time").clone();
        let power =
            lg.introspection()
                .register_window_mean("power.mean_w", history, "power", 1_000_000);
        lg.sample("power", 10.0);
        clock.advance_by(100);
        lg.sample("power", 30.0);
        let snap = lg.snapshot();
        assert_eq!(snap.value(power), Some(20.0));
    }

    #[test]
    fn isolated_instances_do_not_interfere() {
        let a = LookingGlass::builder().build();
        let b = LookingGlass::builder().build();
        {
            let _t = a.timer("only-a");
        }
        assert!(a.profiles().get("only-a").is_some());
        assert!(b.profiles().get("only-a").is_none());
    }
}
