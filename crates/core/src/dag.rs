//! Online critical-path introspection for DAG-structured work.
//!
//! [`DagStats`] is the write side: a runtime executing a dependency graph
//! calls [`DagStats::on_release`] when a node becomes ready (all
//! dependencies done, task enqueued) and [`DagStats::on_complete`] when
//! its body finishes. Both are striped-atomic bumps — no locks, no
//! allocation — so they sit on the scheduler's release hot path at the
//! same cost class as the existing `rt.*` counters.
//!
//! From those two hooks the read side derives three gauges, folded into
//! [`IntrospectionSnapshot`](crate::IntrospectionSnapshot) through
//! [`DagStats::register_on`]:
//!
//! * **`dag.critical_path_len`** — remaining critical-path length in
//!   nanoseconds (cost-model units). Live nodes are bucketed by the log2
//!   of their *height* (downstream cost including the node itself, the
//!   classic upward rank of list scheduling); the topmost non-empty
//!   bucket bounds the longest chain still outstanding. This is exact to
//!   bucket resolution: a node whose dependencies are unmet always has a
//!   live ancestor of strictly greater height, so the maximum over
//!   *released-but-incomplete* nodes equals the maximum over all
//!   incomplete nodes.
//! * **`dag.ready_width`** — released-but-incomplete node count: how much
//!   parallelism the DAG is currently offering the pool.
//! * **`dag.slack_p50`** — median slack (critical-path length minus the
//!   node's own height) over released nodes, from a striped histogram.
//!   Low slack ⇒ most ready work *is* the critical path ⇒ priority
//!   placement pays; high slack ⇒ plenty of off-path work to soak
//!   workers.
//!
//! The gauges are registered **stamped**: an idle DAG (no release or
//! completion since the last capture) contributes a cached value and no
//! fold, matching the incremental-introspection contract of PR 7.
//!
//! [`CriticalPathPolicy`] closes the loop: it reads those gauges from the
//! round snapshot and steers the runtime's `dag.critical_bias` knob (and
//! optionally a chunk-grain knob) through the journaled knob plane.

use crate::arbiter::{DemandClass, DemandProfile};
use crate::policy::{Policy, PolicyDecision, Trigger};
use crate::snapshot::{Introspection, IntrospectionSnapshot};
use lg_metrics::{StripedCounter, StripedGauge};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of log2 height buckets. Bucket `b` covers heights in
/// `[2^(b-1), 2^b)` ns; 48 buckets span sub-ns grains to ~3 days.
const BUCKETS: usize = 48;

/// Striped release/completion statistics for one executing DAG (or a
/// family of DAGs sharing a scheduler — the gauges simply aggregate).
///
/// Heights are in nanoseconds of estimated cost (any monotone cost-model
/// unit works; the generator in `lg-workloads::dag` uses
/// ops/flops + bytes/bandwidth).
pub struct DagStats {
    /// Released-but-incomplete node count.
    ready: StripedGauge,
    /// Live-node count per log2(height) bucket.
    live: Vec<StripedGauge>,
    /// Released-node count per log2(slack) bucket (cumulative histogram
    /// source for the p50 gauge).
    slack: Vec<StripedCounter>,
    /// Write stamp for the stamped gauges: bumped on every release and
    /// completion, so idle captures skip the fold.
    stamp: Arc<AtomicU64>,
}

impl DagStats {
    /// Creates an empty stats block.
    pub fn new() -> Arc<Self> {
        Arc::new(Self {
            ready: StripedGauge::new(),
            live: (0..BUCKETS).map(|_| StripedGauge::new()).collect(),
            slack: (0..BUCKETS).map(|_| StripedCounter::new()).collect(),
            stamp: Arc::new(AtomicU64::new(0)),
        })
    }

    fn bucket(height_ns: u64) -> usize {
        ((u64::BITS - height_ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }

    /// Upper edge (ns) of a bucket, used as the reported estimate.
    fn bucket_edge(b: usize) -> f64 {
        (1u64 << b) as f64
    }

    /// Records a node whose last dependency just completed (it is now
    /// queued or running). `height_ns` is the node's downstream cost
    /// including itself.
    pub fn on_release(&self, height_ns: u64) {
        self.ready.add(1);
        let own = Self::bucket(height_ns);
        self.live[own].add(1);
        // Slack at bucket resolution: both sides use bucket edges, so a
        // node in the topmost live bucket records zero slack rather than
        // the up-to-2× phantom the edge estimate would otherwise leave.
        let cp = self.critical_path_ns();
        let slack = (cp - Self::bucket_edge(own)).max(0.0) as u64;
        self.slack[Self::bucket(slack)].inc();
        self.stamp.fetch_add(1, Ordering::Release);
    }

    /// Records a released node whose body finished (or was abandoned —
    /// the pair must balance [`DagStats::on_release`]).
    pub fn on_complete(&self, height_ns: u64) {
        self.ready.add(-1);
        self.live[Self::bucket(height_ns)].add(-1);
        self.stamp.fetch_add(1, Ordering::Release);
    }

    /// Remaining critical-path estimate in ns: the upper edge of the
    /// highest non-empty live bucket, 0 when no node is live.
    pub fn critical_path_ns(&self) -> f64 {
        for b in (0..BUCKETS).rev() {
            if self.live[b].sum() > 0 {
                return Self::bucket_edge(b);
            }
        }
        0.0
    }

    /// Released-but-incomplete node count.
    pub fn ready_width(&self) -> f64 {
        self.ready.sum().max(0) as f64
    }

    /// Median slack (ns) over all releases so far, 0 before any release.
    pub fn slack_p50_ns(&self) -> f64 {
        let counts: Vec<u64> = self.slack.iter().map(|c| c.sum()).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let mut seen = 0u64;
        for (b, c) in counts.iter().enumerate() {
            seen += c;
            if seen * 2 >= total {
                return Self::bucket_edge(b);
            }
        }
        Self::bucket_edge(BUCKETS - 1)
    }

    /// The DAG plane's native [`DemandProfile`]: useful width is the
    /// ready frontier (threads beyond it have zero marginal utility —
    /// they idle until a dependency resolves), so during a wide phase
    /// the profile claims threads aggressively and as the critical-path
    /// tail sets in (`ready_width` collapsing toward the chain) it
    /// releases them without any explicit hand-back protocol.
    pub fn demand_profile(&self, alloc: i64) -> DemandProfile {
        DemandProfile::saturating(DemandClass::Dag, 0.0, self.ready_width(), alloc)
    }

    /// Registers the three `dag.*` gauges on an [`Introspection`] facade.
    /// All three share one write stamp, so captures while the DAG is idle
    /// reuse the previous values without folding the stripes.
    pub fn register_on(self: &Arc<Self>, intro: &Introspection) {
        let s = self.clone();
        intro.register_gauge_stamped("dag.critical_path_len", self.stamp.clone(), move || {
            s.critical_path_ns()
        });
        let s = self.clone();
        intro.register_gauge_stamped("dag.ready_width", self.stamp.clone(), move || {
            s.ready_width()
        });
        let s = self.clone();
        intro.register_gauge_stamped("dag.slack_p50", self.stamp.clone(), move || {
            s.slack_p50_ns()
        });
    }
}

/// Steers DAG scheduling from the `dag.*` gauges.
///
/// Control law, evaluated per round against the shared snapshot:
///
/// * **Priority bias** (`dag.critical_bias`, 0/1): enable while ready
///   width is scarce relative to the worker count (every placement
///   decision matters — the critical path must not wait behind off-path
///   work), disable when the DAG offers abundant width *and* median slack
///   is a large fraction of the remaining critical path (any order keeps
///   the workers busy, so skip the priority lane's displacement traffic).
/// * **Chunk grain** (optional): halve the grain when ready width can't
///   fill the workers (more, smaller tasks ⇒ more overlap), double it
///   when width exceeds `16×` workers (fewer, larger tasks ⇒ less
///   per-task overhead), clamped to the given bounds.
///
/// Decisions only carry a knob write when the value *changes*, so the
/// actuation journal records transitions, not steady-state re-asserts.
pub struct CriticalPathPolicy {
    name: String,
    bias_knob: crate::knob::KnobTarget,
    chunk_knob: Option<(crate::knob::KnobTarget, i64, i64)>,
    workers: i64,
    /// Live worker count, when the pool is governed at runtime (an
    /// arbiter rewriting the thread budget between rounds). Overrides
    /// the static `workers` baseline.
    workers_source: Option<Arc<dyn Fn() -> i64 + Send + Sync>>,
    last_bias: Option<i64>,
    chunk: Option<i64>,
}

impl CriticalPathPolicy {
    /// A policy steering `bias_knob` for a pool of `workers` threads.
    pub fn new(bias_knob: impl Into<crate::knob::KnobTarget>, workers: usize) -> Self {
        Self {
            name: "critical-path".to_string(),
            bias_knob: bias_knob.into(),
            chunk_knob: None,
            workers: workers.max(1) as i64,
            workers_source: None,
            last_bias: None,
            chunk: None,
        }
    }

    /// Reads the worker count live each evaluation instead of the
    /// construction-time constant — the control law then tracks a
    /// governor resizing the pool (e.g. an arbiter's thread-budget
    /// writes) without re-registering the policy.
    pub fn with_workers_source(mut self, source: Arc<dyn Fn() -> i64 + Send + Sync>) -> Self {
        self.workers_source = Some(source);
        self
    }

    /// Also steer a chunk-grain knob between `min` and `max`, starting
    /// from `initial`.
    pub fn with_chunk_knob(
        mut self,
        knob: impl Into<crate::knob::KnobTarget>,
        initial: i64,
        min: i64,
        max: i64,
    ) -> Self {
        self.chunk_knob = Some((knob.into(), min, max));
        self.chunk = Some(initial.clamp(min, max));
        self
    }
}

impl Policy for CriticalPathPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn evaluate(
        &mut self,
        _now_ns: u64,
        _trigger: Trigger<'_>,
        snapshot: &IntrospectionSnapshot,
    ) -> PolicyDecision {
        let (Some(ready), Some(cp)) = (
            snapshot.value_by_name("dag.ready_width"),
            snapshot.value_by_name("dag.critical_path_len"),
        ) else {
            return PolicyDecision::noop();
        };
        let slack = snapshot.value_by_name("dag.slack_p50").unwrap_or(0.0);
        let w = match &self.workers_source {
            Some(src) => src().max(1) as f64,
            None => self.workers as f64,
        };
        let want_bias = if ready < 4.0 * w {
            1
        } else if ready >= 8.0 * w && cp > 0.0 && slack >= 0.25 * cp {
            0
        } else {
            self.last_bias.unwrap_or(1)
        };
        let mut decision = PolicyDecision::noop();
        if self.last_bias != Some(want_bias) {
            self.last_bias = Some(want_bias);
            decision.sets.push((self.bias_knob.clone(), want_bias));
        }
        if let (Some((knob, min, max)), Some(chunk)) = (&self.chunk_knob, self.chunk) {
            let want_chunk = if ready < w {
                (chunk / 2).max(*min)
            } else if ready > 16.0 * w {
                (chunk * 2).min(*max)
            } else {
                chunk
            };
            if want_chunk != chunk {
                self.chunk = Some(want_chunk);
                decision.sets.push((knob.clone(), want_chunk));
            }
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrency::ConcurrencyListener;
    use crate::event::TaskNames;
    use crate::knob::{AtomicKnob, Knob, KnobRegistry, KnobSpec};
    use crate::policy::PolicyEngine;
    use crate::profile::ProfileListener;

    fn intro() -> Introspection {
        let names = TaskNames::new();
        let profiles = Arc::new(ProfileListener::new(names.clone()));
        let concurrency = Arc::new(ConcurrencyListener::new(64));
        Introspection::new(profiles, concurrency)
    }

    #[test]
    fn release_complete_pairs_balance() {
        let s = DagStats::new();
        assert_eq!(s.ready_width(), 0.0);
        assert_eq!(s.critical_path_ns(), 0.0);
        s.on_release(1_000);
        s.on_release(500);
        assert_eq!(s.ready_width(), 2.0);
        assert!(s.critical_path_ns() >= 1_000.0);
        s.on_complete(1_000);
        s.on_complete(500);
        assert_eq!(s.ready_width(), 0.0);
        assert_eq!(s.critical_path_ns(), 0.0);
    }

    #[test]
    fn critical_path_tracks_highest_live_bucket() {
        let s = DagStats::new();
        s.on_release(10);
        s.on_release(100_000);
        let high = s.critical_path_ns();
        assert!((100_000.0..400_000.0).contains(&high), "{high}");
        s.on_complete(100_000);
        let low = s.critical_path_ns();
        assert!((10.0..40.0).contains(&low), "{low}");
    }

    #[test]
    fn slack_p50_moves_with_mix() {
        let s = DagStats::new();
        // All releases at full height: slack ~ 0.
        for _ in 0..10 {
            s.on_release(1 << 20);
        }
        assert!(s.slack_p50_ns() <= 2.0, "{}", s.slack_p50_ns());
        for _ in 0..10 {
            s.on_complete(1 << 20);
        }
        // Majority far below the deepest live node: slack ~ cp.
        s.on_release(1 << 20);
        for _ in 0..40 {
            s.on_release(16);
        }
        assert!(s.slack_p50_ns() >= (1 << 19) as f64, "{}", s.slack_p50_ns());
    }

    #[test]
    fn gauges_fold_through_snapshots() {
        let intro = intro();
        let s = DagStats::new();
        s.register_on(&intro);
        s.on_release(2_000);
        s.on_release(50);
        let snap = intro.capture(1);
        assert_eq!(snap.value_by_name("dag.ready_width"), Some(2.0));
        assert!(snap.value_by_name("dag.critical_path_len").unwrap() >= 2_000.0);
        assert!(snap.value_by_name("dag.slack_p50").is_some());
    }

    #[test]
    fn policy_enables_bias_when_width_scarce() {
        let intro = intro();
        let s = DagStats::new();
        s.register_on(&intro);
        for _ in 0..3 {
            s.on_release(1_000);
        }
        let snap = intro.capture(1);
        let mut p = CriticalPathPolicy::new("dag.critical_bias", 8);
        let d = p.evaluate(1, Trigger::Periodic, &snap);
        assert_eq!(d.sets.len(), 1);
        assert_eq!(d.sets[0].1, 1);
        // Same state again: no new write (journal records transitions).
        let d2 = p.evaluate(2, Trigger::Periodic, &snap);
        assert!(d2.sets.is_empty());
    }

    #[test]
    fn policy_disables_bias_when_wide_and_slack_rich() {
        let intro = intro();
        let s = DagStats::new();
        s.register_on(&intro);
        // One deep node, many shallow ones: width 65 >> 8 workers, slack
        // near the full critical path.
        s.on_release(1 << 20);
        for _ in 0..64 {
            s.on_release(8);
        }
        let snap = intro.capture(1);
        let mut p = CriticalPathPolicy::new("dag.critical_bias", 2);
        let d = p.evaluate(1, Trigger::Periodic, &snap);
        assert_eq!(d.sets, vec![("dag.critical_bias".into(), 0)]);
    }

    #[test]
    fn policy_steers_chunk_grain_within_bounds() {
        let intro = intro();
        let s = DagStats::new();
        s.register_on(&intro);
        s.on_release(1_000); // width 1 < workers ⇒ halve
        let snap = intro.capture(1);
        let mut p =
            CriticalPathPolicy::new("dag.critical_bias", 4).with_chunk_knob("chunk", 64, 16, 256);
        let d = p.evaluate(1, Trigger::Periodic, &snap);
        assert!(d.sets.contains(&("chunk".into(), 32)));
    }

    #[test]
    fn demand_profile_claims_wide_and_releases_in_tail() {
        let s = DagStats::new();
        for _ in 0..24 {
            s.on_release(1_000);
        }
        // Wide frontier, allocation below it: full marginal utility.
        let wide = s.demand_profile(8);
        assert_eq!(wide.useful_width, Some(24.0));
        assert_eq!(wide.utility_up, 1.0);
        assert_eq!(wide.utility_down, 1.0);
        // Tail: the chain is all that remains — extra threads are dead
        // weight and the profile says so.
        for _ in 0..23 {
            s.on_complete(1_000);
        }
        let tail = s.demand_profile(8);
        assert_eq!(tail.useful_width, Some(1.0));
        assert_eq!(tail.utility_up, 0.0);
        assert_eq!(tail.utility_down, 0.0);
    }

    #[test]
    fn workers_source_overrides_static_count() {
        let intro = intro();
        let s = DagStats::new();
        s.register_on(&intro);
        // Width 65 with rich slack: bias turns off for a 2-worker pool,
        // stays on for a 32-worker pool reading the same snapshot.
        s.on_release(1 << 20);
        for _ in 0..64 {
            s.on_release(8);
        }
        let snap = intro.capture(1);
        let live = Arc::new(std::sync::atomic::AtomicI64::new(32));
        let l = live.clone();
        let mut p = CriticalPathPolicy::new("dag.critical_bias", 2)
            .with_workers_source(Arc::new(move || l.load(Ordering::Relaxed)));
        let d = p.evaluate(1, Trigger::Periodic, &snap);
        assert_eq!(d.sets, vec![("dag.critical_bias".into(), 1)]);
        // The governor shrinks the pool: the same width now reads as
        // abundant and the next evaluation flips the bias off.
        live.store(2, Ordering::Relaxed);
        let d2 = p.evaluate(2, Trigger::Periodic, &snap);
        assert_eq!(d2.sets, vec![("dag.critical_bias".into(), 0)]);
    }

    #[test]
    fn policy_noops_without_dag_gauges() {
        let intro = intro();
        let snap = intro.capture(1);
        let mut p = CriticalPathPolicy::new("dag.critical_bias", 4);
        assert_eq!(
            p.evaluate(1, Trigger::Periodic, &snap),
            PolicyDecision::noop()
        );
    }

    #[test]
    fn policy_writes_flow_through_engine_journal() {
        let knobs = Arc::new(KnobRegistry::new());
        let bias = AtomicKnob::new(KnobSpec::new("dag.critical_bias", 0, 1), 1);
        knobs.register(bias.clone());
        bias.set(0);
        let intro = Arc::new(intro());
        let s = DagStats::new();
        s.register_on(&intro);
        s.on_release(1_000);
        let engine = PolicyEngine::new(knobs.clone());
        engine.attach_introspection(intro);
        engine.register_periodic(
            Box::new(CriticalPathPolicy::new("dag.critical_bias", 8)),
            1,
            0,
        );
        engine.step(5);
        assert_eq!(knobs.value("dag.critical_bias"), Some(1));
        assert!(knobs.change_count() >= 1);
    }
}
