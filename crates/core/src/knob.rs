//! Knobs — the write side of adaptation.
//!
//! A [`Knob`] is a named integer actuator with declared bounds: the thread
//! cap, the chunk size, the coalescing window, the sampling period. The
//! subsystems that *own* the underlying state implement `Knob` (e.g. the
//! runtime's `ThreadCap`); policies and tuning sessions find them in the
//! [`KnobRegistry`] by name and drive them uniformly. Every set is
//! validated against the bounds and recorded, so adaptation activity is
//! auditable after the fact.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Declared bounds and identity of a knob.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KnobSpec {
    /// Unique name, e.g. `"thread_cap"`.
    pub name: String,
    /// Smallest settable value (inclusive).
    pub min: i64,
    /// Largest settable value (inclusive).
    pub max: i64,
}

impl KnobSpec {
    /// Creates a spec.
    ///
    /// # Panics
    /// Panics if `min > max`.
    pub fn new(name: impl Into<String>, min: i64, max: i64) -> Self {
        assert!(min <= max, "knob min must be <= max");
        Self {
            name: name.into(),
            min,
            max,
        }
    }
}

/// An integer actuator.
pub trait Knob: Send + Sync {
    /// The knob's identity and bounds.
    fn spec(&self) -> KnobSpec;
    /// Current value.
    fn get(&self) -> i64;
    /// Sets the value. Implementations may clamp internally, but callers
    /// going through [`KnobRegistry::set`] are bounds-checked first.
    fn set(&self, value: i64);
}

/// A self-contained atomic knob — useful when the controlled subsystem
/// polls the value rather than reacting to the set (e.g. chunk size read
/// at the start of each `parallel_for`).
pub struct AtomicKnob {
    spec: KnobSpec,
    value: AtomicI64,
}

impl AtomicKnob {
    /// Creates a knob with the given spec and initial value (clamped).
    pub fn new(spec: KnobSpec, initial: i64) -> Arc<Self> {
        let v = initial.clamp(spec.min, spec.max);
        Arc::new(Self {
            spec,
            value: AtomicI64::new(v),
        })
    }
}

impl Knob for AtomicKnob {
    fn spec(&self) -> KnobSpec {
        self.spec.clone()
    }
    fn get(&self) -> i64 {
        self.value.load(Ordering::Acquire)
    }
    fn set(&self, value: i64) {
        self.value
            .store(value.clamp(self.spec.min, self.spec.max), Ordering::Release);
    }
}

/// One recorded actuation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KnobChange {
    /// Knob name.
    pub name: String,
    /// Value before the set.
    pub from: i64,
    /// Value after the set.
    pub to: i64,
}

/// Registry of knobs, with bounds checking and an actuation log.
#[derive(Default)]
pub struct KnobRegistry {
    knobs: RwLock<HashMap<String, Arc<dyn Knob>>>,
    log: RwLock<Vec<KnobChange>>,
}

impl KnobRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a knob under its spec name. Replaces any previous knob
    /// with the same name (re-registration after a subsystem restart).
    pub fn register(&self, knob: Arc<dyn Knob>) {
        let name = knob.spec().name.clone();
        self.knobs.write().insert(name, knob);
    }

    /// Removes a knob by name; returns true if present.
    pub fn deregister(&self, name: &str) -> bool {
        self.knobs.write().remove(name).is_some()
    }

    /// Looks up a knob.
    pub fn get(&self, name: &str) -> Option<Arc<dyn Knob>> {
        self.knobs.read().get(name).cloned()
    }

    /// Current value of a knob, if registered.
    pub fn value(&self, name: &str) -> Option<i64> {
        self.get(name).map(|k| k.get())
    }

    /// Sets `name` to `value` after clamping to the knob's bounds.
    /// Returns the applied value, or `None` if the knob is unknown.
    pub fn set(&self, name: &str, value: i64) -> Option<i64> {
        let knob = self.get(name)?;
        let spec = knob.spec();
        let clamped = value.clamp(spec.min, spec.max);
        let from = knob.get();
        knob.set(clamped);
        self.log.write().push(KnobChange {
            name: name.to_owned(),
            from,
            to: clamped,
        });
        Some(clamped)
    }

    /// Every registered knob's spec, sorted by name.
    pub fn specs(&self) -> Vec<KnobSpec> {
        let mut v: Vec<KnobSpec> = self.knobs.read().values().map(|k| k.spec()).collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Copy of the actuation log.
    pub fn changes(&self) -> Vec<KnobChange> {
        self.log.read().clone()
    }

    /// Number of actuations recorded.
    pub fn change_count(&self) -> usize {
        self.log.read().len()
    }
}

impl std::fmt::Debug for KnobRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KnobRegistry")
            .field("knobs", &self.knobs.read().len())
            .field("changes", &self.change_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knob(name: &str, min: i64, max: i64, init: i64) -> Arc<AtomicKnob> {
        AtomicKnob::new(KnobSpec::new(name, min, max), init)
    }

    #[test]
    fn atomic_knob_clamps() {
        let k = knob("k", 1, 10, 5);
        assert_eq!(k.get(), 5);
        k.set(100);
        assert_eq!(k.get(), 10);
        k.set(-100);
        assert_eq!(k.get(), 1);
    }

    #[test]
    fn initial_value_clamped() {
        let k = knob("k", 2, 4, 99);
        assert_eq!(k.get(), 4);
    }

    #[test]
    fn registry_set_and_log() {
        let reg = KnobRegistry::new();
        reg.register(knob("cap", 1, 32, 32));
        assert_eq!(reg.set("cap", 8), Some(8));
        assert_eq!(reg.set("cap", 1000), Some(32));
        assert_eq!(reg.value("cap"), Some(32));
        let log = reg.changes();
        assert_eq!(log.len(), 2);
        assert_eq!(
            log[0],
            KnobChange {
                name: "cap".into(),
                from: 32,
                to: 8
            }
        );
        assert_eq!(
            log[1],
            KnobChange {
                name: "cap".into(),
                from: 8,
                to: 32
            }
        );
    }

    #[test]
    fn unknown_knob_is_none() {
        let reg = KnobRegistry::new();
        assert_eq!(reg.set("nope", 1), None);
        assert_eq!(reg.value("nope"), None);
        assert!(!reg.deregister("nope"));
    }

    #[test]
    fn reregistration_replaces() {
        let reg = KnobRegistry::new();
        reg.register(knob("k", 0, 10, 3));
        reg.register(knob("k", 0, 100, 50));
        assert_eq!(reg.value("k"), Some(50));
        assert_eq!(reg.specs().len(), 1);
        assert_eq!(reg.specs()[0].max, 100);
    }

    #[test]
    fn specs_sorted() {
        let reg = KnobRegistry::new();
        reg.register(knob("zz", 0, 1, 0));
        reg.register(knob("aa", 0, 1, 0));
        let names: Vec<String> = reg.specs().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["aa", "zz"]);
    }

    #[test]
    #[should_panic(expected = "knob min must be <= max")]
    fn bad_spec_rejected() {
        let _ = KnobSpec::new("k", 5, 4);
    }
}
