//! Knobs — the write side of adaptation.
//!
//! A [`Knob`] is a named integer actuator with declared bounds: the thread
//! cap, the chunk size, the coalescing window, the sampling period. The
//! subsystems that *own* the underlying state implement `Knob` (e.g. the
//! runtime's `ThreadCap`); policies and tuning sessions find them in the
//! [`KnobRegistry`] and drive them uniformly.
//!
//! Registration interns the knob's name into a copyable [`KnobId`], and
//! every steady-state operation — `get`, `set`, spec lookup — goes through
//! the id with **no registry lock and no string hash**: the registry keeps
//! its slot table behind the same generation-stamped thread-local snapshot
//! the event [`Dispatcher`](crate::Dispatcher) uses, so reads revalidate
//! with a single atomic load. Name-based accessors remain as thin shims
//! that resolve the id first.
//!
//! Every set is clamped against the knob's declared bounds and journaled
//! in the registry's single [`ActuationJournal`] — the same record the
//! audit trail shows is the one rollback and the watchdog consume. The
//! read-of-`from` + set + journal append happens under a tiny per-knob
//! mutex, so two racing writers can never both claim the same `from`
//! value (the bug that used to make rollback restore the wrong state).
//! Writers to *different* knobs never contend.

use crate::clock::Clock;
use crate::event::TaskId;
use crate::journal::{ActuationJournal, DEFAULT_JOURNAL_CAPACITY};
use lg_tuning::{Dim, Space};
use parking_lot::{Mutex, RwLock};
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// How a knob's value range should be enumerated when deriving a tuning
/// dimension from its spec.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KnobScale {
    /// Enumerate `min..=max` with the spec's `step`.
    #[default]
    Linear,
    /// Enumerate the powers of two inside `min..=max` (chunk sizes, caps).
    Pow2,
}

/// Declared bounds, identity, and tuning metadata of a knob.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KnobSpec {
    /// Unique name, e.g. `"thread_cap"`.
    pub name: String,
    /// Smallest settable value (inclusive).
    pub min: i64,
    /// Largest settable value (inclusive).
    pub max: i64,
    /// Unit label for reports (e.g. `"workers"`, `"ns"`); empty if unitless.
    pub unit: String,
    /// Granularity for linear tuning sweeps (≥ 1).
    pub step: i64,
    /// The value the owning subsystem starts with.
    pub default: i64,
    /// How tuning spaces enumerate the range.
    pub scale: KnobScale,
}

impl KnobSpec {
    /// Creates a spec with defaults: unitless, step 1, default `min`,
    /// linear scale. Refine with the `with_*` builders.
    ///
    /// # Panics
    /// Panics if `min > max`.
    pub fn new(name: impl Into<String>, min: i64, max: i64) -> Self {
        assert!(min <= max, "knob min must be <= max");
        Self {
            name: name.into(),
            min,
            max,
            unit: String::new(),
            step: 1,
            default: min,
            scale: KnobScale::Linear,
        }
    }

    /// Sets the unit label.
    pub fn with_unit(mut self, unit: impl Into<String>) -> Self {
        self.unit = unit.into();
        self
    }

    /// Sets the linear sweep step.
    ///
    /// # Panics
    /// Panics if `step` is not positive.
    pub fn with_step(mut self, step: i64) -> Self {
        assert!(step > 0, "knob step must be positive");
        self.step = step;
        self
    }

    /// Sets the default (initial) value, clamped to the bounds.
    pub fn with_default(mut self, default: i64) -> Self {
        self.default = default.clamp(self.min, self.max);
        self
    }

    /// Rewrites the name under a tenant namespace (`"thread_cap"` →
    /// `"t3.thread_cap"`), leaving bounds and metadata intact. Used by
    /// the arbiter to mirror tenant allocation knobs into the governor's
    /// flat registry without collisions.
    pub fn scoped(mut self, tenant: crate::tenant::TenantId) -> Self {
        self.name = tenant.scoped(&self.name);
        self
    }

    /// Sets the tuning scale.
    pub fn with_scale(mut self, scale: KnobScale) -> Self {
        self.scale = scale;
        self
    }

    /// The tuning dimension this spec describes: `min..=max` by `step`
    /// for linear knobs, the powers of two inside the bounds for
    /// [`KnobScale::Pow2`] knobs.
    pub fn dim(&self) -> Dim {
        match self.scale {
            KnobScale::Linear => Dim::range(&self.name, self.min, self.max, self.step.max(1)),
            KnobScale::Pow2 => {
                let mut values = Vec::new();
                let mut v: i64 = 1;
                while v < self.min {
                    v <<= 1;
                }
                while v <= self.max {
                    values.push(v);
                    if v > i64::MAX / 2 {
                        break;
                    }
                    v <<= 1;
                }
                assert!(
                    !values.is_empty(),
                    "no power of two inside {}..={} for knob '{}'",
                    self.min,
                    self.max,
                    self.name
                );
                Dim::values(&self.name, values)
            }
        }
    }
}

/// An integer actuator.
pub trait Knob: Send + Sync {
    /// The knob's identity and bounds.
    fn spec(&self) -> KnobSpec;
    /// Current value.
    fn get(&self) -> i64;
    /// Sets the value. Implementations may clamp internally, but callers
    /// going through [`KnobRegistry::set`] are bounds-checked first.
    fn set(&self, value: i64);
}

/// A self-contained atomic knob — useful when the controlled subsystem
/// polls the value rather than reacting to the set (e.g. chunk size read
/// at the start of each `parallel_for`).
pub struct AtomicKnob {
    spec: KnobSpec,
    value: AtomicI64,
}

impl AtomicKnob {
    /// Creates a knob with the given spec and initial value (clamped).
    pub fn new(spec: KnobSpec, initial: i64) -> Arc<Self> {
        let v = initial.clamp(spec.min, spec.max);
        Arc::new(Self {
            spec,
            value: AtomicI64::new(v),
        })
    }
}

impl Knob for AtomicKnob {
    fn spec(&self) -> KnobSpec {
        self.spec.clone()
    }
    fn get(&self) -> i64 {
        self.value.load(Ordering::Acquire)
    }
    fn set(&self, value: i64) {
        self.value
            .store(value.clamp(self.spec.min, self.spec.max), Ordering::Release);
    }
}

/// Interned handle to a registered knob. Copyable, hashable, and stable
/// across re-registration of the same name (a restarted subsystem's new
/// knob lands in the same slot, so held ids keep working).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct KnobId(pub u32);

/// A knob reference as carried by a policy decision: either a resolved id
/// (steady-state, no lookup at apply time) or a name (resolved per apply —
/// the compatibility shim).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KnobTarget {
    /// Pre-resolved handle.
    Id(KnobId),
    /// Name to resolve at apply time.
    Name(String),
}

impl From<KnobId> for KnobTarget {
    fn from(id: KnobId) -> Self {
        KnobTarget::Id(id)
    }
}

impl From<&str> for KnobTarget {
    fn from(name: &str) -> Self {
        KnobTarget::Name(name.to_owned())
    }
}

impl From<String> for KnobTarget {
    fn from(name: String) -> Self {
        KnobTarget::Name(name)
    }
}

/// One recorded actuation (audit view; see [`ActuationJournal`] for the
/// full who/when records).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KnobChange {
    /// Knob name.
    pub name: String,
    /// Value before the set.
    pub from: i64,
    /// Value after the set.
    pub to: i64,
}

/// One registered knob: its spec, pre-interned journal name, the
/// actuator itself, and the per-knob write lock that makes
/// read-`from` + set + journal atomic.
struct KnobSlot {
    spec: KnobSpec,
    /// The knob's name interned in the journal's table at registration,
    /// so steady-state sets journal without hashing or allocating.
    jname: TaskId,
    knob: Arc<dyn Knob>,
    write: Mutex<()>,
}

/// The registry's shared state, swapped copy-on-write under the lock.
struct Shared {
    /// Slot table indexed by `KnobId`. Deregistered slots hold `None`;
    /// indices are never reused for a *different* name.
    slots: Arc<Vec<Option<Arc<KnobSlot>>>>,
    /// Name → slot index. Bindings survive deregistration so a stale
    /// `KnobId` re-resolves to the replacement knob.
    by_name: HashMap<String, u32>,
}

/// Max registries a thread caches slot tables for (FIFO eviction beyond).
const KNOB_CACHE_MAX: usize = 16;

struct CachedKnobs {
    registry: u64,
    generation: u64,
    slots: Arc<Vec<Option<Arc<KnobSlot>>>>,
}

thread_local! {
    /// Per-thread slot-table cache, keyed by registry id. Mirrors the
    /// Dispatcher's listener-snapshot cache: revalidated with one Acquire
    /// load of the registry generation; reentrant access (a knob's `set`
    /// reading another knob) falls back to the shared table.
    static KNOB_SNAPSHOTS: RefCell<Vec<CachedKnobs>> = const { RefCell::new(Vec::new()) };
}

static NEXT_REGISTRY_ID: AtomicU64 = AtomicU64::new(1);

/// Registry of knobs with interned ids, bounds checking, and a single
/// journaled actuation trail.
pub struct KnobRegistry {
    /// Process-unique id keying the thread-local snapshot cache.
    id: u64,
    shared: RwLock<Shared>,
    /// Bumped (under the write lock) by every register/deregister.
    generation: AtomicU64,
    /// The one actuation journal: audit, rollback, and the watchdog all
    /// read these records.
    journal: Arc<ActuationJournal>,
    /// Timestamps for convenience setters; id-carrying callers (engine,
    /// sessions) pass their own `t_ns`.
    clock: OnceLock<Arc<dyn Clock>>,
    /// Interned actor for sets made without an explicit actor.
    actor_direct: TaskId,
    /// Interned actor for `rollback_last_of` restore writes.
    actor_rollback: TaskId,
}

impl Default for KnobRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl KnobRegistry {
    /// Creates an empty registry with a journal of
    /// [`DEFAULT_JOURNAL_CAPACITY`] records.
    pub fn new() -> Self {
        Self::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// Creates an empty registry whose journal retains `capacity` records.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn with_journal_capacity(capacity: usize) -> Self {
        let journal = Arc::new(ActuationJournal::new(capacity));
        let actor_direct = journal.intern("direct");
        let actor_rollback = journal.intern("rollback");
        Self {
            id: NEXT_REGISTRY_ID.fetch_add(1, Ordering::Relaxed),
            shared: RwLock::new(Shared {
                slots: Arc::new(Vec::new()),
                by_name: HashMap::new(),
            }),
            generation: AtomicU64::new(0),
            journal,
            clock: OnceLock::new(),
            actor_direct,
            actor_rollback,
        }
    }

    /// Attaches the clock used to timestamp convenience sets. The first
    /// attach wins; later calls are ignored (one registry, one clock).
    pub fn attach_clock(&self, clock: Arc<dyn Clock>) {
        let _ = self.clock.set(clock);
    }

    fn now(&self) -> u64 {
        self.clock.get().map_or(0, |c| c.now_ns())
    }

    /// The registry's actuation journal — the single audit trail every
    /// consumer (policies, rollback, watchdog, reports) shares.
    pub fn journal(&self) -> &Arc<ActuationJournal> {
        &self.journal
    }

    /// Interns `name` as an actor id for [`KnobRegistry::set_id_as`], so
    /// repeated sets by the same actor journal allocation-free.
    pub fn actor(&self, name: &str) -> TaskId {
        self.journal.intern(name)
    }

    /// Registers a knob under its spec name, returning its [`KnobId`].
    /// Re-registering a name replaces the knob in place: previously
    /// handed-out ids resolve to the replacement.
    pub fn register(&self, knob: Arc<dyn Knob>) -> KnobId {
        let spec = knob.spec();
        let jname = self.journal.intern(&spec.name);
        let mut shared = self.shared.write();
        let mut next = (*shared.slots).clone();
        let idx = match shared.by_name.get(&spec.name).copied() {
            Some(i) => i,
            None => {
                let i = next.len() as u32;
                shared.by_name.insert(spec.name.clone(), i);
                next.push(None);
                i
            }
        };
        next[idx as usize] = Some(Arc::new(KnobSlot {
            spec,
            jname,
            knob,
            write: Mutex::new(()),
        }));
        shared.slots = Arc::new(next);
        // Published while holding the write lock, so a refresh that reads
        // this generation under the read lock pairs it with this table.
        self.generation.fetch_add(1, Ordering::Release);
        KnobId(idx)
    }

    /// Removes a knob by name; returns true if present. The name keeps its
    /// slot index, so ids held across a deregister/re-register cycle stay
    /// valid (and resolve to nothing in between).
    pub fn deregister(&self, name: &str) -> bool {
        let mut shared = self.shared.write();
        let Some(i) = shared.by_name.get(name).copied() else {
            return false;
        };
        if shared.slots[i as usize].is_none() {
            return false;
        }
        let mut next = (*shared.slots).clone();
        next[i as usize] = None;
        shared.slots = Arc::new(next);
        self.generation.fetch_add(1, Ordering::Release);
        true
    }

    /// Resolves a name to its id, if a knob is currently registered.
    pub fn id(&self, name: &str) -> Option<KnobId> {
        let shared = self.shared.read();
        let i = shared.by_name.get(name).copied()?;
        shared.slots.get(i as usize)?.as_ref()?;
        Some(KnobId(i))
    }

    /// Resolves an id back to the knob's name.
    pub fn name(&self, id: KnobId) -> Option<String> {
        self.with_slot(id, |s| s.spec.name.clone())
    }

    /// Resolves a tenant-scoped name (`tenant` + `"thread_cap"` →
    /// `"t3.thread_cap"`) to its id, if registered.
    pub fn id_scoped(&self, tenant: crate::tenant::TenantId, name: &str) -> Option<KnobId> {
        self.id(&tenant.scoped(name))
    }

    /// Runs `f` against the slot for `id`, resolving through the
    /// thread-local snapshot: one generation load in steady state, no
    /// registry lock, no string hash.
    fn with_slot<R>(&self, id: KnobId, f: impl FnOnce(&KnobSlot) -> R) -> Option<R> {
        let generation = self.generation.load(Ordering::Acquire);
        let mut f = Some(f);
        let cached = KNOB_SNAPSHOTS.with(|cell| {
            // Reentrant access (a knob's set reading the registry) finds
            // the cache borrowed and takes the shared-table slow path.
            let Ok(mut cache) = cell.try_borrow_mut() else {
                return None;
            };
            let entry = match cache.iter().position(|c| c.registry == self.id) {
                Some(i) => {
                    if cache[i].generation != generation {
                        let (generation, slots) = self.load_shared();
                        cache[i].generation = generation;
                        cache[i].slots = slots;
                    }
                    &cache[i]
                }
                None => {
                    if cache.len() == KNOB_CACHE_MAX {
                        cache.remove(0);
                    }
                    let (generation, slots) = self.load_shared();
                    cache.push(CachedKnobs {
                        registry: self.id,
                        generation,
                        slots,
                    });
                    cache.last().expect("just pushed")
                }
            };
            let slot = entry.slots.get(id.0 as usize).and_then(|s| s.as_ref());
            Some(slot.map(|s| (f.take().expect("not yet called"))(s)))
        });
        match cached {
            Some(result) => result,
            None => {
                let slots = self.shared.read().slots.clone();
                let slot = slots.get(id.0 as usize).and_then(|s| s.as_ref());
                slot.map(|s| (f.take().expect("not yet called"))(s))
            }
        }
    }

    /// Reads a consistent (generation, slot table) pair under the read
    /// lock (registration bumps the generation under the write lock).
    fn load_shared(&self) -> (u64, Arc<Vec<Option<Arc<KnobSlot>>>>) {
        let shared = self.shared.read();
        (
            self.generation.load(Ordering::Acquire),
            shared.slots.clone(),
        )
    }

    /// Looks up a knob by name (shim over [`KnobRegistry::id`]).
    pub fn get(&self, name: &str) -> Option<Arc<dyn Knob>> {
        self.get_id(self.id(name)?)
    }

    /// Looks up a knob by id.
    pub fn get_id(&self, id: KnobId) -> Option<Arc<dyn Knob>> {
        self.with_slot(id, |s| s.knob.clone())
    }

    /// Current value of a knob, if registered (name shim).
    pub fn value(&self, name: &str) -> Option<i64> {
        self.value_id(self.id(name)?)
    }

    /// Current value by id — lock-free in steady state.
    pub fn value_id(&self, id: KnobId) -> Option<i64> {
        self.with_slot(id, |s| s.knob.get())
    }

    /// The spec of a registered knob, by id.
    pub fn spec(&self, id: KnobId) -> Option<KnobSpec> {
        self.with_slot(id, |s| s.spec.clone())
    }

    /// The atomic write path: clamp, read `from`, set, journal — all under
    /// the per-knob lock, so concurrent writers serialize per knob and the
    /// journal's `from` chain is exact. Writers to different knobs never
    /// contend, and the registry itself is not locked.
    fn set_inner(
        &self,
        id: KnobId,
        value: i64,
        actor: TaskId,
        t_ns: u64,
        rollback_of: Option<u64>,
    ) -> Option<i64> {
        self.with_slot(id, |slot| {
            let clamped = value.clamp(slot.spec.min, slot.spec.max);
            let _write = slot.write.lock();
            let from = slot.knob.get();
            slot.knob.set(clamped);
            self.journal
                .record_interned(t_ns, actor, slot.jname, from, clamped, rollback_of);
            clamped
        })
    }

    /// Sets a knob by id after clamping to its bounds. Returns the applied
    /// value, or `None` if the id resolves to nothing. Journaled under the
    /// registry's "direct" actor with the attached clock's timestamp.
    pub fn set_id(&self, id: KnobId, value: i64) -> Option<i64> {
        self.set_inner(id, value, self.actor_direct, self.now(), None)
    }

    /// Sets a knob by id on behalf of `actor` at `t_ns` — the path the
    /// policy engine, tuning sessions, and the watchdog use so the journal
    /// records who actuated and when.
    pub fn set_id_as(&self, id: KnobId, value: i64, actor: TaskId, t_ns: u64) -> Option<i64> {
        self.set_inner(id, value, actor, t_ns, None)
    }

    /// Sets `name` to `value` after clamping (name shim over
    /// [`KnobRegistry::set_id`]).
    pub fn set(&self, name: &str, value: i64) -> Option<i64> {
        self.set_id(self.id(name)?, value)
    }

    /// Name-shim over [`KnobRegistry::set_id_as`].
    pub fn set_as(&self, name: &str, value: i64, actor: TaskId, t_ns: u64) -> Option<i64> {
        self.set_id_as(self.id(name)?, value, actor, t_ns)
    }

    /// Undoes the most recent journaled write to `name` that is neither a
    /// rollback itself nor already rolled back: restores the recorded
    /// `from` value (journaled as a `rollback_of` record) and marks the
    /// original record rolled back. Returns the restored value.
    pub fn rollback_last_of(&self, name: &str) -> Option<i64> {
        let rec = self.journal.latest_for(name)?;
        let id = self.id(name)?;
        let restored =
            self.set_inner(id, rec.from, self.actor_rollback, self.now(), Some(rec.seq))?;
        self.journal.mark_rolled_back(rec.seq);
        Some(restored)
    }

    /// Every registered knob's spec, sorted by name.
    pub fn specs(&self) -> Vec<KnobSpec> {
        let slots = self.shared.read().slots.clone();
        let mut v: Vec<KnobSpec> = slots
            .iter()
            .filter_map(|s| s.as_ref().map(|s| s.spec.clone()))
            .collect();
        v.sort_by(|a, b| a.name.cmp(&b.name));
        v
    }

    /// Derives a tuning [`Space`] from the registered specs of `names`,
    /// in order — linear knobs become stepped ranges, [`KnobScale::Pow2`]
    /// knobs become power-of-two value lists. No hand-built spaces.
    ///
    /// # Panics
    /// Panics if any name is not registered.
    pub fn space_for(&self, names: &[&str]) -> Space {
        let dims = names
            .iter()
            .map(|n| {
                let id = self
                    .id(n)
                    .unwrap_or_else(|| panic!("space_for: unknown knob '{n}'"));
                self.spec(id).expect("slot present").dim()
            })
            .collect();
        Space::new(dims)
    }

    /// Audit view of the retained journal records (see
    /// [`KnobRegistry::journal`] for who/when detail).
    pub fn changes(&self) -> Vec<KnobChange> {
        self.journal
            .records()
            .into_iter()
            .map(|r| KnobChange {
                name: r.knob,
                from: r.from,
                to: r.to,
            })
            .collect()
    }

    /// Number of actuations recorded over the registry's lifetime
    /// (including records the bounded journal has since evicted).
    pub fn change_count(&self) -> usize {
        self.journal.total_recorded() as usize
    }
}

impl std::fmt::Debug for KnobRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let slots = self.shared.read().slots.clone();
        f.debug_struct("KnobRegistry")
            .field("knobs", &slots.iter().filter(|s| s.is_some()).count())
            .field("changes", &self.change_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn knob(name: &str, min: i64, max: i64, init: i64) -> Arc<AtomicKnob> {
        AtomicKnob::new(KnobSpec::new(name, min, max), init)
    }

    #[test]
    fn atomic_knob_clamps() {
        let k = knob("k", 1, 10, 5);
        assert_eq!(k.get(), 5);
        k.set(100);
        assert_eq!(k.get(), 10);
        k.set(-100);
        assert_eq!(k.get(), 1);
    }

    #[test]
    fn initial_value_clamped() {
        let k = knob("k", 2, 4, 99);
        assert_eq!(k.get(), 4);
    }

    #[test]
    fn registry_set_and_log() {
        let reg = KnobRegistry::new();
        reg.register(knob("cap", 1, 32, 32));
        assert_eq!(reg.set("cap", 8), Some(8));
        assert_eq!(reg.set("cap", 1000), Some(32));
        assert_eq!(reg.value("cap"), Some(32));
        let log = reg.changes();
        assert_eq!(log.len(), 2);
        assert_eq!(
            log[0],
            KnobChange {
                name: "cap".into(),
                from: 32,
                to: 8
            }
        );
        assert_eq!(
            log[1],
            KnobChange {
                name: "cap".into(),
                from: 8,
                to: 32
            }
        );
    }

    #[test]
    fn unknown_knob_is_none() {
        let reg = KnobRegistry::new();
        assert_eq!(reg.set("nope", 1), None);
        assert_eq!(reg.value("nope"), None);
        assert!(!reg.deregister("nope"));
    }

    #[test]
    fn reregistration_replaces() {
        let reg = KnobRegistry::new();
        reg.register(knob("k", 0, 10, 3));
        reg.register(knob("k", 0, 100, 50));
        assert_eq!(reg.value("k"), Some(50));
        assert_eq!(reg.specs().len(), 1);
        assert_eq!(reg.specs()[0].max, 100);
    }

    #[test]
    fn specs_sorted() {
        let reg = KnobRegistry::new();
        reg.register(knob("zz", 0, 1, 0));
        reg.register(knob("aa", 0, 1, 0));
        let names: Vec<String> = reg.specs().into_iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["aa", "zz"]);
    }

    #[test]
    #[should_panic(expected = "knob min must be <= max")]
    fn bad_spec_rejected() {
        let _ = KnobSpec::new("k", 5, 4);
    }

    #[test]
    fn id_and_name_access_agree() {
        let reg = KnobRegistry::new();
        let id = reg.register(knob("cap", 1, 64, 8));
        assert_eq!(reg.id("cap"), Some(id));
        assert_eq!(reg.name(id).as_deref(), Some("cap"));
        assert_eq!(reg.value("cap"), reg.value_id(id));
        assert_eq!(reg.set_id(id, 16), Some(16));
        assert_eq!(reg.value("cap"), Some(16));
        assert_eq!(reg.set("cap", 24), Some(24));
        assert_eq!(reg.value_id(id), Some(24));
    }

    #[test]
    fn ids_survive_reregistration() {
        let reg = KnobRegistry::new();
        let id = reg.register(knob("k", 0, 10, 3));
        assert!(reg.deregister("k"));
        assert_eq!(reg.value_id(id), None, "deregistered slot is empty");
        assert_eq!(reg.id("k"), None);
        let id2 = reg.register(knob("k", 0, 100, 50));
        assert_eq!(id, id2, "the name keeps its slot index");
        assert_eq!(reg.value_id(id), Some(50), "stale id sees the new knob");
    }

    #[test]
    fn sets_journal_with_actor_and_rollback_undoes() {
        let reg = KnobRegistry::new();
        let id = reg.register(knob("k", 0, 100, 7));
        let actor = reg.actor("test-policy");
        assert_eq!(reg.set_id_as(id, 42, actor, 5), Some(42));
        let recs = reg.journal().records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].policy, "test-policy");
        assert_eq!((recs[0].from, recs[0].to, recs[0].t_ns), (7, 42, 5));
        assert_eq!(reg.rollback_last_of("k"), Some(7));
        assert_eq!(reg.value_id(id), Some(7));
        let recs = reg.journal().records();
        assert_eq!(recs.len(), 2);
        assert!(recs[0].rolled_back);
        assert_eq!(recs[1].rollback_of, Some(recs[0].seq));
        assert_eq!(recs[1].policy, "rollback");
        assert_eq!(
            reg.rollback_last_of("k"),
            None,
            "a rollback is consumed: neither record is a candidate"
        );
    }

    #[test]
    fn concurrent_sets_keep_journal_chain_exact() {
        // Regression test for the read-modify-log race: with the old
        // unlocked read of `from`, two racing writers could both record
        // the same `from`, breaking the chain rollback relies on.
        let reg = Arc::new(KnobRegistry::with_journal_capacity(4096));
        let id = reg.register(knob("k", 0, i64::MAX, 0));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    let actor = reg.actor("writer");
                    for i in 0..200 {
                        reg.set_id_as(id, (t * 1000 + i) as i64 + 1, actor, 0);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let recs = reg.journal().records();
        assert_eq!(recs.len(), 1600);
        let mut value = 0;
        for r in &recs {
            assert_eq!(
                r.from, value,
                "each record's `from` must be the previous record's `to`"
            );
            value = r.to;
        }
        assert_eq!(reg.value_id(id), Some(value));
    }

    #[test]
    fn space_for_derives_dims_from_specs() {
        let reg = KnobRegistry::new();
        reg.register(AtomicKnob::new(
            KnobSpec::new("cap", 1, 32).with_scale(KnobScale::Pow2),
            32,
        ));
        reg.register(AtomicKnob::new(
            KnobSpec::new("freq", 200, 1000).with_step(200),
            1000,
        ));
        let space = reg.space_for(&["cap", "freq"]);
        let dims = space.dims();
        assert_eq!(dims[0].all_values(), &[1, 2, 4, 8, 16, 32]);
        assert_eq!(dims[1].all_values(), &[200, 400, 600, 800, 1000]);
    }

    #[test]
    #[should_panic(expected = "unknown knob")]
    fn space_for_unknown_knob_panics() {
        KnobRegistry::new().space_for(&["nope"]);
    }

    #[test]
    fn pow2_dim_respects_min_bound() {
        let spec = KnobSpec::new("k", 3, 20).with_scale(KnobScale::Pow2);
        assert_eq!(spec.dim().all_values(), &[4, 8, 16]);
    }
}
