//! Self-healing watchdog: roll back actuations that hurt throughput.
//!
//! Adaptation is supposed to help; a mis-tuned policy (or a policy tuned
//! for a phase that just ended) can actuate a knob and make things worse.
//! The [`RegressionWatchdog`] is itself a periodic [`Policy`] that closes
//! the loop on the loop: it watches a caller-supplied throughput signal
//! (typically a [`lg_metrics::SlidingWindow`] rate), and when a journalled
//! actuation is followed by a rate drop beyond a threshold, it writes the
//! knob back to its pre-actuation value.
//!
//! The rollback is an ordinary [`PolicyDecision`], so it flows through the
//! same clamping and audit logging as any other actuation — and it is
//! journalled under the watchdog's own name, which the watchdog ignores,
//! so it never chases its own tail.

use crate::journal::ActuationJournal;
use crate::policy::{Policy, PolicyDecision, Trigger};
use std::sync::Arc;

struct Pending {
    seq: u64,
    knob: String,
    from: i64,
    baseline: f64,
}

/// Periodic policy that detects post-actuation throughput regressions and
/// rolls back the offending knob write. See the module docs.
pub struct RegressionWatchdog {
    name: String,
    journal: Arc<ActuationJournal>,
    rate: Box<dyn FnMut() -> f64 + Send>,
    drop_frac: f64,
    last_seen_seq: u64,
    pending: Option<Pending>,
    rollbacks: u64,
}

impl RegressionWatchdog {
    /// Creates a watchdog reading `rate` (higher = better) and rolling
    /// back any journalled actuation followed by a drop of more than
    /// `drop_frac` (e.g. `0.2` = 20%) relative to the rate observed when
    /// the actuation was first seen.
    ///
    /// # Panics
    /// Panics unless `0 < drop_frac < 1`.
    pub fn new(
        journal: Arc<ActuationJournal>,
        rate: impl FnMut() -> f64 + Send + 'static,
        drop_frac: f64,
    ) -> Box<Self> {
        assert!(
            drop_frac > 0.0 && drop_frac < 1.0,
            "drop fraction must be in (0, 1)"
        );
        Box::new(Self {
            name: "regression-watchdog".into(),
            journal,
            rate: Box::new(rate),
            drop_frac,
            last_seen_seq: 0,
            pending: None,
            rollbacks: 0,
        })
    }

    /// Rollbacks performed so far.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }
}

impl Policy for RegressionWatchdog {
    fn name(&self) -> &str {
        &self.name
    }

    fn evaluate(&mut self, _now_ns: u64, _trigger: Trigger<'_>) -> PolicyDecision {
        let rate = (self.rate)();
        let mut decision = PolicyDecision::noop();
        // Verdict on the actuation observed last evaluation: one full
        // period has elapsed, so `rate` reflects the post-actuation world.
        if let Some(p) = self.pending.take() {
            if rate < p.baseline * (1.0 - self.drop_frac) {
                self.journal.mark_rolled_back(p.seq);
                self.rollbacks += 1;
                decision = PolicyDecision::set(p.knob, p.from);
            }
        }
        // Adopt the newest foreign actuation as the next suspect. The
        // rate sampled *now* is the pre-verdict baseline.
        let mut newest: Option<Pending> = None;
        for rec in self.journal.records_since(self.last_seen_seq) {
            self.last_seen_seq = self.last_seen_seq.max(rec.seq);
            if rec.policy != self.name && !rec.rolled_back {
                newest = Some(Pending {
                    seq: rec.seq,
                    knob: rec.knob,
                    from: rec.from,
                    baseline: rate,
                });
            }
        }
        if newest.is_some() {
            self.pending = newest;
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn eval(w: &mut RegressionWatchdog, t: u64) -> PolicyDecision {
        w.evaluate(t, Trigger::Periodic)
    }

    #[test]
    fn rolls_back_regressing_actuation() {
        let journal = Arc::new(ActuationJournal::new(16));
        let rate = Arc::new(AtomicU64::new(1_000));
        let r = rate.clone();
        let mut w = RegressionWatchdog::new(
            journal.clone(),
            move || r.load(Ordering::Relaxed) as f64,
            0.2,
        );
        assert_eq!(eval(&mut w, 0), PolicyDecision::noop());
        // A policy halves the cap; throughput craters.
        let seq = journal.record(10, "tuner", "thread_cap", 16, 2);
        assert_eq!(
            eval(&mut w, 10),
            PolicyDecision::noop(),
            "adopts suspect, no verdict yet"
        );
        rate.store(400, Ordering::Relaxed);
        let d = eval(&mut w, 20);
        assert_eq!(d, PolicyDecision::set("thread_cap", 16));
        assert_eq!(w.rollbacks(), 1);
        assert!(
            journal
                .records()
                .iter()
                .find(|r| r.seq == seq)
                .unwrap()
                .rolled_back
        );
    }

    #[test]
    fn tolerates_benign_actuation() {
        let journal = Arc::new(ActuationJournal::new(16));
        let rate = Arc::new(AtomicU64::new(1_000));
        let r = rate.clone();
        let mut w = RegressionWatchdog::new(
            journal.clone(),
            move || r.load(Ordering::Relaxed) as f64,
            0.2,
        );
        eval(&mut w, 0);
        journal.record(10, "tuner", "window", 8, 32);
        eval(&mut w, 10);
        rate.store(1_100, Ordering::Relaxed); // improved
        assert_eq!(eval(&mut w, 20), PolicyDecision::noop());
        assert_eq!(w.rollbacks(), 0);
    }

    #[test]
    fn small_dip_within_tolerance_not_rolled_back() {
        let journal = Arc::new(ActuationJournal::new(16));
        let rate = Arc::new(AtomicU64::new(1_000));
        let r = rate.clone();
        let mut w = RegressionWatchdog::new(
            journal.clone(),
            move || r.load(Ordering::Relaxed) as f64,
            0.2,
        );
        eval(&mut w, 0);
        journal.record(10, "tuner", "window", 8, 32);
        eval(&mut w, 10);
        rate.store(900, Ordering::Relaxed); // -10%, threshold is 20%
        assert_eq!(eval(&mut w, 20), PolicyDecision::noop());
    }

    #[test]
    fn ignores_its_own_rollback_writes() {
        let journal = Arc::new(ActuationJournal::new(16));
        let rate = Arc::new(AtomicU64::new(1_000));
        let r = rate.clone();
        let mut w = RegressionWatchdog::new(
            journal.clone(),
            move || r.load(Ordering::Relaxed) as f64,
            0.2,
        );
        eval(&mut w, 0);
        journal.record(10, "tuner", "cap", 16, 2);
        eval(&mut w, 10);
        rate.store(100, Ordering::Relaxed);
        assert_eq!(eval(&mut w, 20), PolicyDecision::set("cap", 16));
        // The engine would journal that rollback under the watchdog's name:
        journal.record(20, "regression-watchdog", "cap", 2, 16);
        rate.store(90, Ordering::Relaxed);
        assert_eq!(
            eval(&mut w, 30),
            PolicyDecision::noop(),
            "must not chase its own write"
        );
        assert_eq!(eval(&mut w, 40), PolicyDecision::noop());
        assert_eq!(w.rollbacks(), 1);
    }

    #[test]
    fn only_latest_foreign_actuation_is_suspect() {
        let journal = Arc::new(ActuationJournal::new(16));
        let rate = Arc::new(AtomicU64::new(1_000));
        let r = rate.clone();
        let mut w = RegressionWatchdog::new(
            journal.clone(),
            move || r.load(Ordering::Relaxed) as f64,
            0.2,
        );
        eval(&mut w, 0);
        journal.record(10, "a", "k1", 1, 2);
        journal.record(11, "b", "k2", 5, 9);
        eval(&mut w, 20);
        rate.store(1, Ordering::Relaxed);
        // Rolls back the most recent write only (k2).
        assert_eq!(eval(&mut w, 30), PolicyDecision::set("k2", 5));
    }
}
