//! Self-healing watchdog: roll back actuations that hurt throughput.
//!
//! Adaptation is supposed to help; a mis-tuned policy (or a policy tuned
//! for a phase that just ended) can actuate a knob and make things worse.
//! The [`RegressionWatchdog`] is itself a periodic [`Policy`] that closes
//! the loop on the loop: it watches a throughput signal — by default the
//! completed-tasks rate diffed from the consecutive
//! [`IntrospectionSnapshot`]s the engine hands it, or a caller-supplied
//! closure — and when a journalled actuation is followed by a rate drop
//! beyond a threshold, it writes the knob back to its pre-actuation value.
//!
//! The rollback is an ordinary [`PolicyDecision`], so it flows through the
//! same clamping and journaling as any other actuation — and it is
//! journalled under the watchdog's own (interned) actor id, which the
//! watchdog ignores, so it never chases its own tail. Suspects are read
//! from the journal's raw id-based records: the watchdog holds interned
//! ids, not strings, and resolves a name only when emitting a rollback.

use crate::event::TaskId;
use crate::journal::ActuationJournal;
use crate::policy::{Policy, PolicyDecision, Trigger};
use crate::snapshot::IntrospectionSnapshot;
use std::sync::Arc;

struct Pending {
    seq: u64,
    knob: TaskId,
    from: i64,
    baseline: f64,
}

/// Where the watchdog's throughput signal comes from.
enum RateSource {
    /// Caller-supplied closure (legacy / custom signals).
    Closure(Box<dyn FnMut() -> f64 + Send>),
    /// Completed-tasks/sec diffed from consecutive evaluation snapshots.
    Snapshot {
        /// `(t_ns, total_completed)` of the previous evaluation.
        prev: Option<(u64, u64)>,
    },
}

/// Periodic policy that detects post-actuation throughput regressions and
/// rolls back the offending knob write. See the module docs.
pub struct RegressionWatchdog {
    name: String,
    /// Our actor id in the journal (records with this id are our own).
    self_id: TaskId,
    journal: Arc<ActuationJournal>,
    rate: RateSource,
    drop_frac: f64,
    last_seen_seq: u64,
    pending: Option<Pending>,
    rollbacks: u64,
    ignored: Vec<TaskId>,
    /// Rate observed one evaluation ago — the last reading guaranteed to
    /// predate any record that has appeared since the last journal scan.
    prev_rate: Option<f64>,
}

impl RegressionWatchdog {
    fn build(journal: Arc<ActuationJournal>, rate: RateSource, drop_frac: f64) -> Box<Self> {
        assert!(
            drop_frac > 0.0 && drop_frac < 1.0,
            "drop fraction must be in (0, 1)"
        );
        let self_id = journal.intern("regression-watchdog");
        Box::new(Self {
            name: "regression-watchdog".into(),
            self_id,
            journal,
            rate,
            drop_frac,
            last_seen_seq: 0,
            pending: None,
            rollbacks: 0,
            ignored: Vec::new(),
            prev_rate: None,
        })
    }

    /// Excludes `actor`'s writes from suspect adoption. Budget governors
    /// (e.g. the arbiter) rewrite the same knob every control round; without
    /// this, each rewrite would replace the current suspect and reset its
    /// baseline to the post-regression rate, masking the drop.
    #[must_use]
    pub fn with_ignored_actor(mut self: Box<Self>, actor: &str) -> Box<Self> {
        self.ignored.push(self.journal.intern(actor));
        self
    }

    /// Creates a watchdog reading `rate` (higher = better) and rolling
    /// back any journalled actuation followed by a drop of more than
    /// `drop_frac` (e.g. `0.2` = 20%) relative to the rate observed when
    /// the actuation was first seen.
    ///
    /// # Panics
    /// Panics unless `0 < drop_frac < 1`.
    pub fn new(
        journal: Arc<ActuationJournal>,
        rate: impl FnMut() -> f64 + Send + 'static,
        drop_frac: f64,
    ) -> Box<Self> {
        Self::build(journal, RateSource::Closure(Box::new(rate)), drop_frac)
    }

    /// Creates a watchdog whose rate is the completed-tasks-per-second
    /// throughput diffed between the consecutive snapshots the engine
    /// hands each evaluation — no bespoke rate plumbing needed.
    ///
    /// # Panics
    /// Panics unless `0 < drop_frac < 1`.
    pub fn throughput(journal: Arc<ActuationJournal>, drop_frac: f64) -> Box<Self> {
        Self::build(journal, RateSource::Snapshot { prev: None }, drop_frac)
    }

    /// Rollbacks performed so far.
    pub fn rollbacks(&self) -> u64 {
        self.rollbacks
    }

    /// Reads this evaluation's rate; `None` when a snapshot-diff rate is
    /// not yet defined (first evaluation, or no time elapsed).
    fn observe_rate(&mut self, snapshot: &IntrospectionSnapshot) -> Option<f64> {
        match &mut self.rate {
            RateSource::Closure(f) => Some(f()),
            RateSource::Snapshot { prev } => {
                let now = (snapshot.t_ns, snapshot.total_completed);
                let rate = prev.and_then(|(t_ns, done)| {
                    let dt_ns = now.0.checked_sub(t_ns).filter(|&d| d > 0)?;
                    let completed = now.1.saturating_sub(done);
                    Some(completed as f64 / (dt_ns as f64 / 1e9))
                });
                *prev = Some(now);
                rate
            }
        }
    }
}

impl Policy for RegressionWatchdog {
    fn name(&self) -> &str {
        &self.name
    }

    fn evaluate(
        &mut self,
        _now_ns: u64,
        _trigger: Trigger<'_>,
        snapshot: &IntrospectionSnapshot,
    ) -> PolicyDecision {
        let Some(rate) = self.observe_rate(snapshot) else {
            // No rate yet (first snapshot-diff evaluation): no verdict is
            // possible and no baseline can be assigned; leave any pending
            // suspect armed and adopt nothing this round.
            return PolicyDecision::noop();
        };
        let mut decision = PolicyDecision::noop();
        // Verdict on the actuation observed last evaluation: one full
        // period has elapsed, so `rate` reflects the post-actuation world.
        if let Some(p) = self.pending.take() {
            if rate < p.baseline * (1.0 - self.drop_frac) {
                self.journal.mark_rolled_back(p.seq);
                self.rollbacks += 1;
                let knob = self.journal.names().resolve(p.knob).unwrap_or_default();
                decision = PolicyDecision::set(knob, p.from);
            }
        }
        // Adopt the newest foreign actuation as the next suspect — skip
        // our own writes and anything that is (or undoes) a rollback. A
        // record that appeared since the last scan landed *during* the
        // interval the current rate covers (policy engines batch-apply
        // decisions after the evaluation loop), so the clean pre-actuation
        // baseline is the rate from one evaluation ago, falling back to
        // the current rate on the first reading.
        let baseline = self.prev_rate.unwrap_or(rate);
        let mut newest: Option<Pending> = None;
        for rec in self.journal.raw_records_since(self.last_seen_seq) {
            self.last_seen_seq = self.last_seen_seq.max(rec.seq);
            if rec.policy != self.self_id
                && !self.ignored.contains(&rec.policy)
                && !rec.rolled_back
                && rec.rollback_of.is_none()
            {
                newest = Some(Pending {
                    seq: rec.seq,
                    knob: rec.knob,
                    from: rec.from,
                    baseline,
                });
            }
        }
        if newest.is_some() {
            self.pending = newest;
        }
        self.prev_rate = Some(rate);
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn eval(w: &mut RegressionWatchdog, t: u64) -> PolicyDecision {
        w.evaluate(t, Trigger::Periodic, &IntrospectionSnapshot::empty(t))
    }

    #[test]
    fn rolls_back_regressing_actuation() {
        let journal = Arc::new(ActuationJournal::new(16));
        let rate = Arc::new(AtomicU64::new(1_000));
        let r = rate.clone();
        let mut w = RegressionWatchdog::new(
            journal.clone(),
            move || r.load(Ordering::Relaxed) as f64,
            0.2,
        );
        assert_eq!(eval(&mut w, 0), PolicyDecision::noop());
        // A policy halves the cap; throughput craters.
        let seq = journal.record(10, "tuner", "thread_cap", 16, 2);
        assert_eq!(
            eval(&mut w, 10),
            PolicyDecision::noop(),
            "adopts suspect, no verdict yet"
        );
        rate.store(400, Ordering::Relaxed);
        let d = eval(&mut w, 20);
        assert_eq!(d, PolicyDecision::set("thread_cap", 16));
        assert_eq!(w.rollbacks(), 1);
        assert!(
            journal
                .records()
                .iter()
                .find(|r| r.seq == seq)
                .unwrap()
                .rolled_back
        );
    }

    #[test]
    fn tolerates_benign_actuation() {
        let journal = Arc::new(ActuationJournal::new(16));
        let rate = Arc::new(AtomicU64::new(1_000));
        let r = rate.clone();
        let mut w = RegressionWatchdog::new(
            journal.clone(),
            move || r.load(Ordering::Relaxed) as f64,
            0.2,
        );
        eval(&mut w, 0);
        journal.record(10, "tuner", "window", 8, 32);
        eval(&mut w, 10);
        rate.store(1_100, Ordering::Relaxed); // improved
        assert_eq!(eval(&mut w, 20), PolicyDecision::noop());
        assert_eq!(w.rollbacks(), 0);
    }

    #[test]
    fn small_dip_within_tolerance_not_rolled_back() {
        let journal = Arc::new(ActuationJournal::new(16));
        let rate = Arc::new(AtomicU64::new(1_000));
        let r = rate.clone();
        let mut w = RegressionWatchdog::new(
            journal.clone(),
            move || r.load(Ordering::Relaxed) as f64,
            0.2,
        );
        eval(&mut w, 0);
        journal.record(10, "tuner", "window", 8, 32);
        eval(&mut w, 10);
        rate.store(900, Ordering::Relaxed); // -10%, threshold is 20%
        assert_eq!(eval(&mut w, 20), PolicyDecision::noop());
    }

    #[test]
    fn ignores_its_own_rollback_writes() {
        let journal = Arc::new(ActuationJournal::new(16));
        let rate = Arc::new(AtomicU64::new(1_000));
        let r = rate.clone();
        let mut w = RegressionWatchdog::new(
            journal.clone(),
            move || r.load(Ordering::Relaxed) as f64,
            0.2,
        );
        eval(&mut w, 0);
        journal.record(10, "tuner", "cap", 16, 2);
        eval(&mut w, 10);
        rate.store(100, Ordering::Relaxed);
        assert_eq!(eval(&mut w, 20), PolicyDecision::set("cap", 16));
        // The engine would journal that rollback under the watchdog's name:
        journal.record(20, "regression-watchdog", "cap", 2, 16);
        rate.store(90, Ordering::Relaxed);
        assert_eq!(
            eval(&mut w, 30),
            PolicyDecision::noop(),
            "must not chase its own write"
        );
        assert_eq!(eval(&mut w, 40), PolicyDecision::noop());
        assert_eq!(w.rollbacks(), 1);
    }

    #[test]
    fn only_latest_foreign_actuation_is_suspect() {
        let journal = Arc::new(ActuationJournal::new(16));
        let rate = Arc::new(AtomicU64::new(1_000));
        let r = rate.clone();
        let mut w = RegressionWatchdog::new(
            journal.clone(),
            move || r.load(Ordering::Relaxed) as f64,
            0.2,
        );
        eval(&mut w, 0);
        journal.record(10, "a", "k1", 1, 2);
        journal.record(11, "b", "k2", 5, 9);
        eval(&mut w, 20);
        rate.store(1, Ordering::Relaxed);
        // Rolls back the most recent write only (k2).
        assert_eq!(eval(&mut w, 30), PolicyDecision::set("k2", 5));
    }

    #[test]
    fn ignores_registry_rollback_records() {
        // A rollback performed through KnobRegistry::rollback_last_of is
        // journalled with `rollback_of` set; the watchdog must not adopt
        // it as a suspect even though the actor ("rollback") is foreign.
        let journal = Arc::new(ActuationJournal::new(16));
        let rate = Arc::new(AtomicU64::new(1_000));
        let r = rate.clone();
        let mut w = RegressionWatchdog::new(
            journal.clone(),
            move || r.load(Ordering::Relaxed) as f64,
            0.2,
        );
        eval(&mut w, 0);
        let s = journal.record(10, "tuner", "cap", 16, 2);
        let actor = journal.intern("rollback");
        let knob = journal.names().lookup("cap").unwrap();
        journal.record_interned(11, actor, knob, 2, 16, Some(s));
        journal.mark_rolled_back(s);
        eval(&mut w, 20);
        rate.store(1, Ordering::Relaxed);
        assert_eq!(
            eval(&mut w, 30),
            PolicyDecision::noop(),
            "neither the rolled-back write nor its undo is a suspect"
        );
    }

    #[test]
    fn snapshot_throughput_mode_diffs_consecutive_snapshots() {
        let journal = Arc::new(ActuationJournal::new(16));
        let mut w = RegressionWatchdog::throughput(journal.clone(), 0.2);
        let snap = |t_s: u64, done: u64| IntrospectionSnapshot {
            total_completed: done,
            ..IntrospectionSnapshot::empty(t_s * 1_000_000_000)
        };
        // First evaluation: no rate yet, nothing adopted.
        assert_eq!(
            w.evaluate(0, Trigger::Periodic, &snap(1, 1000)),
            PolicyDecision::noop()
        );
        // Steady 1000 tasks/s baseline; a foreign actuation lands.
        journal.record(2_000_000_000, "tuner", "cap", 16, 2);
        assert_eq!(
            w.evaluate(0, Trigger::Periodic, &snap(2, 2000)),
            PolicyDecision::noop(),
            "adopts suspect at 1000/s baseline"
        );
        // Next second only 100 tasks complete: 90% drop => rollback.
        let d = w.evaluate(0, Trigger::Periodic, &snap(3, 2100));
        assert_eq!(d, PolicyDecision::set("cap", 16));
        assert_eq!(w.rollbacks(), 1);
    }
}
