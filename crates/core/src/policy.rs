//! The policy engine: periodic and event-triggered policies.
//!
//! A [`Policy`] inspects the [`IntrospectionSnapshot`] the engine hands it
//! and returns a [`PolicyDecision`] — typically a set of knob writes. The
//! engine supports two trigger styles, mirroring the
//! synchronous/asynchronous split in the observation layer:
//!
//! * **Periodic** policies run every `period_ns`. Under a wall clock the
//!   engine owns a ticker thread; under a virtual clock the simulator
//!   calls [`PolicyEngine::step`] as time advances — same policies, same
//!   semantics, no OS dependency.
//! * **Event-triggered** policies run inline when a matching event is
//!   dispatched (the engine is itself a [`Listener`]).
//! * **Threshold-triggered** policies subscribe to a [`ThresholdWatch`] —
//!   an edge-triggered predicate over striped counters or gauges ("queue
//!   depth crossed N", "p99 window moved more than x%"). Each
//!   [`PolicyEngine::step`] starts with a cheap watch scan (a handful of
//!   atomic folds, no snapshot); only when a watch fires (or a periodic
//!   policy is due) does the engine pay for a capture and run a round.
//!   This is the event-driven alternative to polling: the driver can call
//!   `step` at a high rate and rounds still only happen on activity.
//!
//! Each evaluation round captures **one** snapshot from the attached
//! [`Introspection`] facade and shares it across every policy that fires,
//! so all decisions in a round see the same coherent state. Decisions are
//! applied through the [`KnobRegistry`], so every actuation is
//! bounds-checked and journaled in the registry's single
//! [`ActuationJournal`] — there is no second, engine-private log.
//!
//! Rounds that actuate at least one knob record their **adaptation
//! latency** — wall-clock time from trigger detection to the last
//! journaled knob write — exposed via
//! [`PolicyEngine::adaptation_latency_last_ns`] /
//! [`PolicyEngine::adaptation_latency_mean_ns`] and surfaced in snapshots
//! as the stamped `policy.adaptation_latency_ns` gauge (wired by the
//! instance builder).

use crate::clock::Clock;
use crate::event::{Event, TaskId};
use crate::journal::ActuationJournal;
use crate::knob::{KnobRegistry, KnobTarget};
use crate::listener::Listener;
use crate::snapshot::{Introspection, IntrospectionSnapshot};
use lg_metrics::{CounterHandle, HighWaterArm, Welford};
use parking_lot::{Mutex, RwLock};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// What a policy wants done.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PolicyDecision {
    /// Knob writes to apply, as `(knob, value)`.
    pub sets: Vec<(KnobTarget, i64)>,
    /// If true, the policy is finished and should be deregistered.
    pub retire: bool,
}

impl PolicyDecision {
    /// A decision that does nothing.
    pub fn noop() -> Self {
        Self::default()
    }

    /// A decision setting a single knob (by [`crate::KnobId`] or name).
    pub fn set(knob: impl Into<KnobTarget>, value: i64) -> Self {
        Self {
            sets: vec![(knob.into(), value)],
            retire: false,
        }
    }

    /// Marks the policy finished after this decision.
    pub fn and_retire(mut self) -> Self {
        self.retire = true;
        self
    }

    /// A decision setting one knob in a tenant's namespace: governor
    /// policies write `set_scoped(t3, "thread_cap", 8)` to address the
    /// mirror knob `"t3.thread_cap"` without hand-building the name.
    pub fn set_scoped(tenant: crate::tenant::TenantId, knob: &str, value: i64) -> Self {
        Self::set(tenant.scoped(knob), value)
    }
}

/// A reactive adaptation rule.
pub trait Policy: Send {
    /// Diagnostic name.
    fn name(&self) -> &str;

    /// Called on each matching trigger with the current time and the
    /// round's shared introspection snapshot (empty if no facade is
    /// attached to the engine).
    fn evaluate(
        &mut self,
        now_ns: u64,
        trigger: Trigger<'_>,
        snapshot: &IntrospectionSnapshot,
    ) -> PolicyDecision;
}

/// Why a policy is being evaluated.
#[derive(Clone, Copy, Debug)]
pub enum Trigger<'a> {
    /// Periodic timer fired.
    Periodic,
    /// A matching event was dispatched.
    Event(&'a Event),
    /// The policy's [`ThresholdWatch`] crossed.
    Threshold,
}

/// An edge-triggered crossing predicate a policy can subscribe to instead
/// of polling (see [`PolicyEngine::register_threshold`]).
///
/// Checks are cheap — an atomic fold or a gauge closure, no snapshot — so
/// the engine scans every watch on every [`PolicyEngine::step`] and only
/// captures when one fires. All variants are edge-triggered: a watch fires
/// once per crossing, not continuously while the condition holds.
pub struct ThresholdWatch {
    kind: WatchKind,
}

enum WatchKind {
    /// Fires when the reading rises above `threshold`; re-arms once it
    /// falls back to or below (hysteresis by edge, not by band).
    GaugeAbove {
        read: Box<dyn Fn() -> f64 + Send>,
        threshold: f64,
        armed: bool,
    },
    /// Mirror image: fires on falling below, re-arms at or above.
    GaugeBelow {
        read: Box<dyn Fn() -> f64 + Send>,
        threshold: f64,
        armed: bool,
    },
    /// Fires when a (typically striped) counter advanced by at least
    /// `delta` since the last firing.
    CounterDelta {
        counter: CounterHandle,
        delta: u64,
        last: Option<u64>,
    },
    /// Fires when the reading moved by more than `frac` (relative) since
    /// the last firing — "p99 window moved >10%".
    RelChange {
        read: Box<dyn Fn() -> f64 + Send>,
        frac: f64,
        last: Option<f64>,
    },
    /// Write-side variant of [`WatchKind::CounterDelta`]: the counter's
    /// *writers* arm the crossing (a [`HighWaterArm`] latched from
    /// `CounterHandle::add`), so the engine's scan is a single `Acquire`
    /// load instead of a striped fold — and when every threshold policy
    /// uses this kind, idle [`PolicyEngine::step`]s skip the scan (and the
    /// policies lock) entirely.
    CounterArmed { arm: HighWaterArm, delta: u64 },
}

impl ThresholdWatch {
    /// Fires when `read()` rises above `threshold` (re-arms on falling
    /// back). Non-finite readings never fire and never re-arm.
    pub fn gauge_above(read: impl Fn() -> f64 + Send + 'static, threshold: f64) -> Self {
        Self {
            kind: WatchKind::GaugeAbove {
                read: Box::new(read),
                threshold,
                armed: true,
            },
        }
    }

    /// Fires when `read()` falls below `threshold` (re-arms on rising
    /// back).
    pub fn gauge_below(read: impl Fn() -> f64 + Send + 'static, threshold: f64) -> Self {
        Self {
            kind: WatchKind::GaugeBelow {
                read: Box::new(read),
                threshold,
                armed: true,
            },
        }
    }

    /// Fires when `counter` advanced by at least `delta` since the watch
    /// last fired (the first check only records the baseline).
    ///
    /// # Panics
    /// Panics if `delta` is zero.
    pub fn counter_delta(counter: CounterHandle, delta: u64) -> Self {
        assert!(delta > 0, "counter delta must be positive");
        Self {
            kind: WatchKind::CounterDelta {
                counter,
                delta,
                last: None,
            },
        }
    }

    /// Write-side equivalent of [`ThresholdWatch::counter_delta`]: arms a
    /// [`HighWaterArm`] on `counter` **immediately** (so unlike the scan
    /// variant, which spends its first check recording a baseline, the
    /// first `delta` increments from *now* fire the watch — matching the
    /// scan variant checked once at registration time). Crossings are
    /// detected by the counter's writers, not by the engine's scan: an
    /// idle engine whose threshold policies all use armed watches steps
    /// without touching the counter at all. Each firing re-arms `delta`
    /// above the total accumulated at consumption time — the same
    /// re-baselining (`last = cur`) the scan variant performs.
    ///
    /// # Panics
    /// Panics if `delta` is zero.
    pub fn counter_delta_armed(counter: &CounterHandle, delta: u64) -> Self {
        assert!(delta > 0, "counter delta must be positive");
        Self {
            kind: WatchKind::CounterArmed {
                arm: counter.arm_high_water(delta),
                delta,
            },
        }
    }

    /// Fires when `read()` moved by more than `frac` (relative to the
    /// value at the last firing). The first finite reading only records
    /// the baseline.
    ///
    /// # Panics
    /// Panics if `frac` is not positive.
    pub fn relative_change(read: impl Fn() -> f64 + Send + 'static, frac: f64) -> Self {
        assert!(frac > 0.0, "relative-change fraction must be positive");
        Self {
            kind: WatchKind::RelChange {
                read: Box::new(read),
                frac,
                last: None,
            },
        }
    }

    /// Edge-check outside an engine: returns true exactly once per
    /// crossing, then re-arms per the watch kind's hysteresis rule.
    /// Drivers that own their own control loop (e.g. a phase controller
    /// stepping a simulation) can poll this directly instead of
    /// registering the watch on a [`PolicyEngine`].
    pub fn poll(&mut self) -> bool {
        self.check()
    }

    /// Edge-check: returns true exactly once per crossing.
    fn check(&mut self) -> bool {
        match &mut self.kind {
            WatchKind::GaugeAbove {
                read,
                threshold,
                armed,
            } => {
                let v = read();
                if !v.is_finite() {
                    return false;
                }
                let above = v > *threshold;
                let fire = above && *armed;
                *armed = !above;
                fire
            }
            WatchKind::GaugeBelow {
                read,
                threshold,
                armed,
            } => {
                let v = read();
                if !v.is_finite() {
                    return false;
                }
                let below = v < *threshold;
                let fire = below && *armed;
                *armed = !below;
                fire
            }
            WatchKind::CounterDelta {
                counter,
                delta,
                last,
            } => {
                let cur = counter.get();
                match last {
                    None => {
                        *last = Some(cur);
                        false
                    }
                    Some(l) if cur.saturating_sub(*l) >= *delta => {
                        *last = Some(cur);
                        true
                    }
                    Some(_) => false,
                }
            }
            WatchKind::RelChange { read, frac, last } => {
                let v = read();
                if !v.is_finite() {
                    return false;
                }
                match last {
                    None => {
                        *last = Some(v);
                        false
                    }
                    Some(l) => {
                        let moved = (v - *l).abs() > *frac * l.abs().max(f64::MIN_POSITIVE);
                        if moved {
                            *last = Some(v);
                        }
                        moved
                    }
                }
            }
            WatchKind::CounterArmed { arm, delta } => {
                if arm.fired() {
                    arm.rearm(*delta);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// True when crossings are detected by the counter's writers, so the
    /// engine need not scan this watch while no arm has latched.
    fn is_write_armed(&self) -> bool {
        matches!(self.kind, WatchKind::CounterArmed { .. })
    }

    /// Routes latch notifications to `stamp` (bumped from the writing
    /// thread, once per latch). No-op for scan-based kinds.
    fn route_latches_to(&self, stamp: Arc<AtomicU64>) {
        if let WatchKind::CounterArmed { arm, .. } = &self.kind {
            arm.set_hook(move || {
                stamp.fetch_add(1, Ordering::Release);
            });
        }
    }

    /// Detaches any write-side arm from its counter's write path. Called
    /// when the owning policy is deregistered, retired, or quarantined so
    /// abandoned watches stop taxing the counter's writers.
    fn detach(&self) {
        if let WatchKind::CounterArmed { arm, .. } = &self.kind {
            arm.disarm();
        }
    }
}

impl std::fmt::Debug for ThresholdWatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match &self.kind {
            WatchKind::GaugeAbove { threshold, .. } => format!("gauge_above({threshold})"),
            WatchKind::GaugeBelow { threshold, .. } => format!("gauge_below({threshold})"),
            WatchKind::CounterDelta { delta, .. } => format!("counter_delta({delta})"),
            WatchKind::RelChange { frac, .. } => format!("relative_change({frac})"),
            WatchKind::CounterArmed { delta, .. } => format!("counter_delta_armed({delta})"),
        };
        f.debug_tuple("ThresholdWatch").field(&name).finish()
    }
}

/// Handle identifying a registered policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PolicyHandle(u64);

/// Event filter for event-triggered policies.
pub type EventFilter = Box<dyn Fn(&Event) -> bool + Send + Sync>;

struct Registered {
    id: u64,
    policy: Box<dyn Policy>,
    /// The policy's name interned in the journal at registration, so its
    /// actuations journal allocation-free.
    actor: TaskId,
    kind: Kind,
    consecutive_panics: u32,
    quarantined: bool,
}

enum Kind {
    Periodic {
        period_ns: u64,
        next_due_ns: u64,
    },
    Triggered {
        filter: EventFilter,
    },
    Threshold {
        watch: ThresholdWatch,
        /// Set by the cheap scan at the top of `step`, consumed by the
        /// evaluation pass of the same round.
        fired: bool,
    },
}

/// The policy engine.
///
/// Owns registered policies; applies their decisions through the knob
/// registry. Use [`PolicyEngine::step`] to advance periodic policies under
/// an explicit clock reading, or [`PolicyEngine::spawn_ticker`] to drive
/// them from a wall-clock thread.
pub struct PolicyEngine {
    policies: Mutex<Vec<Registered>>,
    knobs: Arc<KnobRegistry>,
    /// The knob registry's journal (one journal per control plane).
    journal: Arc<ActuationJournal>,
    /// The read-side facade evaluations snapshot from, once attached.
    introspection: RwLock<Option<Arc<Introspection>>>,
    next_id: AtomicU64,
    evaluations: AtomicU64,
    actuations: AtomicU64,
    panics: AtomicU64,
    quarantine_threshold: AtomicU64,
    /// Adaptation latency (trigger detection → last journaled knob write)
    /// of the most recent actuating round, nanoseconds. `u64::MAX` until
    /// a round actuates.
    last_latency_ns: AtomicU64,
    /// Streaming stats over every actuating round's latency.
    latency_stats: Mutex<Welford>,
    /// Bumped whenever a new latency is recorded — the dirtiness stamp
    /// for the `policy.adaptation_latency_ns` snapshot gauge.
    latency_stamp: Arc<AtomicU64>,
    /// Bumped (from the *writing* thread) whenever a write-side armed
    /// watch latches. `step` compares it against `armed_seen` to decide
    /// whether armed watches could possibly have anything to report.
    armed_stamp: Arc<AtomicU64>,
    /// The `armed_stamp` value the last full scan started from.
    armed_seen: AtomicU64,
    /// Live policies that *require* a per-step scan (periodic due dates,
    /// scan-based threshold watches). When zero, a step with a clean
    /// `armed_stamp` returns without taking the policies lock.
    scan_needed: AtomicU64,
    /// Steps that returned through the armed fast path (diagnostic).
    fast_steps: AtomicU64,
}

impl PolicyEngine {
    /// Consecutive panics before a policy is quarantined, by default.
    pub const DEFAULT_QUARANTINE_THRESHOLD: u32 = 3;

    /// Actuation records retained for rollback, by default (the knob
    /// registry's journal capacity).
    pub const DEFAULT_JOURNAL_CAPACITY: usize = crate::journal::DEFAULT_JOURNAL_CAPACITY;

    /// Creates an engine applying decisions to `knobs`. The engine shares
    /// the registry's actuation journal rather than keeping its own.
    pub fn new(knobs: Arc<KnobRegistry>) -> Arc<Self> {
        let journal = knobs.journal().clone();
        Arc::new(Self {
            policies: Mutex::new(Vec::new()),
            knobs,
            journal,
            introspection: RwLock::new(None),
            next_id: AtomicU64::new(1),
            evaluations: AtomicU64::new(0),
            actuations: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            quarantine_threshold: AtomicU64::new(Self::DEFAULT_QUARANTINE_THRESHOLD as u64),
            last_latency_ns: AtomicU64::new(u64::MAX),
            latency_stats: Mutex::new(Welford::default()),
            latency_stamp: Arc::new(AtomicU64::new(0)),
            armed_stamp: Arc::new(AtomicU64::new(0)),
            armed_seen: AtomicU64::new(0),
            scan_needed: AtomicU64::new(0),
            fast_steps: AtomicU64::new(0),
        })
    }

    /// Attaches the introspection facade whose snapshots evaluations
    /// receive. Until attached, policies see [`IntrospectionSnapshot::empty`].
    pub fn attach_introspection(&self, introspection: Arc<Introspection>) {
        *self.introspection.write() = Some(introspection);
    }

    /// Captures the round's shared snapshot (or an empty one when no
    /// facade is attached). Called *outside* the policies lock so metric
    /// sources can never deadlock against registration.
    fn capture_or_empty(&self, now_ns: u64) -> IntrospectionSnapshot {
        match self.introspection.read().as_ref() {
            Some(i) => i.capture(now_ns),
            None => IntrospectionSnapshot::empty(now_ns),
        }
    }

    /// Recounts the live policies whose trigger can only be detected by
    /// scanning under the lock. Called whenever the policy set (or a
    /// policy's quarantine state) changes; `ps` is the already-locked
    /// vector so the count is coherent with the change that prompted it.
    fn recompute_scan_needed(&self, ps: &[Registered]) {
        let n = ps
            .iter()
            .filter(|r| !r.quarantined)
            .filter(|r| match &r.kind {
                Kind::Periodic { .. } => true,
                Kind::Threshold { watch, .. } => !watch.is_write_armed(),
                Kind::Triggered { .. } => false,
            })
            .count() as u64;
        self.scan_needed.store(n, Ordering::Release);
    }

    /// Registers a periodic policy first due at `now_ns + period_ns`.
    pub fn register_periodic(
        &self,
        policy: Box<dyn Policy>,
        period_ns: u64,
        now_ns: u64,
    ) -> PolicyHandle {
        assert!(period_ns > 0, "period must be positive");
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let actor = self.knobs.actor(policy.name());
        let mut ps = self.policies.lock();
        ps.push(Registered {
            id,
            policy,
            actor,
            kind: Kind::Periodic {
                period_ns,
                next_due_ns: now_ns + period_ns,
            },
            consecutive_panics: 0,
            quarantined: false,
        });
        self.recompute_scan_needed(&ps);
        PolicyHandle(id)
    }

    /// Registers an event-triggered policy with a filter.
    pub fn register_triggered(&self, policy: Box<dyn Policy>, filter: EventFilter) -> PolicyHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let actor = self.knobs.actor(policy.name());
        self.policies.lock().push(Registered {
            id,
            policy,
            actor,
            kind: Kind::Triggered { filter },
            consecutive_panics: 0,
            quarantined: false,
        });
        PolicyHandle(id)
    }

    /// Registers a threshold-triggered policy: it evaluates (with
    /// [`Trigger::Threshold`]) only in rounds where `watch` fired. The
    /// watch is checked by the cheap scan at the top of every
    /// [`PolicyEngine::step`], so drivers can step at a high rate without
    /// paying for captures or evaluations while the watched signal is
    /// quiet.
    pub fn register_threshold(
        &self,
        policy: Box<dyn Policy>,
        watch: ThresholdWatch,
    ) -> PolicyHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let actor = self.knobs.actor(policy.name());
        // Write-side armed watches notify the engine through the armed
        // stamp, so idle steps need not even glance at them.
        watch.route_latches_to(self.armed_stamp.clone());
        let mut ps = self.policies.lock();
        ps.push(Registered {
            id,
            policy,
            actor,
            kind: Kind::Threshold {
                watch,
                fired: false,
            },
            consecutive_panics: 0,
            quarantined: false,
        });
        self.recompute_scan_needed(&ps);
        PolicyHandle(id)
    }

    /// Deregisters a policy; returns true if it was present. A write-side
    /// armed watch is detached from its counter's write path.
    pub fn deregister(&self, handle: PolicyHandle) -> bool {
        let mut ps = self.policies.lock();
        let before = ps.len();
        ps.retain(|r| {
            if r.id != handle.0 {
                return true;
            }
            if let Kind::Threshold { watch, .. } = &r.kind {
                watch.detach();
            }
            false
        });
        let removed = ps.len() != before;
        if removed {
            self.recompute_scan_needed(&ps);
        }
        removed
    }

    /// Number of registered policies.
    pub fn policy_count(&self) -> usize {
        self.policies.lock().len()
    }

    /// Total policy evaluations.
    pub fn evaluations(&self) -> u64 {
        self.evaluations.load(Ordering::Relaxed)
    }

    /// Total knob writes applied on behalf of policies.
    pub fn actuations(&self) -> u64 {
        self.actuations.load(Ordering::Relaxed)
    }

    /// Total policy evaluations that panicked (and were contained).
    pub fn panics(&self) -> u64 {
        self.panics.load(Ordering::Relaxed)
    }

    /// Steps that returned through the armed fast path — no policies
    /// lock, no watch scan, no snapshot. Non-zero only when every live
    /// policy's trigger is push-based (write-side armed watches and
    /// event-triggered policies) and no arm latched since the last scan.
    pub fn fast_path_steps(&self) -> u64 {
        self.fast_steps.load(Ordering::Relaxed)
    }

    /// Adaptation latency of the most recent round that actuated a knob:
    /// wall-clock nanoseconds from trigger detection to the last journaled
    /// write. `None` until a round actuates.
    pub fn adaptation_latency_last_ns(&self) -> Option<u64> {
        match self.last_latency_ns.load(Ordering::Relaxed) {
            u64::MAX => None,
            ns => Some(ns),
        }
    }

    /// Mean adaptation latency over every actuating round so far.
    pub fn adaptation_latency_mean_ns(&self) -> Option<f64> {
        let stats = self.latency_stats.lock();
        (!stats.is_empty()).then(|| stats.mean())
    }

    /// Number of rounds that actuated at least one knob (and therefore
    /// recorded a latency).
    pub fn adaptation_rounds(&self) -> u64 {
        self.latency_stats.lock().count()
    }

    /// The stamp bumped whenever a new adaptation latency is recorded —
    /// register it with
    /// [`crate::snapshot::Introspection::register_gauge_stamped`] so the
    /// latency gauge only re-evaluates after actuating rounds.
    pub fn latency_stamp(&self) -> Arc<AtomicU64> {
        self.latency_stamp.clone()
    }

    /// Records an actuating round's latency from its trigger-detection
    /// instant.
    fn record_latency(&self, started: Instant) {
        let ns = started.elapsed().as_nanos() as u64;
        self.last_latency_ns.store(ns, Ordering::Relaxed);
        self.latency_stats.lock().update(ns as f64);
        self.latency_stamp.fetch_add(1, Ordering::Release);
    }

    /// Sets how many consecutive panics quarantine a policy.
    ///
    /// # Panics
    /// Panics if `n` is zero.
    pub fn set_quarantine_threshold(&self, n: u32) {
        assert!(n > 0, "quarantine threshold must be positive");
        self.quarantine_threshold.store(n as u64, Ordering::Relaxed);
    }

    /// Names of quarantined policies (still registered, never evaluated
    /// again this session).
    pub fn quarantined(&self) -> Vec<String> {
        self.policies
            .lock()
            .iter()
            .filter(|r| r.quarantined)
            .map(|r| r.policy.name().to_owned())
            .collect()
    }

    /// Number of quarantined policies.
    pub fn quarantined_count(&self) -> usize {
        self.policies
            .lock()
            .iter()
            .filter(|r| r.quarantined)
            .count()
    }

    /// The actuation journal — the knob registry's single audit trail
    /// (share it with a [`crate::watchdog::RegressionWatchdog`] to enable
    /// rollback).
    pub fn journal(&self) -> &Arc<ActuationJournal> {
        &self.journal
    }

    /// Rolls back the most recent non-rolled-back journalled write to
    /// `knob`, restoring its pre-actuation value. Returns the restored
    /// value, or `None` if no such write is retained. Delegates to the
    /// registry so the undo is itself journaled and raceless.
    pub fn rollback_last_of(&self, knob: &str) -> Option<i64> {
        self.knobs.rollback_last_of(knob)
    }

    fn apply(&self, now_ns: u64, actor: TaskId, decision: &PolicyDecision) {
        for (target, value) in &decision.sets {
            let id = match target {
                KnobTarget::Id(id) => Some(*id),
                KnobTarget::Name(name) => self.knobs.id(name),
            };
            let applied = id.and_then(|id| self.knobs.set_id_as(id, *value, actor, now_ns));
            if applied.is_some() {
                self.actuations.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Evaluates one registered policy with panic containment. Returns
    /// `None` if the policy panicked (and possibly got quarantined).
    fn evaluate_guarded(
        r: &mut Registered,
        now_ns: u64,
        trigger: Trigger<'_>,
        snapshot: &IntrospectionSnapshot,
        panics: &AtomicU64,
        threshold: u32,
    ) -> Option<PolicyDecision> {
        match catch_unwind(AssertUnwindSafe(|| {
            r.policy.evaluate(now_ns, trigger, snapshot)
        })) {
            Ok(d) => {
                r.consecutive_panics = 0;
                Some(d)
            }
            Err(_) => {
                panics.fetch_add(1, Ordering::Relaxed);
                r.consecutive_panics += 1;
                if r.consecutive_panics >= threshold {
                    r.quarantined = true;
                }
                None
            }
        }
    }

    /// True if any live periodic policy is due at `now_ns`.
    fn any_periodic_due(&self, now_ns: u64) -> bool {
        self.policies.lock().iter().any(|r| {
            !r.quarantined
                && matches!(&r.kind, Kind::Periodic { next_due_ns, .. } if now_ns >= *next_due_ns)
        })
    }

    /// Runs one control round at `now_ns`: every due periodic policy plus
    /// every threshold policy whose watch fired.
    ///
    /// Starts with a cheap scan — threshold watch checks (atomic folds /
    /// gauge reads) and periodic due dates — and returns without capturing
    /// a snapshot when nothing fired, so drivers may call `step` at a high
    /// rate and idle steps stay near-free. A periodic policy that fell
    /// multiple periods behind fires once and is rescheduled from `now_ns`
    /// (no catch-up bursts). A policy whose evaluation panics is contained
    /// (the panic does not escape), and after
    /// [`PolicyEngine::set_quarantine_threshold`] consecutive panics it is
    /// quarantined: registered but never evaluated again. Rounds that
    /// actuate a knob record their adaptation latency (see
    /// [`PolicyEngine::adaptation_latency_last_ns`]). Returns the number
    /// of evaluations (panicked evaluations included).
    pub fn step(&self, now_ns: u64) -> usize {
        let started = Instant::now();
        // Armed fast path: when every live policy's trigger is pushed to
        // the engine (write-side armed watches, event-triggered policies)
        // and no arm has latched since the last scan, the step is two
        // atomic loads — no lock, no watch scan. The stamp is sampled
        // *before* deciding, and recorded before scanning, so a latch
        // racing the scan at worst costs one redundant scan next step.
        let stamp = self.armed_stamp.load(Ordering::Acquire);
        if self.scan_needed.load(Ordering::Acquire) == 0
            && stamp == self.armed_seen.load(Ordering::Relaxed)
        {
            self.fast_steps.fetch_add(1, Ordering::Relaxed);
            return 0;
        }
        self.armed_seen.store(stamp, Ordering::Relaxed);
        // Cheap scan: edge-check every threshold watch. Watches must be
        // checked even when no periodic policy is due — crossings are the
        // whole point of not polling.
        let mut any_threshold = false;
        {
            let mut ps = self.policies.lock();
            for r in ps.iter_mut() {
                if r.quarantined {
                    continue;
                }
                if let Kind::Threshold { watch, fired } = &mut r.kind {
                    if watch.check() {
                        *fired = true;
                    }
                    any_threshold |= *fired;
                }
            }
        }
        if !any_threshold && !self.any_periodic_due(now_ns) {
            return 0;
        }
        // One snapshot per round, captured outside the policies lock.
        let snapshot = self.capture_or_empty(now_ns);
        let threshold = self.quarantine_threshold.load(Ordering::Relaxed) as u32;
        let mut decisions: Vec<(TaskId, PolicyDecision)> = Vec::new();
        let mut fired_count = 0usize;
        {
            let mut ps = self.policies.lock();
            let mut retired: Vec<u64> = Vec::new();
            for r in ps.iter_mut() {
                if r.quarantined {
                    continue;
                }
                let trigger = match &mut r.kind {
                    Kind::Periodic {
                        period_ns,
                        next_due_ns,
                    } => {
                        if now_ns < *next_due_ns {
                            continue;
                        }
                        *next_due_ns = now_ns + *period_ns;
                        Trigger::Periodic
                    }
                    Kind::Threshold { fired, .. } => {
                        if !*fired {
                            continue;
                        }
                        *fired = false;
                        Trigger::Threshold
                    }
                    Kind::Triggered { .. } => continue,
                };
                fired_count += 1;
                let d =
                    Self::evaluate_guarded(r, now_ns, trigger, &snapshot, &self.panics, threshold);
                if let Some(d) = d {
                    if d.retire {
                        retired.push(r.id);
                    }
                    decisions.push((r.actor, d));
                }
            }
            if !retired.is_empty() {
                ps.retain(|r| {
                    if !retired.contains(&r.id) {
                        return true;
                    }
                    if let Kind::Threshold { watch, .. } = &r.kind {
                        watch.detach();
                    }
                    false
                });
            }
            // Quarantined policies are skipped forever; detach their arms
            // so abandoned watches stop taxing the counter's writers
            // (disarm is idempotent — repeat detaches are no-ops).
            for r in ps.iter() {
                if r.quarantined {
                    if let Kind::Threshold { watch, .. } = &r.kind {
                        watch.detach();
                    }
                }
            }
            self.recompute_scan_needed(&ps);
        }
        // Apply outside the policy lock: knob sets may be observed by
        // listeners that re-enter the engine.
        let acts_before = self.actuations.load(Ordering::Relaxed);
        for (actor, d) in &decisions {
            self.apply(now_ns, *actor, d);
        }
        if self.actuations.load(Ordering::Relaxed) > acts_before {
            self.record_latency(started);
        }
        self.evaluations
            .fetch_add(fired_count as u64, Ordering::Relaxed);
        fired_count
    }

    /// Spawns a wall-clock ticker driving [`PolicyEngine::step`] every
    /// `period`. Returns a guard that stops the ticker when dropped.
    pub fn spawn_ticker(
        self: &Arc<Self>,
        clock: Arc<dyn Clock>,
        period: std::time::Duration,
    ) -> TickerGuard {
        assert!(!period.is_zero(), "ticker period must be positive");
        let stop = Arc::new(AtomicBool::new(false));
        let engine = self.clone();
        let thread_stop = stop.clone();
        let handle = std::thread::Builder::new()
            .name("lg-policy-ticker".into())
            .spawn(move || {
                while !thread_stop.load(Ordering::Acquire) {
                    std::thread::sleep(period);
                    engine.step(clock.now_ns());
                }
            })
            .expect("failed to spawn policy ticker");
        TickerGuard {
            stop,
            handle: Some(handle),
        }
    }
}

impl Listener for PolicyEngine {
    fn name(&self) -> &str {
        "policy-engine"
    }

    fn on_event(&self, event: &Event) {
        // Evaluate matching triggered policies. Decisions are collected
        // under the lock, applied after, and retirement honored. Panics
        // are contained exactly as in [`PolicyEngine::step`]. The
        // snapshot is captured only when at least one filter matches, so
        // the no-match fast path (every event flows through here) stays a
        // filter scan.
        let started = Instant::now();
        let matches_any = {
            let ps = self.policies.lock();
            ps.iter().any(|r| {
                !r.quarantined && matches!(&r.kind, Kind::Triggered { filter } if filter(event))
            })
        };
        if !matches_any {
            return;
        }
        let snapshot = self.capture_or_empty(event.t_ns());
        let threshold = self.quarantine_threshold.load(Ordering::Relaxed) as u32;
        let mut decisions: Vec<(TaskId, PolicyDecision)> = Vec::new();
        let mut fired = 0u64;
        {
            let mut ps = self.policies.lock();
            let mut retired: Vec<u64> = Vec::new();
            for r in ps.iter_mut() {
                if r.quarantined {
                    continue;
                }
                if let Kind::Triggered { filter } = &r.kind {
                    if filter(event) {
                        fired += 1;
                        let d = Self::evaluate_guarded(
                            r,
                            event.t_ns(),
                            Trigger::Event(event),
                            &snapshot,
                            &self.panics,
                            threshold,
                        );
                        if let Some(d) = d {
                            if d.retire {
                                retired.push(r.id);
                            }
                            decisions.push((r.actor, d));
                        }
                    }
                }
            }
            if !retired.is_empty() {
                ps.retain(|r| !retired.contains(&r.id));
            }
        }
        self.evaluations.fetch_add(fired, Ordering::Relaxed);
        let acts_before = self.actuations.load(Ordering::Relaxed);
        for (actor, d) in &decisions {
            self.apply(event.t_ns(), *actor, d);
        }
        if self.actuations.load(Ordering::Relaxed) > acts_before {
            self.record_latency(started);
        }
    }
}

impl std::fmt::Debug for PolicyEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PolicyEngine")
            .field("policies", &self.policy_count())
            .field("evaluations", &self.evaluations())
            .field("actuations", &self.actuations())
            .finish()
    }
}

/// Stops the ticker thread on drop.
pub struct TickerGuard {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Drop for TickerGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// A policy built from a closure — the common case for simple rules.
pub struct FnPolicy<F>
where
    F: FnMut(u64, Trigger<'_>, &IntrospectionSnapshot) -> PolicyDecision + Send,
{
    name: String,
    f: F,
}

impl<F> FnPolicy<F>
where
    F: FnMut(u64, Trigger<'_>, &IntrospectionSnapshot) -> PolicyDecision + Send,
{
    /// Wraps `f` as a policy called `name`.
    pub fn new(name: impl Into<String>, f: F) -> Box<Self> {
        Box::new(Self {
            name: name.into(),
            f,
        })
    }
}

impl<F> Policy for FnPolicy<F>
where
    F: FnMut(u64, Trigger<'_>, &IntrospectionSnapshot) -> PolicyDecision + Send,
{
    fn name(&self) -> &str {
        &self.name
    }
    fn evaluate(
        &mut self,
        now_ns: u64,
        trigger: Trigger<'_>,
        snapshot: &IntrospectionSnapshot,
    ) -> PolicyDecision {
        (self.f)(now_ns, trigger, snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knob::{AtomicKnob, KnobSpec};

    fn registry_with(name: &str, min: i64, max: i64, init: i64) -> Arc<KnobRegistry> {
        let reg = Arc::new(KnobRegistry::new());
        reg.register(AtomicKnob::new(KnobSpec::new(name, min, max), init));
        reg
    }

    #[test]
    fn periodic_policy_fires_on_schedule() {
        let knobs = registry_with("cap", 1, 32, 32);
        let engine = PolicyEngine::new(knobs.clone());
        let fired = Arc::new(AtomicU64::new(0));
        let fc = fired.clone();
        engine.register_periodic(
            FnPolicy::new("p", move |_, _, _| {
                fc.fetch_add(1, Ordering::Relaxed);
                PolicyDecision::noop()
            }),
            100,
            0,
        );
        assert_eq!(engine.step(50), 0, "not yet due");
        assert_eq!(engine.step(100), 1);
        assert_eq!(engine.step(150), 0, "rescheduled to 200");
        assert_eq!(engine.step(500), 1, "no catch-up burst");
        assert_eq!(fired.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn decisions_actuate_knobs() {
        let knobs = registry_with("cap", 1, 32, 32);
        let engine = PolicyEngine::new(knobs.clone());
        engine.register_periodic(
            FnPolicy::new("throttle", |_, _, _| PolicyDecision::set("cap", 8)),
            10,
            0,
        );
        engine.step(10);
        assert_eq!(knobs.value("cap"), Some(8));
        assert_eq!(engine.actuations(), 1);
    }

    #[test]
    fn decisions_can_target_knob_ids() {
        let knobs = Arc::new(KnobRegistry::new());
        let id = knobs.register(AtomicKnob::new(KnobSpec::new("cap", 1, 32), 32));
        let engine = PolicyEngine::new(knobs.clone());
        engine.register_periodic(
            FnPolicy::new("typed", move |_, _, _| PolicyDecision::set(id, 4)),
            10,
            0,
        );
        engine.step(10);
        assert_eq!(knobs.value_id(id), Some(4));
        assert_eq!(engine.actuations(), 1);
        let recs = engine.journal().records();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].policy, "typed");
    }

    #[test]
    fn out_of_bounds_sets_are_clamped() {
        let knobs = registry_with("cap", 1, 16, 16);
        let engine = PolicyEngine::new(knobs.clone());
        engine.register_periodic(
            FnPolicy::new("wild", |_, _, _| PolicyDecision::set("cap", 10_000)),
            10,
            0,
        );
        engine.step(10);
        assert_eq!(knobs.value("cap"), Some(16));
    }

    #[test]
    fn unknown_knob_does_not_count_as_actuation() {
        let knobs = registry_with("cap", 1, 16, 16);
        let engine = PolicyEngine::new(knobs);
        engine.register_periodic(
            FnPolicy::new("typo", |_, _, _| PolicyDecision::set("cpa", 2)),
            10,
            0,
        );
        engine.step(10);
        assert_eq!(engine.actuations(), 0);
    }

    #[test]
    fn triggered_policy_filters_events() {
        let knobs = registry_with("window", 1, 512, 1);
        let engine = PolicyEngine::new(knobs.clone());
        engine.register_triggered(
            FnPolicy::new("on-phase", |_, trigger, _| {
                if let Trigger::Event(Event::PhaseBegin { .. }) = trigger {
                    PolicyDecision::set("window", 64)
                } else {
                    PolicyDecision::noop()
                }
            }),
            Box::new(|e| matches!(e, Event::PhaseBegin { .. })),
        );
        let names = crate::event::TaskNames::new();
        let phase = names.intern("ph");
        engine.on_event(&Event::PeriodicTick { t_ns: 0 });
        assert_eq!(knobs.value("window"), Some(1), "filter must gate");
        engine.on_event(&Event::PhaseBegin { phase, t_ns: 1 });
        assert_eq!(knobs.value("window"), Some(64));
        assert_eq!(engine.evaluations(), 1);
    }

    #[test]
    fn retire_removes_triggered_policy() {
        let knobs = registry_with("k", 0, 10, 0);
        let engine = PolicyEngine::new(knobs.clone());
        engine.register_triggered(
            FnPolicy::new("once", |_, _, _| PolicyDecision::set("k", 5).and_retire()),
            Box::new(|_| true),
        );
        engine.on_event(&Event::PeriodicTick { t_ns: 0 });
        assert_eq!(engine.policy_count(), 0);
        knobs.set("k", 0);
        engine.on_event(&Event::PeriodicTick { t_ns: 1 });
        assert_eq!(
            knobs.value("k"),
            Some(0),
            "retired policy must not fire again"
        );
    }

    #[test]
    fn deregister_by_handle() {
        let knobs = registry_with("k", 0, 10, 0);
        let engine = PolicyEngine::new(knobs);
        let h =
            engine.register_periodic(FnPolicy::new("p", |_, _, _| PolicyDecision::noop()), 10, 0);
        assert_eq!(engine.policy_count(), 1);
        assert!(engine.deregister(h));
        assert_eq!(engine.policy_count(), 0);
        assert!(!engine.deregister(h));
    }

    #[test]
    fn multiple_periodic_policies_independent_schedules() {
        let knobs = registry_with("k", 0, 100, 0);
        let engine = PolicyEngine::new(knobs);
        let fast = Arc::new(AtomicU64::new(0));
        let slow = Arc::new(AtomicU64::new(0));
        let (f, s) = (fast.clone(), slow.clone());
        engine.register_periodic(
            FnPolicy::new("fast", move |_, _, _| {
                f.fetch_add(1, Ordering::Relaxed);
                PolicyDecision::noop()
            }),
            10,
            0,
        );
        engine.register_periodic(
            FnPolicy::new("slow", move |_, _, _| {
                s.fetch_add(1, Ordering::Relaxed);
                PolicyDecision::noop()
            }),
            100,
            0,
        );
        for t in (10..=100).step_by(10) {
            engine.step(t);
        }
        assert_eq!(fast.load(Ordering::Relaxed), 10);
        assert_eq!(slow.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn evaluations_receive_the_attached_snapshot() {
        use crate::concurrency::ConcurrencyListener;
        use crate::event::TaskNames;
        use crate::profile::ProfileListener;

        let knobs = registry_with("cap", 1, 32, 32);
        let engine = PolicyEngine::new(knobs.clone());
        let names = TaskNames::new();
        let intro = Arc::new(Introspection::new(
            Arc::new(ProfileListener::new(names)),
            Arc::new(ConcurrencyListener::new(16)),
        ));
        let gauge = intro.register_gauge("load", || 0.75);
        engine.attach_introspection(intro);
        let seen = Arc::new(Mutex::new(None));
        let sc = seen.clone();
        engine.register_periodic(
            FnPolicy::new("reader", move |_, _, snap: &IntrospectionSnapshot| {
                *sc.lock() = Some((snap.t_ns, snap.value(gauge)));
                PolicyDecision::noop()
            }),
            10,
            0,
        );
        engine.step(10);
        assert_eq!(*seen.lock(), Some((10, Some(0.75))));
    }

    #[test]
    fn unattached_engine_hands_policies_an_empty_snapshot() {
        let knobs = registry_with("k", 0, 10, 0);
        let engine = PolicyEngine::new(knobs);
        let seen = Arc::new(AtomicU64::new(u64::MAX));
        let sc = seen.clone();
        engine.register_periodic(
            FnPolicy::new("reader", move |_, _, snap: &IntrospectionSnapshot| {
                sc.store(snap.seq, Ordering::Relaxed);
                PolicyDecision::noop()
            }),
            10,
            0,
        );
        engine.step(10);
        assert_eq!(seen.load(Ordering::Relaxed), 0, "empty snapshot has seq 0");
    }

    #[test]
    fn threshold_policy_fires_on_crossing_only() {
        let knobs = registry_with("cap", 1, 32, 32);
        let engine = PolicyEngine::new(knobs.clone());
        let level = Arc::new(AtomicU64::new(0));
        let l = level.clone();
        let fired = Arc::new(AtomicU64::new(0));
        let f = fired.clone();
        engine.register_threshold(
            FnPolicy::new("on-depth", move |_, trigger, _| {
                assert!(matches!(trigger, Trigger::Threshold));
                f.fetch_add(1, Ordering::Relaxed);
                PolicyDecision::set("cap", 4)
            }),
            ThresholdWatch::gauge_above(move || l.load(Ordering::Relaxed) as f64, 10.0),
        );
        assert_eq!(engine.step(0), 0, "below threshold: no round, no capture");
        level.store(20, Ordering::Relaxed);
        assert_eq!(engine.step(1), 1, "crossing fires");
        assert_eq!(knobs.value("cap"), Some(4));
        assert_eq!(engine.step(2), 0, "still above: edge-triggered, no refire");
        level.store(5, Ordering::Relaxed);
        assert_eq!(engine.step(3), 0, "falling back re-arms silently");
        level.store(30, Ordering::Relaxed);
        assert_eq!(engine.step(4), 1, "fires again after re-arm");
        assert_eq!(fired.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn counter_delta_watch_fires_every_n_increments() {
        let knobs = registry_with("k", 0, 100, 0);
        let engine = PolicyEngine::new(knobs);
        let reg = lg_metrics::CounterRegistry::new();
        let c = reg.striped_counter("events");
        let fires = Arc::new(AtomicU64::new(0));
        let f = fires.clone();
        engine.register_threshold(
            FnPolicy::new("batch", move |_, _, _| {
                f.fetch_add(1, Ordering::Relaxed);
                PolicyDecision::noop()
            }),
            ThresholdWatch::counter_delta(c.clone(), 10),
        );
        engine.step(0); // first check records the baseline
        c.add(9);
        engine.step(1);
        assert_eq!(fires.load(Ordering::Relaxed), 0, "below delta");
        c.add(1);
        engine.step(2);
        assert_eq!(fires.load(Ordering::Relaxed), 1, "accumulated to delta");
        c.add(10);
        engine.step(3);
        assert_eq!(fires.load(Ordering::Relaxed), 2, "next batch");
    }

    #[test]
    fn armed_watch_fires_without_engine_scanning() {
        let knobs = registry_with("k", 0, 100, 0);
        let engine = PolicyEngine::new(knobs.clone());
        let reg = lg_metrics::CounterRegistry::new();
        let c = reg.striped_counter("events");
        engine.register_threshold(
            FnPolicy::new("batch", |_, _, _| PolicyDecision::set("k", 7)),
            ThresholdWatch::counter_delta_armed(&c, 10),
        );
        // No latch yet: steps take the armed fast path — no lock, no scan.
        assert_eq!(engine.step(0), 0);
        assert_eq!(engine.step(1), 0);
        assert_eq!(engine.fast_path_steps(), 2);
        c.add(9);
        assert_eq!(engine.step(2), 0, "below delta stays fast");
        assert_eq!(engine.fast_path_steps(), 3);
        c.add(1); // latches from the writing thread
        assert_eq!(engine.step(3), 1, "latched arm triggers a round");
        assert_eq!(knobs.value("k"), Some(7));
        assert_eq!(
            engine.fast_path_steps(),
            3,
            "latched step took the slow path"
        );
        assert_eq!(engine.step(4), 0, "consumed and re-armed: fast again");
        assert_eq!(engine.fast_path_steps(), 4);
        c.add(10);
        assert_eq!(engine.step(5), 1, "re-armed delta above consumption point");
    }

    #[test]
    fn armed_and_scanned_counter_watches_are_equivalent() {
        // Drive the exact same add/step schedule through a scan-based
        // counter_delta engine and a write-side armed engine; every
        // step must agree on rounds fired, total evaluations, actuations,
        // and the resulting knob value. (The scan variant spends its
        // first check on a baseline of 0 — the armed variant bakes that
        // baseline in at construction — so no warm-up step is needed for
        // either.)
        let schedule: &[&[u64]] = &[
            &[],     // idle step
            &[3, 4], // accumulate 7 < 10
            &[2, 1], // cross to 10
            &[],     // quiet after consumption
            &[25],   // overshoot: one latch, not two
            &[],     // quiet
            &[9],    // 9 above the re-baselined level
            &[1],    // cross again
        ];
        let k_scan = registry_with("k", 0, 1000, 0);
        let k_arm = registry_with("k", 0, 1000, 0);
        let e_scan = PolicyEngine::new(k_scan.clone());
        let e_arm = PolicyEngine::new(k_arm.clone());
        let reg = lg_metrics::CounterRegistry::new();
        let c_scan = reg.striped_counter("scan");
        let c_arm = reg.striped_counter("arm");
        e_scan.register_threshold(
            FnPolicy::new("w", |now, _, _| PolicyDecision::set("k", now as i64)),
            ThresholdWatch::counter_delta(c_scan.clone(), 10),
        );
        e_scan.step(0); // scan variant: baseline-recording check
        e_arm.register_threshold(
            FnPolicy::new("w", |now, _, _| PolicyDecision::set("k", now as i64)),
            ThresholdWatch::counter_delta_armed(&c_arm, 10),
        );
        e_arm.step(0);
        for (i, adds) in schedule.iter().enumerate() {
            let now = (i + 1) as u64;
            for &n in adds.iter() {
                c_scan.add(n);
                c_arm.add(n);
            }
            let r_scan = e_scan.step(now);
            let r_arm = e_arm.step(now);
            assert_eq!(r_scan, r_arm, "step {now}: rounds diverged");
            assert_eq!(
                k_scan.value("k"),
                k_arm.value("k"),
                "step {now}: knob values diverged"
            );
        }
        assert_eq!(e_scan.evaluations(), e_arm.evaluations());
        assert_eq!(e_scan.actuations(), e_arm.actuations());
        assert!(
            e_scan.evaluations() >= 3,
            "schedule crossed at least 3 times"
        );
        assert!(
            e_arm.fast_path_steps() > 0,
            "armed engine skipped scans on quiet steps"
        );
        assert_eq!(e_scan.fast_path_steps(), 0, "scan engine always scans");
    }

    #[test]
    fn deregistering_armed_watch_detaches_the_arm() {
        let knobs = registry_with("k", 0, 100, 0);
        let engine = PolicyEngine::new(knobs.clone());
        let reg = lg_metrics::CounterRegistry::new();
        let c = reg.striped_counter("events");
        let h = engine.register_threshold(
            FnPolicy::new("batch", |_, _, _| PolicyDecision::set("k", 7)),
            ThresholdWatch::counter_delta_armed(&c, 10),
        );
        assert!(engine.deregister(h));
        c.add(100);
        assert_eq!(engine.step(1), 0, "detached arm no longer triggers");
        assert_eq!(knobs.value("k"), Some(0));
    }

    #[test]
    fn periodic_policy_disables_the_armed_fast_path() {
        let knobs = registry_with("k", 0, 100, 0);
        let engine = PolicyEngine::new(knobs);
        let reg = lg_metrics::CounterRegistry::new();
        let c = reg.striped_counter("events");
        engine.register_threshold(
            FnPolicy::new("batch", |_, _, _| PolicyDecision::noop()),
            ThresholdWatch::counter_delta_armed(&c, 10),
        );
        let h = engine.register_periodic(
            FnPolicy::new("tick", |_, _, _| PolicyDecision::noop()),
            100,
            0,
        );
        engine.step(1);
        assert_eq!(
            engine.fast_path_steps(),
            0,
            "periodic due dates need the scan"
        );
        engine.deregister(h);
        engine.step(2);
        assert_eq!(engine.fast_path_steps(), 1, "fast path restored");
    }

    #[test]
    fn relative_change_watch_tracks_moves() {
        let knobs = registry_with("k", 0, 100, 0);
        let engine = PolicyEngine::new(knobs);
        let p99 = Arc::new(Mutex::new(100.0f64));
        let reader = p99.clone();
        let fires = Arc::new(AtomicU64::new(0));
        let f = fires.clone();
        engine.register_threshold(
            FnPolicy::new("p99-moved", move |_, _, _| {
                f.fetch_add(1, Ordering::Relaxed);
                PolicyDecision::noop()
            }),
            ThresholdWatch::relative_change(move || *reader.lock(), 0.10),
        );
        engine.step(0); // baseline at 100
        *p99.lock() = 105.0;
        engine.step(1);
        assert_eq!(fires.load(Ordering::Relaxed), 0, "5% move stays quiet");
        *p99.lock() = 120.0;
        engine.step(2);
        assert_eq!(fires.load(Ordering::Relaxed), 1, "20% move fires");
        *p99.lock() = 119.0;
        engine.step(3);
        assert_eq!(fires.load(Ordering::Relaxed), 1, "small move off new base");
        *p99.lock() = 60.0;
        engine.step(4);
        assert_eq!(fires.load(Ordering::Relaxed), 2, "big drop fires too");
    }

    #[test]
    fn adaptation_latency_recorded_only_on_actuating_rounds() {
        let knobs = registry_with("cap", 1, 32, 32);
        let engine = PolicyEngine::new(knobs);
        assert_eq!(engine.adaptation_latency_last_ns(), None);
        assert_eq!(engine.adaptation_latency_mean_ns(), None);
        engine.register_periodic(
            FnPolicy::new("idle", |_, _, _| PolicyDecision::noop()),
            10,
            0,
        );
        engine.step(10);
        assert_eq!(
            engine.adaptation_latency_last_ns(),
            None,
            "no-actuation rounds record nothing"
        );
        let stamp = engine.latency_stamp();
        assert_eq!(stamp.load(Ordering::Relaxed), 0);
        engine.register_periodic(
            FnPolicy::new("act", |_, _, _| PolicyDecision::set("cap", 8)),
            10,
            10,
        );
        engine.step(20);
        assert!(engine.adaptation_latency_last_ns().is_some());
        assert!(engine.adaptation_latency_mean_ns().is_some());
        assert_eq!(engine.adaptation_rounds(), 1);
        assert_eq!(
            stamp.load(Ordering::Relaxed),
            1,
            "stamp moves with the record"
        );
    }

    #[test]
    fn wall_clock_ticker_drives_steps() {
        use crate::clock::WallClock;
        let knobs = registry_with("k", 0, 1000, 0);
        let engine = PolicyEngine::new(knobs.clone());
        let count = Arc::new(AtomicU64::new(0));
        let c = count.clone();
        engine.register_periodic(
            FnPolicy::new("tick", move |_, _, _| {
                c.fetch_add(1, Ordering::Relaxed);
                PolicyDecision::noop()
            }),
            1, // due almost immediately in ns terms
            0,
        );
        let guard = engine.spawn_ticker(
            Arc::new(WallClock::new()),
            std::time::Duration::from_millis(1),
        );
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(2);
        while count.load(Ordering::Relaxed) < 3 && std::time::Instant::now() < deadline {
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        drop(guard);
        assert!(
            count.load(Ordering::Relaxed) >= 3,
            "ticker did not drive policies"
        );
    }
}
