//! Active-task and active-worker tracking.
//!
//! Concurrency throttling needs to know how parallel the application
//! actually is right now, and how that evolved. This listener maintains
//! instantaneous gauges (active tasks, online workers) plus a bounded
//! time series of the active-task count, updated on every lifecycle event.
//!
//! The gauges are single atomics (the RMW's return value feeds peak
//! tracking, which striping cannot provide), but the history — previously
//! one `Mutex<TimeSeries>` every event serialized on — is striped per
//! emitting thread and merged by timestamp on read, so the per-event cost
//! under many emitters is an uncontended lock plus a series push.

use crate::event::Event;
use crate::listener::Listener;
use lg_metrics::stripe::{thread_index, CacheAligned, STRIPE_COUNT};
use lg_metrics::TimeSeries;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, Ordering};

/// Listener tracking instantaneous and historical concurrency.
pub struct ConcurrencyListener {
    active_tasks: AtomicI64,
    online_workers: AtomicI64,
    peak_tasks: AtomicI64,
    /// Per-thread history stripes; each keeps a full `history_len` window
    /// so single-threaded emission retains exactly what the unsharded
    /// implementation did. Reads merge-sort the stripes by timestamp.
    history: Box<[CacheAligned<Mutex<TimeSeries>>]>,
}

impl ConcurrencyListener {
    /// Creates a tracker whose history retains ~`history_len` points per
    /// emitting-thread stripe.
    pub fn new(history_len: usize) -> Self {
        Self {
            active_tasks: AtomicI64::new(0),
            online_workers: AtomicI64::new(0),
            peak_tasks: AtomicI64::new(0),
            history: (0..STRIPE_COUNT)
                .map(|_| CacheAligned(Mutex::new(TimeSeries::new(history_len.max(4)))))
                .collect(),
        }
    }

    /// Tasks currently executing.
    pub fn active_tasks(&self) -> i64 {
        self.active_tasks.load(Ordering::Relaxed)
    }

    /// Workers currently online (started and not stopped/parked).
    pub fn online_workers(&self) -> i64 {
        self.online_workers.load(Ordering::Relaxed)
    }

    /// Highest active-task count observed.
    pub fn peak_tasks(&self) -> i64 {
        self.peak_tasks.load(Ordering::Relaxed)
    }

    /// Mean active-task count over the trailing `horizon_ns` of history
    /// (relative to the newest retained point across all stripes).
    pub fn mean_active_over(&self, horizon_ns: u64) -> Option<f64> {
        let pts = self.history();
        let (newest, _) = *pts.last()?;
        let cutoff = newest.saturating_sub(horizon_ns);
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(t, v) in pts.iter().rev() {
            if t < cutoff {
                break;
            }
            sum += v;
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Copies the retained `(t_ns, active_tasks)` history, merged across
    /// stripes in timestamp order (ties keep stripe order — stable, so a
    /// single-threaded emission sequence is returned verbatim).
    pub fn history(&self) -> Vec<(u64, f64)> {
        let mut out: Vec<(u64, f64)> = Vec::new();
        for stripe in self.history.iter() {
            out.extend(stripe.0.lock().iter());
        }
        out.sort_by_key(|&(t, _)| t);
        out
    }

    fn record(&self, t_ns: u64, delta: i64) {
        let now = self.active_tasks.fetch_add(delta, Ordering::Relaxed) + delta;
        self.peak_tasks.fetch_max(now, Ordering::Relaxed);
        self.history[thread_index() & (STRIPE_COUNT - 1)]
            .0
            .lock()
            .push(t_ns, now as f64);
    }
}

impl Listener for ConcurrencyListener {
    fn name(&self) -> &str {
        "concurrency"
    }

    fn on_event(&self, event: &Event) {
        match *event {
            Event::TaskBegin { t_ns, .. } | Event::TaskResume { t_ns, .. } => self.record(t_ns, 1),
            Event::TaskEnd { t_ns, .. } | Event::TaskYield { t_ns, .. } => self.record(t_ns, -1),
            Event::WorkerStart { .. } => {
                self.online_workers.fetch_add(1, Ordering::Relaxed);
            }
            Event::WorkerStop { .. } => {
                self.online_workers.fetch_sub(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

impl std::fmt::Debug for ConcurrencyListener {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrencyListener")
            .field("active_tasks", &self.active_tasks())
            .field("online_workers", &self.online_workers())
            .field("peak_tasks", &self.peak_tasks())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TaskNames;

    #[test]
    fn task_begin_end_balance() {
        let names = TaskNames::new();
        let id = names.intern("t");
        let c = ConcurrencyListener::new(64);
        c.on_event(&Event::TaskBegin {
            task: id,
            worker: 0,
            t_ns: 1,
        });
        c.on_event(&Event::TaskBegin {
            task: id,
            worker: 1,
            t_ns: 2,
        });
        assert_eq!(c.active_tasks(), 2);
        c.on_event(&Event::TaskEnd {
            task: id,
            worker: 0,
            t_ns: 3,
            elapsed_ns: 2,
        });
        assert_eq!(c.active_tasks(), 1);
        assert_eq!(c.peak_tasks(), 2);
    }

    #[test]
    fn yield_resume_adjusts_active() {
        let names = TaskNames::new();
        let id = names.intern("t");
        let c = ConcurrencyListener::new(64);
        c.on_event(&Event::TaskBegin {
            task: id,
            worker: 0,
            t_ns: 1,
        });
        c.on_event(&Event::TaskYield {
            task: id,
            worker: 0,
            t_ns: 2,
        });
        assert_eq!(c.active_tasks(), 0);
        c.on_event(&Event::TaskResume {
            task: id,
            worker: 0,
            t_ns: 3,
        });
        assert_eq!(c.active_tasks(), 1);
    }

    #[test]
    fn worker_lifecycle() {
        let c = ConcurrencyListener::new(64);
        c.on_event(&Event::WorkerStart { worker: 0, t_ns: 0 });
        c.on_event(&Event::WorkerStart { worker: 1, t_ns: 0 });
        assert_eq!(c.online_workers(), 2);
        c.on_event(&Event::WorkerStop { worker: 1, t_ns: 5 });
        assert_eq!(c.online_workers(), 1);
    }

    #[test]
    fn history_records_transitions() {
        let names = TaskNames::new();
        let id = names.intern("t");
        let c = ConcurrencyListener::new(64);
        c.on_event(&Event::TaskBegin {
            task: id,
            worker: 0,
            t_ns: 10,
        });
        c.on_event(&Event::TaskEnd {
            task: id,
            worker: 0,
            t_ns: 20,
            elapsed_ns: 10,
        });
        let h = c.history();
        assert_eq!(h, vec![(10, 1.0), (20, 0.0)]);
    }

    #[test]
    fn mean_active_over_window() {
        let names = TaskNames::new();
        let id = names.intern("t");
        let c = ConcurrencyListener::new(64);
        for i in 0..4u64 {
            c.on_event(&Event::TaskBegin {
                task: id,
                worker: 0,
                t_ns: i * 100,
            });
        }
        // History values are 1,2,3,4 → trailing mean over everything = 2.5.
        assert_eq!(c.mean_active_over(u64::MAX), Some(2.5));
    }

    #[test]
    fn ignores_samples_and_ticks() {
        let c = ConcurrencyListener::new(64);
        c.on_event(&Event::PeriodicTick { t_ns: 0 });
        assert_eq!(c.active_tasks(), 0);
        assert!(c.history().is_empty());
    }
}
