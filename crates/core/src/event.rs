//! The observation vocabulary.
//!
//! Events are small `Copy`-friendly records: task names are interned once
//! into a [`TaskId`] so the hot path moves a `u32`, not a string. Sampled
//! values carry their metric name as an interned id through the same table
//! (names and metrics share one namespace, which keeps the table simple
//! and the ids unambiguous in traces).

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Interned identifier for a task type or metric name.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

/// Two-way intern table mapping names to [`TaskId`]s.
///
/// Interning takes a write lock once per *new* name; resolving an existing
/// name takes a read lock; resolving an id to a name is lock-held-briefly.
/// Cloning shares the table.
#[derive(Clone, Default)]
pub struct TaskNames {
    inner: Arc<RwLock<NamesInner>>,
}

#[derive(Default)]
struct NamesInner {
    by_name: HashMap<String, TaskId>,
    by_id: Vec<String>,
}

impl TaskNames {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its stable id.
    pub fn intern(&self, name: &str) -> TaskId {
        if let Some(&id) = self.inner.read().by_name.get(name) {
            return id;
        }
        let mut w = self.inner.write();
        if let Some(&id) = w.by_name.get(name) {
            return id;
        }
        let id = TaskId(w.by_id.len() as u32);
        w.by_id.push(name.to_owned());
        w.by_name.insert(name.to_owned(), id);
        id
    }

    /// Resolves an id to its name, if the id was produced by this table.
    pub fn resolve(&self, id: TaskId) -> Option<String> {
        self.inner.read().by_id.get(id.0 as usize).cloned()
    }

    /// Looks up an existing name without interning.
    pub fn lookup(&self, name: &str) -> Option<TaskId> {
        self.inner.read().by_name.get(name).copied()
    }

    /// Number of interned names.
    pub fn len(&self) -> usize {
        self.inner.read().by_id.len()
    }

    /// True when no names are interned.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Debug for TaskNames {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskNames")
            .field("len", &self.len())
            .finish()
    }
}

/// One observation. `t_ns` timestamps come from the instance's [`crate::Clock`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Event {
    /// A task of the given type began executing on a worker.
    TaskBegin {
        /// Task type.
        task: TaskId,
        /// Executing worker index.
        worker: usize,
        /// Timestamp.
        t_ns: u64,
    },
    /// The matching task finished; `elapsed_ns` is its execution time.
    TaskEnd {
        /// Task type.
        task: TaskId,
        /// Executing worker index.
        worker: usize,
        /// Timestamp.
        t_ns: u64,
        /// Execution time of this task instance.
        elapsed_ns: u64,
    },
    /// A task yielded the worker (cooperative suspension).
    TaskYield {
        /// Task type.
        task: TaskId,
        /// Worker index.
        worker: usize,
        /// Timestamp.
        t_ns: u64,
    },
    /// A previously yielded task resumed.
    TaskResume {
        /// Task type.
        task: TaskId,
        /// Worker index.
        worker: usize,
        /// Timestamp.
        t_ns: u64,
    },
    /// A worker thread came online.
    WorkerStart {
        /// Worker index.
        worker: usize,
        /// Timestamp.
        t_ns: u64,
    },
    /// A worker thread went offline (parked by throttling or shut down).
    WorkerStop {
        /// Worker index.
        worker: usize,
        /// Timestamp.
        t_ns: u64,
    },
    /// An asynchronous sampler produced a value for a named metric.
    SampleValue {
        /// Interned metric name.
        metric: TaskId,
        /// Timestamp.
        t_ns: u64,
        /// Sampled value.
        value: f64,
    },
    /// An application phase began (named like a task).
    PhaseBegin {
        /// Phase name id.
        phase: TaskId,
        /// Timestamp.
        t_ns: u64,
    },
    /// An application phase ended.
    PhaseEnd {
        /// Phase name id.
        phase: TaskId,
        /// Timestamp.
        t_ns: u64,
    },
    /// Periodic heartbeat from the policy engine's ticker.
    PeriodicTick {
        /// Timestamp.
        t_ns: u64,
    },
    /// Application-defined event with a small payload.
    Custom {
        /// Event kind id (interned).
        kind: TaskId,
        /// Timestamp.
        t_ns: u64,
        /// Payload value (meaning is kind-specific).
        value: i64,
    },
}

impl Event {
    /// The event's timestamp.
    pub fn t_ns(&self) -> u64 {
        match *self {
            Event::TaskBegin { t_ns, .. }
            | Event::TaskEnd { t_ns, .. }
            | Event::TaskYield { t_ns, .. }
            | Event::TaskResume { t_ns, .. }
            | Event::WorkerStart { t_ns, .. }
            | Event::WorkerStop { t_ns, .. }
            | Event::SampleValue { t_ns, .. }
            | Event::PhaseBegin { t_ns, .. }
            | Event::PhaseEnd { t_ns, .. }
            | Event::PeriodicTick { t_ns }
            | Event::Custom { t_ns, .. } => t_ns,
        }
    }

    /// Short kind label for traces and tests.
    pub fn kind_str(&self) -> &'static str {
        match self {
            Event::TaskBegin { .. } => "task_begin",
            Event::TaskEnd { .. } => "task_end",
            Event::TaskYield { .. } => "task_yield",
            Event::TaskResume { .. } => "task_resume",
            Event::WorkerStart { .. } => "worker_start",
            Event::WorkerStop { .. } => "worker_stop",
            Event::SampleValue { .. } => "sample",
            Event::PhaseBegin { .. } => "phase_begin",
            Event::PhaseEnd { .. } => "phase_end",
            Event::PeriodicTick { .. } => "tick",
            Event::Custom { .. } => "custom",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable_and_deduplicating() {
        let names = TaskNames::new();
        let a = names.intern("stencil");
        let b = names.intern("compute");
        let a2 = names.intern("stencil");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(names.len(), 2);
        assert_eq!(names.resolve(a).as_deref(), Some("stencil"));
        assert_eq!(names.resolve(b).as_deref(), Some("compute"));
    }

    #[test]
    fn lookup_does_not_intern() {
        let names = TaskNames::new();
        assert_eq!(names.lookup("missing"), None);
        assert_eq!(names.len(), 0);
        let id = names.intern("present");
        assert_eq!(names.lookup("present"), Some(id));
    }

    #[test]
    fn resolve_unknown_id_is_none() {
        let names = TaskNames::new();
        assert!(names.resolve(TaskId(99)).is_none());
    }

    #[test]
    fn clones_share_the_table() {
        let names = TaskNames::new();
        let other = names.clone();
        let id = names.intern("shared");
        assert_eq!(other.lookup("shared"), Some(id));
    }

    #[test]
    fn concurrent_interning_agrees() {
        let names = TaskNames::new();
        let mut joins = Vec::new();
        for _ in 0..8 {
            let names = names.clone();
            joins.push(std::thread::spawn(move || {
                (0..100)
                    .map(|i| names.intern(&format!("task{}", i % 10)))
                    .collect::<Vec<_>>()
            }));
        }
        let results: Vec<Vec<TaskId>> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        assert_eq!(names.len(), 10);
        // Every thread must agree on every name's id.
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }

    #[test]
    fn event_timestamp_accessor() {
        let names = TaskNames::new();
        let id = names.intern("t");
        let events = [
            Event::TaskBegin {
                task: id,
                worker: 0,
                t_ns: 5,
            },
            Event::TaskEnd {
                task: id,
                worker: 0,
                t_ns: 9,
                elapsed_ns: 4,
            },
            Event::PeriodicTick { t_ns: 11 },
            Event::SampleValue {
                metric: id,
                t_ns: 13,
                value: 1.0,
            },
        ];
        assert_eq!(
            events.iter().map(Event::t_ns).collect::<Vec<_>>(),
            vec![5, 9, 11, 13]
        );
    }

    #[test]
    fn kind_strings_are_distinct() {
        let names = TaskNames::new();
        let id = names.intern("t");
        let all = [
            Event::TaskBegin {
                task: id,
                worker: 0,
                t_ns: 0,
            },
            Event::TaskEnd {
                task: id,
                worker: 0,
                t_ns: 0,
                elapsed_ns: 0,
            },
            Event::TaskYield {
                task: id,
                worker: 0,
                t_ns: 0,
            },
            Event::TaskResume {
                task: id,
                worker: 0,
                t_ns: 0,
            },
            Event::WorkerStart { worker: 0, t_ns: 0 },
            Event::WorkerStop { worker: 0, t_ns: 0 },
            Event::SampleValue {
                metric: id,
                t_ns: 0,
                value: 0.0,
            },
            Event::PhaseBegin { phase: id, t_ns: 0 },
            Event::PhaseEnd { phase: id, t_ns: 0 },
            Event::PeriodicTick { t_ns: 0 },
            Event::Custom {
                kind: id,
                t_ns: 0,
                value: 0,
            },
        ];
        let mut kinds: Vec<&str> = all.iter().map(Event::kind_str).collect();
        kinds.sort();
        kinds.dedup();
        assert_eq!(kinds.len(), all.len());
    }
}
