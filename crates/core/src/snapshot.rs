//! The read side of adaptation: one coherent, point-in-time view.
//!
//! Every decision-maker — policies, tuning sessions, the regression
//! watchdog, report writers — used to scrape the listeners it happened to
//! know about ([`ProfileListener`], [`ConcurrencyListener`], counters,
//! sample windows) with its own extraction code. [`Introspection`] is the
//! single facade over all of them: backends register *metric sources*
//! (gauges, window means over sampled series, counter registries) under
//! names resolved once into copyable [`MetricId`]s, and
//! [`Introspection::capture`] materialises everything into one immutable
//! [`IntrospectionSnapshot`]. Consumers query the snapshot — by id on hot
//! paths, by name at the edges — and two snapshots diff cleanly (e.g.
//! [`IntrospectionSnapshot::throughput_since`]), which is how the watchdog
//! detects regressions and tuning sessions score epochs without touching
//! any listener directly.
//!
//! ## Incremental capture
//!
//! Capture cost is proportional to *activity since the last round*, not to
//! the amount of registered state. Every producer carries a generation
//! stamp bumped on write (the third use of the Dispatcher/KnobRegistry
//! pattern): counter registries fold a [`lg_metrics::StripedVersion`],
//! profile stripes stamp themselves under their stripe lock, and metric
//! sources may register with an explicit stamp
//! ([`Introspection::register_gauge_stamped`]; window means inherit their
//! sample history's stamp automatically). `capture` keeps the previous
//! round's merged base — counter name table, counter values, profile
//! merge, metric values — behind `Arc`s and re-reads only producers whose
//! stamp moved; a fully idle capture returns Arc clones of everything with
//! a fresh `t_ns`/`seq` and performs **zero** shard merges. The
//! [`Introspection::merges`] / [`Introspection::skipped`] counter pair
//! accounts shard-level merge work (profile stripes copied, counter
//! registries re-folded) vs. cache reuse, so tests can assert the idle
//! path stays free. [`Introspection::capture_uncached`] keeps the
//! from-scratch path as the verification oracle and benchmark baseline:
//! property tests assert both paths agree field for field at quiescence.
//!
//! `capture` never holds the registration lock while evaluating gauge
//! closures: the source table is copy-on-write, so capture clones an `Arc`
//! under a brief read lock and evaluates outside it. (Captures themselves
//! serialise on the delta cache — a gauge closure must not call back into
//! `capture`.)

use crate::concurrency::ConcurrencyListener;
use crate::profile::{ProfileListener, ProfileSnapshot, TaskProfile};
use crate::samples::SampleHistoryListener;
use lg_metrics::{CounterHandle, CounterRegistry, StripedCounter};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Interned handle to a registered metric. Copyable; resolved once via
/// [`Introspection::register_gauge`] (and friends) or
/// [`Introspection::metric_id`], then used for lock-free-ish snapshot
/// queries with no string hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricId(pub u32);

/// How a registered metric source produces its value at capture time.
enum SourceKind {
    /// An instantaneous reading (an atomic the backend updates, a
    /// computed ratio, a meter total).
    Gauge(Box<dyn Fn() -> f64 + Send + Sync>),
    /// Mean of a sampled series over a trailing window ending at capture.
    WindowMean {
        history: Arc<SampleHistoryListener>,
        metric: String,
        window_ns: u64,
    },
}

/// One registered metric source plus its optional dirtiness stamp.
///
/// Stamped sources are re-evaluated only when the stamp moved since the
/// last capture; unstamped sources are treated as always-dirty (the
/// closure is the only way to learn their value changed).
struct SourceEntry {
    kind: SourceKind,
    stamp: Option<Arc<AtomicU64>>,
}

impl SourceEntry {
    fn eval(&self) -> Option<f64> {
        match &self.kind {
            SourceKind::Gauge(read) => {
                let v = read();
                v.is_finite().then_some(v)
            }
            SourceKind::WindowMean {
                history,
                metric,
                window_ns,
            } => history.mean_over(metric, *window_ns),
        }
    }
}

struct Inner {
    /// Copy-on-write: replaced wholesale on (re-)registration, so capture
    /// can clone the `Arc` and evaluate closures outside the lock.
    sources: Arc<Vec<Arc<SourceEntry>>>,
    by_name: HashMap<String, u32>,
    /// Metric names in id order, shared immutably with every snapshot.
    names: Arc<Vec<String>>,
    /// Copy-on-write for the same reason as `sources`.
    counters: Arc<Vec<Arc<CounterRegistry>>>,
}

/// Per-registry slice of the capture cache.
struct RegCache {
    init: bool,
    write_version: u64,
    structure: u64,
    handles: Arc<Vec<(String, CounterHandle)>>,
}

impl RegCache {
    fn new() -> Self {
        Self {
            init: false,
            write_version: 0,
            structure: 0,
            handles: Arc::new(Vec::new()),
        }
    }
}

/// The persistent merged base `capture` deltas against.
struct CaptureCache {
    valid: bool,
    /// Identity of the source table the cached values belong to.
    sources: Arc<Vec<Arc<SourceEntry>>>,
    /// Last-seen stamp per source (meaningless for unstamped entries).
    stamps: Vec<u64>,
    values: Arc<Vec<Option<f64>>>,
    /// Identity of the registry list the counter cache belongs to.
    regs_list: Arc<Vec<Arc<CounterRegistry>>>,
    regs: Vec<RegCache>,
    /// `positions[k][j]` = index in the merged vectors of registry `k`'s
    /// `j`-th (name-sorted) counter.
    positions: Vec<Vec<usize>>,
    counter_names: Arc<Vec<String>>,
    counter_values: Arc<Vec<u64>>,
}

impl CaptureCache {
    fn new() -> Self {
        Self {
            valid: false,
            sources: Arc::new(Vec::new()),
            stamps: Vec::new(),
            values: Arc::new(Vec::new()),
            regs_list: Arc::new(Vec::new()),
            regs: Vec::new(),
            positions: Vec::new(),
            counter_names: Arc::new(Vec::new()),
            counter_values: Arc::new(Vec::new()),
        }
    }
}

/// The registration facade and capture engine for the read side.
///
/// Backends (sim runtime, real pool) register their metrics here through
/// one identical API; consumers only ever see the snapshots it produces.
pub struct Introspection {
    profiles: Arc<ProfileListener>,
    concurrency: Arc<ConcurrencyListener>,
    inner: RwLock<Inner>,
    /// Capture sequence, so consumers can tell snapshots apart.
    seq: AtomicU64,
    cache: Mutex<CaptureCache>,
    /// Shard-level merge work performed by `capture` (profile stripes
    /// copied + counter registries re-folded).
    merges: StripedCounter,
    /// Shard-level merge work avoided by the delta cache.
    skipped: StripedCounter,
}

impl Introspection {
    /// Creates the facade over an instance's profile and concurrency
    /// listeners (always present; metric sources are added per backend).
    pub fn new(profiles: Arc<ProfileListener>, concurrency: Arc<ConcurrencyListener>) -> Self {
        Self {
            profiles,
            concurrency,
            inner: RwLock::new(Inner {
                sources: Arc::new(Vec::new()),
                by_name: HashMap::new(),
                names: Arc::new(Vec::new()),
                counters: Arc::new(Vec::new()),
            }),
            seq: AtomicU64::new(0),
            cache: Mutex::new(CaptureCache::new()),
            merges: StripedCounter::new(),
            skipped: StripedCounter::new(),
        }
    }

    fn register_source(&self, name: &str, entry: SourceEntry) -> MetricId {
        let mut inner = self.inner.write();
        let mut sources = (*inner.sources).clone();
        if let Some(&i) = inner.by_name.get(name) {
            sources[i as usize] = Arc::new(entry);
            inner.sources = Arc::new(sources);
            return MetricId(i);
        }
        let i = sources.len() as u32;
        sources.push(Arc::new(entry));
        inner.sources = Arc::new(sources);
        inner.by_name.insert(name.to_owned(), i);
        let mut names = (*inner.names).clone();
        names.push(name.to_owned());
        inner.names = Arc::new(names);
        MetricId(i)
    }

    /// Registers an instantaneous gauge evaluated at each capture.
    /// Re-registering a name replaces its source, keeping the id.
    ///
    /// An unstamped gauge is re-evaluated on every capture (the closure is
    /// the only way to learn it changed); prefer
    /// [`register_gauge_stamped`] when the producer can bump a stamp.
    ///
    /// [`register_gauge_stamped`]: Introspection::register_gauge_stamped
    pub fn register_gauge(
        &self,
        name: &str,
        read: impl Fn() -> f64 + Send + Sync + 'static,
    ) -> MetricId {
        self.register_source(
            name,
            SourceEntry {
                kind: SourceKind::Gauge(Box::new(read)),
                stamp: None,
            },
        )
    }

    /// Registers a gauge with a write-generation stamp: the closure runs
    /// only on captures where `stamp` moved since the last capture, and
    /// the cached value is reused otherwise. The producer must bump the
    /// stamp (`Release`) *after* publishing the state `read` derives its
    /// value from.
    pub fn register_gauge_stamped(
        &self,
        name: &str,
        stamp: Arc<AtomicU64>,
        read: impl Fn() -> f64 + Send + Sync + 'static,
    ) -> MetricId {
        self.register_source(
            name,
            SourceEntry {
                kind: SourceKind::Gauge(Box::new(read)),
                stamp: Some(stamp),
            },
        )
    }

    /// Registers a trailing-window mean over a sampled series: each
    /// capture reads `history.mean_over(metric, window_ns)`. Stamped with
    /// the history's write generation automatically, so quiescent series
    /// cost nothing to re-capture.
    pub fn register_window_mean(
        &self,
        name: &str,
        history: Arc<SampleHistoryListener>,
        metric: impl Into<String>,
        window_ns: u64,
    ) -> MetricId {
        let stamp = history.write_stamp();
        self.register_source(
            name,
            SourceEntry {
                kind: SourceKind::WindowMean {
                    history,
                    metric: metric.into(),
                    window_ns,
                },
                stamp: Some(stamp),
            },
        )
    }

    /// Adds a counter registry whose counters appear (name-sorted) in
    /// every snapshot.
    pub fn register_counters(&self, counters: Arc<CounterRegistry>) {
        let mut inner = self.inner.write();
        let mut regs = (*inner.counters).clone();
        regs.push(counters);
        inner.counters = Arc::new(regs);
    }

    /// Resolves a metric name to its id, if registered.
    pub fn metric_id(&self, name: &str) -> Option<MetricId> {
        self.inner.read().by_name.get(name).copied().map(MetricId)
    }

    /// Resolves a tenant-scoped metric name (`tenant` + `"rate"` →
    /// `"t3.rate"`) to its id, if registered. The arbiter registers its
    /// per-tenant mirror gauges under this scheme.
    pub fn metric_id_scoped(
        &self,
        tenant: crate::tenant::TenantId,
        name: &str,
    ) -> Option<MetricId> {
        self.metric_id(&tenant.scoped(name))
    }

    /// Names of all registered metrics, in id order.
    pub fn metric_names(&self) -> Vec<String> {
        (*self.inner.read().names).clone()
    }

    /// Shard merges performed by captures so far (profile stripes copied +
    /// counter registries re-folded). An idle capture adds zero.
    pub fn merges(&self) -> u64 {
        self.merges.sum()
    }

    /// Shard merges avoided by the delta cache so far.
    pub fn skipped(&self) -> u64 {
        self.skipped.sum()
    }

    /// Materialises the point-in-time view: metric sources, counters,
    /// per-task profiles, and the concurrency gauges — all stamped with
    /// `t_ns`.
    ///
    /// Incremental: producers whose generation stamp did not move since
    /// the previous capture are served from the persistent merged base
    /// (see the module docs); a fully idle capture is a handful of stamp
    /// folds plus Arc clones.
    pub fn capture(&self, t_ns: u64) -> IntrospectionSnapshot {
        let (sources, names, regs_list) = {
            let inner = self.inner.read();
            (
                inner.sources.clone(),
                inner.names.clone(),
                inner.counters.clone(),
            )
        };
        let mut cache = self.cache.lock();
        let cache = &mut *cache;

        // --- metric sources: re-evaluate only unstamped or moved ---
        let sources_changed = !cache.valid || !Arc::ptr_eq(&cache.sources, &sources);
        if sources_changed {
            cache.stamps = vec![0; sources.len()];
            cache.sources = sources.clone();
        }
        let mut fresh: Vec<(usize, Option<f64>)> = Vec::new();
        for (i, entry) in sources.iter().enumerate() {
            let dirty = match &entry.stamp {
                Some(stamp) => {
                    // Acquire-read the stamp *before* evaluating, so a
                    // write racing the eval leaves a stale recorded stamp
                    // and the next capture re-evaluates.
                    let g = stamp.load(Ordering::Acquire);
                    let moved = sources_changed || g != cache.stamps[i];
                    cache.stamps[i] = g;
                    moved
                }
                None => true,
            };
            if dirty {
                fresh.push((i, entry.eval()));
            }
        }
        if !fresh.is_empty() || sources_changed {
            let mut values = if sources_changed {
                vec![None; sources.len()]
            } else {
                (*cache.values).clone()
            };
            for (i, v) in fresh {
                values[i] = v;
            }
            cache.values = Arc::new(values);
        }

        // --- counters: delta against the interned merged base ---
        let list_changed = !cache.valid || !Arc::ptr_eq(&cache.regs_list, &regs_list);
        if list_changed {
            cache.regs = regs_list.iter().map(|_| RegCache::new()).collect();
            cache.regs_list = regs_list.clone();
        }
        let mut layout_dirty = list_changed;
        for (k, reg) in regs_list.iter().enumerate() {
            let structure = reg.structure_version();
            let rc = &mut cache.regs[k];
            if !rc.init || rc.structure != structure {
                rc.handles = reg.sorted_handles();
                rc.structure = structure;
                rc.init = true;
                layout_dirty = true;
            }
        }
        if layout_dirty {
            // Rebuild the merged name table: concatenate each registry's
            // (already name-sorted) table in registry order, then stable
            // sort by name — the same order the old flat_map+sort
            // produced, so duplicate names across registries keep their
            // registry-order tie-break.
            let mut order: Vec<(usize, usize)> = Vec::new();
            for (k, rc) in cache.regs.iter().enumerate() {
                for j in 0..rc.handles.len() {
                    order.push((k, j));
                }
            }
            order.sort_by(|a, b| {
                cache.regs[a.0].handles[a.1]
                    .0
                    .cmp(&cache.regs[b.0].handles[b.1].0)
            });
            let mut merged_names = Vec::with_capacity(order.len());
            let mut merged_values = Vec::with_capacity(order.len());
            cache.positions = cache
                .regs
                .iter()
                .map(|rc| vec![0; rc.handles.len()])
                .collect();
            for (k, reg) in regs_list.iter().enumerate() {
                cache.regs[k].write_version = reg.write_version();
            }
            for (m, (k, j)) in order.iter().enumerate() {
                let (name, handle) = &cache.regs[*k].handles[*j];
                merged_names.push(name.clone());
                merged_values.push(handle.get());
                cache.positions[*k][*j] = m;
            }
            self.merges.add(regs_list.len() as u64);
            cache.counter_names = Arc::new(merged_names);
            cache.counter_values = Arc::new(merged_values);
        } else {
            let mut scattered: Option<Vec<u64>> = None;
            for (k, reg) in regs_list.iter().enumerate() {
                // Fold the write version *before* reading values: a write
                // racing the reads is either included or re-detected next
                // capture — never missed.
                let wv = reg.write_version();
                if cache.regs[k].write_version == wv {
                    self.skipped.inc();
                    continue;
                }
                self.merges.inc();
                let values = scattered.get_or_insert_with(|| (*cache.counter_values).clone());
                for (j, (_, handle)) in cache.regs[k].handles.iter().enumerate() {
                    values[cache.positions[k][j]] = handle.get();
                }
                cache.regs[k].write_version = wv;
            }
            if let Some(values) = scattered {
                cache.counter_values = Arc::new(values);
            }
        }

        // --- profiles: shared merged base with per-stripe dirtiness ---
        let (profiles, total_completed, dirty, clean) = self.profiles.snapshot_shared();
        self.merges.add(dirty as u64);
        self.skipped.add(clean as u64);

        cache.valid = true;
        IntrospectionSnapshot {
            t_ns,
            seq: self.seq.fetch_add(1, Ordering::Relaxed) + 1,
            metric_names: names,
            values: cache.values.clone(),
            counter_names: cache.counter_names.clone(),
            counter_values: cache.counter_values.clone(),
            profiles,
            total_completed,
            active_tasks: self.concurrency.active_tasks(),
            online_workers: self.concurrency.online_workers(),
            peak_tasks: self.concurrency.peak_tasks(),
        }
    }

    /// From-scratch capture that bypasses the delta cache entirely:
    /// evaluates every source, re-collects and re-sorts every counter,
    /// re-merges every profile stripe. The verification oracle for the
    /// incremental path (property tests assert `capture` ≡
    /// `capture_uncached` field for field at quiescence) and the
    /// benchmark baseline.
    pub fn capture_uncached(&self, t_ns: u64) -> IntrospectionSnapshot {
        let (sources, names, regs_list) = {
            let inner = self.inner.read();
            (
                inner.sources.clone(),
                inner.names.clone(),
                inner.counters.clone(),
            )
        };
        let values: Vec<Option<f64>> = sources.iter().map(|s| s.eval()).collect();
        let mut counters: Vec<(String, u64)> = regs_list
            .iter()
            .flat_map(|c| c.snapshot_counters())
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let (counter_names, counter_values): (Vec<String>, Vec<u64>) = counters.into_iter().unzip();
        IntrospectionSnapshot {
            t_ns,
            seq: self.seq.fetch_add(1, Ordering::Relaxed) + 1,
            metric_names: names,
            values: Arc::new(values),
            counter_names: Arc::new(counter_names),
            counter_values: Arc::new(counter_values),
            profiles: Arc::new(self.profiles.snapshot_uncached()),
            total_completed: self.profiles.total_completed(),
            active_tasks: self.concurrency.active_tasks(),
            online_workers: self.concurrency.online_workers(),
            peak_tasks: self.concurrency.peak_tasks(),
        }
    }
}

impl std::fmt::Debug for Introspection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("Introspection")
            .field("metrics", &inner.sources.len())
            .field("counter_registries", &inner.counters.len())
            .field("merges", &self.merges.sum())
            .field("skipped", &self.skipped.sum())
            .finish()
    }
}

/// A point-in-time view of everything the observation layer knows:
/// registered metric values, counters, per-task profiles, and concurrency
/// gauges. Immutable once captured; `Clone` is cheap — every bulk field
/// (metric names and values, counter names and values, profiles) is a
/// shared `Arc`, so cloning bumps five refcounts and copies six scalars.
#[derive(Clone, Debug)]
pub struct IntrospectionSnapshot {
    /// Capture time (virtual or wall, per the instance clock).
    pub t_ns: u64,
    /// Capture sequence within the producing [`Introspection`] (1-based).
    pub seq: u64,
    /// Tasks completed since the profiler started (or was reset).
    pub total_completed: u64,
    /// Tasks executing right now.
    pub active_tasks: i64,
    /// Workers currently online.
    pub online_workers: i64,
    /// High-water mark of concurrent tasks.
    pub peak_tasks: i64,
    pub(crate) metric_names: Arc<Vec<String>>,
    /// Indexed by `MetricId`; `None` when a source had nothing to report
    /// (empty sample window, non-finite gauge).
    pub(crate) values: Arc<Vec<Option<f64>>>,
    /// Counter names, sorted, parallel to `counter_values`. Interned:
    /// consecutive snapshots share the same `Arc` until a counter is
    /// created.
    pub(crate) counter_names: Arc<Vec<String>>,
    pub(crate) counter_values: Arc<Vec<u64>>,
    pub(crate) profiles: Arc<ProfileSnapshot>,
}

impl IntrospectionSnapshot {
    /// A snapshot with no metrics, no counters, and no profiles — what a
    /// policy sees before any introspection facade is attached.
    pub fn empty(t_ns: u64) -> Self {
        Self {
            t_ns,
            seq: 0,
            total_completed: 0,
            active_tasks: 0,
            online_workers: 0,
            peak_tasks: 0,
            metric_names: Arc::new(Vec::new()),
            values: Arc::new(Vec::new()),
            counter_names: Arc::new(Vec::new()),
            counter_values: Arc::new(Vec::new()),
            profiles: Arc::new(Vec::new()),
        }
    }

    /// The value of a registered metric at capture time, by id.
    pub fn value(&self, id: MetricId) -> Option<f64> {
        self.values.get(id.0 as usize).copied().flatten()
    }

    /// Name-based metric lookup (edge/report use; hot paths hold ids).
    pub fn value_by_name(&self, name: &str) -> Option<f64> {
        let i = self.metric_names.iter().position(|n| n == name)?;
        self.values[i].as_ref().copied()
    }

    /// Tenant-scoped metric lookup: `value_scoped(t3, "rate")` reads
    /// `"t3.rate"`. Edge/report use, like [`Self::value_by_name`].
    pub fn value_scoped(&self, tenant: crate::tenant::TenantId, name: &str) -> Option<f64> {
        self.value_by_name(&tenant.scoped(name))
    }

    /// Metric names in id order.
    pub fn metric_names(&self) -> &[String] {
        &self.metric_names
    }

    /// All metric (name, value) pairs in id order.
    pub fn metrics(&self) -> impl Iterator<Item = (&str, Option<f64>)> {
        self.metric_names
            .iter()
            .map(|n| n.as_str())
            .zip(self.values.iter().copied())
    }

    /// A counter's value at capture time.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counter_names
            .binary_search_by(|n| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counter_values[i])
    }

    /// All counters, name-sorted.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counter_names
            .iter()
            .map(|n| n.as_str())
            .zip(self.counter_values.iter().copied())
    }

    /// Number of counters in this snapshot.
    pub fn counter_count(&self) -> usize {
        self.counter_names.len()
    }

    /// Per-task profiles at capture time.
    pub fn profiles(&self) -> &[TaskProfile] {
        &self.profiles
    }

    /// The shared profile vector itself. Consecutive idle captures return
    /// the same `Arc` (pointer-equal), which is also how a multi-tenant
    /// reader can hold many tenants' profiles without copying.
    pub fn profiles_arc(&self) -> Arc<ProfileSnapshot> {
        self.profiles.clone()
    }

    /// One task's profile, by name.
    pub fn profile(&self, name: &str) -> Option<&TaskProfile> {
        self.profiles.iter().find(|p| p.name == name)
    }

    /// Completed tasks per second between `prev` and this snapshot —
    /// the canonical regression-watchdog rate. `None` if no time passed.
    pub fn throughput_since(&self, prev: &IntrospectionSnapshot) -> Option<f64> {
        let dt_ns = self.t_ns.checked_sub(prev.t_ns)?;
        if dt_ns == 0 {
            return None;
        }
        let done = self.total_completed.saturating_sub(prev.total_completed);
        Some(done as f64 / (dt_ns as f64 / 1e9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, TaskNames};
    use crate::listener::Listener;
    use std::sync::atomic::AtomicU64 as Au64;

    fn facade() -> (
        Arc<ProfileListener>,
        Arc<ConcurrencyListener>,
        Introspection,
    ) {
        let names = TaskNames::new();
        let profiles = Arc::new(ProfileListener::new(names.clone()));
        let concurrency = Arc::new(ConcurrencyListener::new(64));
        let intro = Introspection::new(profiles.clone(), concurrency.clone());
        (profiles, concurrency, intro)
    }

    #[test]
    fn gauge_values_are_captured_by_id_and_name() {
        let (_, _, intro) = facade();
        let cell = Arc::new(Au64::new(41));
        let c = cell.clone();
        let id = intro.register_gauge("x", move || c.load(Ordering::Relaxed) as f64);
        cell.store(42, Ordering::Relaxed);
        let snap = intro.capture(7);
        assert_eq!(snap.t_ns, 7);
        assert_eq!(snap.value(id), Some(42.0));
        assert_eq!(snap.value_by_name("x"), Some(42.0));
        assert_eq!(intro.metric_id("x"), Some(id));
        assert_eq!(snap.value_by_name("nope"), None);
    }

    #[test]
    fn unstamped_gauges_reevaluate_every_capture() {
        let (_, _, intro) = facade();
        let cell = Arc::new(Au64::new(1));
        let c = cell.clone();
        let id = intro.register_gauge("x", move || c.load(Ordering::Relaxed) as f64);
        assert_eq!(intro.capture(0).value(id), Some(1.0));
        cell.store(2, Ordering::Relaxed);
        assert_eq!(intro.capture(1).value(id), Some(2.0));
    }

    #[test]
    fn stamped_gauges_are_cached_until_the_stamp_moves() {
        let (_, _, intro) = facade();
        let cell = Arc::new(Au64::new(1));
        let stamp = Arc::new(Au64::new(0));
        let c = cell.clone();
        let evals = Arc::new(Au64::new(0));
        let e = evals.clone();
        let id = intro.register_gauge_stamped("x", stamp.clone(), move || {
            e.fetch_add(1, Ordering::Relaxed);
            c.load(Ordering::Relaxed) as f64
        });
        assert_eq!(intro.capture(0).value(id), Some(1.0));
        assert_eq!(evals.load(Ordering::Relaxed), 1);
        // Value changed but stamp not bumped: the cached value is served
        // and the closure does not run.
        cell.store(2, Ordering::Relaxed);
        assert_eq!(intro.capture(1).value(id), Some(1.0));
        assert_eq!(evals.load(Ordering::Relaxed), 1);
        stamp.fetch_add(1, Ordering::Release);
        assert_eq!(intro.capture(2).value(id), Some(2.0));
        assert_eq!(evals.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn window_mean_reads_sample_history() {
        let names = TaskNames::new();
        let history = Arc::new(SampleHistoryListener::new(names.clone(), 64));
        let (_, _, intro) = facade();
        let metric = names.intern("power");
        for (t, v) in [(10u64, 10.0f64), (20, 20.0), (30, 30.0)] {
            history.on_event(&Event::SampleValue {
                metric,
                value: v,
                t_ns: t,
            });
        }
        let id = intro.register_window_mean("power.mean", history.clone(), "power", 100);
        let snap = intro.capture(30);
        assert_eq!(snap.value(id), Some(20.0));
        // New samples move the stamp and refresh the cached mean.
        history.on_event(&Event::SampleValue {
            metric,
            value: 60.0,
            t_ns: 40,
        });
        assert_eq!(intro.capture(40).value(id), Some(30.0));
    }

    #[test]
    fn counters_appear_sorted_and_queryable() {
        let (_, _, intro) = facade();
        let reg = Arc::new(CounterRegistry::new());
        reg.counter("b.two").add(2);
        reg.counter("a.one").add(1);
        intro.register_counters(reg);
        let snap = intro.capture(0);
        assert_eq!(snap.counter("a.one"), Some(1));
        assert_eq!(snap.counter("b.two"), Some(2));
        assert_eq!(snap.counter("missing"), None);
        let names: Vec<&str> = snap.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.one", "b.two"]);
    }

    #[test]
    fn counter_updates_between_captures_are_visible() {
        let (_, _, intro) = facade();
        let reg = Arc::new(CounterRegistry::new());
        let c = reg.counter("c");
        intro.register_counters(reg.clone());
        c.add(1);
        assert_eq!(intro.capture(0).counter("c"), Some(1));
        c.add(2);
        assert_eq!(intro.capture(1).counter("c"), Some(3));
        // A counter created after the first capture appears too.
        reg.counter("d").add(9);
        let snap = intro.capture(2);
        assert_eq!(snap.counter("d"), Some(9));
        assert_eq!(snap.counter("c"), Some(3));
    }

    #[test]
    fn idle_capture_performs_zero_shard_merges_and_shares_storage() {
        let (profiles, _, intro) = facade();
        let names = TaskNames::new();
        let reg = Arc::new(CounterRegistry::new());
        reg.counter("c").add(5);
        intro.register_counters(reg.clone());
        let stamp = Arc::new(Au64::new(0));
        intro.register_gauge_stamped("g", stamp.clone(), || 1.0);
        let task = names.intern("w");
        profiles.on_event(&Event::TaskEnd {
            task,
            worker: 0,
            t_ns: 10,
            elapsed_ns: 10,
        });
        // Warm the cache.
        let warm = intro.capture(0);
        let merges_after_warm = intro.merges();
        assert!(merges_after_warm > 0, "first capture merges dirty shards");

        // Idle capture: zero merges, every shard skipped, storage shared.
        let skipped_before = intro.skipped();
        let idle = intro.capture(1);
        assert_eq!(
            intro.merges(),
            merges_after_warm,
            "idle capture merges nothing"
        );
        assert!(intro.skipped() > skipped_before);
        assert!(Arc::ptr_eq(&warm.counter_values, &idle.counter_values));
        assert!(Arc::ptr_eq(&warm.counter_names, &idle.counter_names));
        assert!(Arc::ptr_eq(&warm.profiles, &idle.profiles));
        assert!(Arc::ptr_eq(&warm.values, &idle.values));
        assert_eq!(idle.t_ns, 1);
        assert_eq!(idle.seq, warm.seq + 1);

        // A write dirties exactly one registry again.
        reg.counter("c").inc();
        let after_write = intro.capture(2);
        assert!(intro.merges() > merges_after_warm);
        assert_eq!(after_write.counter("c"), Some(6));
        assert!(!Arc::ptr_eq(
            &idle.counter_values,
            &after_write.counter_values
        ));
        assert!(
            Arc::ptr_eq(&idle.counter_names, &after_write.counter_names),
            "value writes reuse the interned name table"
        );
    }

    #[test]
    fn capture_uncached_matches_capture() {
        let (profiles, _, intro) = facade();
        let names = TaskNames::new();
        let reg = Arc::new(CounterRegistry::new());
        reg.counter("a").add(3);
        reg.striped_counter("b").add(7);
        intro.register_counters(reg);
        intro.register_gauge("g", || 2.5);
        let task = names.intern("w");
        profiles.on_event(&Event::TaskEnd {
            task,
            worker: 0,
            t_ns: 10,
            elapsed_ns: 10,
        });
        for _ in 0..3 {
            let snap = intro.capture(5);
            let full = intro.capture_uncached(5);
            assert_eq!(snap.t_ns, full.t_ns);
            assert_eq!(snap.total_completed, full.total_completed);
            assert_eq!(*snap.values, *full.values);
            assert_eq!(*snap.counter_names, *full.counter_names);
            assert_eq!(*snap.counter_values, *full.counter_values);
            assert_eq!(*snap.profiles, *full.profiles);
        }
    }

    #[test]
    fn profiles_and_concurrency_ride_along() {
        let names = TaskNames::new();
        let profiles = Arc::new(ProfileListener::new(names.clone()));
        let concurrency = Arc::new(ConcurrencyListener::new(64));
        let intro = Introspection::new(profiles.clone(), concurrency.clone());
        let task = names.intern("work");
        let begin = Event::TaskBegin {
            task,
            worker: 0,
            t_ns: 0,
        };
        let end = Event::TaskEnd {
            task,
            worker: 0,
            t_ns: 100,
            elapsed_ns: 100,
        };
        profiles.on_event(&begin);
        concurrency.on_event(&begin);
        profiles.on_event(&end);
        concurrency.on_event(&end);
        let snap = intro.capture(100);
        assert_eq!(snap.total_completed, 1);
        assert_eq!(snap.profile("work").unwrap().count, 1);
        assert_eq!(snap.peak_tasks, 1);
        assert_eq!(snap.active_tasks, 0);
    }

    #[test]
    fn throughput_diffs_consecutive_snapshots() {
        let a = IntrospectionSnapshot {
            total_completed: 100,
            ..IntrospectionSnapshot::empty(1_000_000_000)
        };
        let b = IntrospectionSnapshot {
            total_completed: 350,
            ..IntrospectionSnapshot::empty(2_000_000_000)
        };
        assert_eq!(b.throughput_since(&a), Some(250.0));
        assert_eq!(a.throughput_since(&b), None, "time must advance");
        assert_eq!(a.throughput_since(&a), None, "zero dt is undefined");
    }

    #[test]
    fn reregistering_a_metric_keeps_its_id() {
        let (_, _, intro) = facade();
        let id = intro.register_gauge("g", || 1.0);
        let id2 = intro.register_gauge("g", || 2.0);
        assert_eq!(id, id2);
        assert_eq!(intro.capture(0).value(id), Some(2.0));
        assert_eq!(intro.metric_names(), vec!["g".to_string()]);
        // Re-registering after captures invalidates the cached value.
        intro.register_gauge("g", || 3.0);
        assert_eq!(intro.capture(1).value(id), Some(3.0));
    }

    #[test]
    fn non_finite_gauges_read_as_none() {
        let (_, _, intro) = facade();
        let id = intro.register_gauge("nan", || f64::NAN);
        assert_eq!(intro.capture(0).value(id), None);
    }
}
