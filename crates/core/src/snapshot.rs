//! The read side of adaptation: one coherent, point-in-time view.
//!
//! Every decision-maker — policies, tuning sessions, the regression
//! watchdog, report writers — used to scrape the listeners it happened to
//! know about ([`ProfileListener`], [`ConcurrencyListener`], counters,
//! sample windows) with its own extraction code. [`Introspection`] is the
//! single facade over all of them: backends register *metric sources*
//! (gauges, window means over sampled series, counter registries) under
//! names resolved once into copyable [`MetricId`]s, and
//! [`Introspection::capture`] materialises everything into one immutable
//! [`IntrospectionSnapshot`]. Consumers query the snapshot — by id on hot
//! paths, by name at the edges — and two snapshots diff cleanly (e.g.
//! [`IntrospectionSnapshot::throughput_since`]), which is how the watchdog
//! detects regressions and tuning sessions score epochs without touching
//! any listener directly.

use crate::concurrency::ConcurrencyListener;
use crate::profile::{ProfileListener, ProfileSnapshot, TaskProfile};
use crate::samples::SampleHistoryListener;
use lg_metrics::CounterRegistry;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Interned handle to a registered metric. Copyable; resolved once via
/// [`Introspection::register_gauge`] (and friends) or
/// [`Introspection::metric_id`], then used for lock-free-ish snapshot
/// queries with no string hash.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricId(pub u32);

/// One registered metric source, evaluated at capture time.
enum Source {
    /// An instantaneous reading (an atomic the backend updates, a
    /// computed ratio, a meter total).
    Gauge(Box<dyn Fn() -> f64 + Send + Sync>),
    /// Mean of a sampled series over a trailing window ending at capture.
    WindowMean {
        history: Arc<SampleHistoryListener>,
        metric: String,
        window_ns: u64,
    },
}

struct Inner {
    sources: Vec<Source>,
    by_name: HashMap<String, u32>,
    /// Metric names in id order, shared immutably with every snapshot.
    names: Arc<Vec<String>>,
    counters: Vec<Arc<CounterRegistry>>,
}

/// The registration facade and capture engine for the read side.
///
/// Backends (sim runtime, real pool) register their metrics here through
/// one identical API; consumers only ever see the snapshots it produces.
pub struct Introspection {
    profiles: Arc<ProfileListener>,
    concurrency: Arc<ConcurrencyListener>,
    inner: RwLock<Inner>,
    /// Capture sequence, so consumers can tell snapshots apart.
    seq: AtomicU64,
}

impl Introspection {
    /// Creates the facade over an instance's profile and concurrency
    /// listeners (always present; metric sources are added per backend).
    pub fn new(profiles: Arc<ProfileListener>, concurrency: Arc<ConcurrencyListener>) -> Self {
        Self {
            profiles,
            concurrency,
            inner: RwLock::new(Inner {
                sources: Vec::new(),
                by_name: HashMap::new(),
                names: Arc::new(Vec::new()),
                counters: Vec::new(),
            }),
            seq: AtomicU64::new(0),
        }
    }

    fn register_source(&self, name: &str, source: Source) -> MetricId {
        let mut inner = self.inner.write();
        if let Some(&i) = inner.by_name.get(name) {
            inner.sources[i as usize] = source;
            return MetricId(i);
        }
        let i = inner.sources.len() as u32;
        inner.sources.push(source);
        inner.by_name.insert(name.to_owned(), i);
        let mut names = (*inner.names).clone();
        names.push(name.to_owned());
        inner.names = Arc::new(names);
        MetricId(i)
    }

    /// Registers an instantaneous gauge evaluated at each capture.
    /// Re-registering a name replaces its source, keeping the id.
    pub fn register_gauge(
        &self,
        name: &str,
        read: impl Fn() -> f64 + Send + Sync + 'static,
    ) -> MetricId {
        self.register_source(name, Source::Gauge(Box::new(read)))
    }

    /// Registers a trailing-window mean over a sampled series: each
    /// capture reads `history.mean_over(metric, window_ns)`.
    pub fn register_window_mean(
        &self,
        name: &str,
        history: Arc<SampleHistoryListener>,
        metric: impl Into<String>,
        window_ns: u64,
    ) -> MetricId {
        self.register_source(
            name,
            Source::WindowMean {
                history,
                metric: metric.into(),
                window_ns,
            },
        )
    }

    /// Adds a counter registry whose counters appear (name-sorted) in
    /// every snapshot.
    pub fn register_counters(&self, counters: Arc<CounterRegistry>) {
        self.inner.write().counters.push(counters);
    }

    /// Resolves a metric name to its id, if registered.
    pub fn metric_id(&self, name: &str) -> Option<MetricId> {
        self.inner.read().by_name.get(name).copied().map(MetricId)
    }

    /// Names of all registered metrics, in id order.
    pub fn metric_names(&self) -> Vec<String> {
        (*self.inner.read().names).clone()
    }

    /// Materialises the point-in-time view: evaluates every metric
    /// source, snapshots counters and per-task profiles, and reads the
    /// concurrency gauges — all stamped with `t_ns`.
    pub fn capture(&self, t_ns: u64) -> IntrospectionSnapshot {
        let inner = self.inner.read();
        let values = inner
            .sources
            .iter()
            .map(|s| match s {
                Source::Gauge(read) => {
                    let v = read();
                    v.is_finite().then_some(v)
                }
                Source::WindowMean {
                    history,
                    metric,
                    window_ns,
                } => history.mean_over(metric, *window_ns),
            })
            .collect();
        let mut counters: Vec<(String, u64)> = inner
            .counters
            .iter()
            .flat_map(|c| c.snapshot_counters())
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        IntrospectionSnapshot {
            t_ns,
            seq: self.seq.fetch_add(1, Ordering::Relaxed) + 1,
            metric_names: inner.names.clone(),
            values,
            counters,
            profiles: self.profiles.snapshot(),
            total_completed: self.profiles.total_completed(),
            active_tasks: self.concurrency.active_tasks(),
            online_workers: self.concurrency.online_workers(),
            peak_tasks: self.concurrency.peak_tasks(),
        }
    }
}

impl std::fmt::Debug for Introspection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("Introspection")
            .field("metrics", &inner.sources.len())
            .field("counter_registries", &inner.counters.len())
            .finish()
    }
}

/// A point-in-time view of everything the observation layer knows:
/// registered metric values, counters, per-task profiles, and concurrency
/// gauges. Immutable once captured; `Clone` is cheap-ish (the metric name
/// table is shared).
#[derive(Clone, Debug)]
pub struct IntrospectionSnapshot {
    /// Capture time (virtual or wall, per the instance clock).
    pub t_ns: u64,
    /// Capture sequence within the producing [`Introspection`] (1-based).
    pub seq: u64,
    /// Tasks completed since the profiler started (or was reset).
    pub total_completed: u64,
    /// Tasks executing right now.
    pub active_tasks: i64,
    /// Workers currently online.
    pub online_workers: i64,
    /// High-water mark of concurrent tasks.
    pub peak_tasks: i64,
    pub(crate) metric_names: Arc<Vec<String>>,
    /// Indexed by `MetricId`; `None` when a source had nothing to report
    /// (empty sample window, non-finite gauge).
    pub(crate) values: Vec<Option<f64>>,
    pub(crate) counters: Vec<(String, u64)>,
    pub(crate) profiles: ProfileSnapshot,
}

impl IntrospectionSnapshot {
    /// A snapshot with no metrics, no counters, and no profiles — what a
    /// policy sees before any introspection facade is attached.
    pub fn empty(t_ns: u64) -> Self {
        Self {
            t_ns,
            seq: 0,
            total_completed: 0,
            active_tasks: 0,
            online_workers: 0,
            peak_tasks: 0,
            metric_names: Arc::new(Vec::new()),
            values: Vec::new(),
            counters: Vec::new(),
            profiles: Vec::new(),
        }
    }

    /// The value of a registered metric at capture time, by id.
    pub fn value(&self, id: MetricId) -> Option<f64> {
        self.values.get(id.0 as usize).copied().flatten()
    }

    /// Name-based metric lookup (edge/report use; hot paths hold ids).
    pub fn value_by_name(&self, name: &str) -> Option<f64> {
        let i = self.metric_names.iter().position(|n| n == name)?;
        self.values[i].as_ref().copied()
    }

    /// Metric names in id order.
    pub fn metric_names(&self) -> &[String] {
        &self.metric_names
    }

    /// All metric (name, value) pairs in id order.
    pub fn metrics(&self) -> impl Iterator<Item = (&str, Option<f64>)> {
        self.metric_names
            .iter()
            .map(|n| n.as_str())
            .zip(self.values.iter().copied())
    }

    /// A counter's value at capture time.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| self.counters[i].1)
    }

    /// All counters, name-sorted.
    pub fn counters(&self) -> &[(String, u64)] {
        &self.counters
    }

    /// Per-task profiles at capture time.
    pub fn profiles(&self) -> &[TaskProfile] {
        &self.profiles
    }

    /// One task's profile, by name.
    pub fn profile(&self, name: &str) -> Option<&TaskProfile> {
        self.profiles.iter().find(|p| p.name == name)
    }

    /// Completed tasks per second between `prev` and this snapshot —
    /// the canonical regression-watchdog rate. `None` if no time passed.
    pub fn throughput_since(&self, prev: &IntrospectionSnapshot) -> Option<f64> {
        let dt_ns = self.t_ns.checked_sub(prev.t_ns)?;
        if dt_ns == 0 {
            return None;
        }
        let done = self.total_completed.saturating_sub(prev.total_completed);
        Some(done as f64 / (dt_ns as f64 / 1e9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, TaskNames};
    use crate::listener::Listener;
    use std::sync::atomic::AtomicU64 as Au64;

    fn facade() -> (
        Arc<ProfileListener>,
        Arc<ConcurrencyListener>,
        Introspection,
    ) {
        let names = TaskNames::new();
        let profiles = Arc::new(ProfileListener::new(names.clone()));
        let concurrency = Arc::new(ConcurrencyListener::new(64));
        let intro = Introspection::new(profiles.clone(), concurrency.clone());
        (profiles, concurrency, intro)
    }

    #[test]
    fn gauge_values_are_captured_by_id_and_name() {
        let (_, _, intro) = facade();
        let cell = Arc::new(Au64::new(41));
        let c = cell.clone();
        let id = intro.register_gauge("x", move || c.load(Ordering::Relaxed) as f64);
        cell.store(42, Ordering::Relaxed);
        let snap = intro.capture(7);
        assert_eq!(snap.t_ns, 7);
        assert_eq!(snap.value(id), Some(42.0));
        assert_eq!(snap.value_by_name("x"), Some(42.0));
        assert_eq!(intro.metric_id("x"), Some(id));
        assert_eq!(snap.value_by_name("nope"), None);
    }

    #[test]
    fn window_mean_reads_sample_history() {
        let names = TaskNames::new();
        let history = Arc::new(SampleHistoryListener::new(names.clone(), 64));
        let (_, _, intro) = facade();
        let metric = names.intern("power");
        for (t, v) in [(10u64, 10.0f64), (20, 20.0), (30, 30.0)] {
            history.on_event(&Event::SampleValue {
                metric,
                value: v,
                t_ns: t,
            });
        }
        let id = intro.register_window_mean("power.mean", history, "power", 100);
        let snap = intro.capture(30);
        assert_eq!(snap.value(id), Some(20.0));
    }

    #[test]
    fn counters_appear_sorted_and_queryable() {
        let (_, _, intro) = facade();
        let reg = Arc::new(CounterRegistry::new());
        reg.counter("b.two").add(2);
        reg.counter("a.one").add(1);
        intro.register_counters(reg);
        let snap = intro.capture(0);
        assert_eq!(snap.counter("a.one"), Some(1));
        assert_eq!(snap.counter("b.two"), Some(2));
        assert_eq!(snap.counter("missing"), None);
        let names: Vec<&str> = snap.counters().iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.one", "b.two"]);
    }

    #[test]
    fn profiles_and_concurrency_ride_along() {
        let names = TaskNames::new();
        let profiles = Arc::new(ProfileListener::new(names.clone()));
        let concurrency = Arc::new(ConcurrencyListener::new(64));
        let intro = Introspection::new(profiles.clone(), concurrency.clone());
        let task = names.intern("work");
        let begin = Event::TaskBegin {
            task,
            worker: 0,
            t_ns: 0,
        };
        let end = Event::TaskEnd {
            task,
            worker: 0,
            t_ns: 100,
            elapsed_ns: 100,
        };
        profiles.on_event(&begin);
        concurrency.on_event(&begin);
        profiles.on_event(&end);
        concurrency.on_event(&end);
        let snap = intro.capture(100);
        assert_eq!(snap.total_completed, 1);
        assert_eq!(snap.profile("work").unwrap().count, 1);
        assert_eq!(snap.peak_tasks, 1);
        assert_eq!(snap.active_tasks, 0);
    }

    #[test]
    fn throughput_diffs_consecutive_snapshots() {
        let a = IntrospectionSnapshot {
            total_completed: 100,
            ..IntrospectionSnapshot::empty(1_000_000_000)
        };
        let b = IntrospectionSnapshot {
            total_completed: 350,
            ..IntrospectionSnapshot::empty(2_000_000_000)
        };
        assert_eq!(b.throughput_since(&a), Some(250.0));
        assert_eq!(a.throughput_since(&b), None, "time must advance");
        assert_eq!(a.throughput_since(&a), None, "zero dt is undefined");
    }

    #[test]
    fn reregistering_a_metric_keeps_its_id() {
        let (_, _, intro) = facade();
        let id = intro.register_gauge("g", || 1.0);
        let id2 = intro.register_gauge("g", || 2.0);
        assert_eq!(id, id2);
        assert_eq!(intro.capture(0).value(id), Some(2.0));
        assert_eq!(intro.metric_names(), vec!["g".to_string()]);
    }

    #[test]
    fn non_finite_gauges_read_as_none() {
        let (_, _, intro) = facade();
        let id = intro.register_gauge("nan", || f64::NAN);
        assert_eq!(intro.capture(0).value(id), None);
    }
}
