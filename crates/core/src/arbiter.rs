//! The machine-wide resource governor: N looking-glass tenants under one
//! [`Arbiter`].
//!
//! Every looking-glass instance so far tuned itself in isolation. The
//! arbiter makes the *tenant* the unit of scale: each tenant is a full
//! [`LookingGlass`] (own dispatcher, introspection, knob registry,
//! actuation journal) admitted under a [`TenantSpec`] — an SLO class, a
//! fair-share weight, and thread floor/ceiling. Once per control round
//! the arbiter:
//!
//! 1. **steps** each tenant's own [`PolicyEngine`](crate::PolicyEngine)
//!    (tenant-local adaptation runs first, under the machine's clock);
//! 2. **captures** each tenant's [`IntrospectionSnapshot`] — PR 7's
//!    delta captures make an idle tenant's capture a handful of Arc
//!    bumps, so the round cost is proportional to *activity*, not fleet
//!    size;
//! 3. **diagnoses** noisy neighbours: new
//!    [`RegressionWatchdog`](crate::RegressionWatchdog) rollback records
//!    in a tenant's journal since the last round put that tenant in
//!    quarantine (allocation pinned to its floor) for a configured
//!    number of rounds;
//! 4. **arbitrates** the machine budgets — total worker threads, an
//!    optional power envelope, an optional sampling-bandwidth budget —
//!    via the pure function [`arbitrate`]: weighted water-filling with
//!    largest-remainder rounding over each tenant's *declared useful
//!    width* (a [`DemandProfile`]), latency-over-batch preemption, and a
//!    marginal-utility transfer pass that moves threads from the tenant
//!    whose last thread buys the least to the tenant whose next thread
//!    buys the most;
//! 5. **actuates** by writing each tenant's thread knob through the
//!    *tenant's* journal (actor `"arbiter"`), and mirrors the decision
//!    into its own governor registry (knob `"t<i>.threads"`, actor
//!    `"governor"`) so the machine-level audit trail is one flat
//!    journal.
//!
//! Mirrored per-tenant gauges (`"t<i>.pressure"`, `"t<i>.rate"`) are
//! registered stamped on the governor's introspection, so a governor
//! snapshot stays delta-cheap while idle tenants sit still.
//!
//! ## Invariants
//!
//! * Σ allocations ≤ `total_threads` after every admit, evict, and
//!   control round (admission panics rather than oversubscribe floors).
//! * Every allocation lies within the tenant's `[min_threads,
//!   max_threads]`.
//! * A quarantined tenant holds exactly its floor until quarantine
//!   expires.

use crate::event::TaskId;
use crate::instance::LookingGlass;
use crate::journal::ActuationJournal;
use crate::knob::{AtomicKnob, KnobId, KnobSpec};
use crate::snapshot::{IntrospectionSnapshot, MetricId};
use crate::tenant::{SloClass, TenantId};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Machine budgets and governor policy parameters.
#[derive(Clone, Debug)]
pub struct ArbiterConfig {
    /// Total worker threads the machine can host — the primary budget.
    pub total_threads: i64,
    /// Optional machine power envelope, watts. When the sum of tenant
    /// power gauges exceeds it, the effective thread budget shrinks
    /// proportionally (never below the sum of floors).
    pub power_cap_w: Option<f64>,
    /// Optional total sampling bandwidth, Hz, split weight-proportionally
    /// across tenants that expose a sampling-period knob.
    pub sampling_hz_budget: Option<f64>,
    /// Rounds a noisy tenant stays pinned to its floor after its
    /// watchdog rolls an actuation back.
    pub quarantine_rounds: u64,
    /// Whether latency-class tenants under pressure may preempt
    /// batch-class capacity down to batch floors.
    pub preemption: bool,
}

impl ArbiterConfig {
    /// A governor over `total_threads` with preemption on, quarantine of
    /// 8 rounds, and no power or sampling budgets.
    pub fn new(total_threads: i64) -> Self {
        assert!(total_threads >= 1, "machine must have at least one thread");
        Self {
            total_threads,
            power_cap_w: None,
            sampling_hz_budget: None,
            quarantine_rounds: 8,
            preemption: true,
        }
    }

    /// Sets the power envelope, watts.
    pub fn with_power_cap_w(mut self, cap: f64) -> Self {
        self.power_cap_w = Some(cap);
        self
    }

    /// Sets the total sampling bandwidth, Hz.
    pub fn with_sampling_hz(mut self, hz: f64) -> Self {
        self.sampling_hz_budget = Some(hz);
        self
    }

    /// Sets the quarantine duration in control rounds.
    pub fn with_quarantine_rounds(mut self, rounds: u64) -> Self {
        self.quarantine_rounds = rounds;
        self
    }

    /// Disables latency-over-batch preemption (pure weighted fair share).
    pub fn without_preemption(mut self) -> Self {
        self.preemption = false;
        self
    }
}

/// Which plane a [`DemandProfile`] came from. Purely descriptive for
/// pressure-shim tenants; for native publishers it gates the
/// marginal-utility transfer pass (legacy `Pressure` profiles carry no
/// utility signal and never participate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DemandClass {
    /// Legacy scalar-pressure shim ([`DemandProfile::from_pressure`]).
    Pressure,
    /// Request-serving plane: queue depth + admission shed rate.
    Serve,
    /// DAG plane: ready-frontier width + critical-path tail.
    Dag,
    /// Throughput batch plane: occupancy / steal rate.
    Batch,
}

/// What one tenant tells the governor about its resource demand this
/// round — the typed replacement for the bare `metric / threshold`
/// pressure scalar.
///
/// The profile carries three orthogonal signals:
///
/// * `pressure` — how badly the tenant is missing its SLO (≥ 1 means
///   missing; keys latency-over-batch preemption exactly as before);
/// * `useful_width` — how many threads the tenant can *currently use*
///   (a serve plane's in-flight + queued headroom, a DAG plane's ready
///   frontier). Threads beyond it have zero marginal utility, so the
///   allocator caps the tenant there and re-shares the difference;
/// * `utility_up` / `utility_down` — the estimated marginal benefit of
///   one more thread and marginal cost of one fewer, in [0, 1]. The
///   transfer pass moves threads from the tenant whose last thread buys
///   the least to the tenant whose next thread buys the most.
#[derive(Clone, Copy, Debug)]
pub struct DemandProfile {
    /// SLO pressure ratio; ≥ 1 means the tenant is under pressure.
    pub pressure: f64,
    /// Parallelizable headroom: threads the tenant can use right now.
    /// `None` means unknown/unbounded (the tenant's ceiling applies).
    pub useful_width: Option<f64>,
    /// Marginal utility of +1 thread, in [0, 1].
    pub utility_up: f64,
    /// Marginal utility lost by −1 thread, in [0, 1].
    pub utility_down: f64,
    /// Which plane published this profile.
    pub class: DemandClass,
}

impl DemandProfile {
    /// The shim from the legacy scalar path: pressure only, no width,
    /// no utility signal. Tenants built with
    /// [`TenantSpec::with_pressure`] publish exactly this, so the
    /// allocator reproduces the old behaviour bit-for-bit.
    pub fn from_pressure(pressure: f64) -> Self {
        Self {
            pressure,
            useful_width: None,
            utility_up: 0.0,
            utility_down: 0.0,
            class: DemandClass::Pressure,
        }
    }

    /// A native profile whose utilities saturate against the declared
    /// width: `utility_up` is how much of one extra thread would still
    /// land inside `width` given the current `alloc`, `utility_down`
    /// how much of the last held thread is inside it. A tenant whose
    /// frontier is wider than its allocation reports
    /// `up = down = 1` (wants more, hurts to shrink); one allocated past
    /// its frontier reports `up = 0` and a fractional `down`.
    pub fn saturating(class: DemandClass, pressure: f64, width: f64, alloc: i64) -> Self {
        let width = width.max(0.0);
        let a = alloc.max(0) as f64;
        Self {
            pressure,
            useful_width: Some(width),
            utility_up: (width - a).clamp(0.0, 1.0),
            utility_down: (width - a + 1.0).clamp(0.0, 1.0),
            class,
        }
    }
}

impl Default for DemandProfile {
    fn default() -> Self {
        Self::from_pressure(0.0)
    }
}

/// Signature of a native demand publisher: the tenant's fresh snapshot
/// and current allocation in, a [`DemandProfile`] out.
pub type DemandProbe = Arc<dyn Fn(&IntrospectionSnapshot, i64) -> DemandProfile + Send + Sync>;

/// How a tenant's [`DemandProfile`] is produced each round.
#[derive(Default)]
pub enum DemandSource {
    /// No signal: the tenant always reports the default profile.
    #[default]
    None,
    /// Legacy scalar path: read `metric` from the tenant's snapshot and
    /// publish `DemandProfile::from_pressure(metric / threshold)`.
    Pressure {
        /// Metric name in the tenant's own introspection.
        metric: String,
        /// SLO threshold the metric is compared against.
        threshold: f64,
    },
    /// Native publisher: called with the tenant's fresh snapshot and its
    /// current allocation; the plane computes its own profile.
    Probe(DemandProbe),
}

impl Clone for DemandSource {
    fn clone(&self) -> Self {
        match self {
            Self::None => Self::None,
            Self::Pressure { metric, threshold } => Self::Pressure {
                metric: metric.clone(),
                threshold: *threshold,
            },
            Self::Probe(f) => Self::Probe(f.clone()),
        }
    }
}

impl fmt::Debug for DemandSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::None => f.write_str("DemandSource::None"),
            Self::Pressure { metric, threshold } => f
                .debug_struct("DemandSource::Pressure")
                .field("metric", metric)
                .field("threshold", threshold)
                .finish(),
            Self::Probe(_) => f.write_str("DemandSource::Probe(..)"),
        }
    }
}

/// Declared identity and resource envelope of one tenant.
#[derive(Clone, Debug)]
pub struct TenantSpec {
    /// Human name for tables and traces.
    pub name: String,
    /// SLO class — keys the preemption rule.
    pub slo: SloClass,
    /// Fair-share weight (≥ 1).
    pub weight: u32,
    /// Thread floor — quarantine and preemption never go below this.
    pub min_threads: i64,
    /// Thread ceiling.
    pub max_threads: i64,
    /// How the tenant's [`DemandProfile`] is produced each round — the
    /// legacy `metric / threshold` scalar ([`Self::with_pressure`]) or a
    /// native plane publisher ([`Self::with_demand_probe`]).
    pub demand: DemandSource,
    /// Optional power gauge (metric name in the tenant's introspection,
    /// watts) feeding the machine power envelope.
    pub power_metric: Option<String>,
    /// Optional sampling-period knob name (ns) in the tenant's registry,
    /// driven by the sampling-bandwidth budget.
    pub sampling_knob: Option<String>,
}

impl TenantSpec {
    /// A tenant with weight 1 and a 1..=`max` thread envelope.
    ///
    /// # Panics
    /// Panics if `max_threads < 1`.
    pub fn new(name: impl Into<String>, slo: SloClass, max_threads: i64) -> Self {
        assert!(max_threads >= 1, "tenant needs at least one thread");
        Self {
            name: name.into(),
            slo,
            weight: 1,
            min_threads: 1,
            max_threads,
            demand: DemandSource::None,
            power_metric: None,
            sampling_knob: None,
        }
    }

    /// Sets the fair-share weight (≥ 1).
    pub fn with_weight(mut self, weight: u32) -> Self {
        assert!(weight >= 1, "weight must be >= 1");
        self.weight = weight;
        self
    }

    /// Sets the thread floor (clamped to `1..=max_threads`).
    pub fn with_min_threads(mut self, min: i64) -> Self {
        self.min_threads = min.clamp(1, self.max_threads);
        self
    }

    /// Names the pressure metric and its SLO threshold — the legacy
    /// scalar path, kept as a shim: the tenant publishes
    /// `DemandProfile::from_pressure(metric / threshold)`.
    pub fn with_pressure(mut self, metric: impl Into<String>, threshold: f64) -> Self {
        assert!(threshold > 0.0, "pressure threshold must be positive");
        self.demand = DemandSource::Pressure {
            metric: metric.into(),
            threshold,
        };
        self
    }

    /// Installs a native demand publisher: called each round with the
    /// tenant's fresh snapshot and current allocation.
    pub fn with_demand_probe(
        mut self,
        probe: impl Fn(&IntrospectionSnapshot, i64) -> DemandProfile + Send + Sync + 'static,
    ) -> Self {
        self.demand = DemandSource::Probe(Arc::new(probe));
        self
    }

    /// Names the power gauge (watts).
    pub fn with_power_metric(mut self, metric: impl Into<String>) -> Self {
        self.power_metric = Some(metric.into());
        self
    }

    /// Names the sampling-period knob (ns).
    pub fn with_sampling_knob(mut self, knob: impl Into<String>) -> Self {
        self.sampling_knob = Some(knob.into());
        self
    }
}

/// One tenant's observed state for a round of arbitration — the pure
/// input to [`arbitrate`], public so property tests can drive the
/// allocator directly.
#[derive(Clone, Debug)]
pub struct TenantObs {
    /// Fair-share weight.
    pub weight: u32,
    /// SLO class.
    pub slo: SloClass,
    /// Thread floor.
    pub min: i64,
    /// Thread ceiling.
    pub max: i64,
    /// The tenant's demand profile for this round.
    pub demand: DemandProfile,
    /// Observed power draw, watts (0 if the tenant has no power gauge).
    pub power_w: f64,
    /// Whether the tenant is currently quarantined (pinned to `min`).
    pub quarantined: bool,
}

impl TenantObs {
    /// The ceiling the allocator actually fills toward: the declared
    /// useful width (rounded up, clamped into `[min, max]`), or `max`
    /// when the tenant publishes no width.
    pub fn effective_cap(&self) -> i64 {
        match self.demand.useful_width {
            Some(w) if w.is_finite() => (w.ceil() as i64).clamp(self.min, self.max),
            _ => self.max,
        }
    }
}

/// What one control round decided.
#[derive(Clone, Debug, Default)]
pub struct RoundReport {
    /// 1-based round counter.
    pub round: u64,
    /// Round timestamp, ns.
    pub t_ns: u64,
    /// Final per-tenant allocations, slot order.
    pub allocations: Vec<(TenantId, i64)>,
    /// Tenants in quarantine this round.
    pub quarantined: Vec<TenantId>,
    /// Knob writes performed (tenant + mirror + sampling).
    pub knob_writes: usize,
    /// Σ allocations — always ≤ the machine budget.
    pub total_allocated: i64,
}

/// A stamped mirror gauge on the governor's introspection: the stamp
/// only advances when the value changes, so idle tenants never dirty a
/// governor capture.
struct MirrorGauge {
    stamp: Arc<AtomicU64>,
    value: Arc<AtomicU64>,
}

impl MirrorGauge {
    fn new() -> Self {
        Self {
            stamp: Arc::new(AtomicU64::new(0)),
            value: Arc::new(AtomicU64::new(0)),
        }
    }

    fn set(&self, v: f64) {
        let bits = v.to_bits();
        if self.value.swap(bits, Ordering::Relaxed) != bits {
            self.stamp.fetch_add(1, Ordering::Release);
        }
    }
}

struct TenantState {
    id: TenantId,
    spec: TenantSpec,
    lg: Arc<LookingGlass>,
    /// The tenant-side knob the allocation is written to.
    thread_knob: KnobId,
    /// Optional tenant-side sampling-period knob.
    sampling_knob: Option<KnobId>,
    /// Actor id for arbiter writes in the *tenant's* journal.
    actor: TaskId,
    /// Interned `"regression-watchdog"` in the tenant's journal, for
    /// rollback detection without string resolution.
    watchdog_actor: TaskId,
    /// Governor-side mirror knob `"t<i>.threads"`.
    mirror_knob: KnobId,
    /// Lazily resolved pressure/power metric ids (tenants may register
    /// gauges after admission).
    pressure_id: Option<MetricId>,
    power_id: Option<MetricId>,
    g_pressure: MirrorGauge,
    g_rate: MirrorGauge,
    g_width: MirrorGauge,
    /// Journal high-water mark: records at or below it were scanned.
    last_seq: u64,
    last_completed: u64,
    last_t_ns: u64,
    /// Last observed demand/power (reused on admit/evict rebalance).
    demand: DemandProfile,
    power_w: f64,
    quarantine_left: u64,
    alloc: i64,
    last_sampling_period: i64,
}

impl TenantState {
    fn obs(&self) -> TenantObs {
        TenantObs {
            weight: self.spec.weight,
            slo: self.spec.slo,
            min: self.spec.min_threads,
            max: self.spec.max_threads,
            demand: self.demand,
            power_w: self.power_w,
            quarantined: self.quarantine_left > 0,
        }
    }

    /// Re-evaluates the tenant's demand source against a fresh snapshot
    /// (resolving late-registered pressure metrics lazily) and mirrors
    /// the result into the governor gauges.
    fn refresh_demand(&mut self, snap: &IntrospectionSnapshot) {
        self.demand = match &self.spec.demand {
            DemandSource::None => DemandProfile::default(),
            DemandSource::Pressure { metric, threshold } => {
                if self.pressure_id.is_none() {
                    self.pressure_id = self.lg.introspection().metric_id(metric);
                }
                let p = self
                    .pressure_id
                    .and_then(|id| snap.value(id))
                    .map(|v| v / threshold)
                    .unwrap_or(0.0);
                DemandProfile::from_pressure(p)
            }
            DemandSource::Probe(probe) => probe(snap, self.alloc),
        };
        self.g_pressure.set(self.demand.pressure);
        // Width mirror: −1 encodes "unbounded" so the gauge stays still
        // for legacy tenants instead of oscillating on NaN bit patterns.
        self.g_width.set(self.demand.useful_width.unwrap_or(-1.0));
    }
}

#[derive(Default)]
struct Inner {
    slots: Vec<Option<TenantState>>,
    quarantine_entries: u64,
}

/// The machine-wide governor. See the [module docs](self) for the
/// control-round protocol and invariants.
pub struct Arbiter {
    lg: Arc<LookingGlass>,
    config: ArbiterConfig,
    governor_actor: TaskId,
    inner: Mutex<Inner>,
    round: AtomicU64,
}

impl Arbiter {
    /// Creates a governor over its own wall-clocked [`LookingGlass`].
    pub fn new(config: ArbiterConfig) -> Arc<Self> {
        let lg = LookingGlass::builder().build();
        Self::with_instance(config, lg)
    }

    /// Creates a governor over a caller-built instance (virtual clocks,
    /// trace capacity, …).
    pub fn with_instance(config: ArbiterConfig, lg: Arc<LookingGlass>) -> Arc<Self> {
        let governor_actor = lg.knobs().actor("governor");
        Arc::new(Self {
            lg,
            config,
            governor_actor,
            inner: Mutex::new(Inner::default()),
            round: AtomicU64::new(0),
        })
    }

    /// The governor's own looking-glass instance: its knob registry holds
    /// the `"t<i>.threads"` mirrors, its journal the machine-level audit
    /// trail, its introspection the per-tenant mirror gauges.
    pub fn lg(&self) -> &Arc<LookingGlass> {
        &self.lg
    }

    /// The configured budgets.
    pub fn config(&self) -> &ArbiterConfig {
        &self.config
    }

    /// Control rounds run so far.
    pub fn round(&self) -> u64 {
        self.round.load(Ordering::Relaxed)
    }

    /// Live tenant count.
    pub fn tenant_count(&self) -> usize {
        self.inner.lock().slots.iter().flatten().count()
    }

    /// Times any tenant has *entered* quarantine.
    pub fn quarantine_entries(&self) -> u64 {
        self.inner.lock().quarantine_entries
    }

    /// A tenant's current allocation, if admitted.
    pub fn allocation(&self, id: TenantId) -> Option<i64> {
        let inner = self.inner.lock();
        inner.slots.get(id.0 as usize)?.as_ref().map(|s| s.alloc)
    }

    /// Whether a tenant is currently quarantined.
    pub fn is_quarantined(&self, id: TenantId) -> bool {
        let inner = self.inner.lock();
        inner
            .slots
            .get(id.0 as usize)
            .and_then(|s| s.as_ref())
            .map(|s| s.quarantine_left > 0)
            .unwrap_or(false)
    }

    /// Manually quarantines a tenant for `rounds` control rounds (testing
    /// and operator intervention). Takes effect at the next round.
    pub fn quarantine(&self, id: TenantId, rounds: u64) -> bool {
        let mut inner = self.inner.lock();
        let found = match inner.slots.get_mut(id.0 as usize).and_then(|s| s.as_mut()) {
            Some(s) => {
                s.quarantine_left = rounds;
                true
            }
            None => false,
        };
        if found {
            inner.quarantine_entries += 1;
        }
        found
    }

    /// Admits a tenant: `thread_knob` names the knob in the *tenant's*
    /// registry through which its worker-thread count is governed (a
    /// pool's `"thread_budget"`, a sim's `"thread_cap"`, a serve stage's
    /// `"serve.bulkhead_limit"`). Registers the governor-side mirror
    /// knob and gauges, then rebalances the whole fleet so the budget
    /// invariant holds immediately.
    ///
    /// # Panics
    /// Panics if the knob does not exist, or if admitting the tenant's
    /// floor would oversubscribe the machine (Σ floors > budget).
    pub fn admit(&self, lg: Arc<LookingGlass>, spec: TenantSpec, thread_knob: &str) -> TenantId {
        let thread_id = lg
            .knobs()
            .id(thread_knob)
            .unwrap_or_else(|| panic!("tenant '{}' has no knob '{thread_knob}'", spec.name));
        let sampling_id = spec.sampling_knob.as_deref().and_then(|k| lg.knobs().id(k));
        let actor = lg.knobs().actor("arbiter");
        let watchdog_actor = lg.knobs().actor("regression-watchdog");
        let t_ns = self.lg.now_ns();

        let mut inner = self.inner.lock();
        let floors: i64 = inner
            .slots
            .iter()
            .flatten()
            .map(|s| s.spec.min_threads)
            .sum();
        assert!(
            floors + spec.min_threads <= self.config.total_threads,
            "admitting '{}' would oversubscribe floors: {} + {} > {}",
            spec.name,
            floors,
            spec.min_threads,
            self.config.total_threads
        );

        let slot = match inner.slots.iter().position(|s| s.is_none()) {
            Some(i) => i,
            None => {
                inner.slots.push(None);
                inner.slots.len() - 1
            }
        };
        let id = TenantId(slot as u32);

        let mirror_spec = KnobSpec::new("threads", spec.min_threads, spec.max_threads)
            .with_unit("workers")
            .with_default(spec.min_threads)
            .scoped(id);
        let mirror_knob = self
            .lg
            .knobs()
            .register(AtomicKnob::new(mirror_spec, spec.min_threads));

        let g_pressure = MirrorGauge::new();
        let g_rate = MirrorGauge::new();
        let g_width = MirrorGauge::new();
        for (suffix, g) in [
            ("pressure", &g_pressure),
            ("rate", &g_rate),
            ("width", &g_width),
        ] {
            let value = g.value.clone();
            self.lg.introspection().register_gauge_stamped(
                &id.scoped(suffix),
                g.stamp.clone(),
                move || f64::from_bits(value.load(Ordering::Relaxed)),
            );
        }

        let power_id = spec
            .power_metric
            .as_ref()
            .and_then(|m| lg.introspection().metric_id(m));
        let last_seq = lg.knobs().journal().total_recorded();
        let mut state = TenantState {
            id,
            spec,
            lg,
            thread_knob: thread_id,
            sampling_knob: sampling_id,
            actor,
            watchdog_actor,
            mirror_knob,
            pressure_id: None,
            power_id,
            g_pressure,
            g_rate,
            g_width,
            last_seq,
            last_completed: 0,
            last_t_ns: t_ns,
            demand: DemandProfile::default(),
            power_w: 0.0,
            quarantine_left: 0,
            alloc: 0,
            last_sampling_period: 0,
        };
        // Close the stale-signal window: evaluate the tenant's demand
        // source against a fresh snapshot *before* the admit-time
        // rebalance, so a tenant arriving hot (pressure metric already
        // past its SLO, frontier already wide) is arbitrated on its real
        // signal rather than a zero placeholder.
        let snap = state.lg.introspection().capture(t_ns);
        state.refresh_demand(&snap);
        state.power_w = state.power_id.and_then(|id| snap.value(id)).unwrap_or(0.0);
        inner.slots[slot] = Some(state);
        self.rebalance_locked(&mut inner, t_ns);
        id
    }

    /// Evicts a tenant, returning its capacity to the pool and removing
    /// its governor-side mirror knob. The fleet is rebalanced before
    /// returning. Mirror gauges fall to zero but stay registered (the
    /// introspection has no deregistration; a re-admitted slot reuses
    /// them).
    pub fn evict(&self, id: TenantId) -> bool {
        let t_ns = self.lg.now_ns();
        let mut inner = self.inner.lock();
        let Some(state) = inner.slots.get_mut(id.0 as usize).and_then(|s| s.take()) else {
            return false;
        };
        state.g_pressure.set(0.0);
        state.g_rate.set(0.0);
        state.g_width.set(0.0);
        self.lg.knobs().deregister(&id.scoped("threads"));
        self.rebalance_locked(&mut inner, t_ns);
        true
    }

    /// Runs one control round at `t_ns`: step tenant engines, capture
    /// snapshots, refresh quarantine, arbitrate, actuate.
    pub fn control_round(&self, t_ns: u64) -> RoundReport {
        let round = self.round.fetch_add(1, Ordering::Relaxed) + 1;
        let mut guard = self.inner.lock();
        let inner = &mut *guard;

        for state in inner.slots.iter_mut().flatten() {
            state.lg.policy_engine().step(t_ns);
            let snap = state.lg.introspection().capture(t_ns);

            // Noisy-neighbour signal: new watchdog rollback records in
            // the tenant's journal since the last scan.
            let journal = state.lg.knobs().journal();
            let rollbacks = journal
                .raw_records_since(state.last_seq)
                .iter()
                .filter(|r| r.policy == state.watchdog_actor || r.rollback_of.is_some())
                .count();
            state.last_seq = journal.total_recorded();
            if rollbacks > 0 {
                if state.quarantine_left == 0 {
                    inner.quarantine_entries += 1;
                }
                state.quarantine_left = self.config.quarantine_rounds;
            } else {
                state.quarantine_left = state.quarantine_left.saturating_sub(1);
            }

            // Re-evaluate the demand source (resolving late-registered
            // metrics lazily) and read the power gauge.
            state.refresh_demand(&snap);
            if state.power_id.is_none() {
                if let Some(m) = state.spec.power_metric.as_ref() {
                    state.power_id = state.lg.introspection().metric_id(m);
                }
            }
            state.power_w = state.power_id.and_then(|id| snap.value(id)).unwrap_or(0.0);

            let dt_s = t_ns.saturating_sub(state.last_t_ns) as f64 / 1e9;
            let rate = if dt_s > 0.0 {
                snap.total_completed.saturating_sub(state.last_completed) as f64 / dt_s
            } else {
                0.0
            };
            state.last_completed = snap.total_completed;
            state.last_t_ns = t_ns;
            state.g_rate.set(rate);
        }

        let (allocations, quarantined, knob_writes) = self.rebalance_locked(inner, t_ns);
        let total_allocated = allocations.iter().map(|(_, a)| a).sum();
        RoundReport {
            round,
            t_ns,
            allocations,
            quarantined,
            knob_writes,
            total_allocated,
        }
    }

    /// Re-runs arbitration over the current observations and writes any
    /// changed allocations through both journals.
    fn rebalance_locked(
        &self,
        inner: &mut Inner,
        t_ns: u64,
    ) -> (Vec<(TenantId, i64)>, Vec<TenantId>, usize) {
        let obs: Vec<TenantObs> = inner.slots.iter().flatten().map(|s| s.obs()).collect();
        let allocs = arbitrate(&self.config, &obs);
        let mut writes = 0usize;

        // Sampling bandwidth: weight-proportional Hz across tenants that
        // expose a sampling-period knob.
        let sampling_weight: u32 = match self.config.sampling_hz_budget {
            Some(_) => inner
                .slots
                .iter()
                .flatten()
                .filter(|s| s.sampling_knob.is_some())
                .map(|s| s.spec.weight)
                .sum(),
            None => 0,
        };

        let mut out = Vec::with_capacity(allocs.len());
        let mut quarantined = Vec::new();
        for (i, state) in inner.slots.iter_mut().flatten().enumerate() {
            let alloc = allocs[i];
            if state.quarantine_left > 0 {
                quarantined.push(state.id);
            }
            // Write when the allocation moved — and also re-assert a
            // quarantined tenant whose live knob drifted from its grant
            // (a tenant-local policy fighting the governor). Healthy
            // tenants keep knob autonomy between grant changes; a
            // quarantined one does not.
            let drifted = state.quarantine_left > 0
                && state.lg.knobs().value_id(state.thread_knob) != Some(alloc);
            if alloc != state.alloc || drifted {
                self.lg
                    .knobs()
                    .set_id_as(state.mirror_knob, alloc, self.governor_actor, t_ns);
                state
                    .lg
                    .knobs()
                    .set_id_as(state.thread_knob, alloc, state.actor, t_ns);
                state.alloc = alloc;
                writes += 2;
            }
            if let (Some(hz), Some(knob)) = (self.config.sampling_hz_budget, state.sampling_knob) {
                if sampling_weight > 0 {
                    let share_hz = hz * state.spec.weight as f64 / sampling_weight as f64;
                    let period = (1e9 / share_hz.max(1e-9)).round() as i64;
                    if period != state.last_sampling_period {
                        state.lg.knobs().set_id_as(knob, period, state.actor, t_ns);
                        state.last_sampling_period = period;
                        writes += 1;
                    }
                }
            }
            // Our own writes are not noise: advance the scan mark past
            // them so the next round only sees tenant-side activity.
            state.last_seq = state.lg.knobs().journal().total_recorded();
            out.push((state.id, alloc));
        }
        (out, quarantined, writes)
    }
}

/// The pure allocator: weighted fair share over `[min, max]` envelopes
/// with water-filling, largest-remainder rounding, quarantine pinning,
/// an optional power envelope, latency-over-batch preemption, and a
/// demand-aware marginal-utility transfer pass.
///
/// Demand awareness enters in two places:
///
/// * each tenant's declared [`useful_width`](DemandProfile::useful_width)
///   caps how far the water-fill and preemption fill it — threads beyond
///   a tenant's ready frontier buy nothing, so they are re-shared toward
///   tenants that can still use them (or left unallocated when nobody
///   can: budget released, not burned);
/// * after the fill, threads migrate one at a time from the
///   non-quarantined tenant whose last thread has the lowest
///   [`utility_down`](DemandProfile::utility_down) to the one whose next
///   thread has the highest [`utility_up`](DemandProfile::utility_up),
///   while the gain is strict. Legacy
///   [`from_pressure`](DemandProfile::from_pressure) profiles carry no
///   utility signal and never participate, so an all-legacy input
///   reproduces the pressure-only allocator exactly.
///
/// Guarantees, for any input with Σ min ≤ `total_threads`:
/// * Σ result ≤ `config.total_threads`;
/// * `min ≤ result[i] ≤ max` for every tenant;
/// * quarantined tenants get exactly `min`;
/// * deterministic (pure function of its arguments).
pub fn arbitrate(config: &ArbiterConfig, obs: &[TenantObs]) -> Vec<i64> {
    if obs.is_empty() {
        return Vec::new();
    }
    let floors: i64 = obs.iter().map(|o| o.min).sum();
    let cap: Vec<i64> = obs.iter().map(|o| o.effective_cap()).collect();

    // Power envelope: scale the thread budget down toward the floors
    // when the fleet draws beyond the cap.
    let mut total = config.total_threads;
    if let Some(cap) = config.power_cap_w {
        let draw: f64 = obs.iter().map(|o| o.power_w).sum();
        if draw > cap && draw > 0.0 {
            total = ((total as f64) * cap / draw).floor() as i64;
        }
    }
    let total = total.clamp(floors, config.total_threads);

    // Quarantined tenants are pinned to their floor; the rest
    // water-fill the remaining budget by weight.
    let mut alloc: Vec<Option<i64>> = obs.iter().map(|o| o.quarantined.then_some(o.min)).collect();
    let mut budget = total - alloc.iter().flatten().sum::<i64>();

    // Water-filling: tenants whose weighted share falls below their
    // floor pin at the floor first (they shrink the budget the least and
    // protect the Σ-min feasibility invariant); only when no floor is
    // violated do over-ceiling tenants pin at their ceiling. Both kinds
    // of pin re-share the remaining budget among the rest.
    loop {
        let active: Vec<usize> = (0..obs.len()).filter(|&i| alloc[i].is_none()).collect();
        if active.is_empty() || budget <= 0 {
            for i in active {
                alloc[i] = Some(obs[i].min);
            }
            break;
        }
        let wsum: f64 = active.iter().map(|&i| obs[i].weight as f64).sum();
        let shares: Vec<(usize, f64)> = active
            .iter()
            .map(|&i| (i, budget as f64 * obs[i].weight as f64 / wsum))
            .collect();
        let under: Vec<usize> = shares
            .iter()
            .filter(|&&(i, s)| s < obs[i].min as f64)
            .map(|&(i, _)| i)
            .collect();
        if !under.is_empty() {
            for i in under {
                alloc[i] = Some(obs[i].min);
                budget -= obs[i].min;
            }
            continue;
        }
        let over: Vec<usize> = shares
            .iter()
            .filter(|&&(i, s)| s >= cap[i] as f64)
            .map(|&(i, _)| i)
            .collect();
        if !over.is_empty() {
            for i in over {
                alloc[i] = Some(cap[i]);
                budget -= cap[i];
            }
            continue;
        }
        // All fractional shares are interior: floor them and hand the
        // remainder out by largest fractional part (index tie-break).
        let mut rem: Vec<(usize, f64)> = Vec::with_capacity(active.len());
        let mut used = 0i64;
        for &i in &active {
            let share = budget as f64 * obs[i].weight as f64 / wsum;
            let base = share.floor() as i64;
            alloc[i] = Some(base.clamp(obs[i].min, cap[i]));
            used += alloc[i].unwrap();
            rem.push((i, share - share.floor()));
        }
        rem.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let mut leftover = budget - used;
        for (i, _) in rem {
            if leftover <= 0 {
                break;
            }
            let a = alloc[i].unwrap();
            if a < cap[i] {
                alloc[i] = Some(a + 1);
                leftover -= 1;
            }
        }
        break;
    }
    let mut alloc: Vec<i64> = alloc.into_iter().map(|a| a.unwrap()).collect();

    // Priority preemption: a latency tenant whose pressure signal is at
    // or past its SLO takes capacity from batch tenants (lowest weight
    // first), never below a batch floor, never above its own useful
    // width (a pressured tenant that cannot absorb more threads takes
    // nothing).
    if config.preemption {
        let mut donors: Vec<usize> = (0..obs.len())
            .filter(|&i| obs[i].slo == SloClass::Batch && !obs[i].quarantined)
            .collect();
        donors.sort_by_key(|&i| (obs[i].weight, i));
        for i in 0..obs.len() {
            if obs[i].slo != SloClass::Latency || obs[i].quarantined || obs[i].demand.pressure < 1.0
            {
                continue;
            }
            let mut need = cap[i] - alloc[i];
            for &d in &donors {
                if need <= 0 {
                    break;
                }
                let surplus = alloc[d] - obs[d].min;
                let take = surplus.min(need);
                if take > 0 {
                    alloc[d] -= take;
                    alloc[i] += take;
                    need -= take;
                }
            }
        }
    }

    // Marginal-utility transfer: among tenants that publish native
    // profiles, migrate single threads from the holder whose last thread
    // buys the least (`utility_down`) to the claimant whose next thread
    // buys the most (`utility_up`), while the move is a strict
    // improvement. One-way guards — a donor never receives back, a
    // receiver never donates — make every move final, so the pass
    // terminates and allocations cannot churn between equal-utility
    // tenants.
    if config.preemption {
        let eligible =
            |i: usize| obs[i].demand.class != DemandClass::Pressure && !obs[i].quarantined;
        let mut gave = vec![false; obs.len()];
        let mut took = vec![false; obs.len()];
        loop {
            let recv = (0..obs.len())
                .filter(|&i| eligible(i) && !gave[i] && alloc[i] < cap[i])
                .max_by(|&a, &b| {
                    obs[a]
                        .demand
                        .utility_up
                        .partial_cmp(&obs[b].demand.utility_up)
                        .unwrap()
                        .then(b.cmp(&a))
                });
            let Some(r) = recv else { break };
            let donor = (0..obs.len())
                .filter(|&i| i != r && eligible(i) && !took[i] && alloc[i] > obs[i].min)
                .min_by(|&a, &b| {
                    obs[a]
                        .demand
                        .utility_down
                        .partial_cmp(&obs[b].demand.utility_down)
                        .unwrap()
                        .then(a.cmp(&b))
                });
            let Some(d) = donor else { break };
            if obs[r].demand.utility_up <= obs[d].demand.utility_down + 1e-9 {
                break;
            }
            alloc[d] -= 1;
            alloc[r] += 1;
            gave[d] = true;
            took[r] = true;
        }
    }
    alloc
}

/// Fold an actuation journal into each knob's final value — the replay
/// check used to prove the journal is a faithful history: for every
/// knob the journal still covers, the last record's `to` must equal the
/// registry's live value.
pub fn replay_final_values(journal: &ActuationJournal) -> Vec<(String, i64)> {
    let mut last: Vec<(String, i64)> = Vec::new();
    for rec in journal.records() {
        match last.iter_mut().find(|(k, _)| *k == rec.knob) {
            Some((_, v)) => *v = rec.to,
            None => last.push((rec.knob.clone(), rec.to)),
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, VirtualClock};
    use crate::knob::AtomicKnob;

    fn obs(weight: u32, slo: SloClass, min: i64, max: i64) -> TenantObs {
        TenantObs {
            weight,
            slo,
            min,
            max,
            demand: DemandProfile::default(),
            power_w: 0.0,
            quarantined: false,
        }
    }

    #[test]
    fn fair_share_follows_weights() {
        let cfg = ArbiterConfig::new(32);
        let o = vec![
            obs(1, SloClass::Batch, 1, 32),
            obs(3, SloClass::Batch, 1, 32),
        ];
        let a = arbitrate(&cfg, &o);
        assert_eq!(a.iter().sum::<i64>(), 32);
        assert_eq!(a, vec![8, 24]);
    }

    #[test]
    fn envelope_clamps_and_redistributes() {
        let cfg = ArbiterConfig::new(32);
        let o = vec![
            obs(1, SloClass::Batch, 1, 4), // ceiling far below fair share
            obs(1, SloClass::Batch, 1, 32),
        ];
        let a = arbitrate(&cfg, &o);
        assert_eq!(a, vec![4, 28]);
    }

    #[test]
    fn quarantined_tenant_pinned_to_floor() {
        let cfg = ArbiterConfig::new(32);
        let mut o = vec![
            obs(1, SloClass::Batch, 2, 32),
            obs(1, SloClass::Latency, 1, 32),
        ];
        o[0].quarantined = true;
        let a = arbitrate(&cfg, &o);
        assert_eq!(a[0], 2);
        assert_eq!(a[1], 30);
    }

    #[test]
    fn pressure_preempts_batch_down_to_floor() {
        let cfg = ArbiterConfig::new(32);
        let mut o = vec![
            obs(1, SloClass::Latency, 1, 24),
            obs(1, SloClass::Batch, 4, 32),
        ];
        o[0].demand = DemandProfile::from_pressure(1.5);
        let a = arbitrate(&cfg, &o);
        assert_eq!(a, vec![24, 8]);
        assert_eq!(a.iter().sum::<i64>(), 32);
    }

    #[test]
    fn no_preemption_without_pressure_or_when_disabled() {
        let cfg = ArbiterConfig::new(32).without_preemption();
        let mut o = vec![
            obs(1, SloClass::Latency, 1, 32),
            obs(1, SloClass::Batch, 1, 32),
        ];
        o[0].demand = DemandProfile::from_pressure(2.0);
        let a = arbitrate(&cfg, &o);
        assert_eq!(a, vec![16, 16]);
    }

    #[test]
    fn useful_width_caps_the_fill_and_reshares() {
        let cfg = ArbiterConfig::new(32);
        let mut o = vec![
            obs(1, SloClass::Latency, 1, 32),
            obs(1, SloClass::Batch, 1, 32),
        ];
        // Tenant 0 can only use ~6 threads right now: its cap binds and
        // the difference flows to tenant 1.
        o[0].demand = DemandProfile::saturating(DemandClass::Serve, 0.0, 6.0, 0);
        let a = arbitrate(&cfg, &o);
        assert_eq!(a, vec![6, 26]);
        assert_eq!(a.iter().sum::<i64>(), 32);
    }

    #[test]
    fn narrow_frontiers_release_budget_instead_of_burning_it() {
        let cfg = ArbiterConfig::new(32);
        let mut o = vec![
            obs(1, SloClass::Batch, 1, 32),
            obs(1, SloClass::Batch, 1, 32),
        ];
        // Both tenants are in their tails: nobody can use more than a
        // few threads, so the governor leaves the rest unallocated.
        o[0].demand = DemandProfile::saturating(DemandClass::Dag, 0.0, 2.0, 0);
        o[1].demand = DemandProfile::saturating(DemandClass::Batch, 0.0, 3.0, 0);
        let a = arbitrate(&cfg, &o);
        assert_eq!(a, vec![2, 3]);
        assert!(a.iter().sum::<i64>() < 32);
    }

    #[test]
    fn utility_transfer_moves_threads_toward_the_wide_frontier() {
        let cfg = ArbiterConfig::new(8);
        let mut o = vec![obs(1, SloClass::Batch, 1, 8), obs(1, SloClass::Batch, 1, 8)];
        // Equal weights → 4/4 from water-filling. Tenant 0's last
        // thread buys almost nothing; tenant 1's next thread buys a lot.
        o[0].demand = DemandProfile {
            pressure: 0.0,
            useful_width: None,
            utility_up: 0.0,
            utility_down: 0.1,
            class: DemandClass::Batch,
        };
        o[1].demand = DemandProfile {
            pressure: 0.0,
            useful_width: None,
            utility_up: 0.9,
            utility_down: 0.9,
            class: DemandClass::Dag,
        };
        let a = arbitrate(&cfg, &o);
        // Threads migrate down to the donor's floor (utilities are this
        // round's declaration; the floor is the backstop), and the
        // one-way guards keep them from sloshing back.
        assert_eq!(a, vec![1, 7]);
        assert_eq!(a.iter().sum::<i64>(), 8);
    }

    #[test]
    fn legacy_pressure_profiles_never_enter_the_transfer_pass() {
        let cfg = ArbiterConfig::new(8);
        let mut o = vec![obs(1, SloClass::Batch, 1, 8), obs(1, SloClass::Batch, 1, 8)];
        // from_pressure carries no utility signal: the allocation must
        // be identical to plain weighted fair share.
        o[0].demand = DemandProfile::from_pressure(0.3);
        o[1].demand = DemandProfile::from_pressure(0.9);
        assert_eq!(arbitrate(&cfg, &o), vec![4, 4]);
    }

    #[test]
    fn power_cap_shrinks_budget_toward_floors() {
        let cfg = ArbiterConfig::new(32).with_power_cap_w(100.0);
        let mut o = vec![
            obs(1, SloClass::Batch, 2, 32),
            obs(1, SloClass::Batch, 2, 32),
        ];
        o[0].power_w = 100.0;
        o[1].power_w = 100.0;
        let a = arbitrate(&cfg, &o);
        // Draw is 2x the cap, so the effective budget halves to 16.
        assert_eq!(a.iter().sum::<i64>(), 16);
        // Floors always survive even at absurd draw.
        o[0].power_w = 1e9;
        let a = arbitrate(&cfg, &o);
        assert!(a.iter().sum::<i64>() >= 4);
        assert!(a.iter().all(|&x| x >= 2));
    }

    fn tenant_lg(clock: &Arc<VirtualClock>) -> Arc<LookingGlass> {
        LookingGlass::builder().clock(clock.clone()).build()
    }

    fn cap_knob(lg: &LookingGlass, max: i64) -> crate::knob::KnobId {
        lg.knobs().register(AtomicKnob::new(
            KnobSpec::new("thread_cap", 1, max).with_unit("workers"),
            max,
        ))
    }

    #[test]
    fn admit_rebalances_and_mirrors() {
        let clock = Arc::new(VirtualClock::new());
        let gov = tenant_lg(&clock);
        let arb = Arbiter::with_instance(ArbiterConfig::new(32), gov);

        let a = tenant_lg(&clock);
        cap_knob(&a, 32);
        let ta = arb.admit(
            a.clone(),
            TenantSpec::new("a", SloClass::Batch, 32),
            "thread_cap",
        );
        assert_eq!(arb.allocation(ta), Some(32));
        assert_eq!(a.knobs().value("thread_cap"), Some(32));

        let b = tenant_lg(&clock);
        cap_knob(&b, 32);
        let tb = arb.admit(
            b.clone(),
            TenantSpec::new("b", SloClass::Batch, 32),
            "thread_cap",
        );
        // Fleet rebalanced: both halves, mirrors agree, budget held.
        assert_eq!(arb.allocation(ta), Some(16));
        assert_eq!(arb.allocation(tb), Some(16));
        assert_eq!(a.knobs().value("thread_cap"), Some(16));
        assert_eq!(arb.lg().knobs().value(&ta.scoped("threads")), Some(16));
        assert_eq!(arb.lg().knobs().value(&tb.scoped("threads")), Some(16));

        // Evict returns capacity to the survivor.
        assert!(arb.evict(ta));
        assert_eq!(arb.allocation(tb), Some(32));
        assert_eq!(b.knobs().value("thread_cap"), Some(32));
        assert_eq!(arb.lg().knobs().id(&ta.scoped("threads")), None);
    }

    #[test]
    fn control_round_reports_and_journals() {
        let clock = Arc::new(VirtualClock::new());
        let gov = tenant_lg(&clock);
        let arb = Arbiter::with_instance(ArbiterConfig::new(8), gov);
        let a = tenant_lg(&clock);
        cap_knob(&a, 8);
        let ta = arb.admit(
            a.clone(),
            TenantSpec::new("a", SloClass::Batch, 8),
            "thread_cap",
        );
        clock.advance_by(1_000_000);
        let r = arb.control_round(clock.now_ns());
        assert_eq!(r.round, 1);
        assert_eq!(r.allocations, vec![(ta, 8)]);
        assert_eq!(r.total_allocated, 8);
        assert!(r.quarantined.is_empty());
        // Arbiter writes went through the tenant's journal under the
        // "arbiter" actor, and the governor mirror under "governor".
        let tenant_recs = a.knobs().journal().records();
        assert!(tenant_recs.iter().any(|r| r.policy == "arbiter"));
        let gov_recs = arb.lg().knobs().journal().records();
        assert!(gov_recs.iter().any(|r| r.policy == "governor"));
    }

    #[test]
    fn watchdog_rollback_triggers_quarantine_and_expires() {
        let clock = Arc::new(VirtualClock::new());
        let gov = tenant_lg(&clock);
        let arb = Arbiter::with_instance(ArbiterConfig::new(16).with_quarantine_rounds(2), gov);
        let noisy = tenant_lg(&clock);
        cap_knob(&noisy, 16);
        let quiet = tenant_lg(&clock);
        cap_knob(&quiet, 16);
        let tn = arb.admit(
            noisy.clone(),
            TenantSpec::new("noisy", SloClass::Batch, 16).with_min_threads(2),
            "thread_cap",
        );
        let tq = arb.admit(
            quiet.clone(),
            TenantSpec::new("quiet", SloClass::Batch, 16),
            "thread_cap",
        );
        clock.advance_by(1_000_000);
        arb.control_round(clock.now_ns());
        assert!(!arb.is_quarantined(tn));

        // Simulate the tenant's watchdog undoing a local write.
        let j = noisy.knobs().journal();
        let wd = j.intern("regression-watchdog");
        let knob = j.intern("thread_cap");
        j.record_interned(clock.now_ns(), wd, knob, 16, 8, None);

        clock.advance_by(1_000_000);
        let r = arb.control_round(clock.now_ns());
        assert!(arb.is_quarantined(tn));
        assert_eq!(r.quarantined, vec![tn]);
        // Quarantined tenant pinned to floor; sibling absorbs the slack.
        assert_eq!(arb.allocation(tn), Some(2));
        assert_eq!(arb.allocation(tq), Some(14));

        // Quarantine expires after the configured rounds.
        clock.advance_by(1_000_000);
        arb.control_round(clock.now_ns());
        clock.advance_by(1_000_000);
        arb.control_round(clock.now_ns());
        clock.advance_by(1_000_000);
        arb.control_round(clock.now_ns());
        assert!(!arb.is_quarantined(tn));
        assert_eq!(arb.allocation(tn), Some(8));
        assert_eq!(arb.quarantine_entries(), 1);
    }

    #[test]
    fn quarantine_reasserts_floor_when_tenant_fights_back() {
        let clock = Arc::new(VirtualClock::new());
        let arb = Arbiter::with_instance(
            ArbiterConfig::new(16).with_quarantine_rounds(4),
            tenant_lg(&clock),
        );
        let noisy = tenant_lg(&clock);
        cap_knob(&noisy, 16);
        let quiet = tenant_lg(&clock);
        cap_knob(&quiet, 16);
        let tn = arb.admit(
            noisy.clone(),
            TenantSpec::new("noisy", SloClass::Batch, 16).with_min_threads(2),
            "thread_cap",
        );
        arb.admit(
            quiet,
            TenantSpec::new("quiet", SloClass::Batch, 16),
            "thread_cap",
        );
        // A watchdog rollback lands the tenant in quarantine at its floor.
        let j = noisy.knobs().journal();
        let wd = j.intern("regression-watchdog");
        let knob = j.intern("thread_cap");
        j.record_interned(clock.now_ns(), wd, knob, 16, 8, None);
        clock.advance_by(1_000_000);
        arb.control_round(clock.now_ns());
        assert!(arb.is_quarantined(tn));
        assert_eq!(noisy.knobs().value("thread_cap"), Some(2));

        // A greedy tenant-local policy grabs threads back between rounds.
        noisy.knobs().set("thread_cap", 12);
        assert_eq!(noisy.knobs().value("thread_cap"), Some(12));
        // The allocation hasn't moved (still pinned to the floor), but the
        // next round must re-assert it anyway: quarantine revokes knob
        // autonomy.
        clock.advance_by(1_000_000);
        arb.control_round(clock.now_ns());
        assert_eq!(arb.allocation(tn), Some(2));
        assert_eq!(noisy.knobs().value("thread_cap"), Some(2));
    }

    #[test]
    fn pressure_metric_drives_preemption_in_rounds() {
        let clock = Arc::new(VirtualClock::new());
        let arb = Arbiter::with_instance(ArbiterConfig::new(32), tenant_lg(&clock));
        let serve = tenant_lg(&clock);
        cap_knob(&serve, 24);
        let p99 = Arc::new(AtomicU64::new(0));
        let p = p99.clone();
        serve
            .introspection()
            .register_gauge("p99_ns", move || p.load(Ordering::Relaxed) as f64);
        let batch = tenant_lg(&clock);
        cap_knob(&batch, 32);
        let ts = arb.admit(
            serve.clone(),
            TenantSpec::new("serve", SloClass::Latency, 24).with_pressure("p99_ns", 10_000_000.0),
            "thread_cap",
        );
        let tb = arb.admit(
            batch.clone(),
            TenantSpec::new("batch", SloClass::Batch, 32).with_min_threads(4),
            "thread_cap",
        );
        clock.advance_by(1_000_000);
        arb.control_round(clock.now_ns());
        assert_eq!(arb.allocation(ts), Some(16));

        // p99 blows past the SLO: serve preempts batch down to its floor.
        p99.store(25_000_000, Ordering::Relaxed);
        clock.advance_by(1_000_000);
        arb.control_round(clock.now_ns());
        assert_eq!(arb.allocation(ts), Some(24));
        assert_eq!(arb.allocation(tb), Some(8));

        // Pressure subsides: fair share returns.
        p99.store(1_000_000, Ordering::Relaxed);
        clock.advance_by(1_000_000);
        arb.control_round(clock.now_ns());
        assert_eq!(arb.allocation(ts), Some(16));
        assert_eq!(arb.allocation(tb), Some(16));
        // The governor snapshot mirrors the fleet under scoped names.
        let snap = arb.lg().introspection().capture(clock.now_ns());
        assert!(snap.value_scoped(ts, "pressure").unwrap() < 1.0);
    }

    #[test]
    fn admit_evaluates_demand_before_first_rebalance() {
        // Regression: a tenant admitted with its pressure metric already
        // past the SLO used to be seeded with pressure 0.0 and wait a
        // full control round before preempting. The admit-time rebalance
        // must see the live signal.
        let clock = Arc::new(VirtualClock::new());
        let arb = Arbiter::with_instance(ArbiterConfig::new(32), tenant_lg(&clock));
        let batch = tenant_lg(&clock);
        cap_knob(&batch, 32);
        let tb = arb.admit(
            batch,
            TenantSpec::new("batch", SloClass::Batch, 32).with_min_threads(4),
            "thread_cap",
        );
        let serve = tenant_lg(&clock);
        cap_knob(&serve, 24);
        let p99 = Arc::new(AtomicU64::new(25_000_000));
        let p = p99.clone();
        serve
            .introspection()
            .register_gauge("p99_ns", move || p.load(Ordering::Relaxed) as f64);
        let ts = arb.admit(
            serve,
            TenantSpec::new("serve", SloClass::Latency, 24).with_pressure("p99_ns", 10_000_000.0),
            "thread_cap",
        );
        // No control round has run, yet the hot tenant already preempted.
        assert_eq!(arb.allocation(ts), Some(24));
        assert_eq!(arb.allocation(tb), Some(8));
    }

    #[test]
    fn demand_probe_feeds_native_profile_through_rounds() {
        let clock = Arc::new(VirtualClock::new());
        let arb = Arbiter::with_instance(ArbiterConfig::new(32), tenant_lg(&clock));
        let legacy = tenant_lg(&clock);
        cap_knob(&legacy, 32);
        let tl = arb.admit(
            legacy,
            TenantSpec::new("legacy", SloClass::Batch, 32),
            "thread_cap",
        );
        let dag = tenant_lg(&clock);
        cap_knob(&dag, 32);
        let width = Arc::new(AtomicU64::new(24));
        let w = width.clone();
        let td = arb.admit(
            dag,
            TenantSpec::new("dag", SloClass::Batch, 32).with_demand_probe(move |_snap, alloc| {
                DemandProfile::saturating(
                    DemandClass::Dag,
                    0.0,
                    w.load(Ordering::Relaxed) as f64,
                    alloc,
                )
            }),
            "thread_cap",
        );
        clock.advance_by(1_000_000);
        arb.control_round(clock.now_ns());
        // Wide frontier: the DAG tenant holds its fair share.
        assert_eq!(arb.allocation(td), Some(16));

        // Tail sets in: the frontier narrows, threads flow back.
        width.store(3, Ordering::Relaxed);
        clock.advance_by(1_000_000);
        arb.control_round(clock.now_ns());
        assert_eq!(arb.allocation(td), Some(3));
        assert_eq!(arb.allocation(tl), Some(29));
        // The governor mirrors the declared width.
        let snap = arb.lg().introspection().capture(clock.now_ns());
        assert_eq!(snap.value_scoped(td, "width"), Some(3.0));
    }

    #[test]
    fn sampling_budget_splits_by_weight() {
        let clock = Arc::new(VirtualClock::new());
        let arb = Arbiter::with_instance(
            ArbiterConfig::new(8).with_sampling_hz(1000.0),
            tenant_lg(&clock),
        );
        let a = tenant_lg(&clock);
        cap_knob(&a, 8);
        a.knobs().register(AtomicKnob::new(
            KnobSpec::new("sample_period_ns", 1_000, 1_000_000_000).with_unit("ns"),
            1_000_000,
        ));
        arb.admit(
            a.clone(),
            TenantSpec::new("a", SloClass::Batch, 8)
                .with_weight(3)
                .with_sampling_knob("sample_period_ns"),
            "thread_cap",
        );
        let b = tenant_lg(&clock);
        cap_knob(&b, 8);
        b.knobs().register(AtomicKnob::new(
            KnobSpec::new("sample_period_ns", 1_000, 1_000_000_000).with_unit("ns"),
            1_000_000,
        ));
        arb.admit(
            b.clone(),
            TenantSpec::new("b", SloClass::Batch, 8)
                .with_weight(1)
                .with_sampling_knob("sample_period_ns"),
            "thread_cap",
        );
        clock.advance_by(1_000_000);
        arb.control_round(clock.now_ns());
        // 1000 Hz split 3:1 → 750 Hz / 250 Hz → 1.333 ms / 4 ms periods.
        assert_eq!(a.knobs().value("sample_period_ns"), Some(1_333_333));
        assert_eq!(b.knobs().value("sample_period_ns"), Some(4_000_000));
    }

    #[test]
    fn replay_reproduces_final_knob_state() {
        let clock = Arc::new(VirtualClock::new());
        let arb = Arbiter::with_instance(ArbiterConfig::new(16), tenant_lg(&clock));
        let a = tenant_lg(&clock);
        cap_knob(&a, 16);
        arb.admit(
            a.clone(),
            TenantSpec::new("a", SloClass::Batch, 16),
            "thread_cap",
        );
        let b = tenant_lg(&clock);
        cap_knob(&b, 16);
        let tb = arb.admit(
            b.clone(),
            TenantSpec::new("b", SloClass::Batch, 16),
            "thread_cap",
        );
        for _ in 0..4 {
            clock.advance_by(1_000_000);
            arb.control_round(clock.now_ns());
        }
        arb.evict(tb);
        for lg in [&a, &b] {
            for (knob, v) in replay_final_values(lg.knobs().journal()) {
                assert_eq!(
                    lg.knobs().value(&knob),
                    Some(v),
                    "replay mismatch on {knob}"
                );
            }
        }
    }
}
