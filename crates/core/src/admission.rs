//! Admission control — keeping an open-loop workload inside the
//! operating region the runtime can actually serve.
//!
//! Closed-loop kernels self-throttle: a worker that is busy is not
//! issuing more work. An open-loop serving workload has no such luck —
//! arrivals keep coming whether or not the system is keeping up, and the
//! only defenses are to *limit concurrency* (queue instead of thrash),
//! *limit rate* (admit instead of drown), and *shed load* (degrade
//! instead of collapse). This module provides those three primitives plus
//! the reactive policies that drive them, all built on the PR 5 control
//! plane so every actuation is clamped, journaled, and rollback-able:
//!
//! * [`Bulkhead`] — a concurrency limiter whose limit is an
//!   [`AtomicKnob`]; RAII [`BulkheadPermit`]s guarantee the in-flight
//!   count can never exceed the limit read at admission time.
//! * [`AdmissionGate`] — a token-bucket rate limiter whose refill rate is
//!   a knob, with a reserve so mandatory traffic is admitted after
//!   optional traffic has exhausted the shared tokens.
//! * [`Brownout`] — graded load shedding behind a level knob: optional
//!   work is shed fully before any mandatory work is touched.
//! * [`AimdPolicy`] — additive-increase / multiplicative-decrease on the
//!   bulkhead limit, sensing deadline misses, queue depth, and breaker
//!   state from the round's [`IntrospectionSnapshot`].
//! * [`BrownoutPolicy`] — raises the shed level while the latency signal
//!   sits above target, lowers it (with hysteresis) once it recovers.
//!
//! The policies follow the builtin-policy idiom: metric ids are resolved
//! once up front, actuations flow through a [`KnobTarget`] so the engine
//! applies them via the [`KnobRegistry`](crate::KnobRegistry) — clamped,
//! journaled, visible to the watchdog.

use crate::arbiter::{DemandClass, DemandProfile};
use crate::knob::{AtomicKnob, Knob, KnobSpec, KnobTarget};
use crate::policy::{Policy, PolicyDecision, Trigger};
use crate::snapshot::{IntrospectionSnapshot, MetricId};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Service class of a request, from the brownout ordering's point of
/// view: optional work is shed first, mandatory work last.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestClass {
    /// Must-serve traffic (paid requests, writes, health checks).
    Mandatory,
    /// Nice-to-serve traffic (speculative prefetch, background refresh).
    Optional,
}

struct BulkheadInner {
    limit: Arc<AtomicKnob>,
    in_flight: AtomicI64,
}

/// Concurrency bulkhead: at most `limit` requests in flight, where
/// `limit` is a live [`AtomicKnob`] an [`AimdPolicy`] (or anything else)
/// can drive through the registry.
///
/// Admission is a CAS loop against the limit read at that instant, so a
/// successful [`Bulkhead::try_acquire`] *proves* `in_flight <= limit`
/// held at admission. Lowering the limit mid-flight does not cancel
/// permits; it only blocks new admissions until the excess drains.
#[derive(Clone)]
pub struct Bulkhead {
    inner: Arc<BulkheadInner>,
}

impl Bulkhead {
    /// Creates a bulkhead with a fresh limit knob `name ∈ [min, max]`
    /// starting at `initial`. Register the knob
    /// ([`Bulkhead::limit_knob`]) to journal its writes.
    pub fn new(name: impl Into<String>, min: i64, max: i64, initial: i64) -> Self {
        let spec = KnobSpec::new(name, min, max)
            .with_unit("requests")
            .with_default(initial);
        Self::with_knob(AtomicKnob::new(spec, initial))
    }

    /// Wraps an existing limit knob.
    pub fn with_knob(limit: Arc<AtomicKnob>) -> Self {
        Self {
            inner: Arc::new(BulkheadInner {
                limit,
                in_flight: AtomicI64::new(0),
            }),
        }
    }

    /// The live concurrency-limit knob.
    pub fn limit_knob(&self) -> &Arc<AtomicKnob> {
        &self.inner.limit
    }

    /// Tries to admit one request. `None` means the bulkhead is full at
    /// the current limit; the caller queues, sheds, or retries later.
    pub fn try_acquire(&self) -> Option<BulkheadPermit> {
        let limit = self.inner.limit.get().max(0);
        let mut cur = self.inner.in_flight.load(Ordering::Relaxed);
        loop {
            if cur >= limit {
                return None;
            }
            match self.inner.in_flight.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    return Some(BulkheadPermit {
                        inner: self.inner.clone(),
                    })
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// Requests currently holding a permit.
    pub fn in_flight(&self) -> i64 {
        self.inner.in_flight.load(Ordering::Acquire)
    }

    /// `in_flight / limit` in `[0, ∞)` — above 1.0 only transiently,
    /// after the limit was lowered under live permits.
    pub fn saturation(&self) -> f64 {
        let limit = self.inner.limit.get();
        if limit <= 0 {
            if self.in_flight() > 0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            self.in_flight() as f64 / limit as f64
        }
    }
}

/// RAII admission permit; dropping it releases the bulkhead slot.
pub struct BulkheadPermit {
    inner: Arc<BulkheadInner>,
}

impl Drop for BulkheadPermit {
    fn drop(&mut self) {
        self.inner.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

struct GateState {
    tokens: f64,
    last_refill_ns: u64,
}

/// Token-bucket admission gate with a mandatory-traffic reserve.
///
/// Tokens refill at the live rate knob (requests per second) and cap at
/// `burst`. Every admission costs one token. [`RequestClass::Optional`]
/// requests are only admitted while more than `reserve` tokens remain,
/// so under sustained overload the last `reserve` tokens per burst are
/// spent exclusively on mandatory work — rate limiting and brownout
/// ordering compose instead of fighting.
///
/// Over any window `[t0, t1]` the gate admits at most
/// `rate × (t1 - t0) + burst` requests (the bucket holds at most `burst`
/// and refills at `rate`), which is the bound the property tests pin.
pub struct AdmissionGate {
    rate: Arc<AtomicKnob>,
    burst: f64,
    reserve: f64,
    state: Mutex<GateState>,
    admitted: AtomicI64,
    rejected: AtomicI64,
}

impl AdmissionGate {
    /// Creates a gate with a fresh rate knob `name ∈ [min, max]` req/s
    /// starting at `initial`, a bucket of `burst` tokens (also the
    /// initial fill), and `reserve` tokens kept for mandatory traffic.
    ///
    /// # Panics
    /// Panics if `burst` is not positive or `reserve` is negative or
    /// exceeds `burst`.
    pub fn new(
        name: impl Into<String>,
        min: i64,
        max: i64,
        initial: i64,
        burst: f64,
        reserve: f64,
    ) -> Self {
        let spec = KnobSpec::new(name, min, max)
            .with_unit("req/s")
            .with_default(initial);
        Self::with_knob(AtomicKnob::new(spec, initial), burst, reserve)
    }

    /// Wraps an existing rate knob.
    pub fn with_knob(rate: Arc<AtomicKnob>, burst: f64, reserve: f64) -> Self {
        assert!(burst > 0.0, "burst must be positive");
        assert!(
            (0.0..=burst).contains(&reserve),
            "reserve must lie in [0, burst]"
        );
        Self {
            rate,
            burst,
            reserve,
            state: Mutex::new(GateState {
                tokens: burst,
                last_refill_ns: 0,
            }),
            admitted: AtomicI64::new(0),
            rejected: AtomicI64::new(0),
        }
    }

    /// The live admission-rate knob (requests per second).
    pub fn rate_knob(&self) -> &Arc<AtomicKnob> {
        &self.rate
    }

    /// Tries to admit one `class` request at `now_ns`. Mandatory
    /// requests may spend the bucket to zero; optional requests stop at
    /// the reserve line.
    pub fn try_admit(&self, now_ns: u64, class: RequestClass) -> bool {
        let rate_per_ns = self.rate.get().max(0) as f64 / 1e9;
        let mut s = self.state.lock();
        if now_ns > s.last_refill_ns {
            s.tokens =
                (s.tokens + (now_ns - s.last_refill_ns) as f64 * rate_per_ns).min(self.burst);
            s.last_refill_ns = now_ns;
        }
        let floor = match class {
            RequestClass::Mandatory => 0.0,
            RequestClass::Optional => self.reserve,
        };
        if s.tokens - 1.0 >= floor - 1e-9 {
            s.tokens -= 1.0;
            self.admitted.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            false
        }
    }

    /// Requests admitted so far.
    pub fn admitted(&self) -> i64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Requests rejected so far.
    pub fn rejected(&self) -> i64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Current token fill in `[0, 1]` (no refill applied; exact as of
    /// the last admission attempt).
    pub fn fill(&self) -> f64 {
        self.state.lock().tokens / self.burst
    }
}

/// Graded load shedding: a level knob maps to shed fractions that
/// exhaust [`RequestClass::Optional`] work before touching
/// [`RequestClass::Mandatory`] work.
///
/// | level | optional shed | mandatory shed |
/// |---|---|---|
/// | 0 | 0% | 0% |
/// | 1–4 | 25% × level | 0% |
/// | 5–8 | 100% | 25% × (level − 4) |
///
/// Shedding is deterministic per request: the decision hashes the
/// request's `ticket` (any stable id) against the level's fraction, so a
/// replay with the same tickets sheds the same requests.
#[derive(Clone)]
pub struct Brownout {
    level: Arc<AtomicKnob>,
}

impl Brownout {
    /// Highest shed level (100% of optional and mandatory shed).
    pub const MAX_LEVEL: i64 = 8;

    /// Creates a brownout with a fresh level knob named `name`, starting
    /// fully open (level 0).
    pub fn new(name: impl Into<String>) -> Self {
        let spec = KnobSpec::new(name, 0, Self::MAX_LEVEL)
            .with_unit("level")
            .with_default(0);
        Self::with_knob(AtomicKnob::new(spec, 0))
    }

    /// Wraps an existing level knob.
    pub fn with_knob(level: Arc<AtomicKnob>) -> Self {
        Self { level }
    }

    /// The live shed-level knob.
    pub fn level_knob(&self) -> &Arc<AtomicKnob> {
        &self.level
    }

    /// Current shed level.
    pub fn level(&self) -> i64 {
        self.level.get()
    }

    /// The fraction of `class` work the current level sheds, in `[0, 1]`.
    pub fn shed_frac(&self, class: RequestClass) -> f64 {
        let level = self.level.get().clamp(0, Self::MAX_LEVEL);
        match class {
            RequestClass::Optional => (level as f64 / 4.0).min(1.0),
            RequestClass::Mandatory => ((level - 4).max(0) as f64 / 4.0).min(1.0),
        }
    }

    /// Whether the request identified by `ticket` should be shed at the
    /// current level. Deterministic in `(level, class, ticket)`.
    pub fn should_shed(&self, class: RequestClass, ticket: u64) -> bool {
        let frac = self.shed_frac(class);
        if frac <= 0.0 {
            return false;
        }
        if frac >= 1.0 {
            return true;
        }
        // splitmix64: cheap, well-mixed, stable across platforms.
        let mut z = ticket.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        (z % 10_000) as f64 / 10_000.0 < frac
    }
}

/// AIMD governor for a [`Bulkhead`] limit: additive increase while the
/// system is healthy, multiplicative decrease on overload evidence.
///
/// Overload evidence, any of (checked per evaluation against the round's
/// shared snapshot):
/// * new deadline misses since the last evaluation (`missed_counter`),
/// * the latency metric above `target_latency_ns`,
/// * the queue-depth metric above `queue_high`,
/// * any open circuit breaker (`breaker_metric > 0`).
///
/// The decision targets the limit knob through the registry, so every
/// move is clamped to the knob's spec, journaled, and subject to the
/// watchdog's rollback — the policy itself never touches the knob.
pub struct AimdPolicy {
    name: String,
    knob: KnobTarget,
    latency: Option<MetricId>,
    target_latency_ns: f64,
    queue: Option<MetricId>,
    queue_high: f64,
    breakers: Option<MetricId>,
    missed_counter: Option<String>,
    last_missed: u64,
    step: i64,
    decrease_factor: f64,
    min: i64,
    max: i64,
    current: i64,
}

impl AimdPolicy {
    /// Creates the governor over `knob ∈ [min, max]` starting at
    /// `initial`, with no sensors attached; chain `on_*` builders to add
    /// overload evidence.
    ///
    /// # Panics
    /// Panics unless `0 < decrease_factor < 1`, `step > 0`, and
    /// `min <= initial <= max`.
    pub fn new(
        knob: impl Into<KnobTarget>,
        min: i64,
        max: i64,
        initial: i64,
        step: i64,
        decrease_factor: f64,
    ) -> Box<Self> {
        assert!(
            decrease_factor > 0.0 && decrease_factor < 1.0,
            "decrease factor must lie in (0, 1)"
        );
        assert!(step > 0, "additive step must be positive");
        assert!(min <= initial && initial <= max, "initial out of bounds");
        Box::new(Self {
            name: "aimd-bulkhead".into(),
            knob: knob.into(),
            latency: None,
            target_latency_ns: f64::INFINITY,
            queue: None,
            queue_high: f64::INFINITY,
            breakers: None,
            missed_counter: None,
            last_missed: 0,
            step,
            decrease_factor,
            min,
            max,
            current: initial,
        })
    }

    /// Decrease when `metric` (e.g. a p99 window mean, ns) exceeds
    /// `target_ns`.
    pub fn on_latency_above(mut self: Box<Self>, metric: MetricId, target_ns: f64) -> Box<Self> {
        self.latency = Some(metric);
        self.target_latency_ns = target_ns;
        self
    }

    /// Decrease when `metric` (queue depth) exceeds `high`.
    pub fn on_queue_above(mut self: Box<Self>, metric: MetricId, high: f64) -> Box<Self> {
        self.queue = Some(metric);
        self.queue_high = high;
        self
    }

    /// Decrease while `metric` (open-breaker count) is positive.
    pub fn on_breaker_open(mut self: Box<Self>, metric: MetricId) -> Box<Self> {
        self.breakers = Some(metric);
        self
    }

    /// Decrease when the named snapshot counter (cumulative deadline
    /// misses) has grown since the last evaluation.
    pub fn on_missed_deadlines(mut self: Box<Self>, counter: impl Into<String>) -> Box<Self> {
        self.missed_counter = Some(counter.into());
        self
    }

    /// The limit this policy last decided (its belief, pre-clamp).
    pub fn current(&self) -> i64 {
        self.current
    }

    fn overloaded(&mut self, snapshot: &IntrospectionSnapshot) -> bool {
        let mut overload = false;
        if let Some(name) = &self.missed_counter {
            if let Some(total) = snapshot.counter(name) {
                overload |= total > self.last_missed;
                self.last_missed = total;
            }
        }
        if let Some(id) = self.latency {
            if let Some(v) = snapshot.value(id) {
                overload |= v > self.target_latency_ns;
            }
        }
        if let Some(id) = self.queue {
            if let Some(v) = snapshot.value(id) {
                overload |= v > self.queue_high;
            }
        }
        if let Some(id) = self.breakers {
            if let Some(v) = snapshot.value(id) {
                overload |= v > 0.0;
            }
        }
        overload
    }
}

impl Policy for AimdPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn evaluate(
        &mut self,
        _now_ns: u64,
        _trigger: Trigger<'_>,
        snapshot: &IntrospectionSnapshot,
    ) -> PolicyDecision {
        let next = if self.overloaded(snapshot) {
            ((self.current as f64 * self.decrease_factor).floor() as i64).max(self.min)
        } else {
            (self.current + self.step).min(self.max)
        };
        if next == self.current {
            return PolicyDecision::noop();
        }
        self.current = next;
        PolicyDecision::set(self.knob.clone(), next)
    }
}

/// Hysteresis governor for a [`Brownout`] level: one step up while the
/// latency signal exceeds `raise_above_ns`, one step down once it falls
/// below `lower_below_ns` (which must be strictly smaller, or the level
/// would oscillate on a flat signal).
pub struct BrownoutPolicy {
    name: String,
    knob: KnobTarget,
    latency: MetricId,
    raise_above_ns: f64,
    lower_below_ns: f64,
    max_level: i64,
    current: i64,
}

impl BrownoutPolicy {
    /// Creates the governor; the level starts at 0 (nothing shed).
    ///
    /// # Panics
    /// Panics unless `lower_below_ns < raise_above_ns`.
    pub fn new(
        knob: impl Into<KnobTarget>,
        latency: MetricId,
        raise_above_ns: f64,
        lower_below_ns: f64,
    ) -> Box<Self> {
        assert!(
            lower_below_ns < raise_above_ns,
            "hysteresis bands must not overlap"
        );
        Box::new(Self {
            name: "brownout".into(),
            knob: knob.into(),
            latency,
            raise_above_ns,
            lower_below_ns,
            max_level: Brownout::MAX_LEVEL,
            current: 0,
        })
    }

    /// Caps the highest level this policy will request (e.g. 4 to never
    /// shed mandatory work).
    pub fn with_max_level(mut self: Box<Self>, max_level: i64) -> Box<Self> {
        self.max_level = max_level.clamp(0, Brownout::MAX_LEVEL);
        self
    }

    /// The level this policy last decided.
    pub fn current(&self) -> i64 {
        self.current
    }
}

impl Policy for BrownoutPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn evaluate(
        &mut self,
        _now_ns: u64,
        _trigger: Trigger<'_>,
        snapshot: &IntrospectionSnapshot,
    ) -> PolicyDecision {
        let Some(v) = snapshot.value(self.latency) else {
            return PolicyDecision::noop();
        };
        let next = if v > self.raise_above_ns {
            (self.current + 1).min(self.max_level)
        } else if v < self.lower_below_ns {
            (self.current - 1).max(0)
        } else {
            self.current
        };
        if next == self.current {
            return PolicyDecision::noop();
        }
        self.current = next;
        PolicyDecision::set(self.knob.clone(), next)
    }
}

/// The serve plane's native [`DemandProfile`], from live admission-side
/// signals: queue depth, in-flight count, SLO pressure, and whether the
/// gate or brownout is currently shedding.
///
/// Useful width is the plane's visible concurrency (in-flight + queued)
/// with 2× headroom so a burst admits before the next arbitration round,
/// capped at `max_width`. Two overrides pin the width to `max_width`
/// outright: SLO pressure ≥ 1 (latency targets are being missed — a
/// stale width estimate must not throttle the recovery) and active
/// shedding (the admission plane is already turning work away, so
/// demand provably exceeds whatever width the queue shows).
pub fn serve_demand(
    pressure: f64,
    queue_depth: f64,
    in_flight: f64,
    shedding: bool,
    max_width: i64,
    alloc: i64,
) -> DemandProfile {
    let max_w = max_width.max(1) as f64;
    let width = if pressure >= 1.0 || shedding {
        max_w
    } else {
        (2.0 * (queue_depth.max(0.0) + in_flight.max(0.0))).min(max_w)
    };
    DemandProfile::saturating(DemandClass::Serve, pressure, width, alloc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concurrency::ConcurrencyListener;
    use crate::event::TaskNames;
    use crate::profile::ProfileListener;
    use crate::snapshot::Introspection;
    use std::sync::atomic::AtomicU64;

    fn facade() -> Introspection {
        Introspection::new(
            Arc::new(ProfileListener::new(TaskNames::new())),
            Arc::new(ConcurrencyListener::new(16)),
        )
    }

    #[test]
    fn bulkhead_admits_up_to_limit() {
        let b = Bulkhead::new("limit", 1, 64, 3);
        let p1 = b.try_acquire().expect("slot 1");
        let p2 = b.try_acquire().expect("slot 2");
        let p3 = b.try_acquire().expect("slot 3");
        assert!(b.try_acquire().is_none(), "limit 3 admits only 3");
        assert_eq!(b.in_flight(), 3);
        drop(p2);
        assert_eq!(b.in_flight(), 2);
        let _p4 = b.try_acquire().expect("released slot re-admits");
        drop(p1);
        drop(p3);
    }

    #[test]
    fn bulkhead_limit_knob_is_live() {
        let b = Bulkhead::new("limit", 1, 64, 1);
        let _p = b.try_acquire().expect("first");
        assert!(b.try_acquire().is_none());
        b.limit_knob().set(2);
        let _p2 = b.try_acquire().expect("raised limit admits");
        b.limit_knob().set(1);
        assert!(b.try_acquire().is_none(), "lowered limit blocks new work");
        assert_eq!(b.in_flight(), 2, "live permits are not revoked");
        assert!(b.saturation() > 1.0);
    }

    #[test]
    fn gate_respects_rate_and_burst() {
        let g = AdmissionGate::new("rate", 0, 1_000_000, 1_000, 10.0, 0.0);
        // Burst drains instantly...
        let mut admitted = 0;
        for _ in 0..50 {
            if g.try_admit(0, RequestClass::Mandatory) {
                admitted += 1;
            }
        }
        assert_eq!(admitted, 10, "only the burst is available at t=0");
        // ...then refill at 1000/s: 5 ms buys 5 tokens.
        let mut refilled = 0;
        for _ in 0..50 {
            if g.try_admit(5_000_000, RequestClass::Mandatory) {
                refilled += 1;
            }
        }
        assert_eq!(refilled, 5);
        assert_eq!(g.admitted(), 15);
        assert_eq!(g.rejected(), 85);
    }

    #[test]
    fn gate_reserves_tokens_for_mandatory() {
        let g = AdmissionGate::new("rate", 0, 1_000_000, 0, 4.0, 2.0);
        // Zero refill; optional stops at the reserve line.
        assert!(g.try_admit(0, RequestClass::Optional));
        assert!(g.try_admit(0, RequestClass::Optional));
        assert!(
            !g.try_admit(0, RequestClass::Optional),
            "reserve is mandatory-only"
        );
        assert!(g.try_admit(0, RequestClass::Mandatory));
        assert!(g.try_admit(0, RequestClass::Mandatory));
        assert!(!g.try_admit(0, RequestClass::Mandatory), "bucket empty");
    }

    #[test]
    fn brownout_sheds_optional_before_mandatory() {
        let b = Brownout::new("shed_level");
        assert_eq!(b.shed_frac(RequestClass::Optional), 0.0);
        b.level_knob().set(2);
        assert_eq!(b.shed_frac(RequestClass::Optional), 0.5);
        assert_eq!(
            b.shed_frac(RequestClass::Mandatory),
            0.0,
            "mandatory untouched until optional is fully shed"
        );
        b.level_knob().set(4);
        assert_eq!(b.shed_frac(RequestClass::Optional), 1.0);
        assert_eq!(b.shed_frac(RequestClass::Mandatory), 0.0);
        b.level_knob().set(6);
        assert_eq!(b.shed_frac(RequestClass::Mandatory), 0.5);
        for t in 0..100 {
            assert!(b.should_shed(RequestClass::Optional, t));
        }
    }

    #[test]
    fn brownout_shedding_is_deterministic_and_proportional() {
        let b = Brownout::new("shed_level");
        b.level_knob().set(2); // 50% of optional
        let shed: Vec<bool> = (0..4000)
            .map(|t| b.should_shed(RequestClass::Optional, t))
            .collect();
        let again: Vec<bool> = (0..4000)
            .map(|t| b.should_shed(RequestClass::Optional, t))
            .collect();
        assert_eq!(shed, again, "same ticket, same verdict");
        let frac = shed.iter().filter(|&&s| s).count() as f64 / 4000.0;
        assert!(
            (frac - 0.5).abs() < 0.05,
            "shed fraction {frac} far from 0.5"
        );
    }

    #[test]
    fn aimd_decreases_multiplicatively_on_latency() {
        let intro = facade();
        let lat = Arc::new(AtomicU64::new(50_000));
        let l = lat.clone();
        let id = intro.register_gauge("p99", move || l.load(Ordering::Relaxed) as f64);
        let mut p = AimdPolicy::new("limit", 1, 100, 64, 4, 0.5).on_latency_above(id, 1_000_000.0);
        // Healthy: additive increase.
        let d = p.evaluate(0, Trigger::Periodic, &intro.capture(0));
        assert_eq!(d.sets, vec![(KnobTarget::Name("limit".into()), 68)]);
        // Overloaded: halve.
        lat.store(5_000_000, Ordering::Relaxed);
        let d = p.evaluate(1, Trigger::Periodic, &intro.capture(1));
        assert_eq!(d.sets, vec![(KnobTarget::Name("limit".into()), 34)]);
        let d = p.evaluate(2, Trigger::Periodic, &intro.capture(2));
        assert_eq!(d.sets, vec![(KnobTarget::Name("limit".into()), 17)]);
        // Recovery: back to additive.
        lat.store(0, Ordering::Relaxed);
        let d = p.evaluate(3, Trigger::Periodic, &intro.capture(3));
        assert_eq!(d.sets, vec![(KnobTarget::Name("limit".into()), 21)]);
    }

    #[test]
    fn aimd_stays_in_bounds_and_noops_at_edges() {
        let intro = facade();
        let id = intro.register_gauge("p99", || 1e12);
        let mut p = AimdPolicy::new("limit", 4, 8, 4, 1, 0.5).on_latency_above(id, 1.0);
        // Saturated overload: already at min, nothing to do.
        let d = p.evaluate(0, Trigger::Periodic, &intro.capture(0));
        assert_eq!(d, PolicyDecision::noop());
        assert_eq!(p.current(), 4);
    }

    #[test]
    fn aimd_reacts_to_missed_deadline_counter() {
        let intro = facade();
        let counters = Arc::new(lg_metrics::CounterRegistry::new());
        let missed = counters.counter("serve.deadline_missed");
        intro.register_counters(counters.clone());
        let mut p = AimdPolicy::new("limit", 1, 100, 32, 2, 0.5)
            .on_missed_deadlines("serve.deadline_missed");
        let d = p.evaluate(0, Trigger::Periodic, &intro.capture(0));
        assert_eq!(d.sets[0].1, 34, "no misses: increase");
        missed.add(3);
        let d = p.evaluate(1, Trigger::Periodic, &intro.capture(1));
        assert_eq!(d.sets[0].1, 17, "new misses: halve");
        // No *new* misses since: back to increase.
        let d = p.evaluate(2, Trigger::Periodic, &intro.capture(2));
        assert_eq!(d.sets[0].1, 19);
    }

    #[test]
    fn brownout_policy_steps_with_hysteresis() {
        let intro = facade();
        let lat = Arc::new(AtomicU64::new(0));
        let l = lat.clone();
        let id = intro.register_gauge("p99", move || l.load(Ordering::Relaxed) as f64);
        let mut p = BrownoutPolicy::new("shed_level", id, 10_000_000.0, 2_000_000.0);
        // Healthy at level 0: no decision.
        let d = p.evaluate(0, Trigger::Periodic, &intro.capture(0));
        assert_eq!(d, PolicyDecision::noop());
        // Hot: step up.
        lat.store(20_000_000, Ordering::Relaxed);
        let d = p.evaluate(1, Trigger::Periodic, &intro.capture(1));
        assert_eq!(d.sets[0].1, 1);
        // In the hysteresis band: hold.
        lat.store(5_000_000, Ordering::Relaxed);
        let d = p.evaluate(2, Trigger::Periodic, &intro.capture(2));
        assert_eq!(d, PolicyDecision::noop());
        // Cool: step down.
        lat.store(1_000_000, Ordering::Relaxed);
        let d = p.evaluate(3, Trigger::Periodic, &intro.capture(3));
        assert_eq!(d.sets[0].1, 0);
    }

    #[test]
    fn serve_demand_widths_track_load_and_overload() {
        // Light load: width is 2× visible concurrency, well below max.
        let light = serve_demand(0.2, 3.0, 2.0, false, 64, 8);
        assert_eq!(light.class, DemandClass::Serve);
        assert_eq!(light.useful_width, Some(10.0));
        // Past the SLO: width pins to max regardless of the queue.
        let hot = serve_demand(1.4, 0.0, 1.0, false, 64, 8);
        assert_eq!(hot.useful_width, Some(64.0));
        assert_eq!(hot.utility_up, 1.0);
        // Shedding pins the width too — the gate turning work away is
        // proof demand exceeds the visible queue.
        let shed = serve_demand(0.5, 0.0, 0.0, true, 64, 8);
        assert_eq!(shed.useful_width, Some(64.0));
    }
}
