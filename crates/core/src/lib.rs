//! # lg-core — observation, introspection, and policy-driven adaptation
//!
//! The heart of `looking-glass`: everything between "an event happened in
//! the runtime" and "a knob was turned in response".
//!
//! ## Architecture
//!
//! ```text
//!   runtime / net / app            lg-core                     knobs
//!  ───────────────────   ───────────────────────────   ─────────────────
//!   TaskBegin/TaskEnd ──▶ Dispatcher ──▶ ProfileListener
//!   SampleValue       ──▶    │      ──▶ ConcurrencyListener
//!   WorkerStart/Stop  ──▶    │      ──▶ TraceListener
//!                            └──────▶ PolicyEngine ──▶ KnobRegistry ──▶ ThreadCap,
//!                                        ▲    │                          ChunkSize,
//!                                 introspection state                    CoalesceWindow
//!                                        │    ▼
//!                                    TuningSession ◀─▶ lg-tuning::Search
//! ```
//!
//! * [`event::Event`] — the observation vocabulary (task lifecycle, samples,
//!   worker lifecycle, phases, custom).
//! * [`listener::Listener`] + [`listener::Dispatcher`] — the fan-out
//!   pipeline; registration is dynamic, dispatch revalidates a
//!   generation-stamped thread-local snapshot with one atomic load (no
//!   lock, no shared-cache-line write while listeners run).
//! * [`profile`] — per-task-name streaming profiles (Welford), sharded
//!   per emitting thread and merged on snapshot.
//! * [`concurrency`] — active task/worker tracking over time.
//! * [`trace`] — bounded per-thread ring-buffer event trace with drop
//!   accounting, merged in capture order on read.
//! * [`policy`] — periodic and event-triggered policies; the engine runs
//!   on a wall-clock thread or is stepped manually under virtual time.
//!   Policy panics are contained, and repeat offenders are quarantined.
//! * [`snapshot`] — the read side of adaptation: a coherent point-in-time
//!   [`snapshot::IntrospectionSnapshot`] (profiles, concurrency, gauges,
//!   window rates, counters) addressed by interned
//!   [`snapshot::MetricId`]s; policies, tuning sessions, the watchdog,
//!   and report writers all measure through it.
//! * [`knob`] — typed integer actuators with bounds, units, steps and
//!   defaults; names intern to copyable [`knob::KnobId`] handles at
//!   registration, and steady-state get/set is lock-free on the read
//!   side (generation-stamped registry snapshots) with one per-knob
//!   mutex on the write side.
//! * [`journal`] — THE actuation history: a single bounded lock-free
//!   ring every [`knob::KnobRegistry::set`] appends to atomically (who
//!   wrote which knob, from what, to what). Audit, rollback, and the
//!   watchdog all consume the same records.
//! * [`watchdog`] — a policy that detects post-actuation throughput
//!   regressions and rolls back the offending knob write.
//! * [`session`] — the online tuning loop: settle → measure → report →
//!   move, generic over any [`lg_tuning::Search`].
//! * [`clock`] — wall and virtual clocks behind one trait so every layer
//!   works identically in real execution and simulation.
//! * [`instance::LookingGlass`] — wires the pieces together and provides
//!   the RAII [`instance::Timer`] used to instrument application code.

#![warn(missing_docs)]

pub mod admission;
pub mod arbiter;
pub mod builtin;
pub mod clock;
pub mod concurrency;
pub mod dag;
pub mod event;
pub mod instance;
pub mod journal;
pub mod knob;
pub mod listener;
pub mod policy;
pub mod profile;
pub mod samples;
pub mod session;
pub mod snapshot;
pub mod tenant;
pub mod trace;
pub mod watchdog;

pub use admission::{
    AdmissionGate, AimdPolicy, Brownout, BrownoutPolicy, Bulkhead, BulkheadPermit, RequestClass,
};
pub use arbiter::{
    Arbiter, ArbiterConfig, DemandClass, DemandProbe, DemandProfile, DemandSource, RoundReport,
    TenantObs, TenantSpec,
};
pub use builtin::{HighWatermarkPolicy, PowerCapPolicy};
pub use clock::{Clock, VirtualClock, WallClock};
pub use concurrency::ConcurrencyListener;
pub use dag::{CriticalPathPolicy, DagStats};
pub use event::{Event, TaskId, TaskNames};
pub use instance::{LookingGlass, LookingGlassBuilder, Timer};
pub use journal::{ActuationJournal, ActuationRecord};
pub use knob::{AtomicKnob, Knob, KnobId, KnobRegistry, KnobScale, KnobSpec, KnobTarget};
pub use listener::{Dispatcher, Listener};
pub use policy::{
    FnPolicy, Policy, PolicyDecision, PolicyEngine, PolicyHandle, ThresholdWatch, Trigger,
};
pub use profile::{ProfileListener, ProfileSnapshot, TaskProfile};
pub use samples::SampleHistoryListener;
pub use session::{EpochReport, SessionConfig, SessionStep, TuningSession};
pub use snapshot::{Introspection, IntrospectionSnapshot, MetricId};
pub use tenant::{SloClass, TenantId};
pub use trace::{TraceListener, TraceRecord};
pub use watchdog::RegressionWatchdog;
