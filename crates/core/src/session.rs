//! Online tuning sessions: the measure → report → move loop.
//!
//! A [`TuningSession`] binds together a set of knobs (resolved to
//! [`KnobId`]s once, at construction), a search strategy from `lg-tuning`,
//! and an epoch protocol:
//!
//! 1. **Actuate** — ask the search for the next candidate point and write
//!    it to the knobs (journaled under the session's actor).
//! 2. **Settle** — wait `settle_ns` for the runtime to reach steady state
//!    under the new configuration (in-flight tasks drain, workers park).
//! 3. **Measure** — the caller observes the objective over `measure_ns`
//!    (throughput from profiles, energy from the meter, EDP, …). With an
//!    [`Introspection`] facade attached, [`TuningSession::complete_via`]
//!    measures by diffing the epoch's begin/end snapshots instead of
//!    scraping listeners by hand.
//! 4. **Report** — feed the objective back; the search decides where to
//!    look next.
//!
//! The session is clock-agnostic: the caller supplies timestamps, so the
//! same code drives wall-clock tuning on the real runtime and virtual-time
//! tuning in the simulator. [`TuningSession::run_blocking`] is a
//! convenience driver for the wall-clock case.

use crate::event::TaskId;
use crate::knob::{KnobId, KnobRegistry};
use crate::snapshot::{Introspection, IntrospectionSnapshot};
use lg_tuning::{Point, Search};
use std::sync::Arc;

/// Session configuration.
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// Knob names, in the same order as the search space's dimensions.
    pub knob_names: Vec<String>,
    /// Settle time after actuation before measurement should begin.
    pub settle_ns: u64,
    /// Measurement window length.
    pub measure_ns: u64,
    /// Hard cap on epochs (0 = unlimited).
    pub max_epochs: usize,
}

impl SessionConfig {
    /// Config for a single knob with the given windows.
    pub fn single(knob: impl Into<String>, settle_ns: u64, measure_ns: u64) -> Self {
        Self {
            knob_names: vec![knob.into()],
            settle_ns,
            measure_ns,
            max_epochs: 0,
        }
    }
}

/// One completed epoch.
#[derive(Clone, Debug, PartialEq)]
pub struct EpochReport {
    /// Epoch index, starting at 0.
    pub epoch: usize,
    /// Configuration evaluated.
    pub point: Point,
    /// Objective observed (lower is better).
    pub objective: f64,
    /// Time the epoch's measurement began.
    pub measured_from_ns: u64,
}

/// What the caller should do next.
#[derive(Clone, Debug, PartialEq)]
pub enum SessionStep {
    /// Knobs were set to `point`; measure the objective starting at
    /// `measure_from_ns` for the configured window, then call
    /// [`TuningSession::complete`].
    Measure {
        /// The configuration under test.
        point: Point,
        /// Earliest timestamp at which measurement is representative.
        measure_from_ns: u64,
    },
    /// The search has converged (or hit `max_epochs`); `best` holds the
    /// winning configuration, which has been re-applied to the knobs.
    Done {
        /// Best `(point, objective)`, if anything was measured.
        best: Option<(Point, f64)>,
    },
}

/// An online tuning session (see module docs).
pub struct TuningSession {
    cfg: SessionConfig,
    /// Ids for `cfg.knob_names`, resolved once at construction.
    ids: Vec<KnobId>,
    /// The session's interned journal actor.
    actor: TaskId,
    search: Box<dyn Search>,
    knobs: Arc<KnobRegistry>,
    introspection: Option<Arc<Introspection>>,
    pending: Option<(Point, u64)>,
    /// Snapshot captured when the in-flight epoch was actuated (only with
    /// an attached facade).
    pending_begin: Option<IntrospectionSnapshot>,
    history: Vec<EpochReport>,
    finished: bool,
}

impl TuningSession {
    /// Creates a session. Knob names are resolved to ids here, once.
    ///
    /// # Panics
    /// Panics if `knob_names` is empty or any name is not registered.
    pub fn new(cfg: SessionConfig, search: Box<dyn Search>, knobs: Arc<KnobRegistry>) -> Self {
        assert!(
            !cfg.knob_names.is_empty(),
            "session needs at least one knob"
        );
        let ids = cfg
            .knob_names
            .iter()
            .map(|n| {
                knobs
                    .id(n)
                    .unwrap_or_else(|| panic!("tuning session: unknown knob '{n}'"))
            })
            .collect();
        let actor = knobs.actor("tuning-session");
        Self {
            cfg,
            ids,
            actor,
            search,
            knobs,
            introspection: None,
            pending: None,
            pending_begin: None,
            history: Vec::new(),
            finished: false,
        }
    }

    /// Attaches the introspection facade [`TuningSession::complete_via`]
    /// measures through.
    pub fn with_introspection(mut self, introspection: Arc<Introspection>) -> Self {
        self.introspection = Some(introspection);
        self
    }

    fn actuate(&self, point: &Point, now_ns: u64) {
        for (id, value) in self.ids.iter().zip(point) {
            self.knobs.set_id_as(*id, *value, self.actor, now_ns);
        }
    }

    /// Starts the next epoch at time `now_ns`: proposes a point, actuates
    /// the knobs, and tells the caller when to measure.
    ///
    /// # Panics
    /// Panics if an epoch is already in flight (call
    /// [`TuningSession::complete`] first) or if the proposed point's arity
    /// does not match `knob_names`.
    pub fn next(&mut self, now_ns: u64) -> SessionStep {
        assert!(self.pending.is_none(), "epoch already in flight");
        if self.finished || (self.cfg.max_epochs > 0 && self.history.len() >= self.cfg.max_epochs) {
            return self.finish(now_ns);
        }
        match self.search.propose() {
            None => self.finish(now_ns),
            Some(point) => {
                assert_eq!(
                    point.len(),
                    self.ids.len(),
                    "search space arity != knob count"
                );
                self.actuate(&point, now_ns);
                let measure_from_ns = now_ns + self.cfg.settle_ns;
                self.pending = Some((point.clone(), measure_from_ns));
                self.pending_begin = self.introspection.as_ref().map(|i| i.capture(now_ns));
                SessionStep::Measure {
                    point,
                    measure_from_ns,
                }
            }
        }
    }

    /// Completes the in-flight epoch with the measured objective.
    ///
    /// # Panics
    /// Panics if no epoch is in flight.
    pub fn complete(&mut self, objective: f64) {
        let (point, measured_from_ns) = self
            .pending
            .take()
            .expect("complete() without a pending epoch");
        self.pending_begin = None;
        self.search.report(&point, objective);
        self.history.push(EpochReport {
            epoch: self.history.len(),
            point,
            objective,
            measured_from_ns,
        });
    }

    /// Completes the in-flight epoch by capturing an end snapshot at
    /// `now_ns` and scoring the epoch with `objective(begin, end)` — the
    /// snapshot-diff measurement path (e.g. `ΔE · Δt` for EDP).
    ///
    /// # Panics
    /// Panics if no epoch is in flight or no facade was attached via
    /// [`TuningSession::with_introspection`].
    pub fn complete_via(
        &mut self,
        now_ns: u64,
        objective: impl FnOnce(&IntrospectionSnapshot, &IntrospectionSnapshot) -> f64,
    ) {
        assert!(
            self.pending.is_some(),
            "complete_via() without a pending epoch"
        );
        let begin = self
            .pending_begin
            .take()
            .expect("complete_via() requires with_introspection()");
        let end = self
            .introspection
            .as_ref()
            .expect("facade checked above")
            .capture(now_ns);
        let y = objective(&begin, &end);
        self.complete(y);
    }

    fn finish(&mut self, now_ns: u64) -> SessionStep {
        self.finished = true;
        let best = self.search.best();
        if let Some((point, _)) = &best {
            // Leave the system running at the winner.
            self.actuate(point, now_ns);
        }
        SessionStep::Done { best }
    }

    /// True once `next` has returned [`SessionStep::Done`].
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Completed epochs so far.
    pub fn history(&self) -> &[EpochReport] {
        &self.history
    }

    /// Best `(point, objective)` reported so far.
    pub fn best(&self) -> Option<(Point, f64)> {
        self.search.best()
    }

    /// Configured measurement window length.
    pub fn measure_ns(&self) -> u64 {
        self.cfg.measure_ns
    }

    /// Wall-clock convenience driver: repeatedly actuates, sleeps the
    /// settle window, and calls `measure` (which should observe for the
    /// measurement window and return the objective) until done. Returns
    /// the best configuration.
    pub fn run_blocking(
        &mut self,
        clock: &dyn crate::clock::Clock,
        mut measure: impl FnMut(&Point, u64) -> f64,
    ) -> Option<(Point, f64)> {
        loop {
            match self.next(clock.now_ns()) {
                SessionStep::Done { best } => return best,
                SessionStep::Measure {
                    point,
                    measure_from_ns,
                } => {
                    let now = clock.now_ns();
                    if measure_from_ns > now {
                        std::thread::sleep(std::time::Duration::from_nanos(measure_from_ns - now));
                    }
                    let objective = measure(&point, self.cfg.measure_ns);
                    self.complete(objective);
                }
            }
        }
    }
}

impl std::fmt::Debug for TuningSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TuningSession")
            .field("epochs", &self.history.len())
            .field("finished", &self.finished)
            .field("strategy", &self.search.name())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::knob::{AtomicKnob, KnobSpec};
    use lg_tuning::{Dim, HillClimb, Space};

    fn knobs_with_cap(max: i64) -> Arc<KnobRegistry> {
        let reg = Arc::new(KnobRegistry::new());
        reg.register(AtomicKnob::new(KnobSpec::new("cap", 1, max), max));
        reg
    }

    fn drive(session: &mut TuningSession, f: impl Fn(&Point) -> f64) -> Option<(Point, f64)> {
        let mut now = 0u64;
        loop {
            match session.next(now) {
                SessionStep::Done { best } => return best,
                SessionStep::Measure {
                    point,
                    measure_from_ns,
                } => {
                    now = measure_from_ns + session.measure_ns();
                    let y = f(&point);
                    session.complete(y);
                }
            }
        }
    }

    #[test]
    fn session_finds_knee_and_applies_winner() {
        let knobs = knobs_with_cap(32);
        let space = Space::new(vec![Dim::range("cap", 1, 32, 1)]);
        let search = Box::new(HillClimb::from_start(space, &[32]));
        let cfg = SessionConfig::single("cap", 1_000, 10_000);
        let mut session = TuningSession::new(cfg, search, knobs.clone());
        // Objective: EDP-like bowl with minimum at cap = 12.
        let best = drive(&mut session, |p| ((p[0] - 12) * (p[0] - 12)) as f64 + 3.0).unwrap();
        assert_eq!(best.0, vec![12]);
        assert_eq!(knobs.value("cap"), Some(12), "winner must be left applied");
        assert!(session.is_finished());
    }

    #[test]
    fn knobs_follow_every_epoch() {
        let knobs = knobs_with_cap(8);
        let space = Space::new(vec![Dim::range("cap", 1, 8, 1)]);
        let search = Box::new(HillClimb::from_start(space, &[4]));
        let cfg = SessionConfig::single("cap", 0, 0);
        let mut session = TuningSession::new(cfg, search, knobs.clone());
        let mut now = 0;
        while let SessionStep::Measure { point, .. } = session.next(now) {
            assert_eq!(
                knobs.value("cap"),
                Some(point[0]),
                "knob must track epoch config"
            );
            session.complete(point[0] as f64); // minimum at cap = 1
            now += 1;
        }
        assert_eq!(knobs.value("cap"), Some(1));
    }

    #[test]
    fn settle_window_is_respected() {
        let knobs = knobs_with_cap(4);
        let space = Space::new(vec![Dim::range("cap", 1, 4, 1)]);
        let search = Box::new(HillClimb::from_start(space, &[2]));
        let cfg = SessionConfig {
            knob_names: vec!["cap".into()],
            settle_ns: 500,
            measure_ns: 100,
            max_epochs: 0,
        };
        let mut session = TuningSession::new(cfg, search, knobs);
        match session.next(1_000) {
            SessionStep::Measure {
                measure_from_ns, ..
            } => assert_eq!(measure_from_ns, 1_500),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn max_epochs_caps_session() {
        let knobs = knobs_with_cap(32);
        let space = Space::new(vec![Dim::range("cap", 1, 32, 1)]);
        let search = Box::new(HillClimb::from_start(space, &[16]));
        let cfg = SessionConfig {
            knob_names: vec!["cap".into()],
            settle_ns: 0,
            measure_ns: 0,
            max_epochs: 3,
        };
        let mut session = TuningSession::new(cfg, search, knobs);
        let mut epochs = 0;
        let mut now = 0;
        loop {
            match session.next(now) {
                SessionStep::Done { .. } => break,
                SessionStep::Measure { point, .. } => {
                    session.complete(point[0] as f64);
                    epochs += 1;
                    now += 1;
                }
            }
        }
        assert_eq!(epochs, 3);
        assert_eq!(session.history().len(), 3);
    }

    #[test]
    #[should_panic(expected = "epoch already in flight")]
    fn double_next_panics() {
        let knobs = knobs_with_cap(4);
        let space = Space::new(vec![Dim::range("cap", 1, 4, 1)]);
        let search = Box::new(HillClimb::from_start(space, &[2]));
        let mut session = TuningSession::new(SessionConfig::single("cap", 0, 0), search, knobs);
        let _ = session.next(0);
        let _ = session.next(1);
    }

    #[test]
    #[should_panic(expected = "without a pending epoch")]
    fn complete_without_epoch_panics() {
        let knobs = knobs_with_cap(4);
        let space = Space::new(vec![Dim::range("cap", 1, 4, 1)]);
        let search = Box::new(HillClimb::from_start(space, &[2]));
        let mut session = TuningSession::new(SessionConfig::single("cap", 0, 0), search, knobs);
        session.complete(1.0);
    }

    #[test]
    #[should_panic(expected = "unknown knob 'nope'")]
    fn unknown_knob_rejected_at_construction() {
        let knobs = knobs_with_cap(4);
        let space = Space::new(vec![Dim::range("nope", 1, 4, 1)]);
        let search = Box::new(HillClimb::from_start(space, &[2]));
        let _ = TuningSession::new(SessionConfig::single("nope", 0, 0), search, knobs);
    }

    #[test]
    fn history_is_faithful() {
        let knobs = knobs_with_cap(4);
        let space = Space::new(vec![Dim::range("cap", 1, 4, 1)]);
        let search = Box::new(HillClimb::from_start(space, &[2]));
        let mut session = TuningSession::new(SessionConfig::single("cap", 10, 0), search, knobs);
        drive(&mut session, |p| p[0] as f64);
        let h = session.history();
        assert!(!h.is_empty());
        for (i, e) in h.iter().enumerate() {
            assert_eq!(e.epoch, i);
            assert_eq!(e.objective, e.point[0] as f64);
        }
    }

    #[test]
    fn session_actuations_are_journaled_under_its_actor() {
        let knobs = knobs_with_cap(8);
        let space = Space::new(vec![Dim::range("cap", 1, 8, 1)]);
        let search = Box::new(HillClimb::from_start(space, &[4]));
        let mut session =
            TuningSession::new(SessionConfig::single("cap", 0, 0), search, knobs.clone());
        drive(&mut session, |p| p[0] as f64);
        let recs = knobs.journal().records();
        assert!(!recs.is_empty());
        assert!(recs.iter().all(|r| r.policy == "tuning-session"));
        assert!(recs.iter().all(|r| r.knob == "cap"));
    }

    #[test]
    fn complete_via_scores_from_snapshot_diff() {
        use crate::concurrency::ConcurrencyListener;
        use crate::event::TaskNames;
        use crate::profile::ProfileListener;
        use std::sync::atomic::{AtomicU64, Ordering};

        let knobs = knobs_with_cap(4);
        let names = TaskNames::new();
        let intro = Arc::new(Introspection::new(
            Arc::new(ProfileListener::new(names)),
            Arc::new(ConcurrencyListener::new(16)),
        ));
        let energy = Arc::new(AtomicU64::new(0));
        let e = energy.clone();
        let gauge = intro.register_gauge("energy_j", move || e.load(Ordering::Relaxed) as f64);
        let space = Space::new(vec![Dim::range("cap", 1, 4, 1)]);
        let search = Box::new(HillClimb::from_start(space, &[2]));
        let mut session = TuningSession::new(SessionConfig::single("cap", 0, 0), search, knobs)
            .with_introspection(intro);
        let mut now = 0u64;
        while let SessionStep::Measure { point, .. } = session.next(now) {
            // Each epoch "consumes" energy proportional to the cap.
            energy.fetch_add(point[0] as u64 * 10, Ordering::Relaxed);
            now += 100;
            session.complete_via(now, |begin, end| {
                end.value(gauge).unwrap() - begin.value(gauge).unwrap()
            });
        }
        let h = session.history();
        assert!(!h.is_empty());
        for e in h {
            assert_eq!(e.objective, e.point[0] as f64 * 10.0, "ΔE per epoch");
        }
        assert_eq!(session.best().unwrap().0, vec![1], "lowest ΔE wins");
    }

    #[test]
    fn run_blocking_drives_to_completion() {
        use crate::clock::WallClock;
        let knobs = knobs_with_cap(8);
        let space = Space::new(vec![Dim::range("cap", 1, 8, 1)]);
        let search = Box::new(HillClimb::from_start(space, &[8]));
        let cfg = SessionConfig {
            knob_names: vec!["cap".into()],
            settle_ns: 1,
            measure_ns: 1,
            max_epochs: 0,
        };
        let mut session = TuningSession::new(cfg, search, knobs);
        let clock = WallClock::new();
        let best = session
            .run_blocking(&clock, |p, _window| ((p[0] - 5) * (p[0] - 5)) as f64)
            .unwrap();
        assert_eq!(best.0, vec![5]);
    }
}
