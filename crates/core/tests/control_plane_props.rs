//! Property tests for the unified control plane: the actuation journal
//! is a faithful, totally ordered record of every knob write, and the
//! interned-id API is observationally identical to the name API.
//!
//! The journal-replay property is the regression net for the old racy
//! `from` read: with the per-knob write lock, consecutive records for a
//! knob must chain (`from[i+1] == to[i]`) even when sets and rollbacks
//! race across threads — a torn read would break the chain.

use lg_core::knob::{AtomicKnob, KnobSpec};
use lg_core::{KnobId, KnobRegistry};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

const KNOBS: u8 = 4;
const INITIAL: i64 = 0;
const MIN: i64 = -100;
const MAX: i64 = 100;

fn registry() -> (Arc<KnobRegistry>, Vec<KnobId>) {
    // Capacity far above the op count so nothing is evicted mid-test.
    let reg = Arc::new(KnobRegistry::with_journal_capacity(8192));
    let ids = (0..KNOBS)
        .map(|i| {
            reg.register(AtomicKnob::new(
                KnobSpec::new(format!("k{i}"), MIN, MAX),
                INITIAL,
            ))
        })
        .collect();
    (reg, ids)
}

/// One scripted op: `(knob index, candidate value, op kind)`. Kind 0 is
/// a rollback of the knob's last write; anything else is a set.
type Op = (u8, i64, u8);

fn op_strategy() -> impl Strategy<Value = Vec<Vec<Op>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u8..KNOBS, (MIN - 50)..(MAX + 50), 0u8..6), 1..24),
        1..4,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn journal_replay_reproduces_final_knob_state_across_threads(script in op_strategy()) {
        let (reg, ids) = registry();
        std::thread::scope(|s| {
            for ops in &script {
                let reg = reg.clone();
                let ids = &ids;
                s.spawn(move || {
                    for &(k, v, kind) in ops {
                        if kind == 0 {
                            reg.rollback_last_of(&format!("k{k}"));
                        } else {
                            reg.set_id(ids[k as usize], v);
                        }
                    }
                });
            }
        });

        let records = reg.journal().records();
        // Total order: seq strictly increases, no gaps in the retained run.
        for w in records.windows(2) {
            prop_assert_eq!(w[0].seq + 1, w[1].seq);
        }

        // Replay in seq order. Each record's `to` is the post-write state,
        // so replaying every record (rollbacks included — they are writes
        // too) must land exactly on the live values.
        let mut replay: HashMap<String, i64> =
            (0..KNOBS).map(|i| (format!("k{i}"), INITIAL)).collect();
        for r in &records {
            // The race-fix invariant: the recorded `from` is the previous
            // record's `to` for that knob (or the initial value).
            prop_assert_eq!(
                replay[&r.knob], r.from,
                "broken from-chain for {} at seq {}", r.knob, r.seq
            );
            prop_assert!((MIN..=MAX).contains(&r.to), "journaled value escaped clamp");
            *replay.get_mut(&r.knob).expect("known knob") = r.to;
        }
        for (i, id) in ids.iter().enumerate() {
            let name = format!("k{i}");
            prop_assert_eq!(
                reg.value_id(*id),
                Some(replay[&name]),
                "replay diverged from live state for {}", name
            );
        }
        prop_assert_eq!(reg.change_count(), records.len());
    }

    #[test]
    fn id_and_name_access_agree(ops in proptest::collection::vec((0u8..KNOBS, (MIN - 50)..(MAX + 50), 0u8..2), 1..48)) {
        let (reg, ids) = registry();
        for (k, v, via_id) in ops {
            let name = format!("k{k}");
            let id = ids[k as usize];
            // The two handles are the same binding…
            prop_assert_eq!(reg.id(&name), Some(id));
            prop_assert_eq!(reg.name(id).as_deref(), Some(name.as_str()));
            // …and writes through either are observationally identical.
            let (via, other) = if via_id == 0 {
                (reg.set_id(id, v), reg.value(&name))
            } else {
                (reg.set(&name, v), reg.value_id(id))
            };
            prop_assert_eq!(via, other);
            prop_assert_eq!(via, Some(v.clamp(MIN, MAX)));
            prop_assert_eq!(reg.value(&name), reg.value_id(id));
        }
    }
}
