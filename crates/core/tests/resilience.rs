//! Resilience of the policy engine itself: panic containment and
//! quarantine, plus knob-write rollback (manual and watchdog-driven).

use lg_core::journal::ActuationJournal;
use lg_core::knob::AtomicKnob;
use lg_core::policy::Trigger;
use lg_core::{
    IntrospectionSnapshot, KnobRegistry, KnobSpec, Policy, PolicyDecision, PolicyEngine,
    RegressionWatchdog,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Periodic policy that panics on evaluations where `fail(evals)` says so,
/// and otherwise writes `knob = evals`.
struct Flaky {
    name: &'static str,
    knob: &'static str,
    evals: u64,
    fail: fn(u64) -> bool,
}

impl Policy for Flaky {
    fn name(&self) -> &str {
        self.name
    }

    fn evaluate(
        &mut self,
        _now_ns: u64,
        _trigger: Trigger<'_>,
        _snapshot: &IntrospectionSnapshot,
    ) -> PolicyDecision {
        self.evals += 1;
        if (self.fail)(self.evals) {
            panic!("injected policy fault at evaluation {}", self.evals);
        }
        PolicyDecision::set(self.knob, self.evals as i64)
    }
}

fn engine_with_knob(name: &'static str, initial: i64) -> (Arc<PolicyEngine>, Arc<KnobRegistry>) {
    let knobs = Arc::new(KnobRegistry::new());
    knobs.register(AtomicKnob::new(KnobSpec::new(name, 0, 1_000_000), initial));
    (PolicyEngine::new(knobs.clone()), knobs)
}

#[test]
fn panicking_policy_is_quarantined_and_never_fires_again() {
    let (engine, knobs) = engine_with_knob("k", 0);
    engine.register_periodic(
        Box::new(Flaky {
            name: "bad",
            knob: "k",
            evals: 0,
            fail: |_| true,
        }),
        100,
        0,
    );
    engine.register_periodic(
        Box::new(Flaky {
            name: "good",
            knob: "k",
            evals: 0,
            fail: |_| false,
        }),
        100,
        0,
    );
    for i in 1..=20u64 {
        engine.step(i * 100); // must not unwind despite "bad" panicking
    }
    assert_eq!(
        engine.panics(),
        PolicyEngine::DEFAULT_QUARANTINE_THRESHOLD as u64
    );
    assert_eq!(engine.quarantined(), vec!["bad".to_string()]);
    assert_eq!(engine.quarantined_count(), 1);
    assert_eq!(
        engine.policy_count(),
        2,
        "quarantine keeps the policy registered"
    );
    // The healthy policy kept actuating right through its neighbour's
    // meltdown: 20 evaluations, each journalled.
    assert_eq!(knobs.value("k"), Some(20));
    // Many more steps: the quarantined policy stays silent for the rest of
    // the session.
    for i in 21..=60u64 {
        engine.step(i * 100);
    }
    assert_eq!(
        engine.panics(),
        PolicyEngine::DEFAULT_QUARANTINE_THRESHOLD as u64
    );
    assert_eq!(knobs.value("k"), Some(60));
}

#[test]
fn successful_evaluation_resets_the_panic_streak() {
    let (engine, _knobs) = engine_with_knob("k", 0);
    // Panics twice out of every three evaluations: never three in a row,
    // so it must never be quarantined.
    engine.register_periodic(
        Box::new(Flaky {
            name: "flappy",
            knob: "k",
            evals: 0,
            fail: |n| n % 3 != 0,
        }),
        100,
        0,
    );
    for i in 1..=30u64 {
        engine.step(i * 100);
    }
    assert_eq!(engine.quarantined_count(), 0);
    assert_eq!(engine.panics(), 20);
}

#[test]
fn quarantine_threshold_is_tunable() {
    let (engine, _knobs) = engine_with_knob("k", 0);
    engine.set_quarantine_threshold(1);
    engine.register_periodic(
        Box::new(Flaky {
            name: "bad",
            knob: "k",
            evals: 0,
            fail: |_| true,
        }),
        100,
        0,
    );
    engine.step(100);
    assert_eq!(engine.quarantined_count(), 1, "one strike and out");
    assert_eq!(engine.panics(), 1);
}

#[test]
fn rollback_restores_the_pre_actuation_value() {
    let (engine, knobs) = engine_with_knob("k", 7);
    engine.register_periodic(
        Box::new(Flaky {
            name: "writer",
            knob: "k",
            evals: 0,
            fail: |_| false,
        }),
        100,
        0,
    );
    engine.step(100); // writes k = 1
    assert_eq!(knobs.value("k"), Some(1));
    assert_eq!(engine.rollback_last_of("k"), Some(7));
    assert_eq!(
        knobs.value("k"),
        Some(7),
        "rollback must restore the prior value"
    );
    // The record is consumed: a second rollback finds nothing newer.
    assert_eq!(engine.rollback_last_of("k"), None);
    assert_eq!(engine.rollback_last_of("no-such-knob"), None);
}

#[test]
fn watchdog_rolls_back_a_regressing_actuation_end_to_end() {
    // Full loop through the engine: a policy actuates, throughput tanks,
    // and the watchdog (itself a registered policy) writes the knob back.
    let (engine, knobs) = engine_with_knob("k", 10);
    let rate = Arc::new(AtomicU64::new(1_000));
    let rate_reader = rate.clone();
    engine.register_periodic(
        RegressionWatchdog::new(
            engine.journal().clone(),
            move || rate_reader.load(Ordering::Relaxed) as f64,
            0.2,
        ),
        100,
        0,
    );
    // One harmful actuation, made outside the watchdog's name.
    struct OneShot;
    impl Policy for OneShot {
        fn name(&self) -> &str {
            "one-shot"
        }
        fn evaluate(
            &mut self,
            _now_ns: u64,
            _trigger: Trigger<'_>,
            _snapshot: &IntrospectionSnapshot,
        ) -> PolicyDecision {
            PolicyDecision::set("k", 999).and_retire()
        }
    }
    engine.register_periodic(Box::new(OneShot), 100, 0);
    engine.step(100); // actuation lands (journalled after this step)
    assert_eq!(knobs.value("k"), Some(999));
    engine.step(200); // watchdog adopts the suspect at a healthy baseline
    rate.store(100, Ordering::Relaxed); // throughput collapses
    engine.step(300); // verdict: regression → rollback decision applied
    assert_eq!(
        knobs.value("k"),
        Some(10),
        "watchdog must restore the prior value"
    );
    let rolled: Vec<_> = engine
        .journal()
        .records_since(0)
        .into_iter()
        .filter(|r| r.rolled_back)
        .collect();
    assert_eq!(rolled.len(), 1);
    assert_eq!(rolled[0].policy, "one-shot");
}

#[test]
fn journal_capacity_bounds_rollback_memory() {
    // The engine's journal is bounded: old actuations fall off and can no
    // longer be rolled back, but the newest always can.
    let journal = ActuationJournal::new(4);
    for i in 0..10u64 {
        journal.record(i, "p", "k", i as i64, i as i64 + 1);
    }
    assert_eq!(journal.len(), 4);
    assert!(journal.evicted() >= 6);
    let latest = journal.latest_for("k").expect("newest record retained");
    assert_eq!(latest.from, 9);
}
