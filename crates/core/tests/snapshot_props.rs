//! Property tests for incremental introspection: for any interleaved
//! write/capture schedule, the delta-merged snapshot is field-for-field
//! identical to a from-scratch recompute — including the all-idle
//! extreme (consecutive captures with no writes) and the all-dirty
//! extreme (every shard written between captures).
//!
//! The oracle is [`Introspection::capture_uncached`], which bypasses the
//! generation-stamp cache entirely. Equality is *exact* (bitwise on the
//! Welford-derived floats): the delta path re-folds its cached stripe
//! copies in the same fixed stripe order as a from-scratch merge, so at
//! quiescence the two paths perform the identical float operations.

use lg_core::{
    ConcurrencyListener, Event, Introspection, IntrospectionSnapshot, Listener, ProfileListener,
    SampleHistoryListener, TaskNames,
};
use lg_metrics::CounterRegistry;
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const REGISTRIES: usize = 3;
const COUNTERS_PER_REG: usize = 4;
const TASKS: usize = 5;
const STRIPES_USED: usize = 4;

/// One step of an interleaved write/capture schedule.
#[derive(Clone, Debug)]
enum Op {
    /// Add to counter `c` of registry `r`.
    Counter { r: usize, c: usize, n: u64 },
    /// Complete one `task` execution on profile stripe `s` with duration
    /// `dur`.
    TaskEnd { s: usize, task: usize, dur: u64 },
    /// Begin (without ending) a `task` on stripe `s` — leaves nonzero
    /// `active` balance in the merge.
    TaskBegin { s: usize, task: usize },
    /// Append a sample to the sampled series feeding the window mean.
    Sample { t: u64, v: u16 },
    /// Bump the stamped gauge's backing value and its stamp.
    Gauge { v: u16 },
    /// Capture incrementally and compare against the from-scratch oracle.
    Capture,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The offline proptest shim has no `prop_oneof!`; draw a flat tuple
    // of every field plus a kind selector and map it to the variant.
    (
        (0u8..6, 0usize..REGISTRIES, 0usize..COUNTERS_PER_REG),
        (0usize..STRIPES_USED, 0usize..TASKS, 1u64..10_000),
        (0u64..1_000_000, 0u16..u16::MAX),
    )
        .prop_map(|((kind, r, c), (s, task, dur), (t, v))| match kind {
            0 => Op::Counter {
                r,
                c,
                n: dur % 100 + 1,
            },
            1 => Op::TaskEnd { s, task, dur },
            2 => Op::TaskBegin { s, task },
            3 => Op::Sample { t, v },
            4 => Op::Gauge { v },
            _ => Op::Capture,
        })
}

struct Harness {
    names: TaskNames,
    profiles: Arc<ProfileListener>,
    history: Arc<SampleHistoryListener>,
    intro: Introspection,
    regs: Vec<Arc<CounterRegistry>>,
    tasks: Vec<lg_core::TaskId>,
    sample_metric: lg_core::TaskId,
    gauge_value: Arc<AtomicU64>,
    gauge_stamp: Arc<AtomicU64>,
}

fn harness() -> Harness {
    let names = TaskNames::new();
    let profiles = Arc::new(ProfileListener::new(names.clone()));
    let concurrency = Arc::new(ConcurrencyListener::new(64));
    let history = Arc::new(SampleHistoryListener::new(names.clone(), 64));
    let intro = Introspection::new(profiles.clone(), concurrency);
    let regs: Vec<Arc<CounterRegistry>> = (0..REGISTRIES)
        .map(|r| {
            let reg = Arc::new(CounterRegistry::new());
            for c in 0..COUNTERS_PER_REG {
                // Mix storages; duplicate names across registries are
                // intentional (their registry-order tie-break is part of
                // the contract under test).
                if c % 2 == 0 {
                    reg.counter(&format!("c{c}"));
                } else {
                    reg.striped_counter(&format!("c{c}"));
                }
            }
            let _ = r;
            reg
        })
        .collect();
    for reg in &regs {
        intro.register_counters(reg.clone());
    }
    let tasks: Vec<lg_core::TaskId> = (0..TASKS)
        .map(|i| names.intern(&format!("task-{i}")))
        .collect();
    let sample_metric = names.intern("sampled");
    intro.register_window_mean("sampled.mean", history.clone(), "sampled", 1_000_000);
    let gauge_value = Arc::new(AtomicU64::new(0));
    let gauge_stamp = Arc::new(AtomicU64::new(0));
    let gv = gauge_value.clone();
    intro.register_gauge_stamped("stamped", gauge_stamp.clone(), move || {
        gv.load(Ordering::Relaxed) as f64
    });
    Harness {
        names,
        profiles,
        history,
        intro,
        regs,
        tasks,
        sample_metric,
        gauge_value,
        gauge_stamp,
    }
}

/// Runs a profile event on a chosen stripe by emitting it from a thread
/// pinned to that stripe index.
fn on_stripe(profiles: &Arc<ProfileListener>, stripe: usize, event: Event) {
    let p = profiles.clone();
    std::thread::spawn(move || {
        lg_metrics::stripe::set_thread_index(stripe);
        p.on_event(&event);
    })
    .join()
    .unwrap();
}

fn assert_snapshots_equal(delta: &IntrospectionSnapshot, full: &IntrospectionSnapshot) {
    assert_eq!(delta.t_ns, full.t_ns);
    assert_eq!(delta.total_completed, full.total_completed);
    assert_eq!(delta.active_tasks, full.active_tasks);
    assert_eq!(delta.online_workers, full.online_workers);
    assert_eq!(delta.peak_tasks, full.peak_tasks);
    assert_eq!(delta.metric_names(), full.metric_names());
    let dm: Vec<_> = delta.metrics().collect();
    let fm: Vec<_> = full.metrics().collect();
    assert_eq!(dm, fm, "metric values diverged");
    let dc: Vec<_> = delta.counters().collect();
    let fc: Vec<_> = full.counters().collect();
    assert_eq!(dc, fc, "counters diverged");
    // Profiles: exact equality, floats included — both paths fold the
    // same per-stripe cells in the same order.
    assert_eq!(delta.profiles(), full.profiles(), "profiles diverged");
}

fn run_schedule(h: &Harness, ops: &[Op]) {
    let mut t = 0u64;
    for op in ops {
        t += 1;
        match op {
            Op::Counter { r, c, n } => h.regs[*r].counter(&format!("c{c}")).add(*n),
            Op::TaskEnd { s, task, dur } => on_stripe(
                &h.profiles,
                *s,
                Event::TaskEnd {
                    task: h.tasks[*task],
                    worker: *s,
                    t_ns: t,
                    elapsed_ns: *dur,
                },
            ),
            Op::TaskBegin { s, task } => on_stripe(
                &h.profiles,
                *s,
                Event::TaskBegin {
                    task: h.tasks[*task],
                    worker: *s,
                    t_ns: t,
                },
            ),
            Op::Sample { t: st, v } => h.history.on_event(&Event::SampleValue {
                metric: h.sample_metric,
                value: *v as f64,
                t_ns: *st,
            }),
            Op::Gauge { v } => {
                h.gauge_value.store(*v as u64, Ordering::Relaxed);
                h.gauge_stamp.fetch_add(1, Ordering::Release);
            }
            Op::Capture => {
                // Capture (delta path, updates the cache) first; the
                // oracle is pure and must agree at quiescence.
                let delta = h.intro.capture(t);
                let full = h.intro.capture_uncached(t);
                assert_snapshots_equal(&delta, &full);
            }
        }
    }
    // Every schedule ends with a capture pair so trailing writes are
    // always checked.
    let delta = h.intro.capture(t + 1);
    let full = h.intro.capture_uncached(t + 1);
    assert_snapshots_equal(&delta, &full);
    let _ = &h.names;
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn delta_capture_equals_from_scratch(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let h = harness();
        run_schedule(&h, &ops);
    }
}

#[test]
fn all_idle_extreme_many_captures_no_writes() {
    let h = harness();
    // Warm writes, then a long run of captures with zero activity.
    h.regs[0].counter("c0").add(7);
    on_stripe(
        &h.profiles,
        1,
        Event::TaskEnd {
            task: h.tasks[0],
            worker: 1,
            t_ns: 5,
            elapsed_ns: 5,
        },
    );
    let merges_start = h.intro.merges();
    let warm = h.intro.capture(10);
    let merges_warm = h.intro.merges();
    assert!(merges_warm > merges_start);
    for t in 11..40 {
        let delta = h.intro.capture(t);
        let full = h.intro.capture_uncached(t);
        assert_snapshots_equal(&delta, &full);
        assert!(
            Arc::ptr_eq(&warm.profiles_arc(), &delta.profiles_arc()),
            "idle captures share the merged profile base"
        );
    }
    assert_eq!(
        h.intro.merges(),
        merges_warm,
        "29 idle captures performed zero shard merges"
    );
}

#[test]
fn all_dirty_extreme_every_shard_written_between_captures() {
    let h = harness();
    for round in 0u64..8 {
        for (r, reg) in h.regs.iter().enumerate() {
            for c in 0..COUNTERS_PER_REG {
                reg.counter(&format!("c{c}")).add(round + r as u64 + 1);
            }
        }
        for s in 0..STRIPES_USED {
            for (i, task) in h.tasks.iter().enumerate() {
                on_stripe(
                    &h.profiles,
                    s,
                    Event::TaskEnd {
                        task: *task,
                        worker: s,
                        t_ns: round * 100 + i as u64,
                        elapsed_ns: (round + 1) * 10 + i as u64,
                    },
                );
            }
        }
        h.gauge_value.fetch_add(3, Ordering::Relaxed);
        h.gauge_stamp.fetch_add(1, Ordering::Release);
        h.history.on_event(&Event::SampleValue {
            metric: h.sample_metric,
            value: round as f64,
            t_ns: round * 50,
        });
        let delta = h.intro.capture(round * 1000);
        let full = h.intro.capture_uncached(round * 1000);
        assert_snapshots_equal(&delta, &full);
    }
}
