//! Property tests for the multi-tenant arbiter: the machine budget is
//! an invariant, not a tendency.
//!
//! Five safety arguments the tenancy experiment (fig10) leans on:
//!
//! 1. **Budget** — under any interleaving of admits, evicts, manual
//!    quarantines, and control rounds — with tenants publishing scalar
//!    pressure and native demand profiles side by side — the sum of
//!    live allocations never exceeds the machine and every tenant stays
//!    inside its `[min, max]` band.
//! 2. **Fair share** — with no floor or ceiling binding, the pure
//!    [`arbitrate`] kernel splits the budget proportionally to weights
//!    (exact up to largest-remainder rounding).
//! 3. **Quarantine/floor preservation** — a quarantined tenant is
//!    pinned to its floor by the kernel for any demand mix; no profile
//!    (wide, narrow, pressured) lets it climb back early.
//! 4. **Legacy equivalence** — when every tenant publishes via
//!    [`DemandProfile::from_pressure`], the demand-aware kernel is
//!    bit-for-bit the pre-`DemandProfile` scalar allocator (re-derived
//!    here as an oracle): the migration changed the signal type, not
//!    the arbitration of legacy signals.
//! 5. **Replay** — folding any tenant's actuation journal (and the
//!    governor's own) reproduces the live registry values: the journal
//!    is a faithful history of who moved which knob where.

use lg_core::arbiter::{arbitrate, replay_final_values, TenantObs};
use lg_core::knob::{AtomicKnob, KnobSpec};
use lg_core::{
    Arbiter, ArbiterConfig, Clock, DemandClass, DemandProfile, LookingGlass, SloClass, TenantId,
    TenantSpec, VirtualClock,
};
use proptest::prelude::*;
use std::sync::Arc;

const TOTAL: i64 = 32;

/// One step of a random governor schedule.
#[derive(Clone, Debug)]
enum Op {
    /// Admit a tenant with the given weight/floor/ceiling/class. A
    /// `width` of `Some(w)` installs a native demand probe publishing a
    /// saturating profile of that useful width; `None` admits a legacy
    /// scalar tenant.
    Admit {
        weight: u32,
        min: i64,
        max: i64,
        latency: bool,
        width: Option<i64>,
    },
    /// Evict the `i`-th live tenant (mod live count).
    Evict(usize),
    /// Manually quarantine the `i`-th live tenant for `rounds`.
    Quarantine(usize, u64),
    /// Run one control round.
    Round,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The offline proptest shim has no `prop_oneof!`; draw a flat tuple
    // with a kind selector and map it to the variant.
    (
        (0u8..4, 1u32..8, 1i64..5),
        (0usize..6, 1u64..4, 0u8..2),
        0i64..9,
    )
        .prop_map(
            |((kind, weight, min), (i, rounds, lat), width)| match kind {
                0 => Op::Admit {
                    weight,
                    min,
                    max: min + 3 + (weight as i64 * 3) % 24,
                    latency: lat == 1,
                    width: (width > 0).then_some(width),
                },
                1 => Op::Evict(i),
                2 => Op::Quarantine(i, rounds),
                _ => Op::Round,
            },
        )
}

struct Live {
    id: TenantId,
    lg: Arc<LookingGlass>,
    min: i64,
    max: i64,
}

fn tenant_lg(clock: &Arc<VirtualClock>, max: i64) -> Arc<LookingGlass> {
    let lg = LookingGlass::builder().clock(clock.clone()).build();
    lg.knobs().register(AtomicKnob::new(
        KnobSpec::new("thread_cap", 1, max).with_unit("workers"),
        max,
    ));
    lg
}

/// Drives a random schedule and returns the arbiter plus the live fleet
/// (shared by the budget and replay properties).
fn drive(ops: &[Op]) -> (Arc<VirtualClock>, Arc<Arbiter>, Vec<Live>) {
    let clock = Arc::new(VirtualClock::new());
    let gov = LookingGlass::builder().clock(clock.clone()).build();
    let arb = Arbiter::with_instance(ArbiterConfig::new(TOTAL), gov);
    let mut live: Vec<Live> = Vec::new();
    let mut name = 0usize;
    for op in ops {
        clock.advance_by(1_000_000);
        match op {
            Op::Admit {
                weight,
                min,
                max,
                latency,
                width,
            } => {
                let floors: i64 = live.iter().map(|t| t.min).sum();
                if floors + min > TOTAL {
                    continue; // would oversubscribe — admit() rejects this by contract
                }
                let lg = tenant_lg(&clock, *max);
                name += 1;
                let slo = if *latency {
                    SloClass::Latency
                } else {
                    SloClass::Batch
                };
                let mut spec = TenantSpec::new(format!("t{name}"), slo, *max)
                    .with_min_threads(*min)
                    .with_weight(*weight);
                if let Some(w) = width {
                    let w = *w as f64;
                    spec = spec.with_demand_probe(move |_snap, alloc| {
                        DemandProfile::saturating(DemandClass::Batch, 0.0, w, alloc)
                    });
                }
                let id = arb.admit(lg.clone(), spec, "thread_cap");
                live.push(Live {
                    id,
                    lg,
                    min: *min,
                    max: *max,
                });
            }
            Op::Evict(i) => {
                if !live.is_empty() {
                    let t = live.remove(i % live.len());
                    assert!(arb.evict(t.id));
                }
            }
            Op::Quarantine(i, rounds) => {
                if !live.is_empty() {
                    let t = &live[i % live.len()];
                    assert!(arb.quarantine(t.id, *rounds));
                }
            }
            Op::Round => {
                arb.control_round(clock.now_ns());
            }
        }
        // The budget invariant must hold after *every* op, not only at
        // quiescence: admit and evict both rebalance before returning.
        let total: i64 = live.iter().map(|t| arb.allocation(t.id).unwrap()).sum();
        assert!(
            total <= TOTAL,
            "budget exceeded: {total} > {TOTAL} after {op:?}"
        );
        for t in &live {
            let a = arb.allocation(t.id).unwrap();
            assert!(
                a >= t.min && a <= t.max,
                "allocation {a} outside [{}, {}]",
                t.min,
                t.max
            );
        }
    }
    (clock, arb, live)
}

/// One random kernel-level tenant: `((weight, min, extra_max, latency),
/// (pressure_tenths, quarantined, power_tenths, width))` — nested pairs
/// because the offline proptest shim tops out at 6-tuples.
type ObsDraw = ((u32, i64, i64, u8), (u32, u8, u32, i64));

fn obs_draw() -> impl Strategy<Value = Vec<ObsDraw>> {
    proptest::collection::vec(
        (
            (1u32..12, 0i64..4, 1i64..28, 0u8..2),
            (0u32..30, 0u8..2, 0u32..600, 0i64..40),
        ),
        1..8,
    )
}

fn draw_min(d: &ObsDraw) -> i64 {
    d.0 .1
}

fn draw_width(d: &ObsDraw) -> i64 {
    d.1 .3
}

/// Builds a legacy scalar observation (demand via `from_pressure`).
fn scalar_obs(d: &ObsDraw) -> TenantObs {
    let &((weight, min, extra, latency), (p10, quar, pw10, _)) = d;
    TenantObs {
        weight,
        slo: if latency == 1 {
            SloClass::Latency
        } else {
            SloClass::Batch
        },
        min,
        max: (min + extra).min(TOTAL),
        demand: DemandProfile::from_pressure(p10 as f64 / 10.0),
        power_w: pw10 as f64 / 10.0,
        quarantined: quar == 1,
    }
}

/// The pre-`DemandProfile` allocator, re-derived as an oracle: weighted
/// water-fill against static `[min, max]` bands (no useful-width caps),
/// then latency-over-batch preemption gated on the scalar pressure —
/// and no marginal-utility pass, which did not exist.
fn legacy_arbitrate(config: &ArbiterConfig, obs: &[TenantObs]) -> Vec<i64> {
    if obs.is_empty() {
        return Vec::new();
    }
    let floors: i64 = obs.iter().map(|o| o.min).sum();
    let mut total = config.total_threads;
    if let Some(cap) = config.power_cap_w {
        let draw: f64 = obs.iter().map(|o| o.power_w).sum();
        if draw > cap && draw > 0.0 {
            total = ((total as f64) * cap / draw).floor() as i64;
        }
    }
    let total = total.clamp(floors, config.total_threads);

    let mut alloc: Vec<Option<i64>> = obs.iter().map(|o| o.quarantined.then_some(o.min)).collect();
    let mut budget = total - alloc.iter().flatten().sum::<i64>();
    loop {
        let active: Vec<usize> = (0..obs.len()).filter(|&i| alloc[i].is_none()).collect();
        if active.is_empty() || budget <= 0 {
            for i in active {
                alloc[i] = Some(obs[i].min);
            }
            break;
        }
        let wsum: f64 = active.iter().map(|&i| obs[i].weight as f64).sum();
        let shares: Vec<(usize, f64)> = active
            .iter()
            .map(|&i| (i, budget as f64 * obs[i].weight as f64 / wsum))
            .collect();
        let under: Vec<usize> = shares
            .iter()
            .filter(|&&(i, s)| s < obs[i].min as f64)
            .map(|&(i, _)| i)
            .collect();
        if !under.is_empty() {
            for i in under {
                alloc[i] = Some(obs[i].min);
                budget -= obs[i].min;
            }
            continue;
        }
        let over: Vec<usize> = shares
            .iter()
            .filter(|&&(i, s)| s >= obs[i].max as f64)
            .map(|&(i, _)| i)
            .collect();
        if !over.is_empty() {
            for i in over {
                alloc[i] = Some(obs[i].max);
                budget -= obs[i].max;
            }
            continue;
        }
        let mut rem: Vec<(usize, f64)> = Vec::with_capacity(active.len());
        let mut used = 0i64;
        for &i in &active {
            let share = budget as f64 * obs[i].weight as f64 / wsum;
            let base = share.floor() as i64;
            alloc[i] = Some(base.clamp(obs[i].min, obs[i].max));
            used += alloc[i].unwrap();
            rem.push((i, share - share.floor()));
        }
        rem.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let mut leftover = budget - used;
        for (i, _) in rem {
            if leftover <= 0 {
                break;
            }
            let a = alloc[i].unwrap();
            if a < obs[i].max {
                alloc[i] = Some(a + 1);
                leftover -= 1;
            }
        }
        break;
    }
    let mut alloc: Vec<i64> = alloc.into_iter().map(|a| a.unwrap()).collect();

    if config.preemption {
        let mut donors: Vec<usize> = (0..obs.len())
            .filter(|&i| obs[i].slo == SloClass::Batch && !obs[i].quarantined)
            .collect();
        donors.sort_by_key(|&i| (obs[i].weight, i));
        for i in 0..obs.len() {
            if obs[i].slo != SloClass::Latency || obs[i].quarantined || obs[i].demand.pressure < 1.0
            {
                continue;
            }
            let mut need = obs[i].max - alloc[i];
            for &d in &donors {
                if need <= 0 {
                    break;
                }
                let surplus = alloc[d] - obs[d].min;
                let take = surplus.min(need);
                if take > 0 {
                    alloc[d] -= take;
                    alloc[i] += take;
                    need -= take;
                }
            }
        }
    }
    alloc
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Property 1: Σ allocations ≤ machine and min ≤ alloc ≤ max after
    /// every admit/evict/quarantine/round, for any interleaving of
    /// scalar-pressure and native-profile tenants.
    #[test]
    fn thread_budget_is_invariant_under_interleaving(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        drive(&ops);
    }

    /// Property 2: with no floor or ceiling binding, the arbitration
    /// kernel is weighted-proportional: every allocation is the floor
    /// or ceiling of its ideal share and the budget is spent exactly.
    #[test]
    fn fair_share_is_proportional_to_weights(
        weights in proptest::collection::vec(1u32..20, 1..8),
    ) {
        let cfg = ArbiterConfig::new(TOTAL);
        let obs: Vec<TenantObs> = weights
            .iter()
            .map(|&w| TenantObs {
                weight: w,
                slo: SloClass::Batch,
                min: 0,
                max: TOTAL,
                demand: DemandProfile::default(),
                power_w: 0.0,
                quarantined: false,
            })
            .collect();
        let alloc = arbitrate(&cfg, &obs);
        prop_assert_eq!(alloc.iter().sum::<i64>(), TOTAL);
        let wsum: f64 = weights.iter().map(|&w| w as f64).sum();
        for (a, &w) in alloc.iter().zip(&weights) {
            let ideal = TOTAL as f64 * w as f64 / wsum;
            prop_assert!(
                (*a as f64 - ideal).abs() < 1.0,
                "alloc {} not within rounding of ideal {:.3}",
                a,
                ideal
            );
        }
    }

    /// Property 3: the kernel pins quarantined tenants to their floor
    /// and respects every `[min, effective_cap]` band for any demand
    /// mix — scalar, saturating-width, pressured, or quarantined.
    #[test]
    fn quarantine_and_floors_hold_for_any_demand_mix(
        draws in obs_draw(),
        powered in 0u8..2,
    ) {
        // Infeasible floors are rejected by admit() before the kernel
        // ever sees them, so only feasible draws are exercised.
        if draws.iter().map(draw_min).sum::<i64>() <= TOTAL {
            let mut cfg = ArbiterConfig::new(TOTAL);
            if powered == 1 {
                cfg = cfg.with_power_cap_w(100.0);
            }
            let obs: Vec<TenantObs> = draws
                .iter()
                .map(|d| {
                    let mut o = scalar_obs(d);
                    if draw_width(d) > 0 {
                        // Native profile: saturating over a declared width.
                        o.demand = DemandProfile::saturating(
                            DemandClass::Dag,
                            o.demand.pressure,
                            draw_width(d) as f64,
                            o.min,
                        );
                    }
                    o
                })
                .collect();
            let alloc = arbitrate(&cfg, &obs);
            prop_assert!(alloc.iter().sum::<i64>() <= TOTAL);
            for (a, o) in alloc.iter().zip(&obs) {
                prop_assert!(
                    *a >= o.min && *a <= o.effective_cap(),
                    "alloc {} outside [{}, {}]",
                    a,
                    o.min,
                    o.effective_cap()
                );
                if o.quarantined {
                    prop_assert_eq!(*a, o.min, "quarantined tenant climbed off its floor");
                }
            }
        }
    }

    /// Property 4: when every profile comes from
    /// [`DemandProfile::from_pressure`], the demand-aware kernel equals
    /// the legacy scalar allocator exactly — for any weights, bands,
    /// pressures, quarantines, and power draws, with and without the
    /// power envelope.
    #[test]
    fn demand_aware_equals_pressure_only_on_legacy_profiles(
        draws in obs_draw(),
        powered in 0u8..2,
    ) {
        if draws.iter().map(draw_min).sum::<i64>() <= TOTAL {
            let mut cfg = ArbiterConfig::new(TOTAL);
            if powered == 1 {
                cfg = cfg.with_power_cap_w(100.0);
            }
            let obs: Vec<TenantObs> = draws.iter().map(scalar_obs).collect();
            prop_assert_eq!(arbitrate(&cfg, &obs), legacy_arbitrate(&cfg, &obs));
        }
    }

    /// Property 5: after any schedule, replaying each live tenant's
    /// journal (and the governor's) lands on the live registry values.
    #[test]
    fn journal_replay_reproduces_final_knob_state(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let (_clock, arb, live) = drive(&ops);
        for t in &live {
            for (knob, v) in replay_final_values(t.lg.knobs().journal()) {
                prop_assert_eq!(
                    t.lg.knobs().value(&knob),
                    Some(v),
                    "tenant journal diverged on '{}'",
                    knob
                );
            }
        }
        // Governor journal: mirrors of evicted tenants are deregistered,
        // so only still-registered knobs are checked.
        for (knob, v) in replay_final_values(arb.lg().knobs().journal()) {
            if let Some(liv) = arb.lg().knobs().value(&knob) {
                prop_assert_eq!(liv, v, "governor journal diverged on '{}'", knob);
            }
        }
    }
}
