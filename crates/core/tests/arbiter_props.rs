//! Property tests for the multi-tenant arbiter: the machine budget is
//! an invariant, not a tendency.
//!
//! Three safety arguments the tenancy experiment (fig10) leans on:
//!
//! 1. **Budget** — under any interleaving of admits, evicts, manual
//!    quarantines, and control rounds, the sum of live allocations
//!    never exceeds the machine and every tenant stays inside its
//!    `[min, max]` band.
//! 2. **Fair share** — with no floor or ceiling binding, the pure
//!    [`arbitrate`] kernel splits the budget proportionally to weights
//!    (exact up to largest-remainder rounding).
//! 3. **Replay** — folding any tenant's actuation journal (and the
//!    governor's own) reproduces the live registry values: the journal
//!    is a faithful history of who moved which knob where.

use lg_core::arbiter::{arbitrate, replay_final_values, TenantObs};
use lg_core::knob::{AtomicKnob, KnobSpec};
use lg_core::{
    Arbiter, ArbiterConfig, Clock, LookingGlass, SloClass, TenantId, TenantSpec, VirtualClock,
};
use proptest::prelude::*;
use std::sync::Arc;

const TOTAL: i64 = 32;

/// One step of a random governor schedule.
#[derive(Clone, Debug)]
enum Op {
    /// Admit a tenant with the given weight/floor/ceiling/class.
    Admit {
        weight: u32,
        min: i64,
        max: i64,
        latency: bool,
    },
    /// Evict the `i`-th live tenant (mod live count).
    Evict(usize),
    /// Manually quarantine the `i`-th live tenant for `rounds`.
    Quarantine(usize, u64),
    /// Run one control round.
    Round,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The offline proptest shim has no `prop_oneof!`; draw a flat tuple
    // with a kind selector and map it to the variant.
    ((0u8..4, 1u32..8, 1i64..5), (0usize..6, 1u64..4, 0u8..2)).prop_map(
        |((kind, weight, min), (i, rounds, lat))| match kind {
            0 => Op::Admit {
                weight,
                min,
                max: min + 3 + (weight as i64 * 3) % 24,
                latency: lat == 1,
            },
            1 => Op::Evict(i),
            2 => Op::Quarantine(i, rounds),
            _ => Op::Round,
        },
    )
}

struct Live {
    id: TenantId,
    lg: Arc<LookingGlass>,
    min: i64,
    max: i64,
}

fn tenant_lg(clock: &Arc<VirtualClock>, max: i64) -> Arc<LookingGlass> {
    let lg = LookingGlass::builder().clock(clock.clone()).build();
    lg.knobs().register(AtomicKnob::new(
        KnobSpec::new("thread_cap", 1, max).with_unit("workers"),
        max,
    ));
    lg
}

/// Drives a random schedule and returns the arbiter plus the live fleet
/// (shared by the budget and replay properties).
fn drive(ops: &[Op]) -> (Arc<VirtualClock>, Arc<Arbiter>, Vec<Live>) {
    let clock = Arc::new(VirtualClock::new());
    let gov = LookingGlass::builder().clock(clock.clone()).build();
    let arb = Arbiter::with_instance(ArbiterConfig::new(TOTAL), gov);
    let mut live: Vec<Live> = Vec::new();
    let mut name = 0usize;
    for op in ops {
        clock.advance_by(1_000_000);
        match op {
            Op::Admit {
                weight,
                min,
                max,
                latency,
            } => {
                let floors: i64 = live.iter().map(|t| t.min).sum();
                if floors + min > TOTAL {
                    continue; // would oversubscribe — admit() rejects this by contract
                }
                let lg = tenant_lg(&clock, *max);
                name += 1;
                let slo = if *latency {
                    SloClass::Latency
                } else {
                    SloClass::Batch
                };
                let spec = TenantSpec::new(format!("t{name}"), slo, *max)
                    .with_min_threads(*min)
                    .with_weight(*weight);
                let id = arb.admit(lg.clone(), spec, "thread_cap");
                live.push(Live {
                    id,
                    lg,
                    min: *min,
                    max: *max,
                });
            }
            Op::Evict(i) => {
                if !live.is_empty() {
                    let t = live.remove(i % live.len());
                    assert!(arb.evict(t.id));
                }
            }
            Op::Quarantine(i, rounds) => {
                if !live.is_empty() {
                    let t = &live[i % live.len()];
                    assert!(arb.quarantine(t.id, *rounds));
                }
            }
            Op::Round => {
                arb.control_round(clock.now_ns());
            }
        }
        // The budget invariant must hold after *every* op, not only at
        // quiescence: admit and evict both rebalance before returning.
        let total: i64 = live.iter().map(|t| arb.allocation(t.id).unwrap()).sum();
        assert!(
            total <= TOTAL,
            "budget exceeded: {total} > {TOTAL} after {op:?}"
        );
        for t in &live {
            let a = arb.allocation(t.id).unwrap();
            assert!(
                a >= t.min && a <= t.max,
                "allocation {a} outside [{}, {}]",
                t.min,
                t.max
            );
        }
    }
    (clock, arb, live)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Property 1: Σ allocations ≤ machine and min ≤ alloc ≤ max after
    /// every admit/evict/quarantine/round, for any interleaving.
    #[test]
    fn thread_budget_is_invariant_under_interleaving(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        drive(&ops);
    }

    /// Property 2: with no floor or ceiling binding, the arbitration
    /// kernel is weighted-proportional: every allocation is the floor
    /// or ceiling of its ideal share and the budget is spent exactly.
    #[test]
    fn fair_share_is_proportional_to_weights(
        weights in proptest::collection::vec(1u32..20, 1..8),
    ) {
        let cfg = ArbiterConfig::new(TOTAL);
        let obs: Vec<TenantObs> = weights
            .iter()
            .map(|&w| TenantObs {
                weight: w,
                slo: SloClass::Batch,
                min: 0,
                max: TOTAL,
                pressure: 0.0,
                power_w: 0.0,
                quarantined: false,
            })
            .collect();
        let alloc = arbitrate(&cfg, &obs);
        prop_assert_eq!(alloc.iter().sum::<i64>(), TOTAL);
        let wsum: f64 = weights.iter().map(|&w| w as f64).sum();
        for (a, &w) in alloc.iter().zip(&weights) {
            let ideal = TOTAL as f64 * w as f64 / wsum;
            prop_assert!(
                (*a as f64 - ideal).abs() < 1.0,
                "alloc {} not within rounding of ideal {:.3}",
                a,
                ideal
            );
        }
    }

    /// Property 3: after any schedule, replaying each live tenant's
    /// journal (and the governor's) lands on the live registry values.
    #[test]
    fn journal_replay_reproduces_final_knob_state(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let (_clock, arb, live) = drive(&ops);
        for t in &live {
            for (knob, v) in replay_final_values(t.lg.knobs().journal()) {
                prop_assert_eq!(
                    t.lg.knobs().value(&knob),
                    Some(v),
                    "tenant journal diverged on '{}'",
                    knob
                );
            }
        }
        // Governor journal: mirrors of evicted tenants are deregistered,
        // so only still-registered knobs are checked.
        for (knob, v) in replay_final_values(arb.lg().knobs().journal()) {
            if let Some(liv) = arb.lg().knobs().value(&knob) {
                prop_assert_eq!(liv, v, "governor journal diverged on '{}'", knob);
            }
        }
    }
}
