//! Integration tests for the lock-free observation fast path: deregister
//! grace-period bounds, and behavioral equivalence of the sharded
//! listeners with a single-accumulator reference model.

use lg_core::listener::FnListener;
use lg_core::{ConcurrencyListener, Dispatcher, Event, ProfileListener, TaskNames, TraceListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn tick(t: u64) -> Event {
    Event::PeriodicTick { t_ns: t }
}

/// After `deregister` returns, each emitting thread may deliver at most
/// its one in-flight event to the removed listener; once every emitter
/// has started a fresh dispatch, deliveries stop entirely.
#[test]
fn post_deregister_deliveries_bounded_by_one_per_thread() {
    const EMITTERS: usize = 4;
    let d = Arc::new(Dispatcher::new());
    let hits = Arc::new(AtomicU64::new(0));
    let hc = hits.clone();
    let h = d.register(Arc::new(FnListener::new("counted", move |_| {
        hc.fetch_add(1, Ordering::Relaxed);
    })));
    let stop = Arc::new(AtomicBool::new(false));
    let emitters: Vec<_> = (0..EMITTERS)
        .map(|_| {
            let d = d.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut t = 0;
                while !stop.load(Ordering::Acquire) {
                    d.dispatch(&tick(t));
                    t += 1;
                }
            })
        })
        .collect();
    // Let the emitters get going so their snapshot caches are warm.
    while d.events_dispatched() < 10_000 {
        std::hint::spin_loop();
    }
    assert!(d.deregister(h));
    let at_deregister = hits.load(Ordering::Relaxed);
    // Wait until every emitter has provably begun (many) fresh dispatches
    // after the deregister, then check the bound.
    let mark = d.events_dispatched();
    while d.events_dispatched() < mark + 10_000 * EMITTERS as u64 {
        std::hint::spin_loop();
    }
    let late = hits.load(Ordering::Relaxed) - at_deregister;
    stop.store(true, Ordering::Release);
    emitters.into_iter().for_each(|j| j.join().unwrap());
    assert!(
        late <= EMITTERS as u64,
        "grace period leaked {late} deliveries across {EMITTERS} emitters"
    );
}

/// Reference model: plain fold of the same event sequence into scalar
/// accumulators, no sharding, no Welford.
struct Reference {
    durations: Vec<f64>,
    active: i64,
    yields: u64,
    history: Vec<(u64, f64)>,
    trace: Vec<Event>,
}

impl Reference {
    fn feed(events: &[Event], trace_cap: usize) -> Self {
        let mut r = Reference {
            durations: Vec::new(),
            active: 0,
            yields: 0,
            history: Vec::new(),
            trace: Vec::new(),
        };
        for e in events {
            match *e {
                Event::TaskBegin { t_ns, .. } | Event::TaskResume { t_ns, .. } => {
                    r.active += 1;
                    r.history.push((t_ns, r.active as f64));
                }
                Event::TaskEnd {
                    t_ns, elapsed_ns, ..
                } => {
                    r.durations.push(elapsed_ns as f64);
                    r.active -= 1;
                    r.history.push((t_ns, r.active as f64));
                }
                Event::TaskYield { t_ns, .. } => {
                    r.yields += 1;
                    r.active -= 1;
                    r.history.push((t_ns, r.active as f64));
                }
                _ => {}
            }
            r.trace.push(*e);
        }
        let keep = r.trace.len().saturating_sub(trace_cap);
        r.trace.drain(..keep);
        r
    }

    fn mean(&self) -> f64 {
        self.durations.iter().sum::<f64>() / self.durations.len() as f64
    }

    fn variance(&self) -> f64 {
        let m = self.mean();
        self.durations
            .iter()
            .map(|d| (d - m) * (d - m))
            .sum::<f64>()
            / self.durations.len() as f64
    }
}

/// Deterministic single-threaded replay: the sharded pipeline (profile,
/// concurrency, trace behind one dispatcher) must reproduce the reference
/// model exactly — one emitting thread touches one stripe, so sharding
/// cannot reorder or split anything.
#[test]
fn single_threaded_replay_matches_reference_model() {
    let names = TaskNames::new();
    let task = names.intern("replay");
    const TRACE_CAP: usize = 16;

    // A deterministic pseudo-random mix of lifecycle events.
    let mut events = Vec::new();
    let mut t = 0u64;
    let mut seed = 0x9e3779b97f4a7c15u64;
    for i in 0..200u64 {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let dur = 50 + (seed >> 33) % 1000;
        t += 10;
        events.push(Event::TaskBegin {
            task,
            worker: 0,
            t_ns: t,
        });
        if i % 7 == 3 {
            t += 5;
            events.push(Event::TaskYield {
                task,
                worker: 0,
                t_ns: t,
            });
            t += 5;
            events.push(Event::TaskResume {
                task,
                worker: 0,
                t_ns: t,
            });
        }
        t += dur;
        events.push(Event::TaskEnd {
            task,
            worker: 0,
            t_ns: t,
            elapsed_ns: dur,
        });
        if i % 13 == 0 {
            events.push(Event::PeriodicTick { t_ns: t });
        }
    }

    let d = Dispatcher::new();
    let profile = Arc::new(ProfileListener::new(names.clone()));
    let conc = Arc::new(ConcurrencyListener::new(4096));
    let trace = Arc::new(TraceListener::new(TRACE_CAP));
    d.register(profile.clone());
    d.register(conc.clone());
    d.register(trace.clone());
    for e in &events {
        d.dispatch(e);
    }

    let reference = Reference::feed(&events, TRACE_CAP);

    // Profile equivalence (tight FP tolerance: same fold order, the only
    // difference is Welford's incremental form vs the two-pass reference).
    let prof = profile.get("replay").unwrap();
    assert_eq!(prof.count as usize, reference.durations.len());
    assert_eq!(prof.active, reference.active);
    assert_eq!(prof.yields, reference.yields);
    let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
    assert!(rel(prof.mean_ns, reference.mean()) < 1e-9);
    assert!(rel(prof.stddev_ns, reference.variance().sqrt()) < 1e-6);
    let min = reference.durations.iter().cloned().fold(f64::MAX, f64::min);
    let max = reference.durations.iter().cloned().fold(f64::MIN, f64::max);
    assert_eq!(prof.min_ns, min);
    assert_eq!(prof.max_ns, max);

    // Concurrency history equivalence: identical point sequence.
    assert_eq!(conc.history(), reference.history);
    assert_eq!(conc.active_tasks(), reference.active);

    // Trace equivalence: the retained window is the same events in the
    // same order.
    let got: Vec<Event> = trace.records().iter().map(|r| r.event).collect();
    assert_eq!(got, reference.trace);
    assert_eq!(trace.captured(), events.len() as u64);
    assert_eq!(trace.overwritten(), (events.len() - TRACE_CAP) as u64);

    // Accounting: one event per dispatch, three deliveries per event.
    assert_eq!(d.events_dispatched(), events.len() as u64);
    assert_eq!(d.deliveries(), 3 * events.len() as u64);
}

/// Multi-threaded emission through the full dispatcher: the merged
/// profile must equal the single-accumulator fold of the union of all
/// threads' durations, independent of interleaving.
#[test]
fn sharded_profile_merge_matches_sequential_fold() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 500;
    let names = TaskNames::new();
    let task = names.intern("merged");
    let d = Arc::new(Dispatcher::new());
    let profile = Arc::new(ProfileListener::new(names.clone()));
    d.register(profile.clone());

    let joins: Vec<_> = (0..THREADS)
        .map(|w| {
            let d = d.clone();
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let dur = 10 + w * 1000 + i; // disjoint per-thread ranges
                    d.dispatch(&Event::TaskBegin {
                        task,
                        worker: w as usize,
                        t_ns: i,
                    });
                    d.dispatch(&Event::TaskEnd {
                        task,
                        worker: w as usize,
                        t_ns: i + dur,
                        elapsed_ns: dur,
                    });
                }
            })
        })
        .collect();
    joins.into_iter().for_each(|j| j.join().unwrap());

    let all: Vec<f64> = (0..THREADS)
        .flat_map(|w| (0..PER_THREAD).map(move |i| (10 + w * 1000 + i) as f64))
        .collect();
    let mean = all.iter().sum::<f64>() / all.len() as f64;
    let var = all.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / all.len() as f64;

    let prof = profile.get("merged").unwrap();
    assert_eq!(prof.count, THREADS * PER_THREAD);
    assert_eq!(prof.active, 0);
    let rel = |a: f64, b: f64| (a - b).abs() / b.abs().max(1e-12);
    assert!(rel(prof.mean_ns, mean) < 1e-9, "{} vs {mean}", prof.mean_ns);
    assert!(
        rel(prof.stddev_ns, var.sqrt()) < 1e-6,
        "{} vs {}",
        prof.stddev_ns,
        var.sqrt()
    );
    assert_eq!(prof.min_ns, 10.0);
    assert_eq!(
        prof.max_ns,
        (10 + (THREADS - 1) * 1000 + PER_THREAD - 1) as f64
    );
    assert_eq!(d.events_dispatched(), 2 * THREADS * PER_THREAD);
    assert_eq!(d.deliveries(), 2 * THREADS * PER_THREAD);
}
