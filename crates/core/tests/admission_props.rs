//! Property tests for the admission plane: the bulkhead's concurrency
//! bound, the token bucket's rate×window+burst envelope, and the AIMD
//! governor's clamp/journal/replay contract.
//!
//! These are the safety arguments the serving scenario leans on: a
//! bulkhead that can be exceeded under interleaving is not a bulkhead,
//! a gate that admits above its envelope is not a rate limiter, and an
//! AIMD governor whose journal cannot reproduce its final state breaks
//! the control plane's audit story.

use lg_core::knob::Knob;
use lg_core::{AdmissionGate, AimdPolicy, Bulkhead, LookingGlass, RequestClass};
use proptest::prelude::*;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// A successful `try_acquire` proves `in_flight <= limit` held at
    /// admission — no thread interleaving can push the live count past
    /// a fixed limit, and every permit drop is accounted.
    #[test]
    fn bulkhead_never_exceeded_under_interleaving(
        limit in 1i64..12,
        threads in 2usize..6,
        ops in 16usize..96,
    ) {
        let b = Bulkhead::new("limit", 1, 64, limit);
        let max_seen = AtomicI64::new(0);
        std::thread::scope(|s| {
            for _ in 0..threads {
                let b = b.clone();
                let max_seen = &max_seen;
                s.spawn(move || {
                    for _ in 0..ops {
                        if let Some(permit) = b.try_acquire() {
                            max_seen.fetch_max(b.in_flight(), Ordering::Relaxed);
                            std::hint::spin_loop();
                            drop(permit);
                        }
                    }
                });
            }
        });
        prop_assert!(
            max_seen.load(Ordering::Relaxed) <= limit,
            "in-flight {} exceeded limit {limit}",
            max_seen.load(Ordering::Relaxed)
        );
        prop_assert_eq!(b.in_flight(), 0, "every permit must drain");
    }

    /// With the limit knob mutated concurrently, the in-flight count
    /// never exceeds the highest limit the knob ever held, and lowering
    /// the limit never revokes live permits (the count still drains to
    /// zero through normal drops).
    #[test]
    fn bulkhead_respects_a_live_limit_knob(
        limits in proptest::collection::vec(1i64..16, 4..32),
        threads in 2usize..5,
        ops in 16usize..64,
    ) {
        let initial = limits[0];
        let max_limit = limits.iter().copied().max().unwrap_or(initial).max(initial);
        let b = Bulkhead::new("limit", 1, 64, initial);
        let max_seen = AtomicI64::new(0);
        std::thread::scope(|s| {
            {
                let b = b.clone();
                let limits = &limits;
                s.spawn(move || {
                    for &l in limits {
                        b.limit_knob().set(l);
                        std::thread::yield_now();
                    }
                });
            }
            for _ in 0..threads {
                let b = b.clone();
                let max_seen = &max_seen;
                s.spawn(move || {
                    for _ in 0..ops {
                        if let Some(permit) = b.try_acquire() {
                            max_seen.fetch_max(b.in_flight(), Ordering::Relaxed);
                            std::hint::spin_loop();
                            drop(permit);
                        }
                    }
                });
            }
        });
        prop_assert!(
            max_seen.load(Ordering::Relaxed) <= max_limit,
            "in-flight {} exceeded the highest limit ever set ({max_limit})",
            max_seen.load(Ordering::Relaxed)
        );
        prop_assert_eq!(b.in_flight(), 0);
    }

    /// Over ANY window `[t0, t1]` the gate admits at most
    /// `rate × (t1 - t0) + burst` requests — the bucket never holds more
    /// than `burst` tokens and refills at `rate`, regardless of the
    /// arrival pattern or the optional/mandatory mix.
    #[test]
    fn token_bucket_admits_at_most_rate_window_plus_burst(
        rate in 100i64..50_000,
        burst_tokens in 1u32..48,
        reserve_tokens in 0u32..16,
        steps in proptest::collection::vec((0u64..2_000_000, 0u8..2), 1..250),
    ) {
        let burst = burst_tokens as f64;
        let reserve = (reserve_tokens as f64).min(burst);
        let g = AdmissionGate::new("rate", 0, 1_000_000, rate, burst, reserve);
        let mut now = 0u64;
        let mut admitted_at = Vec::new();
        let mut attempts = 0i64;
        for (dt, class) in steps {
            now += dt;
            let class = if class == 0 {
                RequestClass::Mandatory
            } else {
                RequestClass::Optional
            };
            attempts += 1;
            if g.try_admit(now, class) {
                admitted_at.push(now);
            }
        }
        prop_assert_eq!(g.admitted() + g.rejected(), attempts);
        prop_assert_eq!(g.admitted() as usize, admitted_at.len());
        // Check the envelope over every admission-delimited window.
        for (i, &t0) in admitted_at.iter().enumerate() {
            for (j, &t1) in admitted_at.iter().enumerate().skip(i) {
                let in_window = (j - i + 1) as f64;
                let bound = rate as f64 * (t1 - t0) as f64 / 1e9 + burst;
                prop_assert!(
                    in_window <= bound + 1e-6,
                    "{in_window} admits in [{t0}, {t1}] exceeds rate×window+burst = {bound}"
                );
            }
        }
    }

    /// The AIMD governor, driven through the policy engine against an
    /// arbitrary healthy/overloaded signal sequence, (a) never lets the
    /// knob leave `[min, max]`, (b) journals every change under its
    /// policy name with an unbroken from→to chain, and (c) replaying the
    /// journal from the initial value reproduces the live final state.
    #[test]
    fn aimd_is_bounded_journaled_and_replayable(
        max in 8i64..96,
        initial_raw in 1i64..96,
        step in 1i64..5,
        overloaded in proptest::collection::vec(0u8..2, 1..64),
    ) {
        let min = 1i64;
        let initial = initial_raw.clamp(min, max);
        let lg = LookingGlass::builder().build();
        let bulkhead = Bulkhead::new("limit", min, max, initial);
        lg.knobs().register(bulkhead.limit_knob().clone());

        let latency = Arc::new(AtomicU64::new(0));
        let l = latency.clone();
        let id = lg
            .introspection()
            .register_gauge("p99", move || l.load(Ordering::Relaxed) as f64);
        let policy = AimdPolicy::new("limit", min, max, initial, step, 0.5)
            .on_latency_above(id, 1_000_000.0);
        lg.policy_engine().register_periodic(policy, 1_000, 0);

        for (i, &hot) in overloaded.iter().enumerate() {
            latency.store(if hot == 1 { 5_000_000 } else { 0 }, Ordering::Relaxed);
            lg.policy_engine().step((i as u64 + 1) * 1_000);
            let v = lg.knobs().value("limit").expect("registered knob");
            prop_assert!(
                (min..=max).contains(&v),
                "knob value {v} escaped [{min}, {max}] at step {i}"
            );
        }

        let records = lg.knobs().journal().records();
        let mut replayed = initial;
        for r in &records {
            prop_assert_eq!(r.policy.as_str(), "aimd-bulkhead");
            prop_assert_eq!(&r.knob, "limit");
            prop_assert_eq!(r.from, replayed, "broken from-chain at seq {}", r.seq);
            prop_assert!((min..=max).contains(&r.to), "journaled value escaped clamp");
            replayed = r.to;
        }
        prop_assert_eq!(
            lg.knobs().value("limit"),
            Some(replayed),
            "journal replay diverged from the live knob"
        );
    }
}
