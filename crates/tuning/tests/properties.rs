//! Property-based tests for spaces and search strategies.

use lg_tuning::anneal::AnnealConfig;
use lg_tuning::genetic::GeneticConfig;
use lg_tuning::{
    minimize, Dim, Exhaustive, Genetic, HillClimb, NelderMead, RandomSearch, Search,
    SimulatedAnnealing, Space,
};
use proptest::prelude::*;

fn arb_space() -> impl Strategy<Value = Space> {
    ((0i64..10, 1i64..30, 1i64..4), proptest::option::of(0u32..6)).prop_map(
        |((lo, extent, step), pow2)| {
            let mut dims = vec![Dim::range("a", lo, lo + extent, step)];
            if let Some(e) = pow2 {
                dims.push(Dim::pow2("b", 0, e));
            }
            Space::new(dims)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn exhaustive_visits_each_point_once(space in arb_space()) {
        let mut ex = Exhaustive::new(space.clone());
        let mut seen = std::collections::HashSet::new();
        while let Some(p) = ex.propose() {
            prop_assert!(seen.insert(p.clone()), "duplicate {:?}", p);
            ex.report(&p, 0.0);
        }
        prop_assert_eq!(seen.len(), space.cardinality());
    }

    #[test]
    fn exhaustive_best_is_true_argmin(space in arb_space(), cx in -20i64..20) {
        let f = |p: &Vec<i64>| p.iter().map(|&v| ((v - cx) as f64).powi(2)).sum::<f64>();
        let mut ex = Exhaustive::new(space.clone());
        let r = minimize(&mut ex, |p| f(p), usize::MAX).unwrap();
        let true_min = space.iter_points().map(|p| f(&p)).fold(f64::INFINITY, f64::min);
        prop_assert_eq!(r.best_value, true_min);
    }

    #[test]
    fn all_strategies_terminate_and_stay_in_space(space in arb_space(), seed in 0u64..500) {
        let strategies: Vec<Box<dyn Search>> = vec![
            Box::new(RandomSearch::new(space.clone(), 30, seed)),
            Box::new(HillClimb::new(space.clone())),
            Box::new(SimulatedAnnealing::new(
                space.clone(),
                AnnealConfig { budget: 30, ..Default::default() },
                seed,
            )),
            Box::new(NelderMead::new(space.clone(), 30)),
            Box::new(Genetic::new(
                space.clone(),
                GeneticConfig { population: 6, elites: 1, budget: 30, ..Default::default() },
                seed,
            )),
        ];
        for mut s in strategies {
            let mut evals = 0usize;
            while let Some(p) = s.propose() {
                prop_assert!(space.contains(&p), "{} left the lattice: {:?}", s.name(), p);
                s.report(&p, p.iter().map(|&v| v as f64).sum());
                evals += 1;
                prop_assert!(evals <= space.cardinality().max(1) * 4 + 2000,
                    "{} did not terminate", s.name());
            }
            prop_assert!(s.converged(), "{} stopped proposing without converging", s.name());
        }
    }

    #[test]
    fn best_never_worse_than_any_report(space in arb_space(), seed in 0u64..100) {
        let mut s = RandomSearch::new(space, 50, seed);
        let mut min_reported = f64::INFINITY;
        while let Some(p) = s.propose() {
            let y = (p[0] * 3 % 17) as f64;
            min_reported = min_reported.min(y);
            s.report(&p, y);
            let (_, best) = s.best().unwrap();
            prop_assert_eq!(best, min_reported);
        }
    }

    #[test]
    fn hillclimb_result_is_local_minimum(cx in 0i64..60, seed in 0u64..50) {
        // On a deterministic pseudo-random landscape, the point hillclimb
        // converges to must be no worse than all its lattice neighbors.
        let space = Space::new(vec![Dim::range("x", 0, 60, 1)]);
        let f = |p: &Vec<i64>| {
            let v = (p[0] - cx) as f64;
            let h = ((p[0] as u64).wrapping_mul(seed.wrapping_add(1) * 2654435761)) % 97;
            v * v + h as f64
        };
        let mut hc = HillClimb::new(space.clone());
        let _ = minimize(&mut hc, |p| f(p), 10_000).unwrap();
        let final_point = hc.current_point();
        let y_final = f(&final_point);
        let levels = space.levels_of(&final_point).unwrap();
        for n in space.neighbor_levels(&levels) {
            let np = space.point_at(&n);
            prop_assert!(f(&np) >= y_final, "not a local min: {:?} beats {:?}", np, final_point);
        }
    }

    #[test]
    fn clamp_is_idempotent_and_contained(space in arb_space(), probe in proptest::collection::vec(-1000i64..1000, 1..3)) {
        if probe.len() == space.ndims() {
            let c = space.clamp(&probe);
            prop_assert!(space.contains(&c));
            prop_assert_eq!(space.clamp(&c), c);
        }
    }
}
