//! Discrete parameter spaces.
//!
//! A [`Space`] is a small cartesian lattice: each [`Dim`] is either an
//! arithmetic range (`lo..=hi step s`) or an explicit value list (e.g.
//! powers of two for a coalescing window). Searches navigate *levels*
//! (indices into a dimension) while the application sees *values* (the
//! actual knob settings), so non-uniform dimensions behave correctly under
//! neighborhood moves.

/// A candidate configuration: one value per dimension, in dimension order.
pub type Point = Vec<i64>;

/// One tunable dimension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Dim {
    /// Human-readable knob name, e.g. `"thread_cap"`.
    pub name: String,
    values: Vec<i64>,
}

impl Dim {
    /// A dimension over `lo..=hi` with the given stride.
    ///
    /// # Panics
    /// Panics if `step == 0` or `lo > hi`.
    pub fn range(name: impl Into<String>, lo: i64, hi: i64, step: i64) -> Self {
        assert!(step > 0, "step must be positive");
        assert!(lo <= hi, "lo must be <= hi");
        let values: Vec<i64> = (lo..=hi).step_by(step as usize).collect();
        Self {
            name: name.into(),
            values,
        }
    }

    /// A dimension over an explicit, strictly increasing value list.
    ///
    /// # Panics
    /// Panics if `values` is empty or not strictly increasing.
    pub fn values(name: impl Into<String>, values: Vec<i64>) -> Self {
        assert!(!values.is_empty(), "dimension must have at least one value");
        assert!(
            values.windows(2).all(|w| w[0] < w[1]),
            "dimension values must be strictly increasing"
        );
        Self {
            name: name.into(),
            values,
        }
    }

    /// A dimension over powers of two `2^lo_exp ..= 2^hi_exp`.
    pub fn pow2(name: impl Into<String>, lo_exp: u32, hi_exp: u32) -> Self {
        assert!(lo_exp <= hi_exp, "lo_exp must be <= hi_exp");
        Self::values(name, (lo_exp..=hi_exp).map(|e| 1i64 << e).collect())
    }

    /// Number of levels (distinct values) in this dimension.
    pub fn cardinality(&self) -> usize {
        self.values.len()
    }

    /// Value at a level index.
    ///
    /// # Panics
    /// Panics if `level` is out of range.
    pub fn value_at(&self, level: usize) -> i64 {
        self.values[level]
    }

    /// Level index of `value`, if it is one of this dimension's values.
    pub fn level_of(&self, value: i64) -> Option<usize> {
        self.values.binary_search(&value).ok()
    }

    /// Level whose value is closest to `value` (ties resolve downward).
    pub fn nearest_level(&self, value: i64) -> usize {
        match self.values.binary_search(&value) {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) if i == self.values.len() => self.values.len() - 1,
            Err(i) => {
                let below = value - self.values[i - 1];
                let above = self.values[i] - value;
                if above < below {
                    i
                } else {
                    i - 1
                }
            }
        }
    }

    /// All values of this dimension.
    pub fn all_values(&self) -> &[i64] {
        &self.values
    }
}

/// A cartesian product of dimensions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Space {
    dims: Vec<Dim>,
}

impl Space {
    /// Creates a space from its dimensions.
    ///
    /// # Panics
    /// Panics if `dims` is empty.
    pub fn new(dims: Vec<Dim>) -> Self {
        assert!(!dims.is_empty(), "space must have at least one dimension");
        Self { dims }
    }

    /// The dimensions, in order.
    pub fn dims(&self) -> &[Dim] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Total number of lattice points (saturating).
    pub fn cardinality(&self) -> usize {
        self.dims
            .iter()
            .fold(1usize, |acc, d| acc.saturating_mul(d.cardinality()))
    }

    /// Converts level indices to a value point.
    ///
    /// # Panics
    /// Panics on dimension-count mismatch or out-of-range levels.
    pub fn point_at(&self, levels: &[usize]) -> Point {
        assert_eq!(levels.len(), self.dims.len(), "level count mismatch");
        levels
            .iter()
            .zip(&self.dims)
            .map(|(&l, d)| d.value_at(l))
            .collect()
    }

    /// Converts a value point to level indices; `None` if any coordinate is
    /// not an exact lattice value.
    pub fn levels_of(&self, point: &[i64]) -> Option<Vec<usize>> {
        if point.len() != self.dims.len() {
            return None;
        }
        point
            .iter()
            .zip(&self.dims)
            .map(|(&v, d)| d.level_of(v))
            .collect()
    }

    /// True iff `point` lies on the lattice.
    pub fn contains(&self, point: &[i64]) -> bool {
        self.levels_of(point).is_some()
    }

    /// Snaps an arbitrary point to the nearest lattice point.
    pub fn clamp(&self, point: &[i64]) -> Point {
        assert_eq!(point.len(), self.dims.len(), "dimension count mismatch");
        point
            .iter()
            .zip(&self.dims)
            .map(|(&v, d)| d.value_at(d.nearest_level(v)))
            .collect()
    }

    /// The center of the lattice (middle level of each dimension) — the
    /// conventional cold-start point for online tuners.
    pub fn center(&self) -> Point {
        self.dims
            .iter()
            .map(|d| d.value_at(d.cardinality() / 2))
            .collect()
    }

    /// All lattice neighbors of `levels` at L1 level-distance exactly 1
    /// (i.e. one dimension moved by one level).
    pub fn neighbor_levels(&self, levels: &[usize]) -> Vec<Vec<usize>> {
        let mut out = Vec::with_capacity(2 * self.dims.len());
        for (i, d) in self.dims.iter().enumerate() {
            if levels[i] > 0 {
                let mut n = levels.to_vec();
                n[i] -= 1;
                out.push(n);
            }
            if levels[i] + 1 < d.cardinality() {
                let mut n = levels.to_vec();
                n[i] += 1;
                out.push(n);
            }
        }
        out
    }

    /// Iterates over every lattice point in lexicographic level order.
    pub fn iter_points(&self) -> SpaceIter<'_> {
        SpaceIter {
            space: self,
            levels: vec![0; self.dims.len()],
            done: false,
        }
    }
}

/// Iterator over all lattice points of a [`Space`].
pub struct SpaceIter<'a> {
    space: &'a Space,
    levels: Vec<usize>,
    done: bool,
}

impl Iterator for SpaceIter<'_> {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        if self.done {
            return None;
        }
        let out = self.space.point_at(&self.levels);
        // Lexicographic increment.
        let mut i = self.levels.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            self.levels[i] += 1;
            if self.levels[i] < self.space.dims[i].cardinality() {
                break;
            }
            self.levels[i] = 0;
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_dim_values() {
        let d = Dim::range("n", 2, 10, 2);
        assert_eq!(d.all_values(), &[2, 4, 6, 8, 10]);
        assert_eq!(d.cardinality(), 5);
        assert_eq!(d.value_at(0), 2);
        assert_eq!(d.level_of(8), Some(3));
        assert_eq!(d.level_of(7), None);
    }

    #[test]
    fn pow2_dim() {
        let d = Dim::pow2("w", 0, 6);
        assert_eq!(d.all_values(), &[1, 2, 4, 8, 16, 32, 64]);
    }

    #[test]
    fn nearest_level_semantics() {
        let d = Dim::values("v", vec![1, 10, 100]);
        assert_eq!(d.nearest_level(0), 0);
        assert_eq!(d.nearest_level(1), 0);
        assert_eq!(d.nearest_level(5), 0); // ties resolve downward: 5-1=4 < 100... 10-5=5, below=4 → down
        assert_eq!(d.nearest_level(6), 1);
        assert_eq!(d.nearest_level(55), 1);
        assert_eq!(d.nearest_level(56), 2);
        assert_eq!(d.nearest_level(1000), 2);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_values_rejected() {
        let _ = Dim::values("v", vec![3, 1, 2]);
    }

    #[test]
    fn space_cardinality_and_iteration() {
        let s = Space::new(vec![Dim::range("a", 0, 2, 1), Dim::values("b", vec![5, 7])]);
        assert_eq!(s.cardinality(), 6);
        let pts: Vec<Point> = s.iter_points().collect();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], vec![0, 5]);
        assert_eq!(pts[1], vec![0, 7]);
        assert_eq!(pts[5], vec![2, 7]);
        // All points distinct.
        let mut uniq = pts.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), 6);
    }

    #[test]
    fn point_level_roundtrip() {
        let s = Space::new(vec![Dim::range("a", 10, 50, 10), Dim::pow2("b", 1, 4)]);
        for pt in s.iter_points() {
            let levels = s.levels_of(&pt).unwrap();
            assert_eq!(s.point_at(&levels), pt);
        }
    }

    #[test]
    fn contains_and_clamp() {
        let s = Space::new(vec![Dim::range("a", 0, 10, 5)]);
        assert!(s.contains(&[5]));
        assert!(!s.contains(&[3]));
        assert_eq!(s.clamp(&[3]), vec![5]);
        assert_eq!(s.clamp(&[-100]), vec![0]);
        assert_eq!(s.clamp(&[100]), vec![10]);
    }

    #[test]
    fn center_is_on_lattice() {
        let s = Space::new(vec![Dim::range("a", 0, 100, 7), Dim::pow2("b", 0, 10)]);
        assert!(s.contains(&s.center()));
    }

    #[test]
    fn neighbors_interior_and_boundary() {
        let s = Space::new(vec![Dim::range("a", 0, 4, 1), Dim::range("b", 0, 4, 1)]);
        // Interior point: 4 neighbors.
        assert_eq!(s.neighbor_levels(&[2, 2]).len(), 4);
        // Corner: 2 neighbors.
        assert_eq!(s.neighbor_levels(&[0, 0]).len(), 2);
        // Edge: 3 neighbors.
        assert_eq!(s.neighbor_levels(&[0, 2]).len(), 3);
    }

    #[test]
    fn single_value_dim_has_no_neighbors() {
        let s = Space::new(vec![Dim::values("a", vec![42])]);
        assert!(s.neighbor_levels(&[0]).is_empty());
        assert_eq!(s.cardinality(), 1);
    }

    #[test]
    fn iteration_count_matches_cardinality_3d() {
        let s = Space::new(vec![
            Dim::range("a", 0, 3, 1),
            Dim::range("b", 0, 2, 1),
            Dim::pow2("c", 0, 3),
        ]);
        assert_eq!(s.iter_points().count(), s.cardinality());
    }
}
