//! Simulated annealing over the discrete lattice.
//!
//! Proposes a random neighbor (one dimension perturbed by up to
//! `max_step` levels) and accepts worsening moves with probability
//! `exp(-Δ/T)`; the temperature cools geometrically per evaluation. Escapes
//! the local minima that strand plain hill climbing, at the cost of more
//! measurement epochs — exactly the trade-off the strategy-comparison
//! experiment (Table 3) quantifies.

use crate::search::{BestTracker, Search};
use crate::space::{Point, Space};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`SimulatedAnnealing`].
#[derive(Clone, Copy, Debug)]
pub struct AnnealConfig {
    /// Initial temperature, in objective units. A reasonable default is the
    /// expected objective spread across the space.
    pub t0: f64,
    /// Geometric cooling factor per evaluation, in `(0, 1)`.
    pub cooling: f64,
    /// Temperature below which the search stops.
    pub t_min: f64,
    /// Maximum evaluations regardless of temperature.
    pub budget: usize,
    /// Largest per-move level perturbation.
    pub max_step: usize,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        Self {
            t0: 1.0,
            cooling: 0.97,
            t_min: 1e-4,
            budget: 500,
            max_step: 2,
        }
    }
}

/// Simulated annealing search.
pub struct SimulatedAnnealing {
    space: Space,
    cfg: AnnealConfig,
    rng: StdRng,
    current: Vec<usize>,
    current_y: Option<f64>,
    pending: Option<Vec<usize>>,
    temperature: f64,
    evals: usize,
    tracker: BestTracker,
}

impl SimulatedAnnealing {
    /// Creates an annealer starting from the space center.
    ///
    /// # Panics
    /// Panics if the config is malformed (non-positive budget or cooling
    /// outside `(0, 1)`).
    pub fn new(space: Space, cfg: AnnealConfig, seed: u64) -> Self {
        assert!(cfg.budget > 0, "budget must be positive");
        assert!(
            cfg.cooling > 0.0 && cfg.cooling < 1.0,
            "cooling must be in (0, 1)"
        );
        assert!(cfg.max_step >= 1, "max_step must be at least 1");
        let center = space.center();
        let current = space.levels_of(&center).expect("center must be on lattice");
        Self {
            space,
            cfg,
            rng: StdRng::seed_from_u64(seed),
            current,
            current_y: None,
            pending: None,
            temperature: cfg.t0,
            evals: 0,
            tracker: BestTracker::default(),
        }
    }

    /// Current temperature.
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    fn perturb(&mut self) -> Vec<usize> {
        let mut levels = self.current.clone();
        // Pick a dimension that can actually move.
        let movable: Vec<usize> = self
            .space
            .dims()
            .iter()
            .enumerate()
            .filter(|(_, d)| d.cardinality() > 1)
            .map(|(i, _)| i)
            .collect();
        if movable.is_empty() {
            return levels;
        }
        let dim = movable[self.rng.gen_range(0..movable.len())];
        let card = self.space.dims()[dim].cardinality();
        let step = self.rng.gen_range(1..=self.cfg.max_step) as i64;
        let dir = if self.rng.gen_bool(0.5) { 1 } else { -1 };
        let new_level = (levels[dim] as i64 + dir * step).clamp(0, card as i64 - 1) as usize;
        levels[dim] = new_level;
        levels
    }

    fn out_of_budget(&self) -> bool {
        self.evals >= self.cfg.budget || self.temperature < self.cfg.t_min
    }
}

impl Search for SimulatedAnnealing {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn propose(&mut self) -> Option<Point> {
        if self.out_of_budget() {
            return None;
        }
        if self.current_y.is_none() {
            self.pending = Some(self.current.clone());
            return Some(self.space.point_at(&self.current));
        }
        let candidate = self.perturb();
        self.pending = Some(candidate.clone());
        Some(self.space.point_at(&candidate))
    }

    fn report(&mut self, point: &Point, objective: f64) {
        self.tracker.observe(point, objective);
        let Some(levels) = self.space.levels_of(point) else {
            return;
        };
        let matches_pending = self.pending.as_deref() == Some(levels.as_slice());
        if !matches_pending {
            return; // opportunistic report: tracked, not part of the walk
        }
        self.pending = None;
        self.evals += 1;
        match self.current_y {
            None => {
                // Seeding evaluation of the start point.
                self.current_y = Some(objective);
            }
            Some(cur_y) => {
                let accept = if objective <= cur_y {
                    true
                } else {
                    let delta = objective - cur_y;
                    let p = (-delta / self.temperature.max(1e-300)).exp();
                    self.rng.gen_bool(p.clamp(0.0, 1.0))
                };
                if accept {
                    self.current = levels;
                    self.current_y = Some(objective);
                }
                self.temperature *= self.cfg.cooling;
            }
        }
    }

    fn best(&self) -> Option<(Point, f64)> {
        self.tracker.best()
    }

    fn converged(&self) -> bool {
        self.out_of_budget()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Dim;

    fn drive(s: &mut dyn Search, f: impl Fn(&Point) -> f64) -> usize {
        let mut evals = 0;
        while let Some(p) = s.propose() {
            s.report(&p, f(&p));
            evals += 1;
            assert!(evals < 1_000_000, "runaway search");
        }
        evals
    }

    #[test]
    fn respects_budget() {
        let space = Space::new(vec![Dim::range("x", 0, 100, 1)]);
        let cfg = AnnealConfig {
            budget: 50,
            t_min: 0.0,
            ..Default::default()
        };
        let mut sa = SimulatedAnnealing::new(space, cfg, 1);
        let evals = drive(&mut sa, |_| 1.0);
        assert_eq!(evals, 50);
        assert!(sa.converged());
    }

    #[test]
    fn finds_unimodal_minimum() {
        let space = Space::new(vec![Dim::range("x", 0, 100, 1)]);
        let cfg = AnnealConfig {
            t0: 100.0,
            cooling: 0.98,
            budget: 400,
            ..Default::default()
        };
        let mut sa = SimulatedAnnealing::new(space, cfg, 42);
        drive(&mut sa, |p| ((p[0] - 61) * (p[0] - 61)) as f64);
        let (best, _) = sa.best().unwrap();
        assert!((best[0] - 61).abs() <= 2, "best {best:?}");
    }

    #[test]
    fn escapes_double_well_on_most_seeds() {
        // Global minimum at 90, local trap at 10. A greedy climber started
        // in the left basin never crosses; annealing should usually find
        // the global well. Statistical across seeds because any single
        // trajectory is luck.
        // Left well floor = 30, right (global) well floor = 0: deep enough
        // a difference that annealing through T ≈ 5–30 reliably prefers
        // the right basin, while a greedy climber started left of x = 35
        // would still be trapped.
        let f = |p: &Point| {
            let x = p[0] as f64;
            ((x - 10.0).abs() + 30.0).min((x - 90.0).abs())
        };
        let space = Space::new(vec![Dim::range("x", 0, 100, 1)]);
        let mut found_global = 0;
        let seeds = 10;
        for seed in 0..seeds {
            let cfg = AnnealConfig {
                t0: 40.0,
                cooling: 0.995,
                budget: 2000,
                max_step: 8,
                ..Default::default()
            };
            let mut sa = SimulatedAnnealing::new(space.clone(), cfg, seed);
            drive(&mut sa, f);
            let (best, _) = sa.best().unwrap();
            if (best[0] - 90).abs() <= 3 {
                found_global += 1;
            }
        }
        assert!(
            found_global >= 6,
            "global well found on only {found_global}/{seeds} seeds"
        );
    }

    #[test]
    fn temperature_cools_monotonically() {
        let space = Space::new(vec![Dim::range("x", 0, 10, 1)]);
        let mut sa = SimulatedAnnealing::new(space, AnnealConfig::default(), 5);
        let mut last_t = sa.temperature();
        let mut first = true;
        while let Some(p) = sa.propose() {
            sa.report(&p, p[0] as f64);
            if first {
                first = false; // seeding eval does not cool
                last_t = sa.temperature();
                continue;
            }
            assert!(sa.temperature() <= last_t);
            last_t = sa.temperature();
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let space = Space::new(vec![Dim::range("x", 0, 50, 1), Dim::range("y", 0, 50, 1)]);
            let cfg = AnnealConfig {
                budget: 120,
                ..Default::default()
            };
            let mut sa = SimulatedAnnealing::new(space, cfg, seed);
            let mut trace = Vec::new();
            while let Some(p) = sa.propose() {
                let y = ((p[0] - 7).pow(2) + (p[1] - 7).pow(2)) as f64;
                sa.report(&p, y);
                trace.push(p);
            }
            trace
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn proposals_stay_on_lattice() {
        let space = Space::new(vec![
            Dim::pow2("x", 0, 8),
            Dim::values("y", vec![1, 3, 9, 27]),
        ]);
        let cfg = AnnealConfig {
            budget: 200,
            ..Default::default()
        };
        let mut sa = SimulatedAnnealing::new(space.clone(), cfg, 3);
        while let Some(p) = sa.propose() {
            assert!(space.contains(&p), "off-lattice {p:?}");
            sa.report(&p, p[0] as f64);
        }
    }

    #[test]
    fn t_min_stops_search() {
        let space = Space::new(vec![Dim::range("x", 0, 10, 1)]);
        let cfg = AnnealConfig {
            t0: 1.0,
            cooling: 0.5,
            t_min: 0.1,
            budget: 10_000,
            ..Default::default()
        };
        let mut sa = SimulatedAnnealing::new(space, cfg, 0);
        let evals = drive(&mut sa, |_| 1.0);
        // 1.0 * 0.5^k < 0.1 → k = 4 cooling steps (plus the seeding eval).
        assert!(evals <= 6, "evals {evals}");
    }
}
