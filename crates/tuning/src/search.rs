//! The propose/report search protocol.
//!
//! Online tuning interleaves with real execution: the tuning session asks
//! the strategy where to look next ([`Search::propose`]), actuates the
//! knobs, runs a measurement epoch, and feeds the observed objective back
//! ([`Search::report`]). The strategy never blocks and never measures; it
//! only decides.

use crate::space::Point;

/// A minimizing search strategy over a discrete [`crate::space::Space`].
///
/// ## Protocol
///
/// ```text
/// loop {
///     match search.propose() {
///         None => break,                   // converged or exhausted
///         Some(p) => {
///             let y = measure(p);          // caller-owned evaluation
///             search.report(&p, y);
///         }
///     }
/// }
/// let (best_point, best_value) = search.best().unwrap();
/// ```
///
/// Implementations must tolerate `report` calls for points they did not
/// propose (an online system may measure opportunistically) and repeated
/// evaluations of the same point with different values (noise).
pub trait Search: Send {
    /// Short identifier, e.g. `"hillclimb"`.
    fn name(&self) -> &'static str;

    /// The next point to evaluate, or `None` when the strategy has
    /// converged or exhausted its budget.
    fn propose(&mut self) -> Option<Point>;

    /// Reports a measured objective value for `point` (lower is better).
    fn report(&mut self, point: &Point, objective: f64);

    /// The best `(point, objective)` reported so far.
    fn best(&self) -> Option<(Point, f64)>;

    /// True once the strategy will not propose further points.
    fn converged(&self) -> bool;
}

/// Shared best-so-far bookkeeping used by every strategy.
#[derive(Clone, Debug, Default)]
pub(crate) struct BestTracker {
    best: Option<(Point, f64)>,
    pub(crate) reports: usize,
}

impl BestTracker {
    pub(crate) fn observe(&mut self, point: &Point, objective: f64) {
        self.reports += 1;
        let better = match &self.best {
            None => true,
            Some((_, y)) => objective < *y,
        };
        if better {
            self.best = Some((point.clone(), objective));
        }
    }

    pub(crate) fn best(&self) -> Option<(Point, f64)> {
        self.best.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_keeps_minimum() {
        let mut t = BestTracker::default();
        t.observe(&vec![1], 5.0);
        t.observe(&vec![2], 3.0);
        t.observe(&vec![3], 4.0);
        let (p, y) = t.best().unwrap();
        assert_eq!(p, vec![2]);
        assert_eq!(y, 3.0);
        assert_eq!(t.reports, 3);
    }

    #[test]
    fn tracker_ties_keep_first() {
        let mut t = BestTracker::default();
        t.observe(&vec![1], 2.0);
        t.observe(&vec![9], 2.0);
        assert_eq!(t.best().unwrap().0, vec![1]);
    }

    #[test]
    fn tracker_empty() {
        let t = BestTracker::default();
        assert!(t.best().is_none());
    }
}
