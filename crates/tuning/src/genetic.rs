//! Generational genetic search.
//!
//! Individuals are level vectors; selection is by tournament, crossover is
//! uniform, and mutation re-draws a gene or nudges it by one level. Elitism
//! carries the best individuals between generations unchanged. Previously
//! measured individuals are served from a cache so duplicated genomes never
//! burn a measurement epoch — online, epochs are the scarce resource.

use crate::search::{BestTracker, Search};
use crate::space::{Point, Space};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Configuration for [`Genetic`].
#[derive(Clone, Copy, Debug)]
pub struct GeneticConfig {
    /// Individuals per generation.
    pub population: usize,
    /// Individuals copied unchanged into the next generation.
    pub elites: usize,
    /// Tournament size for parent selection.
    pub tournament: usize,
    /// Per-gene mutation probability.
    pub mutation_rate: f64,
    /// Total evaluation budget.
    pub budget: usize,
}

impl Default for GeneticConfig {
    fn default() -> Self {
        Self {
            population: 16,
            elites: 2,
            tournament: 3,
            mutation_rate: 0.15,
            budget: 400,
        }
    }
}

/// Generational genetic algorithm over a discrete space.
pub struct Genetic {
    space: Space,
    cfg: GeneticConfig,
    rng: StdRng,
    /// Current generation genomes.
    genomes: Vec<Vec<usize>>,
    /// Fitness of each genome once known (same index as `genomes`).
    fitness: Vec<Option<f64>>,
    /// Index of the genome we proposed and await a value for.
    pending: Option<usize>,
    cache: HashMap<Vec<usize>, f64>,
    evals: usize,
    generation: usize,
    /// Consecutive generations fully served from cache. In tiny or
    /// converged spaces every genome may already be measured; after a
    /// bounded number of such generations the search declares convergence
    /// instead of breeding forever.
    stale_generations: usize,
    tracker: BestTracker,
}

const MAX_STALE_GENERATIONS: usize = 64;

impl Genetic {
    /// Creates a genetic search with a random initial population.
    ///
    /// # Panics
    /// Panics if the config is degenerate (zero population/budget, elites
    /// not smaller than population, zero tournament).
    pub fn new(space: Space, cfg: GeneticConfig, seed: u64) -> Self {
        assert!(cfg.population >= 2, "population must be at least 2");
        assert!(cfg.elites < cfg.population, "elites must be < population");
        assert!(cfg.tournament >= 1, "tournament must be at least 1");
        assert!(cfg.budget > 0, "budget must be positive");
        assert!(
            (0.0..=1.0).contains(&cfg.mutation_rate),
            "mutation rate in [0,1]"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let genomes: Vec<Vec<usize>> = (0..cfg.population)
            .map(|_| {
                space
                    .dims()
                    .iter()
                    .map(|d| rng.gen_range(0..d.cardinality()))
                    .collect()
            })
            .collect();
        let fitness = vec![None; cfg.population];
        Self {
            space,
            cfg,
            rng,
            genomes,
            fitness,
            pending: None,
            cache: HashMap::new(),
            evals: 0,
            generation: 0,
            stale_generations: 0,
            tracker: BestTracker::default(),
        }
    }

    /// Completed generations.
    pub fn generation(&self) -> usize {
        self.generation
    }

    fn tournament_pick(&mut self) -> usize {
        let mut best_idx = self.rng.gen_range(0..self.genomes.len());
        for _ in 1..self.cfg.tournament {
            let c = self.rng.gen_range(0..self.genomes.len());
            let yb = self.fitness[best_idx].unwrap_or(f64::INFINITY);
            let yc = self.fitness[c].unwrap_or(f64::INFINITY);
            if yc < yb {
                best_idx = c;
            }
        }
        best_idx
    }

    fn breed_next_generation(&mut self) {
        let mut ranked: Vec<usize> = (0..self.genomes.len()).collect();
        ranked.sort_by(|&a, &b| {
            let ya = self.fitness[a].unwrap_or(f64::INFINITY);
            let yb = self.fitness[b].unwrap_or(f64::INFINITY);
            ya.partial_cmp(&yb).unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut next: Vec<Vec<usize>> = ranked[..self.cfg.elites]
            .iter()
            .map(|&i| self.genomes[i].clone())
            .collect();
        while next.len() < self.cfg.population {
            let pa = self.tournament_pick();
            let pb = self.tournament_pick();
            let mut child: Vec<usize> = (0..self.space.ndims())
                .map(|g| {
                    if self.rng.gen_bool(0.5) {
                        self.genomes[pa][g]
                    } else {
                        self.genomes[pb][g]
                    }
                })
                .collect();
            for (g, dim) in self.space.dims().iter().enumerate() {
                if self.rng.gen_bool(self.cfg.mutation_rate) {
                    let card = dim.cardinality();
                    if self.rng.gen_bool(0.5) {
                        // Local nudge.
                        let delta: i64 = if self.rng.gen_bool(0.5) { 1 } else { -1 };
                        child[g] = (child[g] as i64 + delta).clamp(0, card as i64 - 1) as usize;
                    } else {
                        // Global redraw.
                        child[g] = self.rng.gen_range(0..card);
                    }
                }
            }
            next.push(child);
        }
        self.genomes = next;
        self.fitness = self
            .genomes
            .iter()
            .map(|g| self.cache.get(g).copied())
            .collect();
        self.generation += 1;
    }
}

impl Search for Genetic {
    fn name(&self) -> &'static str {
        "genetic"
    }

    fn propose(&mut self) -> Option<Point> {
        loop {
            if self.evals >= self.cfg.budget || self.stale_generations >= MAX_STALE_GENERATIONS {
                return None;
            }
            // Serve cached fitness for duplicated genomes without an epoch.
            for i in 0..self.genomes.len() {
                if self.fitness[i].is_none() {
                    if let Some(&y) = self.cache.get(&self.genomes[i]) {
                        self.fitness[i] = Some(y);
                    }
                }
            }
            if let Some(i) = self.fitness.iter().position(|f| f.is_none()) {
                self.pending = Some(i);
                self.stale_generations = 0;
                return Some(self.space.point_at(&self.genomes[i]));
            }
            // Generation fully evaluated (possibly entirely from cache).
            self.stale_generations += 1;
            self.breed_next_generation();
        }
    }

    fn report(&mut self, point: &Point, objective: f64) {
        self.tracker.observe(point, objective);
        let Some(levels) = self.space.levels_of(point) else {
            return;
        };
        self.cache.insert(levels.clone(), objective);
        if let Some(i) = self.pending.take() {
            if self.genomes[i] == levels {
                self.fitness[i] = Some(objective);
                self.evals += 1;
            }
        }
    }

    fn best(&self) -> Option<(Point, f64)> {
        self.tracker.best()
    }

    fn converged(&self) -> bool {
        self.evals >= self.cfg.budget || self.stale_generations >= MAX_STALE_GENERATIONS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Dim;

    fn drive(s: &mut dyn Search, f: impl Fn(&Point) -> f64) -> usize {
        let mut evals = 0;
        while let Some(p) = s.propose() {
            s.report(&p, f(&p));
            evals += 1;
            assert!(evals < 1_000_000, "runaway search");
        }
        evals
    }

    #[test]
    fn respects_budget() {
        let space = Space::new(vec![Dim::range("x", 0, 1000, 1)]);
        let cfg = GeneticConfig {
            budget: 60,
            ..Default::default()
        };
        let mut ga = Genetic::new(space, cfg, 1);
        let evals = drive(&mut ga, |p| p[0] as f64);
        assert!(evals <= 60);
        assert!(ga.converged());
    }

    #[test]
    fn solves_unimodal_2d() {
        let space = Space::new(vec![Dim::range("x", 0, 63, 1), Dim::range("y", 0, 63, 1)]);
        let cfg = GeneticConfig {
            budget: 600,
            ..Default::default()
        };
        let mut ga = Genetic::new(space, cfg, 5);
        drive(&mut ga, |p| ((p[0] - 50).pow(2) + (p[1] - 9).pow(2)) as f64);
        let (best, y) = ga.best().unwrap();
        assert!(y <= 8.0, "best {best:?} y={y}");
    }

    #[test]
    fn handles_rugged_landscape() {
        // Many local minima; the global basin at x=32 is narrow.
        let f = |p: &Point| {
            let x = p[0] as f64;
            let rugged = (x * 0.9).sin().abs() * 10.0;
            (x - 32.0).abs() + rugged
        };
        let space = Space::new(vec![Dim::range("x", 0, 127, 1)]);
        let cfg = GeneticConfig {
            budget: 500,
            ..Default::default()
        };
        let mut ga = Genetic::new(space, cfg, 17);
        drive(&mut ga, f);
        let (_, y) = ga.best().unwrap();
        // The global optimum value is f at the best integer near a sine zero.
        let global = (0..128).map(|x| f(&vec![x])).fold(f64::INFINITY, f64::min);
        assert!(y <= global + 3.0, "y {y} vs global {global}");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let space = Space::new(vec![Dim::range("x", 0, 30, 1), Dim::range("y", 0, 30, 1)]);
            let cfg = GeneticConfig {
                budget: 100,
                ..Default::default()
            };
            let mut ga = Genetic::new(space, cfg, seed);
            let mut trace = Vec::new();
            while let Some(p) = ga.propose() {
                let y = (p[0] * p[1]) as f64;
                ga.report(&p, y);
                trace.push(p);
            }
            trace
        };
        assert_eq!(run(2), run(2));
    }

    #[test]
    fn generations_advance() {
        let space = Space::new(vec![Dim::range("x", 0, 7, 1)]);
        let cfg = GeneticConfig {
            population: 4,
            elites: 1,
            budget: 40,
            ..Default::default()
        };
        let mut ga = Genetic::new(space, cfg, 3);
        drive(&mut ga, |p| p[0] as f64);
        assert!(ga.generation() >= 1, "no generation turnover");
    }

    #[test]
    fn duplicate_genomes_served_from_cache() {
        // Tiny space: duplicates are inevitable; evals must still be bounded
        // by the budget and proposals must not repeat endlessly without
        // progress.
        let space = Space::new(vec![Dim::range("x", 0, 3, 1)]);
        let cfg = GeneticConfig {
            population: 8,
            elites: 2,
            budget: 30,
            ..Default::default()
        };
        let mut ga = Genetic::new(space, cfg, 11);
        let mut proposals = 0;
        while let Some(p) = ga.propose() {
            proposals += 1;
            ga.report(&p, p[0] as f64);
            assert!(proposals <= 30, "proposals exceeded budget");
        }
        assert_eq!(ga.best().unwrap().0, vec![0]);
    }

    #[test]
    #[should_panic(expected = "elites must be < population")]
    fn rejects_degenerate_config() {
        let space = Space::new(vec![Dim::range("x", 0, 3, 1)]);
        let cfg = GeneticConfig {
            population: 4,
            elites: 4,
            ..Default::default()
        };
        let _ = Genetic::new(space, cfg, 0);
    }
}
