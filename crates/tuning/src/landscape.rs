//! Synthetic objective landscapes for testing and comparing strategies.
//!
//! The strategy-comparison experiment (Table 3) evaluates every search on
//! landscapes chosen to model the objective surfaces adaptation actually
//! meets: a smooth unimodal bowl (concurrency vs EDP under a compute-bound
//! load), an asymmetric overhead-vs-imbalance valley (chunk-size tuning),
//! and a rugged multimodal surface (coupled knobs with interference).
//! A deterministic noise wrapper models measurement jitter.

use crate::space::Point;

/// A boxed objective function over value points.
pub type Objective = Box<dyn FnMut(&Point) -> f64 + Send>;

/// Smooth unimodal bowl centered at `center`: `Σ wᵢ (xᵢ - cᵢ)²`.
pub fn sphere(center: Vec<i64>, weights: Vec<f64>) -> Objective {
    assert_eq!(
        center.len(),
        weights.len(),
        "center/weights length mismatch"
    );
    Box::new(move |p: &Point| {
        p.iter()
            .zip(&center)
            .zip(&weights)
            .map(|((&x, &c), &w)| w * ((x - c) as f64).powi(2))
            .sum()
    })
}

/// Asymmetric valley `a/x + b·x` per dimension — the shape of
/// scheduling-overhead vs load-imbalance as a function of chunk size.
/// Minimum at `x* = sqrt(a/b)` per dimension. Coordinates are clamped to a
/// minimum of 1 to avoid the pole.
pub fn valley(a: f64, b: f64) -> Objective {
    assert!(a > 0.0 && b > 0.0, "valley parameters must be positive");
    Box::new(move |p: &Point| {
        p.iter()
            .map(|&x| {
                let x = (x.max(1)) as f64;
                a / x + b * x
            })
            .sum()
    })
}

/// The analytic minimizer of [`valley`] (continuous).
pub fn valley_optimum(a: f64, b: f64) -> f64 {
    (a / b).sqrt()
}

/// Rugged multimodal surface (Rastrigin-flavored): a global quadratic basin
/// centered at `center` overlaid with cosine ripples of amplitude `amp` and
/// period `period`.
pub fn rastrigin(center: Vec<i64>, amp: f64, period: f64) -> Objective {
    assert!(period > 0.0, "period must be positive");
    Box::new(move |p: &Point| {
        p.iter()
            .zip(&center)
            .map(|(&x, &c)| {
                let d = (x - c) as f64;
                d * d / 100.0 + amp * (1.0 - (2.0 * std::f64::consts::PI * d / period).cos())
            })
            .sum()
    })
}

/// Wraps an objective with deterministic pseudo-noise of the given relative
/// `amplitude`. The noise depends on the point *and* the call count, so
/// re-evaluating the same point yields different values — modelling
/// measurement jitter — while the whole sequence stays reproducible.
pub fn noisy(mut inner: Objective, amplitude: f64, seed: u64) -> Objective {
    assert!(amplitude >= 0.0, "noise amplitude must be non-negative");
    let mut calls: u64 = 0;
    Box::new(move |p: &Point| {
        let clean = inner(p);
        calls += 1;
        let mut h = seed ^ calls.wrapping_mul(0x9E3779B97F4A7C15);
        for &v in p {
            h ^= (v as u64).wrapping_mul(0xFF51AFD7ED558CCD);
            h = h.rotate_left(31);
        }
        // Map hash to [-1, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
        let n = 2.0 * u - 1.0;
        clean * (1.0 + amplitude * n)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_zero_at_center() {
        let mut f = sphere(vec![3, -2], vec![1.0, 2.0]);
        assert_eq!(f(&vec![3, -2]), 0.0);
        assert_eq!(f(&vec![4, -2]), 1.0);
        assert_eq!(f(&vec![3, -1]), 2.0);
    }

    #[test]
    fn valley_minimum_location() {
        let mut f = valley(400.0, 1.0);
        let xstar = valley_optimum(400.0, 1.0) as i64; // 20
        assert_eq!(xstar, 20);
        let y_star = f(&vec![20]);
        assert!(f(&vec![10]) > y_star);
        assert!(f(&vec![40]) > y_star);
        // Monotone away from the optimum on both sides.
        assert!(f(&vec![5]) > f(&vec![10]));
        assert!(f(&vec![80]) > f(&vec![40]));
    }

    #[test]
    fn valley_clamps_at_one() {
        let mut f = valley(10.0, 1.0);
        assert_eq!(f(&vec![0]), f(&vec![1]));
        assert_eq!(f(&vec![-5]), f(&vec![1]));
    }

    #[test]
    fn rastrigin_has_ripples() {
        let mut f = rastrigin(vec![0], 5.0, 10.0);
        // At the center: 0. At half a period away: near the ripple peak.
        assert!(f(&vec![0]).abs() < 1e-12);
        let at_peak = f(&vec![5]);
        assert!(at_peak > 5.0, "ripple peak {at_peak}");
        // Global structure still pulls down toward the center.
        assert!(f(&vec![100]) > f(&vec![20]));
    }

    #[test]
    fn noise_is_bounded_and_reproducible() {
        let make = || noisy(sphere(vec![0], vec![1.0]), 0.1, 99);
        let mut f1 = make();
        let mut f2 = make();
        let p = vec![10];
        let clean = 100.0;
        for _ in 0..50 {
            let a = f1(&p);
            let b = f2(&p);
            assert_eq!(a, b, "same seed and call index must agree");
            assert!(
                (a - clean).abs() <= 0.1 * clean + 1e-9,
                "noise out of bounds: {a}"
            );
        }
    }

    #[test]
    fn noise_varies_across_calls() {
        let mut f = noisy(sphere(vec![0], vec![1.0]), 0.1, 7);
        let p = vec![10];
        let a = f(&p);
        let b = f(&p);
        assert_ne!(a, b, "repeated evaluation should jitter");
    }

    #[test]
    fn zero_amplitude_noise_is_identity() {
        let mut f = noisy(sphere(vec![2], vec![1.0]), 0.0, 1);
        assert_eq!(f(&vec![5]), 9.0);
    }
}
