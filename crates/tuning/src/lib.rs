//! # lg-tuning — online parameter-space search for dynamic adaptation
//!
//! The adaptation layer of `looking-glass` treats runtime knobs (worker
//! thread cap, task chunk size, parcel coalescing window, …) as dimensions
//! of a discrete [`space::Space`], and searches that space *online*: each
//! candidate [`space::Point`] is "evaluated" by actually running the
//! application for a measurement epoch and reporting the observed objective
//! (time, energy, energy-delay product) back to the search.
//!
//! All strategies implement the [`search::Search`] trait — a
//! propose/report protocol deliberately shaped for online use: the caller
//! owns the clock and the measurements; the strategy owns only the
//! decision of where to look next.
//!
//! Provided strategies (all minimizing, all deterministic given a seed):
//!
//! | Strategy | Module | Character |
//! |---|---|---|
//! | Exhaustive sweep | [`exhaustive`] | ground truth; O(lattice) |
//! | Random search | [`random`] | baseline; budget-bound |
//! | Discrete hill climbing | [`hillclimb`] | the classic online tuner |
//! | Simulated annealing | [`anneal`] | escapes local minima |
//! | Nelder–Mead simplex | [`neldermead`] | few evaluations, continuous-ish |
//! | Genetic search | [`genetic`] | robust on rugged landscapes |
//!
//! [`runner`] drives a strategy against a black-box objective (used by the
//! offline tests and the search-comparison experiment, Table 3), and
//! [`landscape`] provides the synthetic objective functions that experiment
//! sweeps.

#![warn(missing_docs)]

pub mod anneal;
pub mod exhaustive;
pub mod genetic;
pub mod hillclimb;
pub mod landscape;
pub mod neldermead;
pub mod random;
pub mod runner;
pub mod search;
pub mod space;

pub use anneal::SimulatedAnnealing;
pub use exhaustive::Exhaustive;
pub use genetic::Genetic;
pub use hillclimb::HillClimb;
pub use neldermead::NelderMead;
pub use random::RandomSearch;
pub use runner::{minimize, TuneResult};
pub use search::Search;
pub use space::{Dim, Point, Space};
