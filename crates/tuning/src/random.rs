//! Budget-bound uniform random search.
//!
//! The honest baseline every smarter strategy must beat. Samples level
//! vectors uniformly (with replacement) for a fixed evaluation budget.
//! Deterministic given a seed.

use crate::search::{BestTracker, Search};
use crate::space::{Point, Space};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform random search with a fixed evaluation budget.
pub struct RandomSearch {
    space: Space,
    rng: StdRng,
    budget: usize,
    proposed: usize,
    tracker: BestTracker,
}

impl RandomSearch {
    /// Creates a random search drawing at most `budget` samples.
    ///
    /// # Panics
    /// Panics if `budget` is zero.
    pub fn new(space: Space, budget: usize, seed: u64) -> Self {
        assert!(budget > 0, "budget must be positive");
        Self {
            space,
            rng: StdRng::seed_from_u64(seed),
            budget,
            proposed: 0,
            tracker: BestTracker::default(),
        }
    }
}

impl Search for RandomSearch {
    fn name(&self) -> &'static str {
        "random"
    }

    fn propose(&mut self) -> Option<Point> {
        if self.proposed >= self.budget {
            return None;
        }
        self.proposed += 1;
        let levels: Vec<usize> = self
            .space
            .dims()
            .iter()
            .map(|d| self.rng.gen_range(0..d.cardinality()))
            .collect();
        Some(self.space.point_at(&levels))
    }

    fn report(&mut self, point: &Point, objective: f64) {
        self.tracker.observe(point, objective);
    }

    fn best(&self) -> Option<(Point, f64)> {
        self.tracker.best()
    }

    fn converged(&self) -> bool {
        self.proposed >= self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Dim;

    fn space() -> Space {
        Space::new(vec![Dim::range("a", 0, 9, 1), Dim::range("b", 0, 9, 1)])
    }

    #[test]
    fn respects_budget() {
        let mut s = RandomSearch::new(space(), 17, 1);
        let mut n = 0;
        while let Some(p) = s.propose() {
            s.report(&p, 0.0);
            n += 1;
        }
        assert_eq!(n, 17);
        assert!(s.converged());
    }

    #[test]
    fn proposals_always_on_lattice() {
        let sp = space();
        let mut s = RandomSearch::new(sp.clone(), 200, 7);
        while let Some(p) = s.propose() {
            assert!(sp.contains(&p), "off-lattice proposal {p:?}");
            s.report(&p, 0.0);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let collect = |seed| {
            let mut s = RandomSearch::new(space(), 50, seed);
            let mut out = Vec::new();
            while let Some(p) = s.propose() {
                s.report(&p, 0.0);
                out.push(p);
            }
            out
        };
        assert_eq!(collect(42), collect(42));
        assert_ne!(collect(42), collect(43));
    }

    #[test]
    fn large_budget_finds_unimodal_minimum() {
        let sp = space();
        let mut s = RandomSearch::new(sp, 1000, 3);
        while let Some(p) = s.propose() {
            let y = ((p[0] - 6).pow(2) + (p[1] - 3).pow(2)) as f64;
            s.report(&p, y);
        }
        let (best, y) = s.best().unwrap();
        assert_eq!(best, vec![6, 3]);
        assert_eq!(y, 0.0);
    }
}
