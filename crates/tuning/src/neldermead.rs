//! Nelder–Mead simplex search projected onto the lattice.
//!
//! The simplex lives in continuous *level space* (one coordinate per
//! dimension, measured in level indices); every evaluation projects the
//! continuous vertex to the nearest lattice point and measures there.
//! Because the propose/report protocol is pull-based, the classic
//! reflect/expand/contract/shrink loop is implemented as an explicit state
//! machine.
//!
//! Nelder–Mead typically converges in very few evaluations on smooth
//! objectives, which makes it attractive online; its weakness on rugged or
//! plateaued (quantized) landscapes is visible in the Table 3 comparison.

use crate::search::{BestTracker, Search};
use crate::space::{Point, Space};

const ALPHA: f64 = 1.0; // reflection
const GAMMA: f64 = 2.0; // expansion
const RHO: f64 = 0.5; // contraction
const SIGMA: f64 = 0.5; // shrink

#[derive(Debug)]
enum State {
    /// Evaluating initial vertex `k`.
    Init(usize),
    /// Waiting for the reflected point's value.
    AwaitReflect,
    /// Waiting for the expanded point's value.
    AwaitExpand,
    /// Waiting for the contracted point's value.
    AwaitContract {
        outside: bool,
    },
    /// Re-evaluating shrunk vertex `k` (1-indexed; vertex 0 is the best).
    Shrink(usize),
    Done,
}

/// Nelder–Mead simplex search over a discrete space.
pub struct NelderMead {
    space: Space,
    state: State,
    /// Simplex vertices in level space with their objective values.
    vertices: Vec<(Vec<f64>, f64)>,
    /// Vertices awaiting their first value during Init/Shrink.
    staged: Vec<Vec<f64>>,
    reflected: (Vec<f64>, f64),
    expanded: Vec<f64>,
    contracted: Vec<f64>,
    budget: usize,
    evals: usize,
    tol: f64,
    tracker: BestTracker,
}

impl NelderMead {
    /// Creates a search starting from the space center with an initial
    /// simplex step of ~25% of each dimension's extent.
    ///
    /// # Panics
    /// Panics if `budget` is zero.
    pub fn new(space: Space, budget: usize) -> Self {
        assert!(budget > 0, "budget must be positive");
        let n = space.ndims();
        let start: Vec<f64> = space
            .dims()
            .iter()
            .map(|d| (d.cardinality() / 2) as f64)
            .collect();
        let mut staged = vec![start.clone()];
        for i in 0..n {
            let mut v = start.clone();
            let card = space.dims()[i].cardinality() as f64;
            let step = (card * 0.25).max(1.0);
            // Step toward whichever side has room.
            if v[i] + step <= card - 1.0 {
                v[i] += step;
            } else {
                v[i] = (v[i] - step).max(0.0);
            }
            staged.push(v);
        }
        Self {
            space,
            state: State::Init(0),
            vertices: Vec::with_capacity(n + 1),
            staged,
            reflected: (Vec::new(), 0.0),
            expanded: Vec::new(),
            contracted: Vec::new(),
            budget,
            evals: 0,
            tol: 0.5,
            tracker: BestTracker::default(),
        }
    }

    fn project(&self, x: &[f64]) -> Point {
        let levels: Vec<i64> = x.iter().map(|&v| v.round() as i64).collect();
        // Clamp level indices into range, then convert to values.
        let clamped: Vec<usize> = levels
            .iter()
            .zip(self.space.dims())
            .map(|(&l, d)| l.clamp(0, d.cardinality() as i64 - 1) as usize)
            .collect();
        self.space.point_at(&clamped)
    }

    fn simplex_diameter(&self) -> f64 {
        let mut max = 0.0f64;
        for i in 0..self.vertices.len() {
            for j in (i + 1)..self.vertices.len() {
                let d = self.vertices[i]
                    .0
                    .iter()
                    .zip(&self.vertices[j].0)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max);
                max = max.max(d);
            }
        }
        max
    }

    /// Sorts vertices best→worst and either terminates or starts the next
    /// reflection. Returns the continuous point to evaluate next, if any.
    fn iterate(&mut self) -> Option<Vec<f64>> {
        self.vertices
            .sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        // Terminate on budget, geometric collapse, or value-spread collapse
        // (the latter covers constant/plateaued objectives, where only the
        // worst vertex ever moves and the simplex never shrinks).
        let ybest = self.vertices.first().map(|v| v.1).unwrap_or(0.0);
        let yworst = self.vertices.last().map(|v| v.1).unwrap_or(0.0);
        let value_collapsed = (yworst - ybest).abs() <= 1e-12 * (1.0 + ybest.abs());
        if self.evals >= self.budget || self.simplex_diameter() < self.tol || value_collapsed {
            self.state = State::Done;
            return None;
        }
        let n = self.space.ndims();
        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for (x, _) in &self.vertices[..n] {
            for (c, v) in centroid.iter_mut().zip(x) {
                *c += v / n as f64;
            }
        }
        let worst = &self.vertices[n].0;
        let xr: Vec<f64> = centroid
            .iter()
            .zip(worst)
            .map(|(c, w)| c + ALPHA * (c - w))
            .collect();
        self.reflected = (xr.clone(), f64::NAN);
        // Stash the centroid in `expanded` temporarily (recomputed on use).
        self.expanded = centroid;
        self.state = State::AwaitReflect;
        Some(xr)
    }
}

impl Search for NelderMead {
    fn name(&self) -> &'static str {
        "neldermead"
    }

    fn propose(&mut self) -> Option<Point> {
        if self.evals >= self.budget {
            self.state = State::Done;
        }
        match &self.state {
            State::Done => None,
            State::Init(k) => Some(self.project(&self.staged[*k].clone())),
            State::AwaitReflect => Some(self.project(&self.reflected.0.clone())),
            State::AwaitExpand => Some(self.project(&self.expanded.clone())),
            State::AwaitContract { .. } => Some(self.project(&self.contracted.clone())),
            State::Shrink(k) => Some(self.project(&self.staged[*k].clone())),
        }
    }

    fn report(&mut self, point: &Point, objective: f64) {
        self.tracker.observe(point, objective);
        self.evals += 1;
        let n = self.space.ndims();
        match std::mem::replace(&mut self.state, State::Done) {
            State::Done => {}
            State::Init(k) => {
                self.vertices.push((self.staged[k].clone(), objective));
                if k + 1 < self.staged.len() {
                    self.state = State::Init(k + 1);
                } else if let Some(_next) = self.iterate() {
                    // state set by iterate()
                } // else Done
            }
            State::AwaitReflect => {
                let yr = objective;
                self.reflected.1 = yr;
                let ybest = self.vertices[0].1;
                let ysecond_worst = self.vertices[n - 1].1;
                let yworst = self.vertices[n].1;
                if yr < ybest {
                    // Try expansion: xe = c + GAMMA * (xr - c).
                    let centroid = self.expanded.clone();
                    let xe: Vec<f64> = centroid
                        .iter()
                        .zip(&self.reflected.0)
                        .map(|(c, r)| c + GAMMA * (r - c))
                        .collect();
                    self.expanded = xe;
                    self.state = State::AwaitExpand;
                } else if yr < ysecond_worst {
                    self.vertices[n] = (self.reflected.0.clone(), yr);
                    self.iterate();
                } else {
                    // Contract.
                    let centroid = self.expanded.clone();
                    let outside = yr < yworst;
                    let toward = if outside {
                        &self.reflected.0
                    } else {
                        &self.vertices[n].0
                    };
                    let xc: Vec<f64> = centroid
                        .iter()
                        .zip(toward)
                        .map(|(c, t)| c + RHO * (t - c))
                        .collect();
                    self.contracted = xc;
                    self.state = State::AwaitContract { outside };
                }
            }
            State::AwaitExpand => {
                let ye = objective;
                if ye < self.reflected.1 {
                    self.vertices[n] = (self.expanded.clone(), ye);
                } else {
                    let (xr, yr) = self.reflected.clone();
                    self.vertices[n] = (xr, yr);
                }
                self.iterate();
            }
            State::AwaitContract { outside } => {
                let yc = objective;
                let limit = if outside {
                    self.reflected.1
                } else {
                    self.vertices[n].1
                };
                if yc <= limit {
                    self.vertices[n] = (self.contracted.clone(), yc);
                    self.iterate();
                } else {
                    // Shrink every vertex toward the best.
                    let best = self.vertices[0].0.clone();
                    self.staged = vec![Vec::new(); n + 1];
                    for k in 1..=n {
                        let shrunk: Vec<f64> = best
                            .iter()
                            .zip(&self.vertices[k].0)
                            .map(|(b, v)| b + SIGMA * (v - b))
                            .collect();
                        self.staged[k] = shrunk;
                    }
                    self.state = State::Shrink(1);
                }
            }
            State::Shrink(k) => {
                self.vertices[k] = (self.staged[k].clone(), objective);
                if k < n {
                    self.state = State::Shrink(k + 1);
                } else {
                    self.iterate();
                }
            }
        }
    }

    fn best(&self) -> Option<(Point, f64)> {
        self.tracker.best()
    }

    fn converged(&self) -> bool {
        matches!(self.state, State::Done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Dim;

    fn drive(s: &mut dyn Search, f: impl Fn(&Point) -> f64) -> usize {
        let mut evals = 0;
        while let Some(p) = s.propose() {
            s.report(&p, f(&p));
            evals += 1;
            assert!(evals < 100_000, "runaway search");
        }
        evals
    }

    #[test]
    fn minimizes_1d_quadratic() {
        let space = Space::new(vec![Dim::range("x", 0, 200, 1)]);
        let mut nm = NelderMead::new(space, 200);
        drive(&mut nm, |p| ((p[0] - 140) * (p[0] - 140)) as f64);
        let (best, _) = nm.best().unwrap();
        assert!((best[0] - 140).abs() <= 1, "best {best:?}");
    }

    #[test]
    fn minimizes_2d_quadratic_in_few_evals() {
        let space = Space::new(vec![Dim::range("x", 0, 100, 1), Dim::range("y", 0, 100, 1)]);
        let mut nm = NelderMead::new(space, 300);
        let evals = drive(&mut nm, |p| {
            ((p[0] - 20).pow(2) + 3 * (p[1] - 70).pow(2)) as f64
        });
        let (best, _) = nm.best().unwrap();
        assert!(
            (best[0] - 20).abs() <= 2 && (best[1] - 70).abs() <= 2,
            "best {best:?}"
        );
        assert!(evals <= 300);
    }

    #[test]
    fn respects_budget() {
        let space = Space::new(vec![Dim::range("x", 0, 1000, 1)]);
        let mut nm = NelderMead::new(space, 10);
        let evals = drive(&mut nm, |p| p[0] as f64);
        assert!(evals <= 11, "evals {evals}");
        assert!(nm.converged());
    }

    #[test]
    fn proposals_on_lattice() {
        let space = Space::new(vec![Dim::pow2("x", 0, 10), Dim::range("y", 5, 50, 5)]);
        let mut nm = NelderMead::new(space.clone(), 100);
        while let Some(p) = nm.propose() {
            assert!(space.contains(&p), "off-lattice {p:?}");
            nm.report(&p, (p[0] + p[1]) as f64);
        }
    }

    #[test]
    fn converges_on_constant_objective() {
        // Degenerate landscape: must terminate via simplex collapse/budget.
        let space = Space::new(vec![Dim::range("x", 0, 50, 1), Dim::range("y", 0, 50, 1)]);
        let mut nm = NelderMead::new(space, 500);
        let evals = drive(&mut nm, |_| 7.0);
        assert!(nm.converged());
        assert!(evals < 500, "should collapse before budget, took {evals}");
    }

    #[test]
    fn banana_valley_progress() {
        // Rosenbrock-flavored discrete valley; NM should at least reach the
        // valley floor region.
        let space = Space::new(vec![Dim::range("x", 0, 40, 1), Dim::range("y", 0, 40, 1)]);
        let mut nm = NelderMead::new(space, 400);
        drive(&mut nm, |p| {
            let x = p[0] as f64 / 10.0 - 1.0;
            let y = p[1] as f64 / 10.0 - 1.0;
            100.0 * (y - x * x).powi(2) + (1.0 - x).powi(2)
        });
        let (_, ybest) = nm.best().unwrap();
        assert!(ybest < 5.0, "best objective {ybest}");
    }
}
