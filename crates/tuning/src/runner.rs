//! Offline driver for search strategies against black-box objectives.
//!
//! Online, the propose/report loop is driven by the tuning session in
//! `lg-core`, with real measurement epochs between steps. Offline — in
//! tests and in the strategy-comparison experiment — this runner plays the
//! application's role, evaluating the objective function directly.

use crate::search::Search;
use crate::space::Point;

/// Outcome of an offline minimization run.
#[derive(Clone, Debug)]
pub struct TuneResult {
    /// Best configuration found.
    pub best_point: Point,
    /// Objective value at the best configuration.
    pub best_value: f64,
    /// Number of evaluations performed.
    pub evals: usize,
    /// Full evaluation trace in order: `(point, value)`.
    pub trace: Vec<(Point, f64)>,
    /// Evaluation index (1-based) at which the final best value was first
    /// reached — the "time to solution" metric in Table 3.
    pub evals_to_best: usize,
}

/// Drives `search` against `objective` until the strategy converges or
/// `max_evals` evaluations have been spent. Returns `None` if the strategy
/// never evaluated anything.
pub fn minimize(
    search: &mut dyn Search,
    mut objective: impl FnMut(&Point) -> f64,
    max_evals: usize,
) -> Option<TuneResult> {
    let mut trace = Vec::new();
    while trace.len() < max_evals {
        let Some(p) = search.propose() else { break };
        let y = objective(&p);
        search.report(&p, y);
        trace.push((p, y));
    }
    let (best_point, best_value) = search.best()?;
    let evals_to_best = trace
        .iter()
        .position(|(_, y)| *y <= best_value)
        .map(|i| i + 1)
        .unwrap_or(trace.len());
    Some(TuneResult {
        best_point,
        best_value,
        evals: trace.len(),
        trace,
        evals_to_best,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive::Exhaustive;
    use crate::hillclimb::HillClimb;
    use crate::landscape;
    use crate::space::{Dim, Space};

    fn space_1d() -> Space {
        Space::new(vec![Dim::range("x", 0, 63, 1)])
    }

    #[test]
    fn exhaustive_ground_truth() {
        let mut f = landscape::sphere(vec![41], vec![1.0]);
        let mut ex = Exhaustive::new(space_1d());
        let r = minimize(&mut ex, |p| f(p), usize::MAX).unwrap();
        assert_eq!(r.best_point, vec![41]);
        assert_eq!(r.best_value, 0.0);
        assert_eq!(r.evals, 64);
    }

    #[test]
    fn max_evals_caps_work() {
        let mut ex = Exhaustive::new(space_1d());
        let r = minimize(&mut ex, |p| p[0] as f64, 10).unwrap();
        assert_eq!(r.evals, 10);
    }

    #[test]
    fn evals_to_best_is_first_attainment() {
        let mut hc = HillClimb::from_start(space_1d(), &[0]);
        let r = minimize(&mut hc, |p| ((p[0] - 5) * (p[0] - 5)) as f64, 1000).unwrap();
        assert_eq!(r.best_point, vec![5]);
        assert!(r.evals_to_best <= r.evals);
        // The trace entry at evals_to_best-1 must hold the best value.
        assert_eq!(r.trace[r.evals_to_best - 1].1, r.best_value);
    }

    #[test]
    fn empty_run_returns_none() {
        // A strategy that immediately reports convergence.
        struct Dead;
        impl Search for Dead {
            fn name(&self) -> &'static str {
                "dead"
            }
            fn propose(&mut self) -> Option<Point> {
                None
            }
            fn report(&mut self, _: &Point, _: f64) {}
            fn best(&self) -> Option<(Point, f64)> {
                None
            }
            fn converged(&self) -> bool {
                true
            }
        }
        assert!(minimize(&mut Dead, |_| 0.0, 100).is_none());
    }

    #[test]
    fn hillclimb_beats_random_on_smooth_bowl() {
        use crate::random::RandomSearch;
        let mut f1 = landscape::sphere(vec![50], vec![1.0]);
        let mut f2 = landscape::sphere(vec![50], vec![1.0]);
        let space = Space::new(vec![Dim::range("x", 0, 1023, 1)]);
        let mut hc = HillClimb::from_start(space.clone(), &[0]);
        let hr = minimize(&mut hc, |p| f1(p), 4000).unwrap();
        let mut rs = RandomSearch::new(space, hr.evals, 3);
        let rr = minimize(&mut rs, |p| f2(p), hr.evals).unwrap();
        assert!(
            hr.best_value <= rr.best_value,
            "hillclimb {} vs random {} at equal budget {}",
            hr.best_value,
            rr.best_value,
            hr.evals
        );
    }
}
