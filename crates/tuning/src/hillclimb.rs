//! Discrete hill climbing (pattern search) — the classic online tuner.
//!
//! From the current configuration, measure every lattice neighbor (one
//! dimension moved by one level); move to the best neighbor if it improves
//! on the current point by at least `min_improvement` (relative); otherwise
//! declare a local minimum. With optional random restarts the search
//! escapes shallow local minima at the cost of extra epochs.
//!
//! Measured values are cached by lattice point, so revisiting a
//! configuration after a move costs no additional measurement epoch —
//! important online, where every evaluation perturbs the application.

use crate::search::{BestTracker, Search};
use crate::space::{Point, Space};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};

/// Discrete hill climbing with measurement caching and optional restarts.
pub struct HillClimb {
    space: Space,
    current: Vec<usize>,
    cache: HashMap<Vec<usize>, f64>,
    queue: VecDeque<Vec<usize>>,
    done: bool,
    min_improvement: f64,
    restarts_left: usize,
    rng: StdRng,
    moves: usize,
    tracker: BestTracker,
}

impl HillClimb {
    /// Creates a climber starting from the center of `space`.
    pub fn new(space: Space) -> Self {
        let start = space.center();
        Self::from_start(space, &start)
    }

    /// Creates a climber starting from `start` (snapped to the lattice).
    pub fn from_start(space: Space, start: &[i64]) -> Self {
        let snapped = space.clamp(start);
        let levels = space
            .levels_of(&snapped)
            .expect("clamped point must be on lattice");
        Self {
            space,
            current: levels,
            cache: HashMap::new(),
            queue: VecDeque::new(),
            done: false,
            min_improvement: 0.0,
            restarts_left: 0,
            rng: StdRng::seed_from_u64(0),
            moves: 0,
            tracker: BestTracker::default(),
        }
    }

    /// Requires a relative improvement of at least `frac` (e.g. `0.01` for
    /// 1%) before moving — hysteresis against measurement noise.
    pub fn with_min_improvement(mut self, frac: f64) -> Self {
        assert!(frac >= 0.0, "improvement threshold must be non-negative");
        self.min_improvement = frac;
        self
    }

    /// Enables `n` random restarts after local convergence.
    pub fn with_restarts(mut self, n: usize, seed: u64) -> Self {
        self.restarts_left = n;
        self.rng = StdRng::seed_from_u64(seed);
        self
    }

    /// Number of accepted moves so far.
    pub fn moves(&self) -> usize {
        self.moves
    }

    /// The configuration the climber currently sits on.
    pub fn current_point(&self) -> Point {
        self.space.point_at(&self.current)
    }

    fn improves(&self, candidate: f64, incumbent: f64) -> bool {
        if incumbent.abs() < f64::EPSILON {
            return candidate < incumbent;
        }
        (incumbent - candidate) / incumbent.abs() > self.min_improvement
    }

    fn random_restart(&mut self) {
        let levels: Vec<usize> = self
            .space
            .dims()
            .iter()
            .map(|d| self.rng.gen_range(0..d.cardinality()))
            .collect();
        self.current = levels;
    }
}

impl Search for HillClimb {
    fn name(&self) -> &'static str {
        "hillclimb"
    }

    fn propose(&mut self) -> Option<Point> {
        loop {
            if self.done {
                return None;
            }
            if let Some(levels) = self.queue.pop_front() {
                return Some(self.space.point_at(&levels));
            }
            // Queue empty: decide the next round.
            let Some(&cur_y) = self.cache.get(&self.current) else {
                self.queue.push_back(self.current.clone());
                continue;
            };
            let neighbors = self.space.neighbor_levels(&self.current);
            let unmeasured: Vec<Vec<usize>> = neighbors
                .iter()
                .filter(|n| !self.cache.contains_key(*n))
                .cloned()
                .collect();
            if !unmeasured.is_empty() {
                self.queue.extend(unmeasured);
                continue;
            }
            // All neighbors measured: move or converge.
            let best_neighbor = neighbors
                .into_iter()
                .map(|n| {
                    let y = self.cache[&n];
                    (n, y)
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            match best_neighbor {
                Some((n, y)) if self.improves(y, cur_y) => {
                    self.current = n;
                    self.moves += 1;
                }
                _ => {
                    if self.restarts_left > 0 {
                        self.restarts_left -= 1;
                        self.random_restart();
                    } else {
                        self.done = true;
                    }
                }
            }
        }
    }

    fn report(&mut self, point: &Point, objective: f64) {
        self.tracker.observe(point, objective);
        if let Some(levels) = self.space.levels_of(point) {
            self.cache.insert(levels, objective);
        }
    }

    fn best(&self) -> Option<(Point, f64)> {
        self.tracker.best()
    }

    fn converged(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Dim;

    fn drive(search: &mut dyn Search, f: impl Fn(&Point) -> f64, max_evals: usize) -> usize {
        let mut evals = 0;
        while let Some(p) = search.propose() {
            search.report(&p, f(&p));
            evals += 1;
            if evals >= max_evals {
                break;
            }
        }
        evals
    }

    #[test]
    fn climbs_to_unimodal_minimum_1d() {
        let space = Space::new(vec![Dim::range("x", 0, 100, 1)]);
        let mut hc = HillClimb::from_start(space, &[0]);
        drive(&mut hc, |p| ((p[0] - 73) * (p[0] - 73)) as f64, 10_000);
        assert!(hc.converged());
        assert_eq!(hc.best().unwrap().0, vec![73]);
        assert_eq!(hc.current_point(), vec![73]);
    }

    #[test]
    fn climbs_2d_quadratic() {
        let space = Space::new(vec![Dim::range("x", 0, 30, 1), Dim::range("y", 0, 30, 1)]);
        let mut hc = HillClimb::new(space);
        drive(
            &mut hc,
            |p| ((p[0] - 4).pow(2) + (p[1] - 27).pow(2)) as f64,
            10_000,
        );
        assert_eq!(hc.best().unwrap().0, vec![4, 27]);
    }

    #[test]
    fn uses_far_fewer_evals_than_exhaustive() {
        let space = Space::new(vec![Dim::range("x", 0, 99, 1), Dim::range("y", 0, 99, 1)]);
        let card = space.cardinality();
        let mut hc = HillClimb::new(space);
        let evals = drive(
            &mut hc,
            |p| ((p[0] - 80).pow(2) + (p[1] - 15).pow(2)) as f64,
            100_000,
        );
        assert_eq!(hc.best().unwrap().0, vec![80, 15]);
        assert!(evals < card / 10, "evals {evals} vs lattice {card}");
    }

    #[test]
    fn gets_stuck_in_local_minimum_without_restarts() {
        // Double well: minima at 10 (y=1) and 90 (y=0), barrier at 50.
        let f = |p: &Point| {
            let x = p[0] as f64;
            let a = (x - 10.0).abs() + 1.0;
            let b = (x - 90.0).abs();
            a.min(b)
        };
        let space = Space::new(vec![Dim::range("x", 0, 100, 1)]);
        let mut hc = HillClimb::from_start(space, &[0]);
        drive(&mut hc, f, 100_000);
        // From x=0 it slides into the x=10 well and stops.
        assert_eq!(hc.best().unwrap().0, vec![10]);
    }

    #[test]
    fn restarts_escape_local_minimum() {
        let f = |p: &Point| {
            let x = p[0] as f64;
            let a = (x - 10.0).abs() + 1.0;
            let b = (x - 90.0).abs();
            a.min(b)
        };
        let space = Space::new(vec![Dim::range("x", 0, 100, 1)]);
        let mut hc = HillClimb::from_start(space, &[0]).with_restarts(20, 7);
        drive(&mut hc, f, 100_000);
        assert_eq!(hc.best().unwrap().0, vec![90]);
    }

    #[test]
    fn hysteresis_blocks_tiny_improvements() {
        // Objective falls by 0.1% per step: below the 5% threshold.
        let space = Space::new(vec![Dim::range("x", 0, 10, 1)]);
        let mut hc = HillClimb::from_start(space, &[0]).with_min_improvement(0.05);
        drive(&mut hc, |p| 1000.0 - p[0] as f64, 10_000);
        assert_eq!(hc.moves(), 0, "should not move for sub-threshold gains");
        assert!(hc.converged());
    }

    #[test]
    fn cached_points_not_reproposed() {
        let space = Space::new(vec![Dim::range("x", 0, 20, 1)]);
        let mut hc = HillClimb::from_start(space, &[10]);
        let mut seen = std::collections::HashSet::new();
        while let Some(p) = hc.propose() {
            assert!(seen.insert(p.clone()), "re-proposed {p:?}");
            hc.report(&p, ((p[0] - 3) * (p[0] - 3)) as f64);
        }
        assert_eq!(hc.best().unwrap().0, vec![3]);
    }

    #[test]
    fn single_point_space_converges_immediately() {
        let space = Space::new(vec![Dim::values("x", vec![5])]);
        let mut hc = HillClimb::new(space);
        let p = hc.propose().unwrap();
        hc.report(&p, 1.0);
        assert!(hc.propose().is_none());
        assert!(hc.converged());
    }

    #[test]
    fn off_lattice_reports_are_tolerated() {
        let space = Space::new(vec![Dim::range("x", 0, 10, 2)]);
        let mut hc = HillClimb::new(space);
        hc.report(&vec![3], 0.5); // not on the lattice: tracked but not cached
        assert_eq!(hc.best().unwrap().0, vec![3]);
        let p = hc.propose().unwrap();
        hc.report(&p, 1.0);
        // Search continues normally.
        assert!(!hc.converged() || hc.best().is_some());
    }
}
