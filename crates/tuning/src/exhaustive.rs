//! Exhaustive lattice sweep.
//!
//! Visits every point of the space exactly once, in lexicographic level
//! order. Infeasible online for all but tiny spaces, but indispensable as
//! ground truth: the experiment harness uses it to locate the true optimum
//! that the online strategies are judged against.

use crate::search::{BestTracker, Search};
use crate::space::{Point, Space};

/// Exhaustive enumeration of a [`Space`].
pub struct Exhaustive {
    space: Space,
    // `SpaceIter` borrows the space, so the sweep decodes points from a
    // mixed-radix index instead of holding a self-referential iterator.
    next_index: usize,
    tracker: BestTracker,
}

impl Exhaustive {
    /// Creates a sweep over `space`.
    pub fn new(space: Space) -> Self {
        Self {
            space,
            next_index: 0,
            tracker: BestTracker::default(),
        }
    }

    fn point_at_index(&self, mut idx: usize) -> Option<Point> {
        if idx >= self.space.cardinality() {
            return None;
        }
        // Mixed-radix decode, last dimension fastest (lexicographic order).
        let dims = self.space.dims();
        let mut levels = vec![0usize; dims.len()];
        for i in (0..dims.len()).rev() {
            let card = dims[i].cardinality();
            levels[i] = idx % card;
            idx /= card;
        }
        Some(self.space.point_at(&levels))
    }

    /// Number of points visited so far.
    pub fn visited(&self) -> usize {
        self.next_index
    }
}

impl Search for Exhaustive {
    fn name(&self) -> &'static str {
        "exhaustive"
    }

    fn propose(&mut self) -> Option<Point> {
        let p = self.point_at_index(self.next_index)?;
        self.next_index += 1;
        Some(p)
    }

    fn report(&mut self, point: &Point, objective: f64) {
        self.tracker.observe(point, objective);
    }

    fn best(&self) -> Option<(Point, f64)> {
        self.tracker.best()
    }

    fn converged(&self) -> bool {
        self.next_index >= self.space.cardinality()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::Dim;

    fn space_2d() -> Space {
        Space::new(vec![
            Dim::range("a", 0, 3, 1),
            Dim::values("b", vec![10, 20, 30]),
        ])
    }

    #[test]
    fn visits_every_point_exactly_once() {
        let space = space_2d();
        let mut search = Exhaustive::new(space.clone());
        let mut seen = Vec::new();
        while let Some(p) = search.propose() {
            search.report(&p, 0.0);
            seen.push(p);
        }
        assert_eq!(seen.len(), space.cardinality());
        let mut uniq = seen.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), seen.len(), "duplicate proposals");
        // Same set as iter_points.
        let mut expect: Vec<Point> = space.iter_points().collect();
        expect.sort();
        assert_eq!(uniq, expect);
    }

    #[test]
    fn finds_global_minimum() {
        let space = space_2d();
        let mut search = Exhaustive::new(space);
        while let Some(p) = search.propose() {
            // Minimum at a=2, b=20.
            let y = ((p[0] - 2) * (p[0] - 2)) as f64 + ((p[1] - 20) * (p[1] - 20)) as f64;
            search.report(&p, y);
        }
        assert!(search.converged());
        let (best, y) = search.best().unwrap();
        assert_eq!(best, vec![2, 20]);
        assert_eq!(y, 0.0);
    }

    #[test]
    fn converged_before_any_report_when_empty_budget_irrelevant() {
        let space = Space::new(vec![Dim::values("only", vec![7])]);
        let mut search = Exhaustive::new(space);
        assert!(!search.converged());
        let p = search.propose().unwrap();
        assert_eq!(p, vec![7]);
        assert!(search.converged());
        assert!(search.propose().is_none());
    }

    #[test]
    fn order_is_lexicographic_last_dim_fastest() {
        let space = space_2d();
        let mut search = Exhaustive::new(space);
        assert_eq!(search.propose().unwrap(), vec![0, 10]);
        assert_eq!(search.propose().unwrap(), vec![0, 20]);
        assert_eq!(search.propose().unwrap(), vec![0, 30]);
        assert_eq!(search.propose().unwrap(), vec![1, 10]);
    }
}
