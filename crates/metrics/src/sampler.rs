//! Asynchronous periodic sampling of counter sources.
//!
//! Synchronous (inline) instrumentation captures task lifecycles; the
//! *asynchronous* half of the observation layer is a background thread that
//! periodically polls registered [`Sampled`] sources — OS counters, power
//! meters, runtime gauges — and delivers `(t_ns, name, value)` observations
//! to a sink callback (in the full system, the `lg-core` event dispatcher).
//!
//! The sampling period is itself an adaptation knob (see `Fig 5` in
//! DESIGN.md): short periods give policies fresher data at the cost of
//! perturbing the application.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A source of named sampled values.
///
/// Implementations must be cheap and non-blocking: the sampler thread polls
/// every source each period.
pub trait Sampled: Send + Sync {
    /// Stable name of this source (used as the metric name prefix).
    fn name(&self) -> &str;
    /// Reads the current values as `(suffix, value)` pairs, appending them
    /// to `out`. Using an out-param avoids per-poll allocation for
    /// single-value sources.
    fn sample(&self, out: &mut Vec<(String, f64)>);
}

/// A trivially constructed source wrapping a closure.
pub struct FnSource<F: Fn() -> f64 + Send + Sync> {
    name: String,
    f: F,
}

impl<F: Fn() -> f64 + Send + Sync> FnSource<F> {
    /// Wraps `f` as a single-value source named `name`.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Self {
            name: name.into(),
            f,
        }
    }
}

impl<F: Fn() -> f64 + Send + Sync> Sampled for FnSource<F> {
    fn name(&self) -> &str {
        &self.name
    }
    fn sample(&self, out: &mut Vec<(String, f64)>) {
        out.push((String::new(), (self.f)()));
    }
}

/// Configuration for a [`Sampler`].
#[derive(Clone, Copy, Debug)]
pub struct SamplerConfig {
    /// Initial sampling period.
    pub period: Duration,
    /// If true, the first poll happens immediately rather than after one
    /// period.
    pub sample_immediately: bool,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        Self {
            period: Duration::from_millis(10),
            sample_immediately: false,
        }
    }
}

/// Background sampling thread.
///
/// Samples every registered source once per period and invokes the sink
/// with `(t_ns, full_name, value)`. `t_ns` is nanoseconds since sampler
/// start. The period can be changed at runtime (it is an adaptation knob);
/// the change takes effect at the next wakeup.
///
/// Dropping the sampler stops the thread and joins it.
pub struct Sampler {
    shared: Arc<Shared>,
    thread: Option<std::thread::JoinHandle<()>>,
}

struct Shared {
    stop: AtomicBool,
    period_ns: AtomicU64,
    polls: AtomicU64,
    wake: Condvar,
    wake_lock: Mutex<()>,
}

impl Sampler {
    /// Starts a sampler over `sources`, delivering to `sink`.
    pub fn start(
        config: SamplerConfig,
        sources: Vec<Arc<dyn Sampled>>,
        sink: impl Fn(u64, &str, f64) + Send + 'static,
    ) -> Self {
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            period_ns: AtomicU64::new(config.period.as_nanos() as u64),
            polls: AtomicU64::new(0),
            wake: Condvar::new(),
            wake_lock: Mutex::new(()),
        });
        let thread_shared = shared.clone();
        let thread = std::thread::Builder::new()
            .name("lg-sampler".into())
            .spawn(move || {
                let origin = Instant::now();
                let mut buf: Vec<(String, f64)> = Vec::new();
                let mut name_buf = String::new();
                if !config.sample_immediately {
                    thread_shared.wait_one_period();
                }
                while !thread_shared.stop.load(Ordering::Acquire) {
                    let t_ns = origin.elapsed().as_nanos() as u64;
                    for src in &sources {
                        buf.clear();
                        src.sample(&mut buf);
                        for (suffix, value) in buf.drain(..) {
                            name_buf.clear();
                            name_buf.push_str(src.name());
                            if !suffix.is_empty() {
                                name_buf.push('.');
                                name_buf.push_str(&suffix);
                            }
                            sink(t_ns, &name_buf, value);
                        }
                    }
                    thread_shared.polls.fetch_add(1, Ordering::Relaxed);
                    thread_shared.wait_one_period();
                }
            })
            .expect("failed to spawn sampler thread");
        Self {
            shared,
            thread: Some(thread),
        }
    }

    /// Changes the sampling period; takes effect at the next wakeup.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn set_period(&self, period: Duration) {
        assert!(!period.is_zero(), "sampling period must be positive");
        self.shared
            .period_ns
            .store(period.as_nanos() as u64, Ordering::Release);
        // Nudge the thread so a long old period doesn't delay the change.
        let _guard = self.shared.wake_lock.lock();
        self.shared.wake.notify_all();
    }

    /// Current sampling period.
    pub fn period(&self) -> Duration {
        Duration::from_nanos(self.shared.period_ns.load(Ordering::Acquire))
    }

    /// Number of completed poll sweeps.
    pub fn polls(&self) -> u64 {
        self.shared.polls.load(Ordering::Relaxed)
    }

    /// Stops the sampler thread and waits for it to exit.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        {
            let _guard = self.shared.wake_lock.lock();
            self.shared.wake.notify_all();
        }
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Shared {
    fn wait_one_period(&self) {
        let period = Duration::from_nanos(self.period_ns.load(Ordering::Acquire));
        let mut guard = self.wake_lock.lock();
        if self.stop.load(Ordering::Acquire) {
            return;
        }
        // A notification (period change or stop) ends the wait early; the
        // caller re-checks stop and re-reads the period.
        self.wake.wait_for(&mut guard, period);
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn polls_all_sources_each_sweep() {
        let calls = Arc::new(AtomicUsize::new(0));
        let c1 = calls.clone();
        let c2 = calls.clone();
        let sources: Vec<Arc<dyn Sampled>> = vec![
            Arc::new(FnSource::new("a", move || {
                c1.fetch_add(1, Ordering::Relaxed);
                1.0
            })),
            Arc::new(FnSource::new("b", move || {
                c2.fetch_add(1, Ordering::Relaxed);
                2.0
            })),
        ];
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = seen.clone();
        let sampler = Sampler::start(
            SamplerConfig {
                period: Duration::from_millis(1),
                sample_immediately: true,
            },
            sources,
            move |_t, name, v| sink_seen.lock().push((name.to_owned(), v)),
        );
        let deadline = Instant::now() + Duration::from_secs(2);
        while sampler.polls() < 3 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        sampler.stop();
        let seen = seen.lock();
        assert!(seen.iter().any(|(n, v)| n == "a" && *v == 1.0));
        assert!(seen.iter().any(|(n, v)| n == "b" && *v == 2.0));
        assert!(calls.load(Ordering::Relaxed) >= 6);
    }

    #[test]
    fn timestamps_monotone() {
        let sources: Vec<Arc<dyn Sampled>> = vec![Arc::new(FnSource::new("x", || 0.0))];
        let ts = Arc::new(Mutex::new(Vec::new()));
        let sink_ts = ts.clone();
        let sampler = Sampler::start(
            SamplerConfig {
                period: Duration::from_millis(1),
                sample_immediately: true,
            },
            sources,
            move |t, _n, _v| sink_ts.lock().push(t),
        );
        let deadline = Instant::now() + Duration::from_secs(2);
        while sampler.polls() < 5 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        sampler.stop();
        let ts = ts.lock();
        assert!(ts.len() >= 5);
        assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn set_period_takes_effect() {
        let sources: Vec<Arc<dyn Sampled>> = vec![Arc::new(FnSource::new("x", || 0.0))];
        let sampler = Sampler::start(
            SamplerConfig {
                period: Duration::from_secs(3600),
                sample_immediately: false,
            },
            sources,
            |_t, _n, _v| {},
        );
        assert_eq!(sampler.polls(), 0);
        sampler.set_period(Duration::from_millis(1));
        assert_eq!(sampler.period(), Duration::from_millis(1));
        let deadline = Instant::now() + Duration::from_secs(2);
        while sampler.polls() == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(
            sampler.polls() > 0,
            "period change did not wake the sampler"
        );
        sampler.stop();
    }

    #[test]
    fn drop_stops_thread() {
        let sources: Vec<Arc<dyn Sampled>> = vec![Arc::new(FnSource::new("x", || 0.0))];
        let sampler = Sampler::start(SamplerConfig::default(), sources, |_t, _n, _v| {});
        drop(sampler); // must not hang
    }

    #[test]
    fn multi_value_source_suffixes() {
        struct Multi;
        impl Sampled for Multi {
            fn name(&self) -> &str {
                "m"
            }
            fn sample(&self, out: &mut Vec<(String, f64)>) {
                out.push(("one".into(), 1.0));
                out.push(("two".into(), 2.0));
            }
        }
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink_seen = seen.clone();
        let sampler = Sampler::start(
            SamplerConfig {
                period: Duration::from_millis(1),
                sample_immediately: true,
            },
            vec![Arc::new(Multi)],
            move |_t, name, v| sink_seen.lock().push((name.to_owned(), v)),
        );
        let deadline = Instant::now() + Duration::from_secs(2);
        while sampler.polls() < 1 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        sampler.stop();
        let seen = seen.lock();
        assert!(seen.iter().any(|(n, v)| n == "m.one" && *v == 1.0));
        assert!(seen.iter().any(|(n, v)| n == "m.two" && *v == 2.0));
    }
}
