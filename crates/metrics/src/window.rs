//! Bounded sliding-window statistics.
//!
//! Tuning epochs measure the objective over the *most recent* window of
//! behaviour. [`SlidingWindow`] keeps the last `capacity` observations in a
//! ring buffer and answers mean/min/max/sum/rate queries over exactly that
//! window. [`RateWindow`] additionally timestamps observations and reports
//! events-per-second over a time horizon.

/// Ring buffer of the most recent `capacity` f64 observations with O(1)
/// amortized update and O(n) (n = window length) statistics queries.
///
/// # Examples
///
/// ```
/// use lg_metrics::SlidingWindow;
/// let mut w = SlidingWindow::new(3);
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     w.push(x);
/// }
/// assert_eq!(w.len(), 3);
/// assert_eq!(w.mean(), 3.0); // window holds [2, 3, 4]
/// ```
#[derive(Clone, Debug)]
pub struct SlidingWindow {
    buf: Vec<f64>,
    capacity: usize,
    head: usize,
    len: usize,
    running_sum: f64,
}

impl SlidingWindow {
    /// Creates a window holding at most `capacity` observations.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be positive");
        Self {
            buf: vec![0.0; capacity],
            capacity,
            head: 0,
            len: 0,
            running_sum: 0.0,
        }
    }

    /// Pushes an observation, evicting the oldest when full.
    pub fn push(&mut self, x: f64) {
        if self.len == self.capacity {
            self.running_sum -= self.buf[self.head];
        } else {
            self.len += 1;
        }
        self.buf[self.head] = x;
        self.running_sum += x;
        self.head = (self.head + 1) % self.capacity;
        // Periodically re-sum to bound floating point drift.
        if self.head == 0 {
            self.running_sum = self.iter().sum();
        }
    }

    /// Number of observations currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no observations are held.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the window has reached capacity.
    pub fn is_full(&self) -> bool {
        self.len == self.capacity
    }

    /// Sum over the window.
    pub fn sum(&self) -> f64 {
        self.running_sum
    }

    /// Mean over the window; 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.running_sum / self.len as f64
        }
    }

    /// Minimum over the window; `+inf` if empty.
    pub fn min(&self) -> f64 {
        self.iter().fold(f64::INFINITY, f64::min)
    }

    /// Maximum over the window; `-inf` if empty.
    pub fn max(&self) -> f64 {
        self.iter().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Population standard deviation over the window; 0 if empty.
    pub fn stddev(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let m = self.mean();
        let var = self.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / self.len as f64;
        var.sqrt()
    }

    /// Iterates oldest → newest over the held observations.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.len).map(move |i| {
            let idx = (self.head + self.capacity - self.len + i) % self.capacity;
            self.buf[idx]
        })
    }

    /// Most recent observation, if any.
    pub fn last(&self) -> Option<f64> {
        if self.len == 0 {
            None
        } else {
            Some(self.buf[(self.head + self.capacity - 1) % self.capacity])
        }
    }

    /// Clears the window.
    pub fn clear(&mut self) {
        self.len = 0;
        self.head = 0;
        self.running_sum = 0.0;
    }
}

/// Sliding window of timestamped event counts for rate (events/sec) queries.
///
/// Observations are `(t_ns, count)` pairs; [`RateWindow::rate_per_sec`]
/// reports the total count within the trailing `horizon_ns`, divided by the
/// horizon. Timestamps may come from a wall clock or a virtual clock.
#[derive(Clone, Debug)]
pub struct RateWindow {
    horizon_ns: u64,
    entries: std::collections::VecDeque<(u64, u64)>,
    total_in_window: u64,
}

impl RateWindow {
    /// Creates a rate window with the given trailing time horizon.
    ///
    /// # Panics
    /// Panics if `horizon_ns` is zero.
    pub fn new(horizon_ns: u64) -> Self {
        assert!(horizon_ns > 0, "horizon must be positive");
        Self {
            horizon_ns,
            entries: std::collections::VecDeque::new(),
            total_in_window: 0,
        }
    }

    /// Records `count` events at time `t_ns` and evicts expired entries.
    pub fn record(&mut self, t_ns: u64, count: u64) {
        self.entries.push_back((t_ns, count));
        self.total_in_window += count;
        self.evict(t_ns);
    }

    fn evict(&mut self, now_ns: u64) {
        let cutoff = now_ns.saturating_sub(self.horizon_ns);
        while let Some(&(t, c)) = self.entries.front() {
            if t < cutoff {
                self.entries.pop_front();
                self.total_in_window -= c;
            } else {
                break;
            }
        }
    }

    /// Events per second over the trailing horizon, evaluated at `now_ns`.
    pub fn rate_per_sec(&mut self, now_ns: u64) -> f64 {
        self.evict(now_ns);
        self.total_in_window as f64 * 1e9 / self.horizon_ns as f64
    }

    /// Raw event count currently inside the horizon (after eviction at the
    /// last `record`/`rate_per_sec` call).
    pub fn count_in_window(&self) -> u64 {
        self.total_in_window
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_evicts_fifo() {
        let mut w = SlidingWindow::new(4);
        for x in 1..=6 {
            w.push(x as f64);
        }
        let held: Vec<f64> = w.iter().collect();
        assert_eq!(held, vec![3.0, 4.0, 5.0, 6.0]);
        assert_eq!(w.sum(), 18.0);
        assert_eq!(w.min(), 3.0);
        assert_eq!(w.max(), 6.0);
        assert_eq!(w.last(), Some(6.0));
    }

    #[test]
    fn partial_window_stats() {
        let mut w = SlidingWindow::new(10);
        w.push(2.0);
        w.push(4.0);
        assert_eq!(w.len(), 2);
        assert!(!w.is_full());
        assert_eq!(w.mean(), 3.0);
        assert!((w.stddev() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_window_stats() {
        let w = SlidingWindow::new(5);
        assert!(w.is_empty());
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.last(), None);
        assert_eq!(w.min(), f64::INFINITY);
    }

    #[test]
    fn running_sum_matches_iter_sum_over_many_wraps() {
        let mut w = SlidingWindow::new(7);
        for i in 0..10_000 {
            w.push((i as f64).sin() * 1e6);
            let expect: f64 = w.iter().sum();
            assert!((w.sum() - expect).abs() < 1e-3, "drift at i={i}");
        }
    }

    #[test]
    fn clear_resets() {
        let mut w = SlidingWindow::new(3);
        w.push(1.0);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = SlidingWindow::new(0);
    }

    #[test]
    fn rate_window_basic() {
        let mut r = RateWindow::new(1_000_000_000); // 1 s horizon
        for i in 0..10 {
            r.record(i * 100_000_000, 5); // every 100 ms
        }
        // At t = 900ms all ten entries are inside the horizon.
        let rate = r.rate_per_sec(900_000_000);
        assert!((rate - 50.0).abs() < 1e-9, "rate {rate}");
    }

    #[test]
    fn rate_window_evicts_old() {
        let mut r = RateWindow::new(1_000);
        r.record(0, 100);
        r.record(2_000, 1);
        // The t=0 entry is older than 2_000 - 1_000 = cutoff 1_000.
        assert_eq!(r.count_in_window(), 1);
    }

    #[test]
    fn rate_window_empty_after_long_idle() {
        let mut r = RateWindow::new(1_000);
        r.record(0, 10);
        assert_eq!(r.rate_per_sec(10_000), 0.0);
    }
}
