//! # lg-metrics — statistics, counters, samplers, and power/energy models
//!
//! This crate is the measurement substrate of the `looking-glass`
//! autonomic performance environment. It provides:
//!
//! * **Streaming statistics** — [`welford::Welford`] (numerically stable
//!   mean/variance), [`histogram::Histogram`] (hybrid log2/linear buckets
//!   with percentile queries), [`ewma::Ewma`] (exponentially weighted
//!   moving averages), and [`window::SlidingWindow`] (bounded-memory
//!   recent-history statistics).
//! * **Counters** — [`counter::CounterRegistry`], a registry of named
//!   atomic counters and gauges cheap enough to update from task hot paths.
//!   Hot counters updated from many threads can opt into striped storage
//!   ([`stripe::StripedCounter`]) so updates never share a cache line.
//! * **Time series** — [`timeseries::TimeSeries`], bounded append-only
//!   series of `(t, value)` samples used by the introspection layer.
//! * **Power and energy** — [`power::PowerModel`] (an analytic package
//!   power model parameterised by idle and per-core dynamic power) and
//!   [`power::EnergyMeter`] (integrates power over wall or virtual time and
//!   derives energy-delay products). These stand in for RAPL/RCRToolkit
//!   telemetry, as documented in `DESIGN.md`.
//! * **Samplers** — [`sampler::Sampler`], a background thread that
//!   periodically polls [`sampler::Sampled`] sources, plus real `/proc`
//!   readers on Linux in [`procfs`].
//!
//! All types are `Send + Sync` where meaningful and are designed for use
//! from inside a work-stealing runtime's hot paths: no allocation on the
//! update paths of counters, Welford, EWMA, or histograms.

#![warn(missing_docs)]

pub mod counter;
pub mod ewma;
pub mod histogram;
pub mod power;
pub mod procfs;
pub mod sampler;
pub mod stripe;
pub mod timeseries;
pub mod welford;
pub mod window;

pub use counter::{CounterHandle, CounterRegistry, GaugeHandle, HighWaterArm};
pub use ewma::Ewma;
pub use histogram::Histogram;
pub use power::{EnergyMeter, EnergyReport, PowerModel};
pub use sampler::{FnSource, Sampled, Sampler, SamplerConfig};
pub use stripe::{CacheAligned, StripedCounter, StripedGauge, StripedVersion};
pub use timeseries::TimeSeries;
pub use welford::Welford;
pub use window::SlidingWindow;
