//! Contention-free striped counters and the per-thread stripe index.
//!
//! A shared `AtomicU64` that every thread RMWs is a scalability bug: the
//! cache line holding it ping-pongs between cores, and at high event rates
//! the counter becomes the bottleneck it was supposed to measure. The fix
//! is striping: a fixed array of cache-line-padded cells, each thread
//! updating "its" cell (chosen by a stable per-thread index), with reads
//! folding all cells. Updates stay a single `fetch_add`, but on a line no
//! other thread is writing, so they cost the same as an uncontended
//! atomic regardless of how many threads emit.
//!
//! The stripe index is assigned lazily from a process-wide counter the
//! first time a thread touches a striped structure, so every thread gets a
//! unique index (dense from 0). Runtime workers may instead pin their
//! index to their worker id via [`set_thread_index`] so worker → stripe
//! mapping is deterministic; a pinned index can collide with another
//! thread's (e.g. worker 0 of two pools) — that is benign: colliding
//! threads share a stripe and pay some line sharing, never lose updates.

use std::cell::Cell;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of stripes in every striped structure (power of two).
///
/// Thread indexes are reduced `index & (STRIPE_COUNT - 1)`, so hosts with
/// more emitting threads than stripes share stripes — correct, just with
/// proportionally less isolation.
pub const STRIPE_COUNT: usize = 32;

/// Pads (and aligns) a value to its own cache line pair so neighboring
/// stripes never share a line (128 B covers adjacent-line prefetchers).
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct CacheAligned<T>(pub T);

static NEXT_THREAD_INDEX: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Stable, cheap per-thread index used to pick a stripe.
///
/// Assigned on first use from a process-wide counter (unique per thread)
/// unless the thread pinned one with [`set_thread_index`].
#[inline]
pub fn thread_index() -> usize {
    THREAD_INDEX.with(|c| match c.get() {
        Some(i) => i,
        None => {
            let i = NEXT_THREAD_INDEX.fetch_add(1, Ordering::Relaxed);
            c.set(Some(i));
            i
        }
    })
}

/// Pins the calling thread's stripe index (worker-id plumbing).
///
/// Runtime workers call this with their worker id at thread start so the
/// worker → stripe mapping is dense and deterministic. Pinned indexes may
/// collide with counter-assigned ones; collisions only share a stripe.
pub fn set_thread_index(index: usize) {
    THREAD_INDEX.with(|c| c.set(Some(index)));
}

#[inline]
fn stripe_of(index: usize) -> usize {
    index & (STRIPE_COUNT - 1)
}

/// A monotonically increasing counter striped across padded cells.
///
/// `add`/`inc` touch only the calling thread's stripe; [`sum`] folds all
/// stripes with relaxed loads, so a read concurrent with writers sees some
/// valid recent value (monotone across repeated reads of a quiescent
/// counter, exact once writers stop).
///
/// [`sum`]: StripedCounter::sum
#[derive(Debug)]
pub struct StripedCounter {
    cells: [CacheAligned<AtomicU64>; STRIPE_COUNT],
}

impl Default for StripedCounter {
    fn default() -> Self {
        Self::new()
    }
}

impl StripedCounter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self {
            cells: std::array::from_fn(|_| CacheAligned(AtomicU64::new(0))),
        }
    }

    /// Adds `n` to the calling thread's stripe.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cells[stripe_of(thread_index())]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the calling thread's stripe by 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Folds every stripe into the counter's total.
    pub fn sum(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// A write-generation stamp striped across padded cells.
///
/// This is the dirtiness signal behind incremental snapshot capture (the
/// third use of the Dispatcher/KnobRegistry generation-stamp pattern):
/// every write path bumps the calling thread's stripe with `Release`
/// ordering *after* publishing the written value, and readers fold all
/// stripes with `Acquire` loads. The protocol a reader relies on is:
///
/// * if [`get`] returns the same fold as the reader's previously recorded
///   fold, no write completed in between — cached derived state is still
///   current;
/// * if a writer raced the previous read (value stored, bump not yet
///   observed), the recorded fold simply differs from the next [`get`] and
///   the reader refreshes — a benign extra refresh, never a missed update;
/// * once writers quiesce, one more [`get`] is exact.
///
/// Bumps are contention-free for the same reason [`StripedCounter`] is:
/// each thread RMWs its own padded cell.
///
/// [`get`]: StripedVersion::get
#[derive(Debug)]
pub struct StripedVersion {
    cells: [CacheAligned<AtomicU64>; STRIPE_COUNT],
}

impl Default for StripedVersion {
    fn default() -> Self {
        Self::new()
    }
}

impl StripedVersion {
    /// Creates a stamp at generation zero.
    pub fn new() -> Self {
        Self {
            cells: std::array::from_fn(|_| CacheAligned(AtomicU64::new(0))),
        }
    }

    /// Advances the calling thread's stripe (call *after* the guarded
    /// write, with the `Release` here ordering the write before the bump).
    #[inline]
    pub fn bump(&self) {
        self.cells[stripe_of(thread_index())]
            .0
            .fetch_add(1, Ordering::Release);
    }

    /// Folds every stripe into the current generation (`Acquire` loads, so
    /// an observed bump implies the guarded write is visible).
    pub fn get(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Acquire)).sum()
    }
}

/// A signed delta accumulator striped across padded cells.
///
/// Unlike [`crate::GaugeHandle`] there is no `set` and `add` returns
/// nothing: a striped gauge has no cheap instantaneous value, so it only
/// supports delta accumulation ([`add`]) and folded reads ([`sum`]). Use
/// it for high-rate up/down tracking where the exact value is only needed
/// at snapshot points; keep the single-cell gauge when every update must
/// observe the new global value (e.g. peak tracking).
///
/// [`add`]: StripedGauge::add
/// [`sum`]: StripedGauge::sum
#[derive(Debug)]
pub struct StripedGauge {
    cells: [CacheAligned<AtomicI64>; STRIPE_COUNT],
}

impl Default for StripedGauge {
    fn default() -> Self {
        Self::new()
    }
}

impl StripedGauge {
    /// Creates a zeroed gauge.
    pub fn new() -> Self {
        Self {
            cells: std::array::from_fn(|_| CacheAligned(AtomicI64::new(0))),
        }
    }

    /// Adds `delta` (may be negative) to the calling thread's stripe.
    #[inline]
    pub fn add(&self, delta: i64) {
        self.cells[stripe_of(thread_index())]
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Folds every stripe into the gauge's current value.
    pub fn sum(&self) -> i64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(StripedCounter::new());
        let mut joins = Vec::new();
        for _ in 0..8 {
            let c = c.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        joins.into_iter().for_each(|j| j.join().unwrap());
        assert_eq!(c.sum(), 80_000);
    }

    #[test]
    fn gauge_balances_to_zero() {
        let g = Arc::new(StripedGauge::new());
        let mut joins = Vec::new();
        for _ in 0..4 {
            let g = g.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..5_000 {
                    g.add(3);
                    g.add(-3);
                }
            }));
        }
        joins.into_iter().for_each(|j| j.join().unwrap());
        assert_eq!(g.sum(), 0);
    }

    #[test]
    fn version_advances_once_per_bump_across_threads() {
        let v = Arc::new(StripedVersion::new());
        assert_eq!(v.get(), 0);
        let mut joins = Vec::new();
        for _ in 0..8 {
            let v = v.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..1_000 {
                    v.bump();
                }
            }));
        }
        joins.into_iter().for_each(|j| j.join().unwrap());
        assert_eq!(v.get(), 8_000);
        let before = v.get();
        v.bump();
        assert_eq!(v.get(), before + 1);
    }

    #[test]
    fn thread_index_is_stable_within_a_thread() {
        assert_eq!(thread_index(), thread_index());
    }

    #[test]
    fn pinned_index_wins() {
        std::thread::spawn(|| {
            set_thread_index(7);
            assert_eq!(thread_index(), 7);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn distinct_threads_get_distinct_indexes() {
        let a = std::thread::spawn(thread_index).join().unwrap();
        let b = std::thread::spawn(thread_index).join().unwrap();
        assert_ne!(a, b);
    }
}
