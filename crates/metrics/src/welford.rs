//! Numerically stable streaming mean/variance via Welford's algorithm.
//!
//! Welford's online algorithm maintains the running mean and the sum of
//! squared deviations (`m2`) in a single pass, avoiding the catastrophic
//! cancellation of the naive `E[x²] - E[x]²` formulation. Two accumulators
//! can be merged with the parallel (Chan et al.) update, which is what the
//! per-worker profile shards in `lg-core` rely on.

/// Streaming accumulator for count, mean, variance, min, max, and sum.
///
/// Updates are O(1) and allocation-free; merging two accumulators is O(1).
///
/// # Examples
///
/// ```
/// use lg_metrics::Welford;
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.update(x);
/// }
/// assert_eq!(w.count(), 8);
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Default for Welford {
    fn default() -> Self {
        Self::new()
    }
}

impl Welford {
    /// Creates an empty accumulator.
    pub const fn new() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Folds one observation into the accumulator.
    #[inline]
    pub fn update(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Merges another accumulator into this one (parallel variance update).
    ///
    /// The result is identical (up to floating-point rounding) to having
    /// fed every observation of `other` into `self` directly.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations folded so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the observations; 0 if empty.
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sum of all observations.
    #[inline]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation; `+inf` if empty.
    #[inline]
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` if empty.
    #[inline]
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Population variance (`m2 / n`); 0 if fewer than one observation.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample variance (`m2 / (n - 1)`); 0 if fewer than two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Coefficient of variation (stddev / mean); 0 when the mean is 0.
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.stddev() / m.abs()
        }
    }

    /// True when no observations have been folded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Resets the accumulator to the empty state.
    pub fn reset(&mut self) {
        *self = Self::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(xs: &[f64]) -> (f64, f64) {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn empty_is_sane() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), 0.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
        assert!(w.is_empty());
    }

    #[test]
    fn single_observation() {
        let mut w = Welford::new();
        w.update(42.0);
        assert_eq!(w.count(), 1);
        assert_eq!(w.mean(), 42.0);
        assert_eq!(w.min(), 42.0);
        assert_eq!(w.max(), 42.0);
        assert_eq!(w.population_variance(), 0.0);
        assert_eq!(w.sample_variance(), 0.0);
    }

    #[test]
    fn matches_naive_two_pass() {
        let xs: Vec<f64> = (0..1000)
            .map(|i| ((i * 37) % 101) as f64 * 0.5 - 13.0)
            .collect();
        let mut w = Welford::new();
        for &x in &xs {
            w.update(x);
        }
        let (mean, var) = naive(&xs);
        assert!((w.mean() - mean).abs() < 1e-9, "{} vs {}", w.mean(), mean);
        assert!((w.population_variance() - var).abs() < 1e-9);
    }

    #[test]
    fn stable_under_large_offset() {
        // Naive E[x^2]-E[x]^2 loses all precision here; Welford must not.
        let offset = 1e9;
        let mut w = Welford::new();
        for i in 0..100 {
            w.update(offset + (i % 10) as f64);
        }
        let expected_var = {
            let xs: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
            naive(&xs).1
        };
        assert!((w.population_variance() - expected_var).abs() < 1e-6);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..500).map(|i| (i as f64).sin() * 100.0).collect();
        let mut whole = Welford::new();
        for &x in &xs {
            whole.update(x);
        }
        for split in [0usize, 1, 250, 499, 500] {
            let (a, b) = xs.split_at(split);
            let mut wa = Welford::new();
            let mut wb = Welford::new();
            a.iter().for_each(|&x| wa.update(x));
            b.iter().for_each(|&x| wb.update(x));
            wa.merge(&wb);
            assert_eq!(wa.count(), whole.count());
            assert!((wa.mean() - whole.mean()).abs() < 1e-9);
            assert!((wa.m2 - whole.m2).abs() < 1e-6);
            assert_eq!(wa.min(), whole.min());
            assert_eq!(wa.max(), whole.max());
        }
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w = Welford::new();
        w.update(1.0);
        w.update(2.0);
        let before = w;
        w.merge(&Welford::new());
        assert_eq!(w.count(), before.count());
        assert_eq!(w.mean(), before.mean());

        let mut e = Welford::new();
        e.merge(&before);
        assert_eq!(e.count(), before.count());
        assert_eq!(e.mean(), before.mean());
    }

    #[test]
    fn cv_of_constant_stream_is_zero() {
        let mut w = Welford::new();
        for _ in 0..10 {
            w.update(5.0);
        }
        assert!(w.cv().abs() < 1e-12);
    }

    #[test]
    fn reset_clears_state() {
        let mut w = Welford::new();
        w.update(3.0);
        w.reset();
        assert!(w.is_empty());
        assert_eq!(w.sum(), 0.0);
    }
}
