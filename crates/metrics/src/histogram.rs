//! Fixed-memory histogram with hybrid log₂/linear bucketing.
//!
//! Task durations and message latencies span many orders of magnitude, so a
//! purely linear histogram is useless and a purely logarithmic one is too
//! coarse. This histogram follows the HdrHistogram idea in miniature: values
//! are bucketed by their binary magnitude (log₂ bucket), and each magnitude
//! is subdivided into a fixed number of linear sub-buckets. Memory is
//! constant (`64 × sub_buckets` slots of `u64`), updates are O(1), and
//! percentile queries are O(buckets).

/// Number of linear sub-buckets per binary order of magnitude.
const SUB_BUCKETS: usize = 16;
/// Number of binary orders of magnitude tracked (covers the full u64 range).
const MAGNITUDES: usize = 64;

/// A fixed-memory histogram over non-negative integer values (e.g.
/// nanoseconds) with ~6% worst-case relative error on percentile queries.
///
/// # Examples
///
/// ```
/// use lg_metrics::Histogram;
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 1000);
/// let p50 = h.value_at_quantile(0.5);
/// assert!(p50 >= 450 && p50 <= 550, "p50 = {p50}");
/// ```
#[derive(Clone)]
pub struct Histogram {
    counts: Box<[u64]>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.total)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("mean", &self.mean())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0u64; MAGNITUDES * SUB_BUCKETS].into_boxed_slice(),
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Maps a value to its bucket index.
    #[inline]
    fn index_of(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            // Values below SUB_BUCKETS land in magnitude 0, identity-mapped.
            return value as usize;
        }
        let mag = 63 - value.leading_zeros() as usize; // floor(log2(value)) >= 4
        let shift = mag - SUB_BUCKETS.trailing_zeros() as usize; // mag - 4
        let sub = ((value >> shift) as usize) & (SUB_BUCKETS - 1);
        // Magnitudes below log2(SUB_BUCKETS) are all covered by the identity
        // region, so offset by one "virtual" magnitude block.
        (mag - SUB_BUCKETS.trailing_zeros() as usize + 1) * SUB_BUCKETS + sub
    }

    /// Representative (lower-bound) value for a bucket index.
    #[inline]
    fn value_of(index: usize) -> u64 {
        let block = index / SUB_BUCKETS;
        let sub = (index % SUB_BUCKETS) as u64;
        if block == 0 {
            return sub;
        }
        let shift = block - 1;
        (SUB_BUCKETS as u64 + sub) << shift
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let idx = Self::index_of(value);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value as u128;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Records `n` identical observations.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::index_of(value);
        self.counts[idx] += n;
        self.total += n;
        self.sum += value as u128 * n as u128;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean of recorded values, or 0 if empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Value at quantile `q ∈ [0, 1]` (bucket lower bound, clamped to the
    /// observed min/max). Returns 0 for an empty histogram.
    pub fn value_at_quantile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::value_of(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Convenience accessor for the median.
    pub fn p50(&self) -> u64 {
        self.value_at_quantile(0.50)
    }

    /// Convenience accessor for the 99th percentile.
    pub fn p99(&self) -> u64 {
        self.value_at_quantile(0.99)
    }

    /// Convenience accessor for the 99.9th percentile (tail-latency SLOs).
    pub fn p999(&self) -> u64 {
        self.value_at_quantile(0.999)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Resets all buckets to empty.
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.total = 0;
        self.sum = 0;
        self.min = u64::MAX;
        self.max = 0;
    }

    /// Iterates over non-empty buckets as `(lower_bound_value, count)`.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::value_of(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.value_at_quantile(0.5), 0);
    }

    #[test]
    fn index_value_roundtrip_is_monotone() {
        // value_of(index_of(v)) must be <= v and within ~6.25% of v.
        let mut prev_idx = 0;
        for v in (0..100_000u64)
            .step_by(7)
            .chain([1 << 20, 1 << 40, u64::MAX / 2])
        {
            let idx = Histogram::index_of(v);
            assert!(idx >= prev_idx || v < 100_000, "indices must not decrease");
            prev_idx = prev_idx.max(idx);
            let lb = Histogram::value_of(idx);
            assert!(lb <= v, "lower bound {lb} > value {v}");
            if v >= SUB_BUCKETS as u64 {
                // Relative error bound: bucket width is 1/16 of magnitude.
                assert!((v - lb) as f64 <= v as f64 / SUB_BUCKETS as f64 + 1.0);
            } else {
                assert_eq!(lb, v, "identity region must be exact");
            }
        }
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let buckets: Vec<_> = h.iter_buckets().collect();
        // 0..16 are identity-mapped: 15 non-zero buckets plus value 0 bucket.
        assert_eq!(buckets.len(), 16);
        for (i, (v, c)) in buckets.iter().enumerate() {
            assert_eq!(*v, i as u64);
            assert_eq!(*c, 1);
        }
    }

    #[test]
    fn count_preserved_under_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 0..1000u64 {
            a.record(v * 3);
            b.record(v * 7 + 1);
        }
        let total = a.count() + b.count();
        a.merge(&b);
        assert_eq!(a.count(), total);
        assert_eq!(a.min(), 0);
        assert_eq!(a.max(), 999 * 7 + 1);
    }

    #[test]
    fn quantiles_monotone() {
        let mut h = Histogram::new();
        let mut rng: u64 = 0x9E3779B97F4A7C15;
        for _ in 0..10_000 {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            h.record(rng >> 40);
        }
        let mut prev = 0;
        for q in 0..=100 {
            let v = h.value_at_quantile(q as f64 / 100.0);
            assert!(v >= prev, "quantile not monotone at q={q}: {v} < {prev}");
            prev = v;
        }
        assert!(h.value_at_quantile(1.0) == h.max());
    }

    #[test]
    fn uniform_percentiles_approximately_correct() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.1, 1000u64), (0.5, 5000), (0.9, 9000), (0.99, 9900)] {
            let got = h.value_at_quantile(q);
            let err = (got as f64 - expect as f64).abs() / expect as f64;
            assert!(
                err < 0.08,
                "q={q}: got {got}, want ~{expect} (err {err:.3})"
            );
        }
    }

    #[test]
    fn record_n_equals_repeated_record() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for _ in 0..37 {
            a.record(12345);
        }
        b.record_n(12345, 37);
        assert_eq!(a.count(), b.count());
        assert_eq!(a.mean(), b.mean());
        assert_eq!(a.p50(), b.p50());
    }

    #[test]
    fn mean_exact() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(30);
        assert!((h.mean() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn reset_clears() {
        let mut h = Histogram::new();
        h.record(5);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.iter_buckets().count(), 0);
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.value_at_quantile(1.0) > 0);
    }
}
