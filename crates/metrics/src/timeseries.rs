//! Bounded time series of `(t_ns, value)` samples.
//!
//! The introspection layer keeps short histories of sampled counters and
//! derived metrics (power, concurrency) so that policies and the experiment
//! harness can examine trends. The series is bounded: when full it
//! *decimates* by dropping every other retained sample and doubling its
//! internal stride, so memory stays constant while the full time extent is
//! preserved (at reduced resolution) — the standard trick for long-running
//! monitoring.

/// A bounded, append-only time series with automatic decimation.
///
/// # Examples
///
/// ```
/// use lg_metrics::TimeSeries;
/// let mut ts = TimeSeries::new(128);
/// for i in 0..1000u64 {
///     ts.push(i * 1_000, i as f64);
/// }
/// assert!(ts.len() <= 128);
/// // Extent is preserved: first and most recent timestamps still visible.
/// assert_eq!(ts.first().unwrap().0, 0);
/// assert!(ts.last().unwrap().0 >= 990_000);
/// ```
#[derive(Clone, Debug)]
pub struct TimeSeries {
    samples: Vec<(u64, f64)>,
    capacity: usize,
    stride: u64,
    skip_counter: u64,
    pushed: u64,
}

impl TimeSeries {
    /// Creates a series keeping at most `capacity` samples.
    ///
    /// # Panics
    /// Panics if `capacity < 4` (decimation needs room to halve).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 4, "capacity must be at least 4");
        Self {
            samples: Vec::with_capacity(capacity),
            capacity,
            stride: 1,
            skip_counter: 0,
            pushed: 0,
        }
    }

    /// Appends a sample. Out-of-order timestamps are accepted but queries
    /// assume approximately monotone time.
    pub fn push(&mut self, t_ns: u64, value: f64) {
        self.pushed += 1;
        self.skip_counter += 1;
        if self.skip_counter < self.stride {
            return;
        }
        self.skip_counter = 0;
        if self.samples.len() == self.capacity {
            // Decimate: keep every other sample, double the stride.
            let mut i = 0;
            self.samples.retain(|_| {
                i += 1;
                i % 2 == 1
            });
            self.stride *= 2;
        }
        self.samples.push((t_ns, value));
    }

    /// Number of retained samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples are retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total number of samples ever pushed (including decimated ones).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Current decimation stride: one of every `stride` pushes is retained.
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// First retained sample.
    pub fn first(&self) -> Option<(u64, f64)> {
        self.samples.first().copied()
    }

    /// Most recent retained sample.
    pub fn last(&self) -> Option<(u64, f64)> {
        self.samples.last().copied()
    }

    /// Iterates over retained samples oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.samples.iter().copied()
    }

    /// Mean of retained values over the trailing `horizon_ns` window
    /// relative to the newest sample. Returns `None` when empty.
    pub fn mean_over_trailing(&self, horizon_ns: u64) -> Option<f64> {
        let (newest, _) = *self.samples.last()?;
        let cutoff = newest.saturating_sub(horizon_ns);
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(t, v) in self.samples.iter().rev() {
            if t < cutoff {
                break;
            }
            sum += v;
            n += 1;
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Linear-regression slope (value units per second) over the trailing
    /// `horizon_ns` window. Returns `None` with fewer than two points.
    /// Policies use this for trend detection (e.g. rising power).
    pub fn slope_over_trailing(&self, horizon_ns: u64) -> Option<f64> {
        let (newest, _) = *self.samples.last()?;
        let cutoff = newest.saturating_sub(horizon_ns);
        let pts: Vec<(f64, f64)> = self
            .samples
            .iter()
            .rev()
            .take_while(|&&(t, _)| t >= cutoff)
            .map(|&(t, v)| ((t as f64) * 1e-9, v))
            .collect();
        if pts.len() < 2 {
            return None;
        }
        let n = pts.len() as f64;
        let sx: f64 = pts.iter().map(|p| p.0).sum();
        let sy: f64 = pts.iter().map(|p| p.1).sum();
        let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-18 {
            return None;
        }
        Some((n * sxy - sx * sy) / denom)
    }

    /// Clears all retained samples and resets decimation state.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.stride = 1;
        self.skip_counter = 0;
        self.pushed = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_everything_under_capacity() {
        let mut ts = TimeSeries::new(16);
        for i in 0..10u64 {
            ts.push(i, i as f64);
        }
        assert_eq!(ts.len(), 10);
        let vals: Vec<f64> = ts.iter().map(|(_, v)| v).collect();
        assert_eq!(vals, (0..10).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn never_exceeds_capacity() {
        let mut ts = TimeSeries::new(32);
        for i in 0..100_000u64 {
            ts.push(i, 1.0);
            assert!(ts.len() <= 32);
        }
        assert_eq!(ts.total_pushed(), 100_000);
    }

    #[test]
    fn decimation_preserves_time_extent() {
        let mut ts = TimeSeries::new(8);
        for i in 0..1000u64 {
            ts.push(i * 10, i as f64);
        }
        assert_eq!(ts.first().unwrap().0, 0);
        // Newest retained sample must be within one stride of the end.
        let stride = ts.stride();
        assert!(
            ts.last().unwrap().0 >= (1000 - stride) * 10,
            "last {:?} stride {stride}",
            ts.last()
        );
    }

    #[test]
    fn mean_over_trailing_window() {
        let mut ts = TimeSeries::new(64);
        for i in 0..10u64 {
            ts.push(i * 1_000_000_000, i as f64); // one sample per second
        }
        // Trailing 2.5 s from t=9s covers samples at t=7,8,9 → mean 8.
        let m = ts.mean_over_trailing(2_500_000_000).unwrap();
        assert!((m - 8.0).abs() < 1e-12);
    }

    #[test]
    fn mean_empty_is_none() {
        let ts = TimeSeries::new(8);
        assert!(ts.mean_over_trailing(1_000).is_none());
    }

    #[test]
    fn slope_detects_linear_trend() {
        let mut ts = TimeSeries::new(64);
        for i in 0..20u64 {
            // value rises 3 per second
            ts.push(i * 1_000_000_000, 3.0 * i as f64 + 10.0);
        }
        let s = ts.slope_over_trailing(u64::MAX).unwrap();
        assert!((s - 3.0).abs() < 1e-9, "slope {s}");
    }

    #[test]
    fn slope_of_flat_series_is_zero() {
        let mut ts = TimeSeries::new(64);
        for i in 0..10u64 {
            ts.push(i * 1_000_000, 42.0);
        }
        let s = ts.slope_over_trailing(u64::MAX).unwrap();
        assert!(s.abs() < 1e-9);
    }

    #[test]
    fn slope_single_point_is_none() {
        let mut ts = TimeSeries::new(8);
        ts.push(0, 1.0);
        assert!(ts.slope_over_trailing(u64::MAX).is_none());
    }

    #[test]
    fn clear_resets_decimation() {
        let mut ts = TimeSeries::new(8);
        for i in 0..1000u64 {
            ts.push(i, 0.0);
        }
        ts.clear();
        assert!(ts.is_empty());
        for i in 0..4u64 {
            ts.push(i, i as f64);
        }
        assert_eq!(ts.len(), 4); // stride reset to 1
    }
}
