//! Analytic package power model and energy integration.
//!
//! The original system read package power from RAPL via RCRToolkit. That
//! telemetry is unavailable here, so we substitute the standard analytic
//! model used to *validate* such telemetry:
//!
//! ```text
//! P(t) = P_idle + Σ_{active cores c} P_core · intensity_c(t)
//! ```
//!
//! where `intensity ∈ [0, 1]` captures how hard a core is working (a stalled,
//! memory-bound core burns less dynamic power than a saturated FPU). The
//! crucial property for adaptation — power rises roughly linearly with
//! active concurrency while memory-bound throughput saturates — is exactly
//! reproduced, so energy-optimal concurrency sits below maximum concurrency
//! for bandwidth-bound workloads, which is the phenomenon concurrency
//! throttling exploits.
//!
//! [`EnergyMeter`] integrates `P · dt` over either wall or virtual time; the
//! caller supplies timestamps so the meter is clock-agnostic.

/// Analytic package power model.
///
/// # Examples
///
/// ```
/// use lg_metrics::PowerModel;
/// let m = PowerModel::new(20.0, 5.0);
/// assert_eq!(m.power(0, 1.0), 20.0);          // idle package
/// assert_eq!(m.power(4, 1.0), 40.0);          // 4 saturated cores
/// assert_eq!(m.power(4, 0.5), 30.0);          // 4 half-stalled cores
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PowerModel {
    /// Static package power in watts, drawn regardless of activity.
    pub p_idle: f64,
    /// Dynamic power in watts of one core at intensity 1.0.
    pub p_core: f64,
}

impl PowerModel {
    /// Creates a model with the given idle and per-core power (watts).
    ///
    /// # Panics
    /// Panics if either parameter is negative.
    pub fn new(p_idle: f64, p_core: f64) -> Self {
        assert!(
            p_idle >= 0.0 && p_core >= 0.0,
            "power parameters must be non-negative"
        );
        Self { p_idle, p_core }
    }

    /// A model shaped like a contemporary server socket: 25 W idle,
    /// 4.5 W per active core.
    pub fn server_socket() -> Self {
        Self::new(25.0, 4.5)
    }

    /// Instantaneous package power for `active_cores` cores running at the
    /// given mean `intensity ∈ [0, 1]`.
    #[inline]
    pub fn power(&self, active_cores: usize, intensity: f64) -> f64 {
        self.p_idle + self.p_core * active_cores as f64 * intensity.clamp(0.0, 1.0)
    }
}

/// Report produced by [`EnergyMeter::report`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyReport {
    /// Total elapsed time covered by the integration, in seconds.
    pub elapsed_s: f64,
    /// Integrated energy in joules.
    pub energy_j: f64,
    /// Mean power over the elapsed time, in watts.
    pub mean_power_w: f64,
    /// Energy-delay product (J·s) — the canonical throttling objective.
    pub edp: f64,
    /// Energy-delay-squared product (J·s²), weighting delay more heavily.
    pub ed2p: f64,
}

/// Integrates power over time from a stream of `(t_ns, power_w)` samples.
///
/// Between samples, power is held constant at the previous sample's value
/// (zero-order hold). Works with any monotone clock; the experiment harness
/// feeds it virtual-time samples from the simulator and wall-time samples
/// from the real runtime sampler.
///
/// # Examples
///
/// ```
/// use lg_metrics::EnergyMeter;
/// let mut m = EnergyMeter::new();
/// m.sample(0, 100.0);
/// m.sample(1_000_000_000, 100.0); // 1 s at 100 W
/// let r = m.report();
/// assert!((r.energy_j - 100.0).abs() < 1e-9);
/// assert!((r.edp - 100.0).abs() < 1e-9);
/// ```
#[derive(Clone, Debug, Default)]
pub struct EnergyMeter {
    start_ns: Option<u64>,
    last_ns: u64,
    last_power_w: f64,
    energy_j: f64,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds a power sample at absolute time `t_ns`.
    ///
    /// The first sample sets the integration origin. Samples with
    /// non-increasing timestamps contribute no energy (dt = 0) but update
    /// the held power level.
    pub fn sample(&mut self, t_ns: u64, power_w: f64) {
        match self.start_ns {
            None => {
                self.start_ns = Some(t_ns);
                self.last_ns = t_ns;
                self.last_power_w = power_w;
            }
            Some(_) => {
                let dt_s = t_ns.saturating_sub(self.last_ns) as f64 * 1e-9;
                self.energy_j += self.last_power_w * dt_s;
                self.last_ns = self.last_ns.max(t_ns);
                self.last_power_w = power_w;
            }
        }
    }

    /// Elapsed integration time in seconds.
    pub fn elapsed_s(&self) -> f64 {
        match self.start_ns {
            None => 0.0,
            Some(s) => (self.last_ns - s) as f64 * 1e-9,
        }
    }

    /// Energy integrated so far, in joules.
    pub fn energy_j(&self) -> f64 {
        self.energy_j
    }

    /// Produces a summary report. All-zero if fewer than two samples.
    pub fn report(&self) -> EnergyReport {
        let elapsed_s = self.elapsed_s();
        let energy_j = self.energy_j;
        let mean_power_w = if elapsed_s > 0.0 {
            energy_j / elapsed_s
        } else {
            0.0
        };
        EnergyReport {
            elapsed_s,
            energy_j,
            mean_power_w,
            edp: energy_j * elapsed_s,
            ed2p: energy_j * elapsed_s * elapsed_s,
        }
    }

    /// Resets the meter to the empty state.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_power_with_zero_cores() {
        let m = PowerModel::new(30.0, 6.0);
        assert_eq!(m.power(0, 1.0), 30.0);
        assert_eq!(m.power(0, 0.0), 30.0);
    }

    #[test]
    fn power_linear_in_cores() {
        let m = PowerModel::new(10.0, 2.0);
        for k in 0..16 {
            assert!((m.power(k, 1.0) - (10.0 + 2.0 * k as f64)).abs() < 1e-12);
        }
    }

    #[test]
    fn intensity_clamped() {
        let m = PowerModel::new(0.0, 10.0);
        assert_eq!(m.power(1, 2.0), 10.0);
        assert_eq!(m.power(1, -1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_rejected() {
        let _ = PowerModel::new(-1.0, 1.0);
    }

    #[test]
    fn constant_power_integration() {
        let mut m = EnergyMeter::new();
        m.sample(0, 50.0);
        m.sample(2_000_000_000, 50.0);
        assert!((m.energy_j() - 100.0).abs() < 1e-9);
        let r = m.report();
        assert!((r.mean_power_w - 50.0).abs() < 1e-9);
        assert!((r.elapsed_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_order_hold_semantics() {
        let mut m = EnergyMeter::new();
        m.sample(0, 100.0);
        m.sample(1_000_000_000, 0.0); // 1 s at 100 W, then drop to 0
        m.sample(2_000_000_000, 0.0); // 1 s at 0 W
        assert!((m.energy_j() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn step_change_integrates_piecewise() {
        let mut m = EnergyMeter::new();
        m.sample(0, 10.0);
        m.sample(500_000_000, 30.0); // 0.5 s @ 10 W = 5 J
        m.sample(1_000_000_000, 30.0); // 0.5 s @ 30 W = 15 J
        assert!((m.energy_j() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn single_sample_zero_energy() {
        let mut m = EnergyMeter::new();
        m.sample(123, 99.0);
        assert_eq!(m.energy_j(), 0.0);
        assert_eq!(m.report().elapsed_s, 0.0);
        assert_eq!(m.report().mean_power_w, 0.0);
    }

    #[test]
    fn out_of_order_sample_adds_no_energy() {
        let mut m = EnergyMeter::new();
        m.sample(1_000_000, 10.0);
        m.sample(2_000_000, 10.0);
        let before = m.energy_j();
        m.sample(500_000, 1000.0); // stale timestamp
        assert_eq!(m.energy_j(), before);
    }

    #[test]
    fn edp_and_ed2p_relationship() {
        let mut m = EnergyMeter::new();
        m.sample(0, 40.0);
        m.sample(3_000_000_000, 40.0); // 3 s at 40 W → 120 J
        let r = m.report();
        assert!((r.edp - 360.0).abs() < 1e-6);
        assert!((r.ed2p - 1080.0).abs() < 1e-6);
    }

    #[test]
    fn energy_at_least_idle_envelope() {
        // For any schedule, using the model: energy >= p_idle * elapsed.
        let model = PowerModel::new(15.0, 3.0);
        let mut m = EnergyMeter::new();
        let mut t = 0u64;
        for step in 0..100u64 {
            let cores = (step % 7) as usize;
            let intensity = ((step % 11) as f64) / 10.0;
            m.sample(t, model.power(cores, intensity));
            t += 10_000_000;
        }
        m.sample(t, model.power(0, 0.0));
        let r = m.report();
        assert!(r.energy_j >= model.p_idle * r.elapsed_s - 1e-9);
    }
}
