//! Exponentially weighted moving averages.
//!
//! Policies react to *recent* behaviour, not all-time aggregates. The EWMA
//! here supports both the classic fixed-α update and a time-aware variant
//! that decays by elapsed time, which is what the sampling listeners use so
//! that irregular sample spacing does not bias the average.

/// Exponentially weighted moving average with fixed smoothing factor.
///
/// `α ∈ (0, 1]`: larger α weights recent observations more heavily.
///
/// # Examples
///
/// ```
/// use lg_metrics::Ewma;
/// let mut e = Ewma::new(0.5);
/// e.update(10.0);
/// e.update(20.0);
/// assert!((e.value() - 15.0).abs() < 1e-12);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    initialized: bool,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha`.
    ///
    /// # Panics
    /// Panics if `alpha` is not in `(0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "alpha must be in (0, 1], got {alpha}"
        );
        Self {
            alpha,
            value: 0.0,
            initialized: false,
        }
    }

    /// Creates an EWMA whose α corresponds to a half-life of `n` updates:
    /// after `n` updates the weight of an old observation halves.
    pub fn with_halflife(n: f64) -> Self {
        assert!(n > 0.0, "half-life must be positive");
        Self::new(1.0 - 0.5f64.powf(1.0 / n))
    }

    /// Folds an observation into the average. The first observation seeds
    /// the average exactly (no bias toward zero).
    #[inline]
    pub fn update(&mut self, x: f64) {
        if self.initialized {
            self.value += self.alpha * (x - self.value);
        } else {
            self.value = x;
            self.initialized = true;
        }
    }

    /// Current value of the average; 0 before any update.
    #[inline]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Whether at least one observation has been folded.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// Resets to the uninitialized state.
    pub fn reset(&mut self) {
        self.value = 0.0;
        self.initialized = false;
    }
}

/// Time-aware EWMA: decay is proportional to elapsed time rather than to
/// update count, so irregularly spaced samples are weighted correctly.
///
/// The decay constant is expressed as a *time constant* τ: an observation's
/// weight falls to `1/e` after τ nanoseconds.
#[derive(Clone, Copy, Debug)]
pub struct TimeEwma {
    tau_ns: f64,
    value: f64,
    last_t_ns: u64,
    initialized: bool,
}

impl TimeEwma {
    /// Creates a time-aware EWMA with time constant `tau_ns` nanoseconds.
    ///
    /// # Panics
    /// Panics if `tau_ns` is zero.
    pub fn new(tau_ns: u64) -> Self {
        assert!(tau_ns > 0, "time constant must be positive");
        Self {
            tau_ns: tau_ns as f64,
            value: 0.0,
            last_t_ns: 0,
            initialized: false,
        }
    }

    /// Folds an observation taken at absolute time `t_ns`.
    ///
    /// Out-of-order samples (t earlier than the previous sample) are folded
    /// with zero elapsed time, i.e. minimal weight change.
    pub fn update(&mut self, t_ns: u64, x: f64) {
        if !self.initialized {
            self.value = x;
            self.last_t_ns = t_ns;
            self.initialized = true;
            return;
        }
        let dt = t_ns.saturating_sub(self.last_t_ns) as f64;
        let w = 1.0 - (-dt / self.tau_ns).exp();
        self.value += w * (x - self.value);
        self.last_t_ns = self.last_t_ns.max(t_ns);
    }

    /// Current value of the average; 0 before any update.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Whether at least one observation has been folded.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_update_seeds_exactly() {
        let mut e = Ewma::new(0.1);
        e.update(42.0);
        assert_eq!(e.value(), 42.0);
    }

    #[test]
    fn converges_to_constant_input() {
        let mut e = Ewma::new(0.2);
        for _ in 0..200 {
            e.update(7.5);
        }
        assert!((e.value() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn tracks_step_change() {
        let mut e = Ewma::new(0.5);
        for _ in 0..10 {
            e.update(0.0);
        }
        for _ in 0..20 {
            e.update(100.0);
        }
        assert!((e.value() - 100.0).abs() < 0.01);
    }

    #[test]
    fn halflife_semantics() {
        let mut e = Ewma::with_halflife(10.0);
        e.update(1.0);
        // After exactly 10 further updates of 0, the value should be ~0.5.
        for _ in 0..10 {
            e.update(0.0);
        }
        assert!((e.value() - 0.5).abs() < 0.02, "value {}", e.value());
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1]")]
    fn rejects_bad_alpha() {
        let _ = Ewma::new(0.0);
    }

    #[test]
    fn alpha_one_tracks_last_value() {
        let mut e = Ewma::new(1.0);
        e.update(3.0);
        e.update(9.0);
        assert_eq!(e.value(), 9.0);
    }

    #[test]
    fn time_ewma_decays_by_elapsed_time() {
        let mut e = TimeEwma::new(1_000);
        e.update(0, 0.0);
        // One full time constant later, weight = 1 - 1/e ≈ 0.632.
        e.update(1_000, 1.0);
        assert!((e.value() - 0.6321).abs() < 1e-3, "value {}", e.value());
    }

    #[test]
    fn time_ewma_zero_dt_barely_moves() {
        let mut e = TimeEwma::new(1_000_000);
        e.update(100, 0.0);
        e.update(100, 1000.0);
        assert!(e.value().abs() < 1e-9);
    }

    #[test]
    fn time_ewma_out_of_order_is_safe() {
        let mut e = TimeEwma::new(1_000);
        e.update(5_000, 10.0);
        e.update(1_000, 50.0); // earlier timestamp: folded with dt = 0
        assert!((e.value() - 10.0).abs() < 1e-9);
    }
}
