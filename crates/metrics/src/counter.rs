//! Named atomic counters and gauges.
//!
//! The observation layer needs shared, hot-path-cheap integer metrics:
//! tasks spawned, steals, parks, parcels sent, bytes moved. A
//! [`CounterRegistry`] interns names once and hands out cloneable handles
//! backed by `Arc<AtomicU64>` / `Arc<AtomicI64>`, so updates are a single
//! atomic RMW with no lock and no lookup.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Cloneable handle to a monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct CounterHandle(Arc<AtomicU64>);

impl CounterHandle {
    /// Increments by 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Cloneable handle to a gauge (a signed value that may go up and down).
#[derive(Clone, Debug)]
pub struct GaugeHandle(Arc<AtomicI64>);

impl GaugeHandle {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative) and returns the new value.
    #[inline]
    pub fn add(&self, delta: i64) -> i64 {
        self.0.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Registry of named counters and gauges.
///
/// Lookup/creation takes a write lock; handle operations are lock-free.
/// Registries are cheap to share via `Arc`.
///
/// # Examples
///
/// ```
/// use lg_metrics::CounterRegistry;
/// let reg = CounterRegistry::new();
/// let steals = reg.counter("scheduler.steals");
/// steals.inc();
/// steals.add(4);
/// assert_eq!(reg.counter("scheduler.steals").get(), 5);
/// ```
#[derive(Default)]
pub struct CounterRegistry {
    counters: RwLock<HashMap<String, CounterHandle>>,
    gauges: RwLock<HashMap<String, GaugeHandle>>,
}

impl std::fmt::Debug for CounterRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CounterRegistry")
            .field("counters", &self.counters.read().len())
            .field("gauges", &self.gauges.read().len())
            .finish()
    }
}

impl CounterRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, creating it at zero if absent.
    pub fn counter(&self, name: &str) -> CounterHandle {
        if let Some(h) = self.counters.read().get(name) {
            return h.clone();
        }
        let mut w = self.counters.write();
        w.entry(name.to_owned())
            .or_insert_with(|| CounterHandle(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Returns the gauge named `name`, creating it at zero if absent.
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        if let Some(h) = self.gauges.read().get(name) {
            return h.clone();
        }
        let mut w = self.gauges.write();
        w.entry(name.to_owned())
            .or_insert_with(|| GaugeHandle(Arc::new(AtomicI64::new(0))))
            .clone()
    }

    /// Snapshot of every counter as `(name, value)`, sorted by name.
    pub fn snapshot_counters(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .counters
            .read()
            .iter()
            .map(|(k, h)| (k.clone(), h.get()))
            .collect();
        v.sort();
        v
    }

    /// Snapshot of every gauge as `(name, value)`, sorted by name.
    pub fn snapshot_gauges(&self) -> Vec<(String, i64)> {
        let mut v: Vec<(String, i64)> = self
            .gauges
            .read()
            .iter()
            .map(|(k, h)| (k.clone(), h.get()))
            .collect();
        v.sort();
        v
    }

    /// Number of distinct counters registered.
    pub fn counter_count(&self) -> usize {
        self.counters.read().len()
    }

    /// Number of distinct gauges registered.
    pub fn gauge_count(&self) -> usize {
        self.gauges.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn same_name_same_counter() {
        let reg = CounterRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(9);
        assert_eq!(a.get(), 10);
        assert_eq!(reg.counter_count(), 1);
    }

    #[test]
    fn distinct_names_distinct_counters() {
        let reg = CounterRegistry::new();
        reg.counter("a").inc();
        reg.counter("b").add(2);
        let snap = reg.snapshot_counters();
        assert_eq!(snap, vec![("a".into(), 1), ("b".into(), 2)]);
    }

    #[test]
    fn gauge_up_and_down() {
        let reg = CounterRegistry::new();
        let g = reg.gauge("active");
        assert_eq!(g.add(5), 5);
        assert_eq!(g.add(-2), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn counters_and_gauges_namespaces_are_disjoint() {
        let reg = CounterRegistry::new();
        reg.counter("n").add(1);
        reg.gauge("n").set(100);
        assert_eq!(reg.counter("n").get(), 1);
        assert_eq!(reg.gauge("n").get(), 100);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let reg = StdArc::new(CounterRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("shared");
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("shared").get(), 80_000);
    }

    #[test]
    fn snapshot_is_sorted() {
        let reg = CounterRegistry::new();
        for name in ["zeta", "alpha", "mid"] {
            reg.counter(name).inc();
        }
        let names: Vec<String> = reg
            .snapshot_counters()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}
