//! Named atomic counters and gauges.
//!
//! The observation layer needs shared, hot-path-cheap integer metrics:
//! tasks spawned, steals, parks, parcels sent, bytes moved. A
//! [`CounterRegistry`] interns names once and hands out cloneable handles,
//! so updates are a single atomic RMW with no lock and no lookup. Counters
//! come in two storages behind the same handle type: a single atomic cell
//! (the default — cheapest when one thread owns the counter) and an
//! opt-in striped cell array ([`crate::StripedCounter`], via
//! [`CounterRegistry::striped_counter`]) for counters hammered from many
//! threads at once, where a shared cell would ping-pong its cache line.

use crate::stripe::{StripedCounter, StripedVersion};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

#[derive(Debug)]
enum CounterStorage {
    Single(AtomicU64),
    // Boxed: a stripe array is ~4 KiB of padded cells, and most counters
    // are single-cell — don't make every handle allocation pay for it.
    Striped(Box<StripedCounter>),
}

/// Cloneable handle to a monotonically increasing counter.
///
/// Backed either by one atomic cell or, when created through
/// [`CounterRegistry::striped_counter`], by per-thread striped cells whose
/// updates never contend across threads (reads fold the stripes).
///
/// Every update also bumps its registry's write-generation stamp
/// ([`CounterRegistry::write_version`]) so incremental snapshot capture can
/// skip registries that saw no writes since the last round.
#[derive(Clone, Debug)]
pub struct CounterHandle {
    storage: Arc<CounterStorage>,
    version: Arc<StripedVersion>,
    arms: Arc<ArmSet>,
}

impl CounterHandle {
    /// Increments by 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        match &*self.storage {
            CounterStorage::Single(a) => {
                a.fetch_add(n, Ordering::Relaxed);
            }
            CounterStorage::Striped(s) => s.add(n),
        }
        // Release-bump after the value write: a reader that observes the
        // new generation is guaranteed to read the new value.
        self.version.bump();
        // Write-side threshold arms: one relaxed load on the (usual)
        // unarmed path.
        if self.arms.count.load(Ordering::Relaxed) != 0 {
            self.arms.record(n);
        }
    }

    /// Current value (striped counters fold their stripes).
    #[inline]
    pub fn get(&self) -> u64 {
        match &*self.storage {
            CounterStorage::Single(a) => a.load(Ordering::Relaxed),
            CounterStorage::Striped(s) => s.sum(),
        }
    }

    /// Whether this counter uses striped storage.
    pub fn is_striped(&self) -> bool {
        matches!(&*self.storage, CounterStorage::Striped(_))
    }

    /// Arms a write-side high-water mark: after `delta` more units have
    /// been added (across all clones of this handle), the arm latches
    /// [`HighWaterArm::fired`] and runs its hook — *from the writing
    /// thread, at add time*. A consumer re-arms with
    /// [`HighWaterArm::rearm`]; increments keep accumulating while the
    /// arm is latched, so a late re-arm measures from the true current
    /// total, not from the crossing.
    ///
    /// This is the push alternative to polling [`CounterHandle::get`]:
    /// an idle counter costs its watchers nothing, and an armed-but-quiet
    /// counter costs each `add` one extra relaxed load.
    ///
    /// # Panics
    /// Panics if `delta` is zero.
    pub fn arm_high_water(&self, delta: u64) -> HighWaterArm {
        assert!(delta > 0, "high-water delta must be positive");
        let inner = Arc::new(ArmInner {
            running: AtomicU64::new(0),
            level: AtomicU64::new(delta),
            fired: AtomicBool::new(false),
            hook: Mutex::new(None),
        });
        {
            let mut list = self.arms.list.write();
            list.push(inner.clone());
            self.arms.count.store(list.len(), Ordering::Release);
        }
        HighWaterArm {
            set: self.arms.clone(),
            inner,
        }
    }
}

/// The arms attached to one counter. `count` mirrors `list.len()` so the
/// write hot path can skip the lock entirely while unarmed.
#[derive(Debug, Default)]
struct ArmSet {
    count: AtomicUsize,
    list: RwLock<Vec<Arc<ArmInner>>>,
}

impl ArmSet {
    #[cold]
    fn record(&self, n: u64) {
        for arm in self.list.read().iter() {
            // Accumulate unconditionally (also while latched): `running`
            // is the arm's private total, which keeps re-arm levels
            // aligned with every add that ever happened.
            let total = arm.running.fetch_add(n, Ordering::AcqRel) + n;
            if total >= arm.level.load(Ordering::Acquire) && !arm.fired.swap(true, Ordering::AcqRel)
            {
                if let Some(hook) = &*arm.hook.lock() {
                    hook();
                }
            }
        }
    }
}

struct ArmInner {
    /// Units added since arming (never reset; levels move instead).
    running: AtomicU64,
    /// Latch when `running` reaches this.
    level: AtomicU64,
    fired: AtomicBool,
    /// Run once per latch, from the crossing writer's thread. Must be
    /// cheap and non-blocking (typical: bump a pending flag, wake an
    /// engine).
    hook: Mutex<Option<Box<dyn Fn() + Send + Sync>>>,
}

impl std::fmt::Debug for ArmInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArmInner")
            .field("running", &self.running)
            .field("level", &self.level)
            .field("fired", &self.fired)
            .finish_non_exhaustive()
    }
}

/// Consumer handle to a write-side high-water mark on a counter; created
/// by [`CounterHandle::arm_high_water`]. Cloneable (clones share the
/// latch).
#[derive(Clone, Debug)]
pub struct HighWaterArm {
    set: Arc<ArmSet>,
    inner: Arc<ArmInner>,
}

impl HighWaterArm {
    /// Installs the hook run (once per latch) from the thread whose add
    /// crossed the level. Replaces any previous hook.
    pub fn set_hook(&self, hook: impl Fn() + Send + Sync + 'static) {
        *self.inner.hook.lock() = Some(Box::new(hook));
    }

    /// True while latched (the level was crossed and no re-arm happened).
    pub fn fired(&self) -> bool {
        self.inner.fired.load(Ordering::Acquire)
    }

    /// Units added since arming.
    pub fn accumulated(&self) -> u64 {
        self.inner.running.load(Ordering::Acquire)
    }

    /// Consumes a latch: the next latch happens `delta` units after the
    /// total observed *now* — identical to a scan-style delta watch
    /// re-baselining at its firing check.
    ///
    /// # Panics
    /// Panics if `delta` is zero.
    pub fn rearm(&self, delta: u64) {
        assert!(delta > 0, "high-water delta must be positive");
        let base = self.inner.running.load(Ordering::Acquire);
        self.inner.level.store(base + delta, Ordering::Release);
        self.inner.fired.store(false, Ordering::Release);
    }

    /// Detaches the arm from its counter: subsequent adds no longer pay
    /// for it and the hook never runs again.
    pub fn disarm(&self) {
        let mut list = self.set.list.write();
        list.retain(|a| !Arc::ptr_eq(a, &self.inner));
        self.set.count.store(list.len(), Ordering::Release);
    }
}

/// Cloneable handle to a gauge (a signed value that may go up and down).
#[derive(Clone, Debug)]
pub struct GaugeHandle(Arc<AtomicI64>);

impl GaugeHandle {
    /// Sets the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative) and returns the new value.
    #[inline]
    pub fn add(&self, delta: i64) -> i64 {
        self.0.fetch_add(delta, Ordering::Relaxed) + delta
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Registry of named counters and gauges.
///
/// Lookup/creation takes a write lock; handle operations are lock-free.
/// Registries are cheap to share via `Arc`.
///
/// # Examples
///
/// ```
/// use lg_metrics::CounterRegistry;
/// let reg = CounterRegistry::new();
/// let steals = reg.counter("scheduler.steals");
/// steals.inc();
/// steals.add(4);
/// assert_eq!(reg.counter("scheduler.steals").get(), 5);
/// ```
#[derive(Default)]
pub struct CounterRegistry {
    counters: RwLock<HashMap<String, CounterHandle>>,
    gauges: RwLock<HashMap<String, GaugeHandle>>,
    /// Bumped by every counter update (shared by all handles); readers
    /// compare folds to skip re-reading a quiescent registry.
    write_version: Arc<StripedVersion>,
    /// Bumped when a counter is created (the name set changed).
    structure: AtomicU64,
    sorted: Mutex<SortedHandles>,
}

#[derive(Default)]
struct SortedHandles {
    structure: u64,
    valid: bool,
    handles: Arc<Vec<(String, CounterHandle)>>,
}

impl std::fmt::Debug for CounterRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CounterRegistry")
            .field("counters", &self.counters.read().len())
            .field("gauges", &self.gauges.read().len())
            .finish()
    }
}

impl CounterRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_create(&self, name: &str, make: impl FnOnce() -> CounterStorage) -> CounterHandle {
        if let Some(h) = self.counters.read().get(name) {
            return h.clone();
        }
        let mut w = self.counters.write();
        if let Some(h) = w.get(name) {
            return h.clone();
        }
        let h = CounterHandle {
            storage: Arc::new(make()),
            version: self.write_version.clone(),
            arms: Arc::new(ArmSet::default()),
        };
        w.insert(name.to_owned(), h.clone());
        self.structure.fetch_add(1, Ordering::Release);
        h
    }

    /// Returns the counter named `name`, creating it at zero if absent.
    pub fn counter(&self, name: &str) -> CounterHandle {
        self.get_or_create(name, || CounterStorage::Single(AtomicU64::new(0)))
    }

    /// Returns the counter named `name`, creating it with striped storage
    /// if absent. Striped updates never contend across threads; reads fold
    /// the stripes. If the counter already exists (either storage), the
    /// existing handle is returned unchanged — storage is fixed at
    /// creation, so opt in at the registration site, not at use sites.
    pub fn striped_counter(&self, name: &str) -> CounterHandle {
        self.get_or_create(name, || CounterStorage::Striped(Box::default()))
    }

    /// Returns the gauge named `name`, creating it at zero if absent.
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        if let Some(h) = self.gauges.read().get(name) {
            return h.clone();
        }
        let mut w = self.gauges.write();
        w.entry(name.to_owned())
            .or_insert_with(|| GaugeHandle(Arc::new(AtomicI64::new(0))))
            .clone()
    }

    /// Snapshot of every counter as `(name, value)`, sorted by name.
    pub fn snapshot_counters(&self) -> Vec<(String, u64)> {
        self.sorted_handles()
            .iter()
            .map(|(k, h)| (k.clone(), h.get()))
            .collect()
    }

    /// Fold of the write-generation stamp: unchanged between two reads ⇔
    /// no counter update completed in between (a racing update shows up in
    /// the next fold instead — see [`crate::stripe::StripedVersion`]).
    pub fn write_version(&self) -> u64 {
        self.write_version.get()
    }

    /// Generation of the counter *name set*; bumped when a counter is
    /// created. Readers caching the sorted name table re-fetch it only
    /// when this moves.
    pub fn structure_version(&self) -> u64 {
        self.structure.load(Ordering::Acquire)
    }

    /// The interned, name-sorted counter handle table, shared behind an
    /// `Arc` and rebuilt only when [`structure_version`] moves — repeated
    /// snapshot rounds clone an `Arc` instead of re-collecting and
    /// re-sorting `String`s.
    ///
    /// [`structure_version`]: CounterRegistry::structure_version
    pub fn sorted_handles(&self) -> Arc<Vec<(String, CounterHandle)>> {
        // Read the structure generation *before* collecting, so a creation
        // racing the rebuild leaves a stale recorded generation and the
        // next call refreshes.
        let structure = self.structure_version();
        let mut cached = self.sorted.lock();
        if !cached.valid || cached.structure != structure {
            let mut v: Vec<(String, CounterHandle)> = self
                .counters
                .read()
                .iter()
                .map(|(k, h)| (k.clone(), h.clone()))
                .collect();
            v.sort_by(|a, b| a.0.cmp(&b.0));
            cached.handles = Arc::new(v);
            cached.structure = structure;
            cached.valid = true;
        }
        cached.handles.clone()
    }

    /// Snapshot of every gauge as `(name, value)`, sorted by name.
    pub fn snapshot_gauges(&self) -> Vec<(String, i64)> {
        let mut v: Vec<(String, i64)> = self
            .gauges
            .read()
            .iter()
            .map(|(k, h)| (k.clone(), h.get()))
            .collect();
        v.sort();
        v
    }

    /// Number of distinct counters registered.
    pub fn counter_count(&self) -> usize {
        self.counters.read().len()
    }

    /// Number of distinct gauges registered.
    pub fn gauge_count(&self) -> usize {
        self.gauges.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    #[test]
    fn same_name_same_counter() {
        let reg = CounterRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(9);
        assert_eq!(a.get(), 10);
        assert_eq!(reg.counter_count(), 1);
    }

    #[test]
    fn distinct_names_distinct_counters() {
        let reg = CounterRegistry::new();
        reg.counter("a").inc();
        reg.counter("b").add(2);
        let snap = reg.snapshot_counters();
        assert_eq!(snap, vec![("a".into(), 1), ("b".into(), 2)]);
    }

    #[test]
    fn gauge_up_and_down() {
        let reg = CounterRegistry::new();
        let g = reg.gauge("active");
        assert_eq!(g.add(5), 5);
        assert_eq!(g.add(-2), 3);
        g.set(-7);
        assert_eq!(g.get(), -7);
    }

    #[test]
    fn counters_and_gauges_namespaces_are_disjoint() {
        let reg = CounterRegistry::new();
        reg.counter("n").add(1);
        reg.gauge("n").set(100);
        assert_eq!(reg.counter("n").get(), 1);
        assert_eq!(reg.gauge("n").get(), 100);
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let reg = StdArc::new(CounterRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("shared");
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("shared").get(), 80_000);
    }

    #[test]
    fn striped_counter_shares_namespace_and_value() {
        let reg = CounterRegistry::new();
        let s = reg.striped_counter("hot");
        assert!(s.is_striped());
        s.add(5);
        // Plain lookup returns the same (striped) counter.
        let same = reg.counter("hot");
        assert!(same.is_striped());
        same.inc();
        assert_eq!(s.get(), 6);
        assert_eq!(reg.snapshot_counters(), vec![("hot".into(), 6)]);
        assert_eq!(reg.counter_count(), 1);
    }

    #[test]
    fn striped_opt_in_does_not_rewrite_existing_counter() {
        let reg = CounterRegistry::new();
        let plain = reg.counter("c");
        plain.add(3);
        let still_plain = reg.striped_counter("c");
        assert!(!still_plain.is_striped());
        assert_eq!(still_plain.get(), 3);
    }

    #[test]
    fn striped_concurrent_increments_do_not_lose_updates() {
        let reg = StdArc::new(CounterRegistry::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                let c = reg.striped_counter("shared");
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(reg.counter("shared").get(), 80_000);
    }

    #[test]
    fn write_version_moves_only_on_counter_writes() {
        let reg = CounterRegistry::new();
        let c = reg.counter("a");
        let v0 = reg.write_version();
        assert_eq!(reg.write_version(), v0, "idle registry is stable");
        c.add(3);
        let v1 = reg.write_version();
        assert!(v1 > v0);
        reg.gauge("g").set(9); // gauges are not snapshot state
        reg.counter("a"); // lookups don't count as writes
        assert_eq!(reg.write_version(), v1);
        reg.striped_counter("hot").inc();
        assert!(reg.write_version() > v1);
    }

    #[test]
    fn sorted_handles_cache_is_reused_until_structure_changes() {
        let reg = CounterRegistry::new();
        reg.counter("b").inc();
        reg.counter("a").inc();
        let s0 = reg.structure_version();
        let t1 = reg.sorted_handles();
        let t2 = reg.sorted_handles();
        assert!(StdArc::ptr_eq(&t1, &t2), "no structural change: same table");
        assert_eq!(reg.structure_version(), s0);
        let names: Vec<&str> = t1.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "b"]);
        reg.counter("c");
        assert!(reg.structure_version() > s0);
        let t3 = reg.sorted_handles();
        assert!(!StdArc::ptr_eq(&t1, &t3));
        assert_eq!(t3.len(), 3);
    }

    #[test]
    fn high_water_arm_latches_on_crossing() {
        let reg = CounterRegistry::new();
        let c = reg.counter("x");
        let arm = c.arm_high_water(10);
        c.add(9);
        assert!(!arm.fired());
        c.add(1);
        assert!(arm.fired());
        // Latched, not repeating: further adds keep it latched.
        c.add(100);
        assert!(arm.fired());
        assert_eq!(arm.accumulated(), 110);
    }

    #[test]
    fn high_water_rearm_measures_from_current_total() {
        let reg = CounterRegistry::new();
        let c = reg.counter("x");
        let arm = c.arm_high_water(10);
        c.add(25); // latched at 10, accumulated 25
        assert!(arm.fired());
        arm.rearm(10); // next latch at 35
        assert!(!arm.fired());
        c.add(9);
        assert!(!arm.fired());
        c.add(1);
        assert!(arm.fired());
    }

    #[test]
    fn high_water_hook_runs_once_per_latch_from_writer() {
        let reg = CounterRegistry::new();
        let c = reg.counter("x");
        let arm = c.arm_high_water(5);
        let fires = StdArc::new(std::sync::atomic::AtomicU64::new(0));
        let f = fires.clone();
        arm.set_hook(move || {
            f.fetch_add(1, Ordering::Relaxed);
        });
        for _ in 0..20 {
            c.inc();
        }
        assert_eq!(fires.load(Ordering::Relaxed), 1);
        arm.rearm(5);
        for _ in 0..20 {
            c.inc();
        }
        assert_eq!(fires.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn disarm_detaches_from_the_write_path() {
        let reg = CounterRegistry::new();
        let c = reg.counter("x");
        let arm = c.arm_high_water(5);
        c.add(2);
        arm.disarm();
        c.add(100);
        assert!(!arm.fired());
        assert_eq!(arm.accumulated(), 2);
    }

    #[test]
    fn arms_see_adds_from_all_handle_clones() {
        let reg = CounterRegistry::new();
        let a = reg.striped_counter("hot");
        let arm = a.arm_high_water(8);
        let b = reg.counter("hot"); // same counter, separate handle
        b.add(4);
        a.add(4);
        assert!(arm.fired());
    }

    #[test]
    fn concurrent_armed_adds_latch_exactly_once() {
        let reg = StdArc::new(CounterRegistry::new());
        let c = reg.striped_counter("shared");
        let arm = c.arm_high_water(1_000);
        let fires = StdArc::new(std::sync::atomic::AtomicU64::new(0));
        let f = fires.clone();
        arm.set_hook(move || {
            f.fetch_add(1, Ordering::Relaxed);
        });
        let mut handles = Vec::new();
        for _ in 0..8 {
            let reg = reg.clone();
            handles.push(std::thread::spawn(move || {
                let c = reg.counter("shared");
                for _ in 0..10_000 {
                    c.inc();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(arm.accumulated(), 80_000);
        assert_eq!(fires.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn snapshot_is_sorted() {
        let reg = CounterRegistry::new();
        for name in ["zeta", "alpha", "mid"] {
            reg.counter(name).inc();
        }
        let names: Vec<String> = reg
            .snapshot_counters()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        assert_eq!(names, vec!["alpha", "mid", "zeta"]);
    }
}
