//! Real OS counter sources read from `/proc` (Linux).
//!
//! These complement the analytic power model with genuine host telemetry
//! where it exists: aggregate CPU time from `/proc/stat`, and the current
//! process's resident set size and thread count from `/proc/self/status`.
//! On non-Linux platforms, or when the files are unreadable, the sources
//! report nothing rather than failing — observation must never take the
//! application down.

use crate::sampler::Sampled;

/// Parsed first line of `/proc/stat` (aggregate jiffies per state).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuTimes {
    /// Normal user-mode time.
    pub user: u64,
    /// Niced user-mode time.
    pub nice: u64,
    /// Kernel-mode time.
    pub system: u64,
    /// Idle time.
    pub idle: u64,
    /// I/O wait time.
    pub iowait: u64,
}

impl CpuTimes {
    /// Total accounted jiffies.
    pub fn total(&self) -> u64 {
        self.user + self.nice + self.system + self.idle + self.iowait
    }

    /// Busy (non-idle, non-iowait) jiffies.
    pub fn busy(&self) -> u64 {
        self.user + self.nice + self.system
    }

    /// Parses the `cpu ...` aggregate line of `/proc/stat` content.
    /// Returns `None` if the content does not look like `/proc/stat`.
    pub fn parse(content: &str) -> Option<CpuTimes> {
        let line = content.lines().find(|l| l.starts_with("cpu "))?;
        let mut fields = line.split_ascii_whitespace().skip(1);
        let mut next = || fields.next().and_then(|f| f.parse::<u64>().ok());
        Some(CpuTimes {
            user: next()?,
            nice: next()?,
            system: next()?,
            idle: next()?,
            iowait: next().unwrap_or(0),
        })
    }

    /// Reads and parses `/proc/stat`; `None` off-Linux or on any error.
    pub fn read() -> Option<CpuTimes> {
        let content = std::fs::read_to_string("/proc/stat").ok()?;
        Self::parse(&content)
    }
}

/// Fields of interest from `/proc/self/status`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProcessStatus {
    /// Resident set size in kilobytes.
    pub vm_rss_kb: u64,
    /// Number of threads in the process.
    pub threads: u64,
    /// Voluntary context switches.
    pub voluntary_ctxt_switches: u64,
    /// Involuntary context switches.
    pub nonvoluntary_ctxt_switches: u64,
}

impl ProcessStatus {
    /// Parses `/proc/self/status`-formatted content.
    pub fn parse(content: &str) -> ProcessStatus {
        let mut s = ProcessStatus::default();
        for line in content.lines() {
            let mut parts = line.split_ascii_whitespace();
            match parts.next() {
                Some("VmRSS:") => {
                    s.vm_rss_kb = parts.next().and_then(|v| v.parse().ok()).unwrap_or(0)
                }
                Some("Threads:") => {
                    s.threads = parts.next().and_then(|v| v.parse().ok()).unwrap_or(0)
                }
                Some("voluntary_ctxt_switches:") => {
                    s.voluntary_ctxt_switches =
                        parts.next().and_then(|v| v.parse().ok()).unwrap_or(0)
                }
                Some("nonvoluntary_ctxt_switches:") => {
                    s.nonvoluntary_ctxt_switches =
                        parts.next().and_then(|v| v.parse().ok()).unwrap_or(0)
                }
                _ => {}
            }
        }
        s
    }

    /// Reads and parses `/proc/self/status`; default (zeros) on any error.
    pub fn read() -> ProcessStatus {
        std::fs::read_to_string("/proc/self/status")
            .map(|c| Self::parse(&c))
            .unwrap_or_default()
    }
}

/// [`Sampled`] source reporting system-wide CPU utilisation in `[0, 1]`,
/// computed as the busy fraction of jiffies since the previous sample.
pub struct CpuUtilSource {
    prev: parking_lot::Mutex<Option<CpuTimes>>,
}

impl CpuUtilSource {
    /// Creates the source.
    pub fn new() -> Self {
        Self {
            prev: parking_lot::Mutex::new(None),
        }
    }
}

impl Default for CpuUtilSource {
    fn default() -> Self {
        Self::new()
    }
}

impl Sampled for CpuUtilSource {
    fn name(&self) -> &str {
        "os.cpu_util"
    }

    fn sample(&self, out: &mut Vec<(String, f64)>) {
        let Some(now) = CpuTimes::read() else { return };
        let mut prev = self.prev.lock();
        if let Some(p) = *prev {
            let dt = now.total().saturating_sub(p.total());
            let db = now.busy().saturating_sub(p.busy());
            if dt > 0 {
                out.push((String::new(), db as f64 / dt as f64));
            }
        }
        *prev = Some(now);
    }
}

/// [`Sampled`] source reporting this process's RSS (kB) and thread count.
pub struct ProcessSource;

impl Sampled for ProcessSource {
    fn name(&self) -> &str {
        "proc"
    }

    fn sample(&self, out: &mut Vec<(String, f64)>) {
        let s = ProcessStatus::read();
        if s.threads > 0 {
            out.push(("rss_kb".into(), s.vm_rss_kb as f64));
            out.push(("threads".into(), s.threads as f64));
            out.push(("ctxt_voluntary".into(), s.voluntary_ctxt_switches as f64));
            out.push((
                "ctxt_involuntary".into(),
                s.nonvoluntary_ctxt_switches as f64,
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE_STAT: &str = "\
cpu  74608 2520 24433 1117073 6176 4054 0 0 0 0
cpu0 37304 1260 12216 558536 3088 2027 0 0 0 0
intr 12345
ctxt 67890
";

    #[test]
    fn parses_proc_stat() {
        let t = CpuTimes::parse(SAMPLE_STAT).unwrap();
        assert_eq!(t.user, 74608);
        assert_eq!(t.nice, 2520);
        assert_eq!(t.system, 24433);
        assert_eq!(t.idle, 1117073);
        assert_eq!(t.iowait, 6176);
        assert_eq!(t.busy(), 74608 + 2520 + 24433);
    }

    #[test]
    fn rejects_garbage() {
        assert!(CpuTimes::parse("not a stat file").is_none());
        assert!(CpuTimes::parse("").is_none());
        // per-cpu line without the aggregate must not match
        assert!(CpuTimes::parse("cpu0 1 2 3 4 5").is_none());
    }

    #[test]
    fn parses_short_stat_line() {
        // Ancient kernels lack iowait; parser must tolerate 4 fields.
        let t = CpuTimes::parse("cpu  1 2 3 4").unwrap();
        assert_eq!(t.iowait, 0);
        assert_eq!(t.total(), 10);
    }

    const SAMPLE_STATUS: &str = "\
Name:\tlg-test
VmRSS:\t  123456 kB
Threads:\t8
voluntary_ctxt_switches:\t100
nonvoluntary_ctxt_switches:\t7
";

    #[test]
    fn parses_proc_status() {
        let s = ProcessStatus::parse(SAMPLE_STATUS);
        assert_eq!(s.vm_rss_kb, 123456);
        assert_eq!(s.threads, 8);
        assert_eq!(s.voluntary_ctxt_switches, 100);
        assert_eq!(s.nonvoluntary_ctxt_switches, 7);
    }

    #[test]
    fn missing_fields_default_to_zero() {
        let s = ProcessStatus::parse("Name:\tx\n");
        assert_eq!(s, ProcessStatus::default());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn live_read_works_on_linux() {
        let t = CpuTimes::read().expect("/proc/stat should parse on Linux");
        assert!(t.total() > 0);
        let s = ProcessStatus::read();
        assert!(s.threads >= 1);
        assert!(s.vm_rss_kb > 0);
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn cpu_util_source_in_unit_range() {
        let src = CpuUtilSource::new();
        let mut out = Vec::new();
        src.sample(&mut out); // seeds prev
        std::thread::sleep(std::time::Duration::from_millis(30));
        // Burn a little CPU so util is definitely nonzero on an idle box.
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        out.clear();
        src.sample(&mut out);
        if let Some((_, util)) = out.first() {
            assert!((0.0..=1.0).contains(util), "util {util}");
        }
    }
}
