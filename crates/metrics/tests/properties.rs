//! Property-based tests for the statistics primitives.

use lg_metrics::{
    EnergyMeter, Ewma, Histogram, SlidingWindow, StripedCounter, TimeSeries, Welford,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    #[test]
    fn welford_min_max_sum_exact(xs in proptest::collection::vec(-1e9f64..1e9, 1..300)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.update(x);
        }
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(w.min(), min);
        prop_assert_eq!(w.max(), max);
        let sum: f64 = xs.iter().sum();
        prop_assert!((w.sum() - sum).abs() <= 1e-6 * (1.0 + sum.abs()));
    }

    #[test]
    fn welford_variance_non_negative(xs in proptest::collection::vec(-1e12f64..1e12, 0..100)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.update(x);
        }
        prop_assert!(w.population_variance() >= 0.0);
        prop_assert!(w.sample_variance() >= 0.0);
    }

    #[test]
    fn histogram_merge_commutes(
        a in proptest::collection::vec(0u64..1_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let build = |xs: &[u64]| {
            let mut h = Histogram::new();
            xs.iter().for_each(|&v| h.record(v));
            h
        };
        let mut ab = build(&a);
        ab.merge(&build(&b));
        let mut ba = build(&b);
        ba.merge(&build(&a));
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert_eq!(ab.min(), ba.min());
        prop_assert_eq!(ab.max(), ba.max());
        prop_assert_eq!(ab.p50(), ba.p50());
        prop_assert_eq!(ab.p99(), ba.p99());
    }

    #[test]
    fn histogram_relative_error_bounded(values in proptest::collection::vec(16u64..u64::MAX / 4, 1..200)) {
        // Every recorded value's bucket lower bound is within 1/16 of it.
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        for (lb, count) in h.iter_buckets() {
            prop_assert!(count > 0);
            // lb is a valid representative: some recorded value >= lb.
            prop_assert!(values.iter().any(|&v| v >= lb));
        }
    }

    #[test]
    fn ewma_stays_within_input_hull(alpha in 0.01f64..1.0, xs in proptest::collection::vec(-100f64..100.0, 1..100)) {
        let mut e = Ewma::new(alpha);
        let lo = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for &x in &xs {
            e.update(x);
            prop_assert!(e.value() >= lo - 1e-9 && e.value() <= hi + 1e-9);
        }
    }

    #[test]
    fn sliding_window_mean_in_hull(cap in 1usize..64, xs in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
        let mut w = SlidingWindow::new(cap);
        for &x in &xs {
            w.push(x);
            prop_assert!(w.len() <= cap);
            prop_assert!(w.mean() >= w.min() - 1e-9);
            prop_assert!(w.mean() <= w.max() + 1e-9);
        }
    }

    #[test]
    fn timeseries_extent_preserved(n in 1usize..2000) {
        let mut ts = TimeSeries::new(64);
        for i in 0..n as u64 {
            ts.push(i * 10, i as f64);
        }
        prop_assert!(ts.len() <= 64);
        prop_assert_eq!(ts.total_pushed(), n as u64);
        prop_assert_eq!(ts.first().unwrap().0, 0);
        let stride = ts.stride();
        prop_assert!(ts.last().unwrap().0 + stride * 10 >= (n as u64 - 1) * 10);
    }

    #[test]
    fn sharded_welford_merge_matches_sequential(
        xs in proptest::collection::vec(1f64..1e9, 1..400),
        stripes in proptest::collection::vec(0usize..8, 1..400),
    ) {
        // Any partition of the sample stream across stripes, merged with
        // the parallel-Welford combine, must agree with one sequential
        // accumulator on count/sum exactly and mean/variance/min/max
        // within FP tolerance. This is the invariant the sharded
        // ProfileListener relies on: snapshots are interleaving-blind.
        let mut sequential = Welford::new();
        let mut parts: Vec<Welford> = (0..8).map(|_| Welford::new()).collect();
        for (i, &x) in xs.iter().enumerate() {
            sequential.update(x);
            parts[stripes[i % stripes.len()]].update(x);
        }
        let mut merged = Welford::new();
        for p in &parts {
            merged.merge(p);
        }
        prop_assert_eq!(merged.count(), sequential.count());
        prop_assert_eq!(merged.min(), sequential.min());
        prop_assert_eq!(merged.max(), sequential.max());
        let rel = |a: f64, b: f64| (a - b).abs() / (1.0 + b.abs());
        prop_assert!(rel(merged.sum(), sequential.sum()) < 1e-9);
        prop_assert!(rel(merged.mean(), sequential.mean()) < 1e-9);
        prop_assert!(
            rel(merged.population_variance(), sequential.population_variance()) < 1e-6,
            "merged {} vs sequential {}",
            merged.population_variance(),
            sequential.population_variance()
        );
    }

    #[test]
    fn striped_counter_sum_is_exact(adds in proptest::collection::vec(0u64..1_000, 1..64)) {
        // Single-threaded: every add lands in one stripe; sum folds them.
        let c = StripedCounter::new();
        for &n in &adds {
            c.add(n);
        }
        prop_assert_eq!(c.sum(), adds.iter().sum::<u64>());
    }

    #[test]
    fn energy_meter_monotone_and_bounded(
        samples in proptest::collection::vec((0u64..1_000_000, 0f64..500.0), 2..100),
    ) {
        let mut sorted = samples.clone();
        sorted.sort_by_key(|s| s.0);
        let mut m = EnergyMeter::new();
        let mut last_energy = 0.0;
        let max_power = sorted.iter().map(|s| s.1).fold(0.0, f64::max);
        for &(t, p) in &sorted {
            m.sample(t, p);
            prop_assert!(m.energy_j() >= last_energy - 1e-12, "energy decreased");
            last_energy = m.energy_j();
        }
        let bound = max_power * m.elapsed_s();
        prop_assert!(m.energy_j() <= bound + 1e-9, "{} > {}", m.energy_j(), bound);
    }
}
