//! Aligned-text tables and CSV output for the experiment harness.
//!
//! Deliberately tiny: the evaluation's presentation layer is plain text
//! (stdout) plus CSV files under `target/experiments/` that external
//! plotting tools can consume.

use std::io::Write as _;
use std::path::{Path, PathBuf};

/// A simple column-aligned table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    ///
    /// # Panics
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: appends a row of displayable values.
    pub fn push<D: std::fmt::Display>(&mut self, cells: &[D]) {
        self.row(&cells.iter().map(|c| c.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (headers + rows).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for row in &self.rows {
            let escaped: Vec<String> = row
                .iter()
                .map(|c| {
                    if c.contains(',') || c.contains('"') {
                        format!("\"{}\"", c.replace('"', "\"\""))
                    } else {
                        c.clone()
                    }
                })
                .collect();
            out.push_str(&escaped.join(","));
            out.push('\n');
        }
        out
    }
}

/// Directory experiment outputs are written to.
pub fn output_dir() -> PathBuf {
    let dir = Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir).expect("failed to create target/experiments");
    dir
}

/// Writes a table's CSV form to `target/experiments/<name>.csv` and
/// returns the path.
pub fn write_csv(table: &Table, name: &str) -> PathBuf {
    let path = output_dir().join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path).expect("failed to create CSV file");
    f.write_all(table.to_csv().as_bytes())
        .expect("failed to write CSV");
    path
}

/// Renders an [`IntrospectionSnapshot`] as a table: concurrency gauges,
/// then registered metrics, then counters, then per-task profiles — the
/// standard "state of the world" block report writers embed.
pub fn snapshot_table(snap: &lg_core::IntrospectionSnapshot) -> Table {
    let mut t = Table::new(
        format!(
            "Snapshot @ {:.6}s (seq {})",
            snap.t_ns as f64 / 1e9,
            snap.seq
        ),
        &["kind", "name", "value"],
    );
    t.push(&[
        "gauge".to_string(),
        "active_tasks".into(),
        snap.active_tasks.to_string(),
    ]);
    t.push(&[
        "gauge".to_string(),
        "online_workers".into(),
        snap.online_workers.to_string(),
    ]);
    t.push(&[
        "gauge".to_string(),
        "peak_tasks".into(),
        snap.peak_tasks.to_string(),
    ]);
    t.push(&[
        "gauge".to_string(),
        "total_completed".into(),
        snap.total_completed.to_string(),
    ]);
    for (name, value) in snap.metrics() {
        let v = value.map_or_else(|| "-".into(), fmt_f);
        t.push(&["metric".to_string(), name.to_string(), v]);
    }
    for (name, value) in snap.counters() {
        t.push(&["counter".to_string(), name.to_string(), value.to_string()]);
    }
    for p in snap.profiles() {
        t.push(&[
            "profile".to_string(),
            p.name.clone(),
            format!("count={} mean={}ns", p.count, fmt_f(p.mean_ns)),
        ]);
    }
    t
}

/// Formats a float with engineering-style precision for tables.
pub fn fmt_f(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.2e}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push(&["a", "1"]);
        t.push(&["longer", "22"]);
        let r = t.render();
        assert!(r.contains("== Demo =="));
        assert!(r.contains("name"));
        let lines: Vec<&str> = r.lines().collect();
        // All data lines the same width.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["has,comma".into(), "has\"quote".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn fmt_f_ranges() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1234.6), "1235");
        assert_eq!(fmt_f(42.25), "42.2");
        assert_eq!(fmt_f(1.5), "1.500");
        assert_eq!(fmt_f(0.0001), "1.00e-4");
    }

    #[test]
    fn write_csv_creates_file() {
        let mut t = Table::new("w", &["c"]);
        t.push(&[7]);
        let p = write_csv(&t, "unit_test_report");
        assert!(p.exists());
        let content = std::fs::read_to_string(p).unwrap();
        assert_eq!(content, "c\n7\n");
    }
}
