//! # lg-bench — experiment harness and reporting
//!
//! Regenerates every table and figure of the reconstructed evaluation (see
//! DESIGN.md §8 and EXPERIMENTS.md). The `experiments` binary exposes one
//! subcommand per artifact (`fig1` … `fig10`, `tbl1` … `tbl3`, or `all`);
//! each writes a CSV under `target/experiments/` and prints an aligned
//! table to stdout.
//!
//! The [`report`] module holds the tiny table/CSV writers; [`experiments`]
//! holds one module per experiment.

#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use report::{write_csv, Table};
