//! Figure 10 — multi-tenancy: static machine partitions vs the arbiter,
//! across load mixes and through a noisy-neighbor storm.
//!
//! Two full looking-glass tenants share one 32-thread machine: a
//! latency-SLO serving tenant (its bulkhead limit is the arbitrated
//! thread knob — one concurrency slot per worker) and a batch tenant on
//! a simulated machine slice ([`lg_sim::MachineShares`]), stepped in
//! lockstep with the serving clock via
//! [`lg_sim::SimRuntime::run_until`]. The comparison:
//!
//! * **static-S** — a fixed partition: S bulkhead slots for serve,
//!   `32 − S` cores for batch, no governor. Each partition wins at the
//!   mix it was sized for and loses elsewhere.
//! * **adaptive** — the [`lg_core::Arbiter`] re-splits the machine every
//!   control round: weighted fair share, latency-over-batch preemption
//!   when the serve window p99 crosses its SLO, a machine power
//!   envelope over the batch slice's `batch.power_w` gauge, and
//!   noisy-neighbor quarantine keyed on the tenant's own watchdog
//!   rollbacks.
//!
//! `LG_CHAOS=1` adds the noisy-neighbor storm: mid-run the batch
//! arrivals turn into bandwidth bombs and a selfish tenant-local policy
//! (`greedy-scale-up`) doubles the batch thread cap on backlog. The
//! grab adds power but no throughput; the batch tenant's efficiency
//! watchdog rolls it back, the rollback record lands the tenant in
//! quarantine, and the arbiter re-asserts its floor every round while
//! the envelope recovers. `adaptive-noq` runs the same storm with the
//! watchdog and quarantine disabled — the degradation the governor is
//! preventing.
//!
//! The **mixed serve+DAG matrix** ([`simulate_mixed`]) colocates the
//! serving tenant with a [`DagTenant`] draining a wide stencil DAG and
//! compares the two governor signal paths end to end:
//!
//! * **pressure-only** — both tenants publish the legacy scalar
//!   ([`TenantSpec::with_pressure`] for serve, nothing for the DAG), so
//!   the arbiter falls back to weighted fair share plus latency
//!   preemption. Off-spike, serve sits on a fair half of the machine it
//!   cannot use.
//! * **demand-aware** — each plane publishes its native
//!   [`lg_core::DemandProfile`]: serve declares a useful width from
//!   live queue depth and shed rate, the DAG declares its ready
//!   frontier. The utility-aware water-fill re-shares serve's unused
//!   width to the DAG while its frontier is wide and hands the threads
//!   back as the critical-path tail sets in.
//!
//! Deterministic: both tenants run in virtual time from seeded RNGs, so
//! a `(mix, policy, storm, seed)` tuple replays bit-for-bit.

use crate::report::{fmt_f, write_csv, Table};
use lg_core::{Arbiter, ArbiterConfig, Clock, RoundReport, SloClass, TenantSpec, VirtualClock};
use lg_sim::{MachineShares, MachineSpec};
use lg_workloads::dag::{generate, CostModel, DagConfig, DagPattern};
use lg_workloads::serve::{ArrivalGen, ArrivalPattern, ServeReport};
use lg_workloads::{BatchTenant, DagTenant, ServeTenant};
use std::sync::Arc;

/// How the machine is split between the tenants.
#[derive(Clone, Copy, Debug)]
pub enum TenancyPolicy {
    /// Fixed partition: this many serve threads, the rest to batch.
    Static(i64),
    /// The arbiter governs the split every control round.
    Adaptive,
    /// Arbiter without the watchdog/quarantine chain — the
    /// noisy-neighbor baseline.
    AdaptiveNoQuarantine,
}

impl TenancyPolicy {
    fn label(&self) -> String {
        match self {
            TenancyPolicy::Static(s) => format!("static-{s}"),
            TenancyPolicy::Adaptive => "adaptive".into(),
            TenancyPolicy::AdaptiveNoQuarantine => "adaptive-noq".into(),
        }
    }
}

/// Whether the batch tenant misbehaves mid-run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Storm {
    /// Calm batch arrivals throughout.
    Nominal,
    /// Memory-storm arrivals across `[horizon/4, horizon/2)` plus the
    /// greedy scale-up policy on the batch tenant.
    Chaos,
}

/// A load mix: serve requests/s (spiking 2× mid-run) and batch jobs/s.
#[derive(Clone, Copy, Debug)]
pub struct Mix {
    /// Base serving load, requests/s.
    pub serve_rps: f64,
    /// Batch job arrival rate, jobs/s (1 ms of one core each).
    pub batch_jps: f64,
}

/// Result of one (mix, policy, storm) run.
#[derive(Clone, Debug)]
pub struct TenancyResult {
    /// Policy label.
    pub policy: String,
    /// Aggregate goodput, 1 ms-core work units per second: in-deadline
    /// serve responses plus batch jobs completed within the horizon,
    /// over the horizon.
    pub aggregate_per_sec: f64,
    /// Serve tenant: fraction of offered requests served in deadline.
    pub serve_goodput_frac: f64,
    /// Serve tenant: end-to-end p99, ms.
    pub serve_p99_ms: f64,
    /// Batch tenant: jobs completed within the horizon.
    pub batch_good_jobs: u64,
    /// Times any tenant entered quarantine (0 without an arbiter).
    pub quarantine_entries: u64,
    /// Largest Σ allocations the arbiter ever granted in one round.
    pub max_total_allocated: i64,
    /// Arbiter control rounds run (0 for statics).
    pub rounds: u64,
    /// Full serving report (for invariants).
    pub serve: ServeReport,
}

impl PartialEq for TenancyResult {
    fn eq(&self, other: &Self) -> bool {
        self.policy == other.policy
            && self.aggregate_per_sec == other.aggregate_per_sec
            && self.serve_goodput_frac == other.serve_goodput_frac
            && self.serve_p99_ms == other.serve_p99_ms
            && self.batch_good_jobs == other.batch_good_jobs
            && self.quarantine_entries == other.quarantine_entries
            && self.max_total_allocated == other.max_total_allocated
            && self.rounds == other.rounds
            && self.serve == other.serve
    }
}

const TOTAL_THREADS: i64 = 32;
/// Serve knee and ceiling: the whole machine could serve if granted.
const SERVE_KNEE: usize = 32;
/// Batch ceiling — its machine slice's core count.
const BATCH_MAX: usize = 28;
const SERVE_MIN: i64 = 2;
const BATCH_MIN: i64 = 2;
/// Serve pressure threshold: the optional-deadline budget. Window p99
/// beyond this flags the tenant as under pressure.
const PRESSURE_P99_NS: f64 = 25e6;
/// Machine power envelope, W. Calm batch work draws well under this;
/// a storm-time greedy grab (every core burning at the stall floor)
/// pushes past it and the arbiter shrinks the machine budget.
const POWER_CAP_W: f64 = 130.0;
const QUARANTINE_ROUNDS: u64 = 8;
/// Greedy fires when batch backlog exceeds ~2 control rounds of
/// arrivals at the heaviest mix.
const GREEDY_BACKLOG: u64 = 250;
/// Efficiency (ops/J) collapse that convicts an actuation.
const WATCHDOG_DROP_FRAC: f64 = 0.25;

fn arrivals(base_per_sec: f64, horizon_ns: u64, seed: u64) -> Vec<lg_workloads::serve::Request> {
    ArrivalGen {
        pattern: ArrivalPattern::Spike {
            base_per_sec,
            factor: 2.0,
            start_ns: horizon_ns / 4,
            end_ns: horizon_ns / 2,
        },
        seed,
        optional_frac: 0.3,
        service_mean_ns: 1_000_000,
        mandatory_budget_ns: 50_000_000,
        optional_budget_ns: 25_000_000,
        dests: 4,
    }
    .generate(horizon_ns)
}

/// The batch tenant's machine slice: `BATCH_MAX` cores of a 32-core
/// host whose stall floor is raised to 1.0 — its kernels spin/prefetch
/// through stalls, so a bandwidth-bound core still burns full dynamic
/// power. That is what makes a storm-time thread grab pure waste.
fn batch_slice() -> MachineSpec {
    let host = MachineSpec {
        stall_intensity: 1.0,
        ..MachineSpec::server32()
    };
    MachineShares::new(host).sub_spec(BATCH_MAX)
}

/// Simulates one (mix, policy, storm) run over `horizon_ns`.
pub fn simulate(
    mix: Mix,
    horizon_ns: u64,
    policy: TenancyPolicy,
    storm: Storm,
    seed: u64,
) -> TenancyResult {
    let requests = arrivals(mix.serve_rps, horizon_ns, seed);
    let clock = Arc::new(VirtualClock::new());
    let mut serve = ServeTenant::new(clock.clone(), SERVE_KNEE, seed);
    let mut batch = BatchTenant::new(batch_slice(), mix.batch_jps, horizon_ns);
    if storm == Storm::Chaos {
        batch = batch.with_storm(horizon_ns / 4, horizon_ns / 2);
    }
    let control_period = serve.control_period_ns();

    let arbiter = match policy {
        TenancyPolicy::Static(serve_threads) => {
            // Fixed partition, no governor: pin both knobs and go.
            serve
                .lg()
                .knobs()
                .set("serve.bulkhead_limit", serve_threads);
            batch
                .lg()
                .knobs()
                .set("thread_cap", TOTAL_THREADS - serve_threads);
            None
        }
        TenancyPolicy::Adaptive | TenancyPolicy::AdaptiveNoQuarantine => {
            let quarantine = match policy {
                TenancyPolicy::Adaptive => QUARANTINE_ROUNDS,
                _ => 0,
            };
            serve.install_brownout(2.0 * PRESSURE_P99_NS);
            if storm == Storm::Chaos {
                batch.install_greedy(GREEDY_BACKLOG, control_period);
                if matches!(policy, TenancyPolicy::Adaptive) {
                    batch.install_watchdog(WATCHDOG_DROP_FRAC, control_period);
                }
            }
            let arb = Arbiter::with_instance(
                ArbiterConfig::new(TOTAL_THREADS)
                    .with_power_cap_w(POWER_CAP_W)
                    .with_quarantine_rounds(quarantine),
                lg_core::LookingGlass::builder()
                    .clock(clock.clone())
                    .build(),
            );
            arb.admit(
                serve.lg().clone(),
                TenantSpec::new("serve", SloClass::Latency, SERVE_KNEE as i64)
                    .with_min_threads(SERVE_MIN)
                    .with_pressure("serve.p99_window_ns", PRESSURE_P99_NS),
                "serve.bulkhead_limit",
            );
            arb.admit(
                batch.lg().clone(),
                TenantSpec::new("batch", SloClass::Batch, BATCH_MAX as i64)
                    .with_min_threads(BATCH_MIN)
                    .with_power_metric("batch.power_w"),
                "thread_cap",
            );
            Some(arb)
        }
    };

    let mut rounds: Vec<RoundReport> = Vec::new();
    let serve_report = serve.run(&requests, |t| {
        clock.advance_to(t);
        batch.step(t);
        if let Some(arb) = &arbiter {
            rounds.push(arb.control_round(t));
        }
    });

    let horizon_s = horizon_ns as f64 / 1e9;
    let aggregate_per_sec = (serve_report.goodput + batch.good_jobs()) as f64 / horizon_s;
    TenancyResult {
        policy: policy.label(),
        aggregate_per_sec,
        serve_goodput_frac: serve_report.goodput_frac(),
        serve_p99_ms: serve_report.p99_latency_ns as f64 / 1e6,
        batch_good_jobs: batch.good_jobs(),
        quarantine_entries: arbiter.as_ref().map_or(0, |a| a.quarantine_entries()),
        max_total_allocated: rounds.iter().map(|r| r.total_allocated).max().unwrap_or(0),
        rounds: rounds.len() as u64,
        serve: serve_report,
    }
}

/// Governor signal path for the mixed serve+DAG comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SignalMode {
    /// Legacy scalar path: serve publishes `with_pressure`, the DAG
    /// tenant publishes nothing — fair share plus latency preemption.
    PressureOnly,
    /// Native profiles: serve and DAG each install a demand probe, and
    /// the utility-aware water-fill follows the declared widths.
    DemandAware,
}

impl SignalMode {
    fn label(&self) -> &'static str {
        match self {
            SignalMode::PressureOnly => "pressure-only",
            SignalMode::DemandAware => "demand-aware",
        }
    }
}

/// DAG tenant floor and ceiling in the mixed scenario.
const DAG_MIN: i64 = 2;
const DAG_MAX: usize = 28;
/// Mixed-scenario serving load, requests/s (spikes 2× mid-run): light
/// enough that serve's useful width is well under its fair share
/// off-spike — the headroom the demand-aware governor re-shares.
const MIXED_SERVE_RPS: f64 = 4_000.0;

/// Result of one mixed serve+DAG run.
#[derive(Clone, Debug, PartialEq)]
pub struct MixedResult {
    /// Signal-path label.
    pub signal: String,
    /// DAG drain time (virtual ns of the last completion), ms.
    pub dag_makespan_ms: f64,
    /// Serve tenant: fraction of offered requests served in deadline.
    pub serve_goodput_frac: f64,
    /// Serve tenant: end-to-end p99, ms.
    pub serve_p99_ms: f64,
    /// Largest thread grant the DAG tenant ever held.
    pub peak_dag_threads: i64,
    /// DAG tenant's grant on the final control round — after the tail,
    /// a demand-aware governor has taken the frontier's threads back.
    pub tail_dag_threads: i64,
    /// Σ allocations ≤ budget at *every* round (the invariant gate).
    pub budget_ok: bool,
    /// Largest Σ allocations the arbiter ever granted in one round.
    pub max_total_allocated: i64,
    /// Arbiter control rounds run.
    pub rounds: u64,
}

/// The DAG tenant's machine slice (plain cores — the DAG story is
/// thread re-sharing, not power).
fn dag_slice() -> MachineSpec {
    MachineShares::new(MachineSpec::server32()).sub_spec(DAG_MAX)
}

/// The mixed scenario's DAG: a wide 1-D stencil with heavy-tailed
/// grains. Its frontier saturates the slice for most of the drain, then
/// collapses to the dependency tail — wide while serve is idle-ish,
/// narrow when the extra threads stop helping.
fn mixed_dag_spec(seed: u64) -> lg_workloads::DagSpec {
    generate(
        &DagConfig {
            pattern: DagPattern::Stencil1d,
            width: DAG_MAX,
            depth: 16,
            grain_ops: 3e6,
            grain_spread: 0.5,
            comm_bytes: 0.0,
            seed,
        },
        &CostModel::default(),
    )
}

/// Simulates one mixed serve+DAG run over `horizon_ns`: the serving
/// tenant and a [`DagTenant`] under one arbiter, signal path selected
/// by `mode`. The run extends past the horizon if the DAG has not
/// drained (so makespans are comparable across modes).
pub fn simulate_mixed(horizon_ns: u64, mode: SignalMode, seed: u64) -> MixedResult {
    let requests = arrivals(MIXED_SERVE_RPS, horizon_ns, seed);
    let clock = Arc::new(VirtualClock::new());
    let mut serve = ServeTenant::new(clock.clone(), SERVE_KNEE, seed);
    let mut dag = DagTenant::new(dag_slice(), mixed_dag_spec(seed));
    let control_period = serve.control_period_ns();

    let serve_spec =
        TenantSpec::new("serve", SloClass::Latency, SERVE_KNEE as i64).with_min_threads(SERVE_MIN);
    let dag_spec =
        TenantSpec::new("dag", SloClass::Batch, DAG_MAX as i64).with_min_threads(DAG_MIN);
    let (serve_spec, dag_spec) = match mode {
        SignalMode::PressureOnly => (
            serve_spec.with_pressure("serve.p99_window_ns", PRESSURE_P99_NS),
            dag_spec,
        ),
        SignalMode::DemandAware => {
            let sp = serve.demand_probe(PRESSURE_P99_NS);
            let dp = dag.demand_probe();
            (
                serve_spec.with_demand_probe(move |snap, alloc| sp(snap, alloc)),
                dag_spec.with_demand_probe(move |snap, alloc| dp(snap, alloc)),
            )
        }
    };

    let arb = Arbiter::with_instance(
        ArbiterConfig::new(TOTAL_THREADS),
        lg_core::LookingGlass::builder()
            .clock(clock.clone())
            .build(),
    );
    arb.admit(serve.lg().clone(), serve_spec, "serve.bulkhead_limit");
    arb.admit(dag.lg().clone(), dag_spec, "thread_cap");

    let mut rounds: Vec<RoundReport> = Vec::new();
    let serve_report = serve.run(&requests, |t| {
        clock.advance_to(t);
        dag.step(t);
        rounds.push(arb.control_round(t));
    });
    // Drain the remainder of the DAG (pressure-only runs typically
    // outlive the serving horizon) so makespans are comparable.
    let mut t = clock.now_ns().max(horizon_ns);
    while !dag.done() {
        t += control_period;
        clock.advance_to(t);
        dag.step(t);
        rounds.push(arb.control_round(t));
        assert!(
            t < horizon_ns.saturating_mul(16),
            "mixed DAG failed to drain — check the grant path"
        );
    }

    let dag_alloc = |r: &RoundReport| r.allocations.get(1).map_or(0, |&(_, a)| a);
    MixedResult {
        signal: mode.label().into(),
        dag_makespan_ms: dag.makespan_ns().expect("drained") as f64 / 1e6,
        serve_goodput_frac: serve_report.goodput_frac(),
        serve_p99_ms: serve_report.p99_latency_ns as f64 / 1e6,
        peak_dag_threads: rounds.iter().map(&dag_alloc).max().unwrap_or(0),
        tail_dag_threads: rounds.last().map(&dag_alloc).unwrap_or(0),
        budget_ok: rounds.iter().all(|r| r.total_allocated <= TOTAL_THREADS),
        max_total_allocated: rounds.iter().map(|r| r.total_allocated).max().unwrap_or(0),
        rounds: rounds.len() as u64,
    }
}

/// The load mixes the experiment sweeps: serve-light, balanced (spike
/// oversubscribes the machine), and serve-heavy.
pub fn mixes() -> Vec<Mix> {
    vec![
        Mix {
            serve_rps: 2_000.0,
            batch_jps: 12_000.0,
        },
        Mix {
            serve_rps: 12_000.0,
            batch_jps: 10_000.0,
        },
        Mix {
            serve_rps: 8_000.0,
            batch_jps: 6_000.0,
        },
    ]
}

/// The static partitions the arbiter is compared against.
pub fn static_partitions() -> Vec<i64> {
    vec![8, 16, 24]
}

/// Runs the experiment. `LG_CHAOS=1` adds the noisy-neighbor storm and
/// the no-quarantine baseline.
pub fn run(fast: bool) {
    let horizon: u64 = if fast { 400_000_000 } else { 1_200_000_000 };
    let storm = if std::env::var("LG_CHAOS").is_ok_and(|v| v == "1") {
        Storm::Chaos
    } else {
        Storm::Nominal
    };
    let mut table = Table::new(
        "Figure 10: multi-tenancy — aggregate goodput and serve p99, static partitions vs arbiter",
        &[
            "serve_rps",
            "batch_jps",
            "policy",
            "agg_per_sec",
            "serve_goodput",
            "serve_p99_ms",
            "batch_jobs",
            "quarantines",
            "max_alloc",
        ],
    );
    for mix in mixes() {
        let mut policies: Vec<TenancyPolicy> = static_partitions()
            .into_iter()
            .map(TenancyPolicy::Static)
            .collect();
        policies.push(TenancyPolicy::Adaptive);
        if storm == Storm::Chaos {
            policies.push(TenancyPolicy::AdaptiveNoQuarantine);
        }
        for policy in policies {
            let r = simulate(mix, horizon, policy, storm, 77);
            table.row(&[
                format!("{:.0}", mix.serve_rps),
                format!("{:.0}", mix.batch_jps),
                r.policy.clone(),
                fmt_f(r.aggregate_per_sec),
                fmt_f(r.serve_goodput_frac),
                fmt_f(r.serve_p99_ms),
                r.batch_good_jobs.to_string(),
                r.quarantine_entries.to_string(),
                r.max_total_allocated.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    let path = write_csv(&table, "fig10_tenancy");
    println!("wrote {}\n", path.display());

    let mut mixed = Table::new(
        "Figure 10b: mixed serve+DAG tenancy — pressure-only vs demand-aware arbitration",
        &[
            "signal",
            "dag_makespan_ms",
            "serve_goodput",
            "serve_p99_ms",
            "peak_dag_thr",
            "tail_dag_thr",
            "max_alloc",
            "rounds",
        ],
    );
    for mode in [SignalMode::PressureOnly, SignalMode::DemandAware] {
        let r = simulate_mixed(horizon, mode, 77);
        assert!(r.budget_ok, "{}: thread budget violated", r.signal);
        mixed.row(&[
            r.signal.clone(),
            fmt_f(r.dag_makespan_ms),
            fmt_f(r.serve_goodput_frac),
            fmt_f(r.serve_p99_ms),
            r.peak_dag_threads.to_string(),
            r.tail_dag_threads.to_string(),
            r.max_total_allocated.to_string(),
            r.rounds.to_string(),
        ]);
    }
    println!("{}", mixed.render());
    let path = write_csv(&mixed, "fig10_mixed");
    println!("wrote {}\n", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    const HORIZON: u64 = 400_000_000;

    fn best_static(mix: Mix, storm: Storm, seed: u64) -> f64 {
        static_partitions()
            .into_iter()
            .map(|s| {
                simulate(mix, HORIZON, TenancyPolicy::Static(s), storm, seed).aggregate_per_sec
            })
            .fold(0.0, f64::max)
    }

    #[test]
    fn deterministic_per_seed() {
        let mix = mixes()[1];
        let a = simulate(mix, HORIZON, TenancyPolicy::Adaptive, Storm::Chaos, 5);
        let b = simulate(mix, HORIZON, TenancyPolicy::Adaptive, Storm::Chaos, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn adaptive_matches_best_static_at_every_mix() {
        for mix in mixes() {
            let adaptive = simulate(mix, HORIZON, TenancyPolicy::Adaptive, Storm::Nominal, 11);
            let best = best_static(mix, Storm::Nominal, 11);
            assert!(
                adaptive.aggregate_per_sec >= best * 0.95,
                "mix {mix:?}: adaptive {} vs best static {best}",
                adaptive.aggregate_per_sec
            );
            // The latency tenant's tail stays bounded while the machine
            // re-splits under it.
            assert!(
                adaptive.serve_p99_ms <= 100.0,
                "mix {mix:?}: serve p99 {} ms",
                adaptive.serve_p99_ms
            );
        }
    }

    #[test]
    fn no_single_static_wins_everywhere() {
        // The serve-light and serve-heavy mixes must prefer different
        // partitions — otherwise the adaptive comparison is vacuous.
        let m = mixes();
        let light_8 = simulate(m[0], HORIZON, TenancyPolicy::Static(8), Storm::Nominal, 11);
        let light_24 = simulate(m[0], HORIZON, TenancyPolicy::Static(24), Storm::Nominal, 11);
        let heavy_8 = simulate(m[2], HORIZON, TenancyPolicy::Static(8), Storm::Nominal, 11);
        let heavy_24 = simulate(m[2], HORIZON, TenancyPolicy::Static(24), Storm::Nominal, 11);
        assert!(
            light_8.aggregate_per_sec > light_24.aggregate_per_sec,
            "serve-light mix should prefer the batch-heavy split: {} vs {}",
            light_8.aggregate_per_sec,
            light_24.aggregate_per_sec
        );
        assert!(
            heavy_24.aggregate_per_sec > heavy_8.aggregate_per_sec,
            "serve-heavy mix should prefer the serve-heavy split: {} vs {}",
            heavy_24.aggregate_per_sec,
            heavy_8.aggregate_per_sec
        );
    }

    #[test]
    fn thread_budget_never_exceeded() {
        for policy in [TenancyPolicy::Adaptive, TenancyPolicy::AdaptiveNoQuarantine] {
            for storm in [Storm::Nominal, Storm::Chaos] {
                let r = simulate(mixes()[1], HORIZON, policy, storm, 3);
                assert!(r.rounds > 0, "arbiter never ran a round");
                assert!(
                    r.max_total_allocated <= TOTAL_THREADS,
                    "{} {storm:?}: granted {} of {TOTAL_THREADS}",
                    r.policy,
                    r.max_total_allocated
                );
            }
        }
    }

    #[test]
    fn chaos_quarantine_contains_the_noisy_neighbor() {
        let mix = mixes()[1];
        let adaptive = simulate(mix, HORIZON, TenancyPolicy::Adaptive, Storm::Chaos, 19);
        let unguarded = simulate(
            mix,
            HORIZON,
            TenancyPolicy::AdaptiveNoQuarantine,
            Storm::Chaos,
            19,
        );
        // The chain fired: watchdog rollback → quarantine entry.
        assert!(
            adaptive.quarantine_entries > 0,
            "storm never tripped quarantine"
        );
        assert_eq!(unguarded.quarantine_entries, 0);
        // Stated bound: the sibling's p99 stays under twice the
        // mandatory deadline budget even while the neighbor storms.
        assert!(
            adaptive.serve_p99_ms <= 100.0,
            "quarantine failed to protect serve p99: {} ms",
            adaptive.serve_p99_ms
        );
        // And the guarded run serves at least as well as the unguarded
        // one — quarantine is protection, not overhead.
        assert!(
            adaptive.serve_goodput_frac >= unguarded.serve_goodput_frac * 0.99,
            "guarded {} vs unguarded {}",
            adaptive.serve_goodput_frac,
            unguarded.serve_goodput_frac
        );
    }

    #[test]
    fn mixed_is_deterministic_per_seed() {
        let a = simulate_mixed(HORIZON, SignalMode::DemandAware, 7);
        let b = simulate_mixed(HORIZON, SignalMode::DemandAware, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn demand_aware_beats_pressure_only_on_dag_makespan() {
        let po = simulate_mixed(HORIZON, SignalMode::PressureOnly, 77);
        let da = simulate_mixed(HORIZON, SignalMode::DemandAware, 77);
        // The acceptance gate: ≥5% faster DAG drain at the contended
        // mix, serve goodput within 1%, budget invariant every round.
        assert!(
            da.dag_makespan_ms <= po.dag_makespan_ms * 0.95,
            "demand-aware makespan {} ms vs pressure-only {} ms",
            da.dag_makespan_ms,
            po.dag_makespan_ms
        );
        assert!(
            da.serve_goodput_frac >= po.serve_goodput_frac * 0.99,
            "serve goodput regressed: {} vs {}",
            da.serve_goodput_frac,
            po.serve_goodput_frac
        );
        assert!(po.budget_ok && da.budget_ok, "thread budget violated");
        assert!(da.rounds > 0 && po.rounds > 0);
    }

    #[test]
    fn demand_aware_claims_the_frontier_then_releases_it() {
        let r = simulate_mixed(HORIZON, SignalMode::DemandAware, 77);
        // Wide frontier: the DAG is granted more than its fair half of
        // the machine. Tail: once the DAG drains, the final round
        // returns it to its floor.
        assert!(
            r.peak_dag_threads > TOTAL_THREADS / 2,
            "DAG never got past fair share: peak {}",
            r.peak_dag_threads
        );
        assert_eq!(
            r.tail_dag_threads, DAG_MIN,
            "drained DAG should fall back to its floor"
        );
    }

    #[test]
    fn runs_fast() {
        run(true);
    }
}
