//! Table 1 — static vs adaptive concurrency, three workloads.
//!
//! The headline result: for each workload (memory-bound stencil,
//! compute-bound kernel, and the 50/50 mix), run a fixed amount of work
//! under static caps {4, 8, 16, 32} and under online adaptation (hill
//! climb on EDP, search cost included). Expected shape:
//!
//! * no single static cap wins all three workloads;
//! * adaptive lands within a few percent of each workload's best static
//!   EDP without knowing it in advance;
//! * adaptive beats the *worst* static choice by a large factor on the
//!   memory-bound workload.

use crate::experiments::common::{measure_cap, pow2_caps, run_steps};
use crate::report::{fmt_f, write_csv, Table};
use lg_core::{Clock as _, SessionConfig, SessionStep, TuningSession};
use lg_sim::{MachineSpec, SimRuntime, SimWorkload};
use lg_tuning::{Dim, HillClimb, Space};

/// Outcome of one (workload, policy) cell.
#[derive(Clone, Debug)]
pub struct Cell {
    /// Policy label.
    pub policy: String,
    /// Total time (s).
    pub time_s: f64,
    /// Total energy (J).
    pub energy_j: f64,
}

impl Cell {
    /// Energy-delay product.
    pub fn edp(&self) -> f64 {
        self.energy_j * self.time_s
    }
}

/// Runs `total_steps` of `workload` with online adaptation (search cost
/// included), then the remainder at the winner.
pub fn run_adaptive_cell(spec: &MachineSpec, workload: &SimWorkload, total_steps: usize) -> Cell {
    let mut sim = SimRuntime::new(*spec);
    let space = Space::new(vec![Dim::values("thread_cap", pow2_caps(spec.cores))]);
    let search = Box::new(HillClimb::from_start(space, &[spec.cores as i64]));
    let mut session = TuningSession::new(
        SessionConfig::single("thread_cap", 0, 0),
        search,
        sim.lg().knobs().clone(),
    );
    let mut time_s = 0.0;
    let mut energy = 0.0;
    let mut steps_done = 0usize;
    while steps_done < total_steps {
        if session.is_finished() {
            let r = run_steps(&mut sim, workload, total_steps - steps_done);
            time_s += r.elapsed_s();
            energy += r.energy_j;
            break;
        }
        match session.next(sim.clock().now_ns()) {
            SessionStep::Done { .. } => {}
            SessionStep::Measure { .. } => {
                let r = run_steps(&mut sim, workload, 1);
                steps_done += 1;
                time_s += r.elapsed_s();
                energy += r.energy_j;
                session.complete(r.energy_j * r.elapsed_s());
            }
        }
    }
    Cell {
        policy: "adaptive".into(),
        time_s,
        energy_j: energy,
    }
}

/// Runs the experiment.
pub fn run(fast: bool) {
    let spec = MachineSpec::server32();
    let ops = if fast { 5e7 } else { 5e8 };
    let total_steps = if fast { 60 } else { 200 };
    let workloads = [
        ("stencil(mem)", SimWorkload::stencil(ops, 64)),
        ("compute", SimWorkload::compute(ops, 64)),
        ("mixed(50%)", SimWorkload::mixed(ops, 64, 0.5)),
    ];
    let mut table = Table::new(
        "Table 1: static vs adaptive concurrency (search cost included)",
        &[
            "workload",
            "policy",
            "time_s",
            "energy_j",
            "edp",
            "vs_best_static",
        ],
    );
    for (name, w) in &workloads {
        let mut static_cells: Vec<Cell> = [4usize, 8, 16, 32]
            .iter()
            .map(|&cap| {
                let m = measure_cap(&spec, w, cap, total_steps);
                Cell {
                    policy: format!("static-{cap}"),
                    time_s: m.time_s,
                    energy_j: m.energy_j,
                }
            })
            .collect();
        let best_static_edp = static_cells
            .iter()
            .map(Cell::edp)
            .fold(f64::INFINITY, f64::min);
        static_cells.push(run_adaptive_cell(&spec, w, total_steps));
        for c in &static_cells {
            table.row(&[
                name.to_string(),
                c.policy.clone(),
                fmt_f(c.time_s),
                fmt_f(c.energy_j),
                fmt_f(c.edp()),
                format!("{:+.1}%", (c.edp() / best_static_edp - 1.0) * 100.0),
            ]);
        }
    }
    println!("{}", table.render());
    let path = write_csv(&table, "tbl1_static_vs_adaptive");
    println!("wrote {}\n", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_close_to_best_static_everywhere() {
        let spec = MachineSpec::server32();
        let total = 60;
        for w in [
            SimWorkload::stencil(5e7, 64),
            SimWorkload::compute(5e7, 64),
            SimWorkload::mixed(5e7, 64, 0.5),
        ] {
            let best_static = pow2_caps(32)
                .into_iter()
                .map(|cap| {
                    let m = measure_cap(&spec, &w, cap as usize, total);
                    m.edp()
                })
                .fold(f64::INFINITY, f64::min);
            let adaptive = run_adaptive_cell(&spec, &w, total);
            assert!(
                adaptive.edp() < best_static * 1.25,
                "{}: adaptive {} vs best static {}",
                w.name,
                adaptive.edp(),
                best_static
            );
        }
    }

    #[test]
    fn no_single_static_cap_wins_both_extremes() {
        let spec = MachineSpec::server32();
        let mem = SimWorkload::stencil(5e7, 64);
        let cpu = SimWorkload::compute(5e7, 64);
        let best_for = |w: &SimWorkload| {
            (1..=32usize)
                .min_by(|&a, &b| {
                    let ea = measure_cap(&spec, w, a, 5).edp();
                    let eb = measure_cap(&spec, w, b, 5).edp();
                    ea.partial_cmp(&eb).unwrap()
                })
                .unwrap()
        };
        assert_ne!(best_for(&mem), best_for(&cpu));
    }

    #[test]
    fn runs_fast() {
        run(true);
    }
}
