//! Figure 9 — overload: static vs adaptive admission control through a
//! capacity spike and a concurrent fault storm.
//!
//! An open-loop arrival stream (base load with a 2× spike window) is
//! pushed through the serving pipeline — brownout → admission gate →
//! queue → bulkhead → [`ReliableLink`] → contended server — while the
//! link flaps and drops packets. The bulkhead limit poses the genuine
//! overload trade-off:
//!
//! * a **small** static limit keeps the server below its contention knee
//!   but queues the spike until deadlines expire in line;
//! * a **large** static limit admits the spike straight into the knee —
//!   service times inflate quadratically and *everything* goes late;
//! * the **adaptive** stack senses the round snapshot and moves the
//!   journaled knobs: AIMD on the bulkhead limit driven by the
//!   *service-stage* window p99 (the knee signature — sensing end-to-end
//!   latency would let the governor's own backlog poison it into a
//!   limit-1 death spiral), and a hysteresis brownout on the shed level
//!   driven by the *end-to-end* window p99 — shed optional work early
//!   instead of missing mandatory work late. Both controllers are
//!   **threshold-triggered** ([`lg_core::ThresholdWatch::relative_change`]
//!   on their own sensing gauge): they evaluate only in rounds where the
//!   signal actually moved, so a quiet tail costs a cheap watch scan,
//!   not a capture — the run reports its reaction-round counts. A
//!   regression watchdog over the per-round completion rate backstops
//!   the controllers and rolls back any actuation that collapses it.
//!
//! Everything runs in virtual time from seeded RNGs, so a given
//! `(load, policy, seed)` triple replays bit-for-bit.

use crate::report::{fmt_f, write_csv, Table};
use lg_core::snapshot::IntrospectionSnapshot;
use lg_core::{
    AdmissionGate, AimdPolicy, Brownout, BrownoutPolicy, Bulkhead, LookingGlass, Policy,
    PolicyDecision, RegressionWatchdog, ThresholdWatch, VirtualClock,
};
use lg_metrics::CounterRegistry;
use lg_net::{FaultPlan, ReliableConfig, ReliableLink, ReliableReport, TransportCost};
use lg_workloads::serve::{ArrivalGen, ArrivalPattern, ServeConfig, ServeEngine, ServeReport};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Wraps a policy and counts its evaluations. Registered under a
/// [`ThresholdWatch`], the count is exactly the number of *reaction
/// rounds* — rounds where the watched signal moved enough to wake the
/// controller — which the experiment gates against the total round
/// count to prove the trigger path is actually sparse.
struct Counted {
    inner: Box<dyn Policy>,
    reactions: Arc<AtomicU64>,
}

impl Policy for Counted {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn evaluate(
        &mut self,
        now_ns: u64,
        trigger: lg_core::policy::Trigger<'_>,
        snapshot: &IntrospectionSnapshot,
    ) -> PolicyDecision {
        self.reactions.fetch_add(1, Ordering::Relaxed);
        self.inner.evaluate(now_ns, trigger, snapshot)
    }
}

/// How the serving knobs are governed during the run.
#[derive(Clone, Copy, Debug)]
pub enum ServePolicy {
    /// Fixed bulkhead limit, gate wide open, nothing shed.
    Static(i64),
    /// AIMD bulkhead + brownout shedding + watchdog, all via the
    /// journaled knob registry.
    Adaptive,
}

impl ServePolicy {
    fn label(&self) -> String {
        match self {
            ServePolicy::Static(l) => format!("static-{l}"),
            ServePolicy::Adaptive => "adaptive".into(),
        }
    }
}

/// Storm severity on the link while the spike is in progress.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Storm {
    /// Fig 9 default: 5% drop, 20 ms up / 2 ms down flaps.
    Nominal,
    /// Chaos job: 15% drop, 8 ms up / 2 ms down flaps.
    Chaos,
}

/// Result of one (load, policy) run.
#[derive(Clone, Debug)]
pub struct OverloadResult {
    /// Policy label.
    pub policy: String,
    /// Fraction of offered requests served within deadline.
    pub goodput_frac: f64,
    /// Fraction shed (brownout + gate).
    pub shed_frac: f64,
    /// Fraction that missed their deadline.
    pub miss_frac: f64,
    /// Median end-to-end latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile end-to-end latency, ms.
    pub p99_ms: f64,
    /// 99.9th-percentile end-to-end latency, ms.
    pub p999_ms: f64,
    /// Knob writes by the adaptive controllers (from the journal).
    pub knob_writes: u64,
    /// Watchdog rollbacks (journal records marked rolled back).
    pub watchdog_rollbacks: u64,
    /// Control rounds driven through the policy engine.
    pub control_rounds: u64,
    /// Rounds where the AIMD bulkhead's threshold watch woke it.
    pub aimd_reactions: u64,
    /// Rounds where the brownout's threshold watch woke it.
    pub brownout_reactions: u64,
    /// Mean adaptation latency (trigger sensed → knob write journaled),
    /// µs. Wall-clock, so it varies run to run; `NaN` when the run never
    /// actuated (static policies).
    pub adapt_latency_mean_us: f64,
    /// Full serving report (for invariants).
    pub serve: ServeReport,
    /// Full wire-level report (for invariants).
    pub link: ReliableReport,
}

/// Everything except `adapt_latency_mean_us`, which is wall-clock (host
/// scheduling noise) and must not break bit-exact replay comparisons.
impl PartialEq for OverloadResult {
    fn eq(&self, other: &Self) -> bool {
        self.policy == other.policy
            && self.goodput_frac == other.goodput_frac
            && self.shed_frac == other.shed_frac
            && self.miss_frac == other.miss_frac
            && self.p50_ms == other.p50_ms
            && self.p99_ms == other.p99_ms
            && self.p999_ms == other.p999_ms
            && self.knob_writes == other.knob_writes
            && self.watchdog_rollbacks == other.watchdog_rollbacks
            && self.control_rounds == other.control_rounds
            && self.aimd_reactions == other.aimd_reactions
            && self.brownout_reactions == other.brownout_reactions
            && self.serve == other.serve
            && self.link == other.link
    }
}

const DESTS: u32 = 4;
const SERVICE_MEAN_NS: u64 = 1_000_000;
const MANDATORY_BUDGET_NS: u64 = 50_000_000;
const OPTIONAL_BUDGET_NS: u64 = 25_000_000;
const BULKHEAD_MIN: i64 = 1;
const BULKHEAD_MAX: i64 = 256;
const ADAPTIVE_INITIAL_LIMIT: i64 = 16;
/// The AIMD governor probes no higher than this: far enough past the
/// knee to find it, close enough that a probe cannot wreck the tail.
const AIMD_MAX_LIMIT: i64 = 64;
/// Relative move of a controller's sensing window-p99 that wakes it.
/// Under traffic the windows jitter well past this every few rounds, so
/// the controllers stay live through the spike; once the stream drains
/// the gauges freeze and the engine's step is a watch scan, no capture.
const REACT_FRAC: f64 = 0.10;

fn storm_plan(seed: u64, storm: Storm) -> FaultPlan {
    match storm {
        Storm::Nominal => FaultPlan::new(seed)
            .drop_prob(0.05)
            .flap(20_000_000, 2_000_000)
            .jitter_ns(5_000),
        Storm::Chaos => FaultPlan::new(seed)
            .drop_prob(0.15)
            .flap(8_000_000, 2_000_000)
            .jitter_ns(10_000),
    }
}

fn serve_link_config() -> ReliableConfig {
    ReliableConfig {
        // Opt in to half-open probe jitter: replay stays exact because
        // the breaker draws from its own RNG stream.
        breaker_jitter_frac: 0.25,
        ..ReliableConfig::default()
    }
}

fn arrivals(base_per_sec: f64, horizon_ns: u64, seed: u64) -> Vec<lg_workloads::serve::Request> {
    ArrivalGen {
        pattern: ArrivalPattern::Spike {
            base_per_sec,
            factor: 2.0,
            start_ns: horizon_ns / 4,
            end_ns: horizon_ns / 2,
        },
        seed,
        optional_frac: 0.3,
        service_mean_ns: SERVICE_MEAN_NS,
        mandatory_budget_ns: MANDATORY_BUDGET_NS,
        optional_budget_ns: OPTIONAL_BUDGET_NS,
        dests: DESTS,
    }
    .generate(horizon_ns)
}

/// Simulates one (load, policy) run: `base_per_sec` arrivals over
/// `horizon_ns` with a 2× spike across `[horizon/4, horizon/2)` and a
/// fault storm on the link throughout.
pub fn simulate(
    base_per_sec: f64,
    horizon_ns: u64,
    policy: ServePolicy,
    storm: Storm,
    seed: u64,
) -> OverloadResult {
    let requests = arrivals(base_per_sec, horizon_ns, seed);
    let clock = Arc::new(VirtualClock::new());
    let lg = LookingGlass::builder().clock(clock.clone()).build();
    let counters = Arc::new(CounterRegistry::new());
    lg.introspection().register_counters(counters.clone());

    let initial_limit = match policy {
        ServePolicy::Static(l) => l,
        ServePolicy::Adaptive => ADAPTIVE_INITIAL_LIMIT,
    };
    // Statics get a wide-open gate so they differ only in the limit; the
    // adaptive stack caps admissions just above the knee's capacity.
    let gate_rate = match policy {
        ServePolicy::Static(_) => 1_000_000,
        ServePolicy::Adaptive => 8_000,
    };
    let bulkhead = Bulkhead::new(
        "serve.bulkhead_limit",
        BULKHEAD_MIN,
        BULKHEAD_MAX,
        initial_limit,
    );
    let gate = AdmissionGate::new("serve.admit_rate", 100, 1_000_000, gate_rate, 64.0, 8.0);
    let brownout = Brownout::new("serve.shed_level");
    let link = ReliableLink::with_faults(
        TransportCost::cluster(),
        storm_plan(seed, storm),
        serve_link_config(),
        seed ^ 0x5ee_d1ab,
    );

    // Every actuator lives in the registry, so writes are clamped and
    // journaled whether or not a policy drives them this run.
    lg.knobs().register(bulkhead.limit_knob().clone());
    lg.knobs().register(gate.rate_knob().clone());
    lg.knobs().register(brownout.level_knob().clone());
    lg.knobs().register(link.retry_budget_knob().clone());

    let config = ServeConfig::default();
    let control_period = config.control_period_ns;
    let mut engine = ServeEngine::new(link, config, bulkhead, gate, brownout);
    engine.bind_introspection(lg.introspection());
    engine.bind_metrics(&counters);

    let aimd_reactions = Arc::new(AtomicU64::new(0));
    let brownout_reactions = Arc::new(AtomicU64::new(0));
    if matches!(policy, ServePolicy::Adaptive) {
        // Signal separation is what keeps the loop stable: the AIMD
        // governor senses *service-stage* latency — the knee's signature
        // — so the queue its own clamping builds upstream cannot poison
        // it into a death spiral, while the brownout senses *end-to-end*
        // latency, shedding when deadlines (queue wait included) are
        // actually threatened.
        let service_p99 = lg
            .introspection()
            .metric_id("serve.service_p99_window_ns")
            .expect("bound gauge");
        let e2e_p99 = lg
            .introspection()
            .metric_id("serve.p99_window_ns")
            .expect("bound gauge");
        // The link's breaker state is on the snapshot too
        // (`net.reliable.breakers_open`), but it is deliberately *not* an
        // AIMD trigger here: the storm opens breakers on every flap
        // cycle, and halving concurrency for a fault the bulkhead cannot
        // fix just starves the recovery.
        // Threshold-triggered, not periodic: each controller sleeps
        // behind a relative-change watch on the very gauge it senses,
        // and only rounds where that window moved become evaluation
        // (reaction) rounds. The counts are part of the result so the
        // gates can assert the trigger path both fired and stayed
        // sparse.
        let sg = engine.gauges().clone();
        lg.policy_engine().register_threshold(
            Box::new(Counted {
                inner: AimdPolicy::new(
                    "serve.bulkhead_limit",
                    BULKHEAD_MIN,
                    AIMD_MAX_LIMIT,
                    ADAPTIVE_INITIAL_LIMIT,
                    2,
                    0.7,
                )
                .on_latency_above(service_p99, 12e6),
                reactions: aimd_reactions.clone(),
            }),
            ThresholdWatch::relative_change(move || sg.service_p99_window_ns() as f64, REACT_FRAC),
        );
        let eg = engine.gauges().clone();
        lg.policy_engine().register_threshold(
            Box::new(Counted {
                inner: BrownoutPolicy::new("serve.shed_level", e2e_p99, 40e6, 20e6)
                    .with_max_level(4),
                reactions: brownout_reactions.clone(),
            }),
            ThresholdWatch::relative_change(move || eg.p99_window_ns() as f64, REACT_FRAC),
        );
        // Backstop, not controller: only a post-actuation collapse of
        // the completion rate (>75% round-over-round) triggers a
        // rollback. The signal holds its last value while no requests
        // arrive, so the end-of-run drain is not misread as a crash.
        let completed = counters.counter("serve.completed");
        let arrived = counters.counter("serve.arrivals");
        let mut last_completed = 0u64;
        let mut last_arrived = 0u64;
        let mut held = 0.0f64;
        lg.policy_engine().register_periodic(
            RegressionWatchdog::new(
                lg.policy_engine().journal().clone(),
                move || {
                    let (a, c) = (arrived.get(), completed.get());
                    let da = a - last_arrived;
                    let dc = c - last_completed;
                    last_arrived = a;
                    last_completed = c;
                    if da > 0 {
                        held = dc as f64;
                    }
                    held
                },
                0.75,
            ),
            control_period,
            0,
        );
    }

    let trace = std::env::var("LG_FIG9_TRACE").is_ok();
    let gauges = engine.gauges().clone();
    let mut control_rounds = 0u64;
    let serve = engine.run(&requests, |t| {
        clock.advance_to(t);
        control_rounds += 1;
        lg.policy_engine().step(t);
        if trace {
            println!(
                "t={:>4}ms limit={:>3} shed={} q={:>4} inflight={:>3} p99w={:>6.1}ms missed={} good={}",
                t / 1_000_000,
                lg.knobs().value("serve.bulkhead_limit").unwrap_or(-1),
                lg.knobs().value("serve.shed_level").unwrap_or(-1),
                gauges.queue_depth(),
                gauges.in_flight(),
                gauges.p99_window_ns() as f64 / 1e6,
                counters.counter("serve.deadline_missed").get(),
                counters.counter("serve.goodput").get(),
            );
        }
    });
    let link = engine.link_report();

    let records = lg.policy_engine().journal().records();
    let knob_writes = records
        .iter()
        .filter(|r| r.policy == "aimd-bulkhead" || r.policy == "brownout")
        .count() as u64;
    let watchdog_rollbacks = records.iter().filter(|r| r.rolled_back).count() as u64;

    let adapt_latency_mean_us = lg
        .policy_engine()
        .adaptation_latency_mean_ns()
        .map_or(f64::NAN, |ns| ns / 1e3);

    OverloadResult {
        policy: policy.label(),
        goodput_frac: serve.goodput_frac(),
        shed_frac: serve.shed_frac(),
        miss_frac: serve.miss_frac(),
        p50_ms: serve.p50_latency_ns as f64 / 1e6,
        p99_ms: serve.p99_latency_ns as f64 / 1e6,
        p999_ms: serve.p999_latency_ns as f64 / 1e6,
        knob_writes,
        watchdog_rollbacks,
        control_rounds,
        aimd_reactions: aimd_reactions.load(Ordering::Relaxed),
        brownout_reactions: brownout_reactions.load(Ordering::Relaxed),
        adapt_latency_mean_us,
        serve,
        link,
    }
}

/// The policies the experiment compares.
pub fn policies() -> Vec<ServePolicy> {
    vec![
        ServePolicy::Static(4),
        ServePolicy::Static(32),
        ServePolicy::Static(256),
        ServePolicy::Adaptive,
    ]
}

/// Upper bound on retries the per-destination token buckets can legally
/// release over `makespan_ns` (capacity + refill, summed over
/// destinations) — the "zero budget overruns" gate.
pub fn retry_budget_bound(makespan_ns: u64) -> f64 {
    let c = serve_link_config();
    DESTS as f64 * (c.retry_budget as f64 + c.retry_refill_per_sec * makespan_ns as f64 / 1e9)
}

/// Runs the experiment. `LG_CHAOS=1` in the environment intensifies the
/// fault storm to the chaos-job profile.
pub fn run(fast: bool) {
    let horizon: u64 = if fast { 400_000_000 } else { 1_200_000_000 };
    let storm = if std::env::var("LG_CHAOS").is_ok_and(|v| v == "1") {
        Storm::Chaos
    } else {
        Storm::Nominal
    };
    let loads = [2_000.0, 4_000.0, 6_000.0];
    let mut table = Table::new(
        "Figure 9: overload — goodput and latency vs offered load, static vs adaptive",
        &[
            "base_rps",
            "policy",
            "goodput_frac",
            "shed_frac",
            "miss_frac",
            "p50_ms",
            "p99_ms",
            "p999_ms",
            "knob_writes",
            "rollbacks",
            "reactions",
            "rounds",
            "adapt_lat_us",
        ],
    );
    for &load in &loads {
        for policy in policies() {
            let r = simulate(load, horizon, policy, storm, 77);
            table.row(&[
                format!("{load:.0}"),
                r.policy.clone(),
                fmt_f(r.goodput_frac),
                fmt_f(r.shed_frac),
                fmt_f(r.miss_frac),
                fmt_f(r.p50_ms),
                fmt_f(r.p99_ms),
                fmt_f(r.p999_ms),
                r.knob_writes.to_string(),
                r.watchdog_rollbacks.to_string(),
                format!("{}+{}", r.aimd_reactions, r.brownout_reactions),
                r.control_rounds.to_string(),
                if r.adapt_latency_mean_us.is_nan() {
                    "-".into()
                } else {
                    fmt_f(r.adapt_latency_mean_us)
                },
            ]);
        }
    }
    println!("{}", table.render());
    let path = write_csv(&table, "fig9_overload");
    println!("wrote {}\n", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    const HORIZON: u64 = 400_000_000;

    #[test]
    fn deterministic_per_seed() {
        let a = simulate(6_000.0, HORIZON, ServePolicy::Adaptive, Storm::Nominal, 5);
        let b = simulate(6_000.0, HORIZON, ServePolicy::Adaptive, Storm::Nominal, 5);
        assert_eq!(a, b);
        let c = simulate(6_000.0, HORIZON, ServePolicy::Adaptive, Storm::Nominal, 6);
        assert_ne!(a, c, "different seeds should differ somewhere");
    }

    #[test]
    fn conservation_under_every_policy() {
        for policy in policies() {
            let r = simulate(6_000.0, HORIZON, policy, Storm::Nominal, 3);
            let s = &r.serve;
            assert_eq!(
                s.offered,
                s.shed_brownout + s.shed_gate + s.goodput + s.deadline_missed,
                "{}: requests lost from the accounting",
                r.policy
            );
            assert!(s.offered > 0);
        }
    }

    #[test]
    fn adaptive_holds_the_knee() {
        // The heaviest load: 9k base spiking to 18k against ~8k capacity,
        // storm blowing the whole time.
        let statics: Vec<OverloadResult> = [4, 32, 256]
            .iter()
            .map(|&l| simulate(6_000.0, HORIZON, ServePolicy::Static(l), Storm::Nominal, 11))
            .collect();
        let adaptive = simulate(6_000.0, HORIZON, ServePolicy::Adaptive, Storm::Nominal, 11);
        let best = statics.iter().map(|r| r.goodput_frac).fold(0.0, f64::max);
        assert!(
            adaptive.goodput_frac >= best * 0.95,
            "adaptive {} vs best static {best}",
            adaptive.goodput_frac
        );
        // Bounded tail: adaptive p99 stays within 2× the mandatory
        // deadline budget even through the spike + storm.
        assert!(
            adaptive.p99_ms <= 100.0,
            "adaptive p99 {} ms unbounded",
            adaptive.p99_ms
        );
        // The controllers actually acted, through the journal.
        assert!(adaptive.knob_writes > 0, "no journaled actuations");
        // The threshold watches both woke their controllers and kept
        // them asleep in quiet rounds: reaction rounds are nonzero but
        // a strict subset of control rounds.
        assert!(
            adaptive.aimd_reactions > 0 && adaptive.brownout_reactions > 0,
            "threshold watches never fired: aimd {} brownout {}",
            adaptive.aimd_reactions,
            adaptive.brownout_reactions
        );
        assert!(
            adaptive.aimd_reactions < adaptive.control_rounds
                && adaptive.brownout_reactions < adaptive.control_rounds,
            "controllers woke every round ({} / {} of {}): the trigger path is not sparse",
            adaptive.aimd_reactions,
            adaptive.brownout_reactions,
            adaptive.control_rounds
        );
        // ...and every actuating round stamped its trigger→journal
        // latency (wall-clock, so only finiteness is asserted).
        assert!(
            adaptive.adapt_latency_mean_us.is_finite() && adaptive.adapt_latency_mean_us >= 0.0,
            "actuating run recorded no adaptation latency"
        );
        assert_eq!(
            adaptive.watchdog_rollbacks, 0,
            "controllers regressed goodput"
        );
        // Zero retry-budget overruns: the wire never saw more retries
        // than the token buckets could legally release.
        let bound = retry_budget_bound(adaptive.serve.makespan_ns);
        assert!(
            (adaptive.link.retries_consumed as f64) <= bound,
            "retry budget overrun: {} > {bound}",
            adaptive.link.retries_consumed
        );
    }

    #[test]
    fn chaos_storm_holds_goodput_without_rollbacks() {
        let statics: Vec<OverloadResult> = [4, 32, 256]
            .iter()
            .map(|&l| simulate(6_000.0, HORIZON, ServePolicy::Static(l), Storm::Chaos, 19))
            .collect();
        let adaptive = simulate(6_000.0, HORIZON, ServePolicy::Adaptive, Storm::Chaos, 19);
        let best = statics.iter().map(|r| r.goodput_frac).fold(0.0, f64::max);
        assert!(
            adaptive.goodput_frac >= best * 0.90,
            "chaos: adaptive {} vs best static {best}",
            adaptive.goodput_frac
        );
        assert_eq!(adaptive.watchdog_rollbacks, 0, "chaos run rolled back");
    }

    #[test]
    fn static_extremes_lose_somewhere() {
        // At overload, the large static limit drives the server past the
        // knee and the small one queues the spike to death; both should
        // trail whichever static is best.
        let r4 = simulate(6_000.0, HORIZON, ServePolicy::Static(4), Storm::Nominal, 11);
        let r256 = simulate(
            6_000.0,
            HORIZON,
            ServePolicy::Static(256),
            Storm::Nominal,
            11,
        );
        let r32 = simulate(
            6_000.0,
            HORIZON,
            ServePolicy::Static(32),
            Storm::Nominal,
            11,
        );
        let best = r4.goodput_frac.max(r32.goodput_frac).max(r256.goodput_frac);
        let worst = r4.goodput_frac.min(r32.goodput_frac).min(r256.goodput_frac);
        assert!(
            worst < best * 0.9,
            "overload should separate static limits: worst {worst} best {best}"
        );
    }

    #[test]
    fn runs_fast() {
        run(true);
    }
}
