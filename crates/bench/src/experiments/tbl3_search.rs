//! Table 3 — search-strategy comparison on representative landscapes.
//!
//! Every strategy minimizes four objective surfaces chosen to model what
//! online tuning actually faces: a smooth bowl (concurrency/EDP under a
//! compute-bound load), the overhead-vs-imbalance valley (chunk size), a
//! rugged multimodal surface (coupled knobs), and a noisy bowl
//! (measurement jitter). Reported per cell: evaluations used,
//! evaluations to reach the final best, and regret relative to the true
//! optimum (found exhaustively). Expected shape: hill climbing wins
//! smooth landscapes on epochs; annealing/genetic pay epochs to survive
//! ruggedness; random is the floor; Nelder–Mead is cheap but brittle on
//! quantized surfaces.

use crate::report::{fmt_f, write_csv, Table};
use lg_tuning::anneal::AnnealConfig;
use lg_tuning::genetic::GeneticConfig;
use lg_tuning::{
    landscape, minimize, Dim, Exhaustive, Genetic, HillClimb, NelderMead, Point, RandomSearch,
    Search, SimulatedAnnealing, Space,
};

/// A named objective over a space.
pub struct Landscape {
    /// Label.
    pub name: &'static str,
    /// The space.
    pub space: Space,
    /// Fresh objective instance (stateful because of the noise wrapper).
    pub make: Box<dyn Fn() -> landscape::Objective>,
}

/// The four benchmark landscapes.
pub fn landscapes() -> Vec<Landscape> {
    vec![
        Landscape {
            name: "bowl-2d",
            space: Space::new(vec![Dim::range("a", 0, 31, 1), Dim::range("b", 0, 31, 1)]),
            make: Box::new(|| landscape::sphere(vec![20, 9], vec![1.0, 3.0])),
        },
        Landscape {
            name: "valley-1d",
            space: Space::new(vec![Dim::range("chunk", 1, 500, 1)]),
            make: Box::new(|| landscape::valley(400.0, 1.0)),
        },
        Landscape {
            name: "rugged-1d",
            space: Space::new(vec![Dim::range("x", 0, 127, 1)]),
            make: Box::new(|| landscape::rastrigin(vec![96], 5.0, 16.0)),
        },
        Landscape {
            name: "noisy-bowl",
            space: Space::new(vec![Dim::range("x", 0, 127, 1)]),
            make: Box::new(|| landscape::noisy(landscape::sphere(vec![40], vec![1.0]), 0.05, 7)),
        },
    ]
}

fn strategies(space: &Space, seed: u64) -> Vec<(String, Box<dyn Search>)> {
    vec![
        (
            "random-200".into(),
            Box::new(RandomSearch::new(space.clone(), 200, seed)) as Box<dyn Search>,
        ),
        ("hillclimb".into(), Box::new(HillClimb::new(space.clone()))),
        (
            "hillclimb+5restarts".into(),
            Box::new(HillClimb::new(space.clone()).with_restarts(5, seed)),
        ),
        (
            "anneal".into(),
            Box::new(SimulatedAnnealing::new(
                space.clone(),
                AnnealConfig {
                    t0: 50.0,
                    cooling: 0.99,
                    budget: 400,
                    max_step: 4,
                    ..Default::default()
                },
                seed,
            )),
        ),
        (
            "neldermead".into(),
            Box::new(NelderMead::new(space.clone(), 200)),
        ),
        (
            "genetic".into(),
            Box::new(Genetic::new(
                space.clone(),
                GeneticConfig {
                    budget: 400,
                    ..Default::default()
                },
                seed,
            )),
        ),
    ]
}

/// True optimum of the (noise-free core of the) landscape by exhaustion.
pub fn true_optimum(l: &Landscape) -> (Point, f64) {
    let mut ex = Exhaustive::new(l.space.clone());
    let mut f = (l.make)();
    let r = minimize(&mut ex, |p| f(p), usize::MAX).expect("non-empty space");
    (r.best_point, r.best_value)
}

/// Runs the experiment.
pub fn run(_fast: bool) {
    let mut table = Table::new(
        "Table 3: search strategies × landscapes (regret vs exhaustive optimum)",
        &[
            "landscape",
            "strategy",
            "evals",
            "evals_to_best",
            "best",
            "regret",
        ],
    );
    for l in landscapes() {
        let (_, opt) = true_optimum(&l);
        for (label, mut s) in strategies(&l.space, 1234) {
            let mut f = (l.make)();
            if let Some(r) = minimize(s.as_mut(), |p| f(p), 1000) {
                table.row(&[
                    l.name.to_string(),
                    label,
                    r.evals.to_string(),
                    r.evals_to_best.to_string(),
                    fmt_f(r.best_value),
                    fmt_f(r.best_value - opt),
                ]);
            }
        }
    }
    println!("{}", table.render());
    let path = write_csv(&table, "tbl3_search");
    println!("wrote {}\n", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hillclimb_efficient_on_smooth() {
        let l = &landscapes()[0];
        let (_, opt) = true_optimum(l);
        let mut hc = HillClimb::new(l.space.clone());
        let mut f = (l.make)();
        let r = minimize(&mut hc, |p| f(p), 1000).unwrap();
        assert!(r.best_value - opt < 1e-9, "regret {}", r.best_value - opt);
        assert!(r.evals < 200, "evals {}", r.evals);
    }

    #[test]
    fn restarts_or_anneal_handle_rugged() {
        let l = &landscapes()[2];
        let (_, opt) = true_optimum(l);
        let mut hc = HillClimb::new(l.space.clone()).with_restarts(5, 3);
        let mut f = (l.make)();
        let r = minimize(&mut hc, |p| f(p), 2000).unwrap();
        assert!(
            r.best_value - opt < 5.0,
            "restarted hillclimb regret too high: {}",
            r.best_value - opt
        );
    }

    #[test]
    fn every_strategy_beats_random_worst_case_on_bowl() {
        let l = &landscapes()[0];
        for (name, mut s) in strategies(&l.space, 5) {
            let mut f = (l.make)();
            let r = minimize(s.as_mut(), |p| f(p), 1000).unwrap();
            assert!(r.best_value < 300.0, "{name} best {}", r.best_value);
        }
    }

    #[test]
    fn runs_fast() {
        run(true);
    }
}
