//! Fig 7 — event pipeline throughput under thread contention.
//!
//! Several threads hammer one dispatcher concurrently — previously the
//! worst case for the shared `RwLock` read + `Arc` clone per event and
//! the profiler's single mutex; now the fast path is a generation check
//! against a thread-local listener snapshot plus per-thread profile
//! stripes, so emitters share no written cache line. Reported: aggregate
//! events/second and per-event cost vs emitting thread count. On a
//! single-core host the threads time-share, so the interesting signal is
//! that per-event cost stays bounded (no lock convoy collapse) rather
//! than wall-clock scaling; `run` asserts that bound.

use crate::report::{fmt_f, write_csv, Table};
use lg_core::profile::ProfileListener;
use lg_core::{Dispatcher, Event, TaskNames};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Measures aggregate dispatch throughput with `threads` emitters.
pub fn throughput(threads: usize, events_per_thread: u64, with_profiler: bool) -> f64 {
    let names = TaskNames::new();
    let task = names.intern("contended");
    let d = Arc::new(Dispatcher::new());
    if with_profiler {
        d.register(Arc::new(ProfileListener::new(names.clone())));
    }
    let start = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..threads)
        .map(|w| {
            let d = d.clone();
            let start = start.clone();
            std::thread::spawn(move || {
                while !start.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                let e = Event::TaskEnd {
                    task,
                    worker: w,
                    t_ns: 1,
                    elapsed_ns: 1,
                };
                for _ in 0..events_per_thread {
                    d.dispatch(&e);
                }
            })
        })
        .collect();
    let t0 = Instant::now();
    start.store(true, Ordering::Release);
    for h in handles {
        h.join().unwrap();
    }
    let secs = t0.elapsed().as_secs_f64();
    let total = threads as u64 * events_per_thread;
    // Striped-counter accounting must be exact once emitters quiesce:
    // one event per dispatch, one delivery per (event × listener).
    assert_eq!(d.events_dispatched(), total, "event count drifted");
    assert_eq!(
        d.deliveries(),
        total * u64::from(with_profiler),
        "delivery count drifted"
    );
    total as f64 / secs
}

/// Runs the experiment.
///
/// Gates (lenient, CI-safe versions of the paper's "flat under
/// contention" claim): for each pipeline, 8-emitter per-event cost must
/// stay within 8× of the 1-emitter cost. A lock convoy on the old shared
/// read path blows far past that; scheduler noise on a loaded CI box does
/// not.
pub fn run(fast: bool) {
    let events: u64 = if fast { 50_000 } else { 1_000_000 };
    let mut table = Table::new(
        "Fig 7: dispatcher throughput under emitter contention",
        &["threads", "listener", "events_per_sec", "ns_per_event"],
    );
    let mut ns_at = std::collections::HashMap::new();
    for threads in [1usize, 2, 4, 8] {
        for with_profiler in [false, true] {
            let rate = throughput(threads, events / threads as u64, with_profiler);
            ns_at.insert((threads, with_profiler), 1e9 / rate);
            table.row(&[
                threads.to_string(),
                if with_profiler { "profiler" } else { "none" }.into(),
                fmt_f(rate),
                fmt_f(1e9 / rate),
            ]);
        }
    }
    println!("{}", table.render());
    for with_profiler in [false, true] {
        let one = ns_at[&(1, with_profiler)];
        let eight = ns_at[&(8, with_profiler)];
        assert!(
            eight <= one * 8.0,
            "convoy collapse: 8-emitter cost {eight:.1} ns vs 1-emitter {one:.1} ns \
             (profiler={with_profiler})"
        );
    }
    let path = write_csv(&table, "fig7_dispatch");
    println!("wrote {}\n", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_sane() {
        // ≥ 100k events/sec even contended with the profiler on a slow box.
        let rate = throughput(2, 20_000, true);
        assert!(rate > 1e5, "rate {rate}");
    }

    #[test]
    fn profiler_costs_something_but_not_everything() {
        let bare = throughput(1, 50_000, false);
        let prof = throughput(1, 50_000, true);
        assert!(
            prof < bare * 1.5,
            "profiler can't be faster by much (noise guard)"
        );
        assert!(
            prof > bare / 50.0,
            "profiler should not be 50x slower: {bare} vs {prof}"
        );
    }

    #[test]
    fn runs_fast() {
        run(true);
    }
}
