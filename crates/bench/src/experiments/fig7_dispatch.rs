//! Fig 7 — event pipeline throughput under thread contention.
//!
//! Several threads hammer one dispatcher concurrently (the worst case for
//! the copy-on-write listener snapshot and the profiler's shared mutex).
//! Reported: aggregate events/second and per-event cost vs emitting
//! thread count. On a single-core host the threads time-share, so the
//! interesting signal is that per-event cost stays bounded (no lock
//! convoy collapse) rather than wall-clock scaling.

use crate::report::{fmt_f, write_csv, Table};
use lg_core::profile::ProfileListener;
use lg_core::{Dispatcher, Event, TaskNames};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Measures aggregate dispatch throughput with `threads` emitters.
pub fn throughput(threads: usize, events_per_thread: u64, with_profiler: bool) -> f64 {
    let names = TaskNames::new();
    let task = names.intern("contended");
    let d = Arc::new(Dispatcher::new());
    if with_profiler {
        d.register(Arc::new(ProfileListener::new(names.clone())));
    }
    let start = Arc::new(AtomicBool::new(false));
    let handles: Vec<_> = (0..threads)
        .map(|w| {
            let d = d.clone();
            let start = start.clone();
            std::thread::spawn(move || {
                while !start.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                let e = Event::TaskEnd {
                    task,
                    worker: w,
                    t_ns: 1,
                    elapsed_ns: 1,
                };
                for _ in 0..events_per_thread {
                    d.dispatch(&e);
                }
            })
        })
        .collect();
    let t0 = Instant::now();
    start.store(true, Ordering::Release);
    for h in handles {
        h.join().unwrap();
    }
    let secs = t0.elapsed().as_secs_f64();
    (threads as u64 * events_per_thread) as f64 / secs
}

/// Runs the experiment.
pub fn run(fast: bool) {
    let events: u64 = if fast { 50_000 } else { 1_000_000 };
    let mut table = Table::new(
        "Fig 7: dispatcher throughput under emitter contention",
        &["threads", "listener", "events_per_sec", "ns_per_event"],
    );
    for threads in [1usize, 2, 4, 8] {
        for with_profiler in [false, true] {
            let rate = throughput(threads, events / threads as u64, with_profiler);
            table.row(&[
                threads.to_string(),
                if with_profiler { "profiler" } else { "none" }.into(),
                fmt_f(rate),
                fmt_f(1e9 / rate),
            ]);
        }
    }
    println!("{}", table.render());
    let path = write_csv(&table, "fig7_dispatch");
    println!("wrote {}\n", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_is_sane() {
        // ≥ 100k events/sec even contended with the profiler on a slow box.
        let rate = throughput(2, 20_000, true);
        assert!(rate > 1e5, "rate {rate}");
    }

    #[test]
    fn profiler_costs_something_but_not_everything() {
        let bare = throughput(1, 50_000, false);
        let prof = throughput(1, 50_000, true);
        assert!(
            prof < bare * 1.5,
            "profiler can't be faster by much (noise guard)"
        );
        assert!(
            prof > bare / 50.0,
            "profiler should not be 50x slower: {bare} vs {prof}"
        );
    }

    #[test]
    fn runs_fast() {
        run(true);
    }
}
