//! Fig 4 — task granularity: sweep and online tuning.
//!
//! Granularity trades per-task scheduling overhead against parallelism
//! and load balance. Two substrates:
//!
//! * **Simulated**: a fixed work volume decomposed into `tasks_per_step`
//!   tasks on the 32-core machine with 2 µs scheduling overhead. Too few
//!   tasks (< cores) idle cores; too many pay overhead. Expected shape:
//!   a U in completion time with a flat bottom, minimum at a small
//!   multiple of the core count.
//! * **Real**: `parallel_for` chunk-size sweep over the compute kernel on
//!   this host, plus an online hill-climbing session on the chunk knob
//!   that should land on the flat bottom of the measured curve.

use crate::report::{fmt_f, write_csv, Table};
use lg_core::Knob;
use lg_core::{SessionConfig, SessionStep, TuningSession};
use lg_runtime::{PoolConfig, ThreadPool};
use lg_sim::{MachineSpec, SimRuntime, SimTask};
use lg_tuning::{Dim, HillClimb, Space};
use lg_workloads::ComputeKernel;
use std::time::Instant;

/// Simulated completion time for one step of fixed work split `ntasks`
/// ways.
pub fn sim_time_for_decomposition(spec: &MachineSpec, total_ops: f64, ntasks: usize) -> f64 {
    let mut sim = SimRuntime::new(*spec);
    let ops_each = total_ops / ntasks as f64;
    sim.submit_all((0..ntasks).map(|_| SimTask::new("grain", ops_each, 0.0)));
    sim.run_until_idle().elapsed_s()
}

/// Real wall time for one `parallel_for` pass with the given chunk size.
pub fn real_time_for_chunk(pool: &ThreadPool, kernel: &mut ComputeKernel, chunk: usize) -> f64 {
    let t0 = Instant::now();
    kernel.run_parallel(pool, chunk);
    t0.elapsed().as_secs_f64()
}

/// Runs the experiment.
pub fn run(fast: bool) {
    // --- Simulated sweep ---
    let spec = MachineSpec::server32();
    let total_ops = if fast { 1e8 } else { 1e9 };
    let mut table = Table::new(
        "Fig 4a: completion time vs decomposition width (sim, 32 cores, 2us overhead)",
        &["tasks_per_step", "time_ms"],
    );
    let widths: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384];
    for &n in &widths {
        let t = sim_time_for_decomposition(&spec, total_ops, n);
        table.push(&[n.to_string(), fmt_f(t * 1e3)]);
    }
    println!("{}", table.render());
    let p = write_csv(&table, "fig4a_granularity_sim");
    println!("wrote {}", p.display());

    // --- Real sweep + online tuner ---
    let lg = lg_core::LookingGlass::builder().build();
    let pool = ThreadPool::new(lg.clone(), PoolConfig::default());
    let n = if fast { 20_000 } else { 200_000 };
    let iters = if fast { 20 } else { 50 };
    let mut kernel = ComputeKernel::new(n, iters);
    let mut table = Table::new(
        "Fig 4b: wall time vs chunk size (real runtime, this host)",
        &["chunk", "time_ms"],
    );
    let chunks: Vec<usize> = (0..=14).map(|e| 1usize << e).collect();
    for &chunk in &chunks {
        let t = real_time_for_chunk(&pool, &mut kernel, chunk);
        table.push(&[chunk.to_string(), fmt_f(t * 1e3)]);
    }
    println!("{}", table.render());
    let p = write_csv(&table, "fig4b_granularity_real");
    println!("wrote {}", p.display());

    // Online tuning of the chunk knob.
    let knob = pool.chunk_knob("chunk", 1, 1 << 14, 1);
    let space = Space::new(vec![Dim::pow2("chunk", 0, 14)]);
    let search = Box::new(HillClimb::from_start(space, &[1]).with_min_improvement(0.02));
    let mut session = TuningSession::new(
        SessionConfig::single("chunk", 0, 0),
        search,
        lg.knobs().clone(),
    );
    let mut table = Table::new(
        "Fig 4c: online chunk tuning trace (hill climb, 2% hysteresis)",
        &["epoch", "chunk", "time_ms"],
    );
    let mut epoch = 0;
    loop {
        match session.next(lg.now_ns()) {
            SessionStep::Done { best } => {
                if let Some((point, t)) = best {
                    println!("tuned chunk = {} ({} ms/pass)", point[0], fmt_f(t * 1e3));
                }
                break;
            }
            SessionStep::Measure { point: _, .. } => {
                let chunk = knob.get().max(1) as usize;
                let t = real_time_for_chunk(&pool, &mut kernel, chunk);
                table.push(&[epoch.to_string(), chunk.to_string(), fmt_f(t * 1e3)]);
                session.complete(t);
                epoch += 1;
            }
        }
    }
    println!("{}", table.render());
    let p = write_csv(&table, "fig4c_granularity_tuned");
    println!("wrote {}\n", p.display());

    // --- Accounting gate ---
    // The experiment's entire task volume went through the zero-allocation
    // batch path; the counters must prove it. Run in CI (`fig4 --fast`), so
    // a representation regression fails the build, not just a benchmark.
    pool.wait_idle();
    let spawned = pool.counters().counter("rt.spawned").get();
    let executed = pool.counters().counter("rt.executed").get();
    let boxed = pool.counters().counter("rt.boxed_tasks").get();
    let batches = pool.counters().counter("rt.batch_spawns").get();
    assert_eq!(
        spawned, executed,
        "accounting gate: every spawned task must execute"
    );
    assert_eq!(
        boxed, 0,
        "accounting gate: parallel_for chunks must stay inline, {boxed} were boxed"
    );
    assert!(
        batches > 0,
        "accounting gate: parallel_for must use batched submission"
    );
    println!(
        "accounting gate: spawned == executed == {spawned}, boxed = 0, batch_spawns = {batches}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_u_shape() {
        let spec = MachineSpec::server32();
        let too_few = sim_time_for_decomposition(&spec, 1e8, 1);
        let right = sim_time_for_decomposition(&spec, 1e8, 64);
        let too_many = sim_time_for_decomposition(&spec, 1e8, 50_000);
        assert!(
            too_few > right * 5.0,
            "1 task can't use 32 cores: {too_few} vs {right}"
        );
        assert!(
            too_many > right * 1.5,
            "50k tasks should pay overhead: {too_many} vs {right}"
        );
    }

    #[test]
    fn runs_fast() {
        run(true);
    }
}
