//! Figure 8 — fault storms: static vs adaptive retry budgets.
//!
//! A parcel storm is pushed through the reliability layer over a flapping,
//! lossy link. The retry budget (token-bucket capacity per destination)
//! poses a genuine trade-off under a storm:
//!
//! * a **small** static budget bounds the retry *rate* but starves
//!   recovery — the post-outage backlog drains at the refill rate, and a
//!   backlog that lives through extra outage windows collects extra
//!   failed attempts, so total amplification can even rise;
//! * a **large** static budget recovers fast but keeps retrying into the
//!   dead link during outages, paying wire occupancy that delays the
//!   queued traffic behind it (the link is serialized);
//! * the **adaptive** policy watches the reliability layer's own
//!   observables (timeouts vs acks per epoch) and moves the `retry_budget`
//!   knob: clamp down while the link is failing, open up when it heals.
//!
//! Everything runs in virtual time from seeded RNGs, so a given
//! `(seed, policy)` pair replays bit-for-bit.

use crate::report::{fmt_f, write_csv, Table};
use lg_core::Knob;
use lg_net::coalesce::{FlushReason, WireMessage};
use lg_net::parcel::Parcel;
use lg_net::{FaultPlan, ReliableConfig, ReliableLink, TransportCost};
use lg_workloads::ParcelStorm;

/// How the retry budget is chosen during the run.
#[derive(Clone, Copy, Debug)]
pub enum RetryPolicy {
    /// Fixed budget for the whole run.
    Static(i64),
    /// Epoch controller: budget `low` while timeouts dominate acks,
    /// `high` otherwise.
    Adaptive {
        /// Budget under storm (timeouts dominate).
        low: i64,
        /// Budget in calm weather.
        high: i64,
    },
}

impl RetryPolicy {
    fn label(&self) -> String {
        match self {
            RetryPolicy::Static(b) => format!("static-{b}"),
            RetryPolicy::Adaptive { low, high } => format!("adaptive-{low}/{high}"),
        }
    }

    fn initial(&self) -> i64 {
        match *self {
            RetryPolicy::Static(b) => b,
            RetryPolicy::Adaptive { high, .. } => high,
        }
    }
}

/// Result of one (load, policy) run.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultStormResult {
    /// Policy label.
    pub policy: String,
    /// Unique parcels per second over the delivery makespan, thousands.
    pub goodput_kpps: f64,
    /// Retransmissions per offered parcel.
    pub retry_amplification: f64,
    /// Mean offer→delivery latency (µs).
    pub mean_lat_us: f64,
    /// 99th percentile offer→delivery latency (µs).
    pub p99_lat_us: f64,
    /// Unique parcels delivered.
    pub delivered: u64,
    /// Parcels abandoned after `max_attempts`.
    pub abandoned: u64,
    /// Budget-knob writes made by the adaptive controller.
    pub budget_switches: u64,
}

const PAYLOAD: usize = 64;
const BATCH: usize = 8;
/// Adaptive controller decision period (virtual time).
const EPOCH_NS: u64 = 100_000;
/// Flap schedule: 2 ms of service, 1 ms of outage, repeating. The outage
/// spans several ack timeouts, so an unthrottled sender retries into the
/// dead link repeatedly before it heals.
const FLAP_UP_NS: u64 = 2_000_000;
const FLAP_DOWN_NS: u64 = 1_000_000;

fn storm_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .drop_prob(0.05)
        .flap(FLAP_UP_NS, FLAP_DOWN_NS)
        .jitter_ns(2_000)
}

fn storm_config(initial_budget: i64) -> ReliableConfig {
    ReliableConfig {
        ack_timeout_ns: 300_000,
        backoff_base_ns: 50_000,
        backoff_max_ns: 2_000_000,
        retry_budget: initial_budget,
        retry_refill_per_sec: 20_000.0,
        ..ReliableConfig::default()
    }
}

/// Simulates the full storm through the reliability layer under `policy`.
/// `seed` drives both the fault plan and the backoff jitter.
pub fn simulate(schedule: &[u64], policy: RetryPolicy, seed: u64) -> FaultStormResult {
    let mut rl = ReliableLink::with_faults(
        TransportCost::cluster(),
        storm_plan(seed),
        storm_config(policy.initial()),
        seed ^ 0x9e37_79b9,
    );
    let offer_time = |seq: u64| schedule[seq as usize];

    let mut switches = 0u64;
    let mut delivered = 0u64;
    let mut next_epoch = EPOCH_NS;
    let mut last_timeouts = 0u64;
    let mut last_acks = 0u64;
    let mut batch: Vec<Parcel> = Vec::with_capacity(BATCH);
    for (seq, &t) in schedule.iter().enumerate() {
        // Adaptive control at epoch boundaries: compare the layer's own
        // timeout/ack deltas and steer the budget knob.
        while t >= next_epoch {
            delivered += rl.pump(next_epoch).len() as u64;
            if let RetryPolicy::Adaptive { low, high } = policy {
                let r = rl.report();
                let (dt, da) = (r.timeouts - last_timeouts, r.acks - last_acks);
                last_timeouts = r.timeouts;
                last_acks = r.acks;
                // Clamp down only on clear evidence: timeouts must beat
                // acks *and* be non-trivial, else a single random drop in
                // a quiet gap would throttle the next burst's recovery.
                let want = if dt > da.max(3) { low } else { high };
                if rl.retry_budget_knob().get() != want {
                    rl.retry_budget_knob().set(want);
                    switches += 1;
                }
            }
            next_epoch += EPOCH_NS;
        }
        delivered += rl.pump(t).len() as u64;
        batch.push(Parcel::new(0, 1, 0, seq as u64, vec![0u8; PAYLOAD]));
        if batch.len() == BATCH {
            let msg = WireMessage {
                dest: 1,
                parcels: std::mem::take(&mut batch),
                reason: FlushReason::Window,
                t_ns: t,
            };
            rl.send(msg, offer_time);
        }
    }
    if !batch.is_empty() {
        let t = *schedule.last().expect("non-empty schedule");
        rl.send(
            WireMessage {
                dest: 1,
                parcels: batch,
                reason: FlushReason::Window,
                t_ns: t,
            },
            offer_time,
        );
    }
    delivered += rl.drain().len() as u64;
    let r = rl.report();
    debug_assert_eq!(delivered, r.unique_parcels);
    FaultStormResult {
        policy: policy.label(),
        goodput_kpps: r.goodput_parcels_per_sec() / 1e3,
        retry_amplification: r.retry_amplification(),
        mean_lat_us: r.mean_delivery_latency_ns / 1e3,
        p99_lat_us: r.p99_delivery_latency_ns as f64 / 1e3,
        delivered: r.unique_parcels,
        abandoned: r.abandoned_parcels,
        budget_switches: switches,
    }
}

/// The policies the experiment compares.
pub fn policies() -> Vec<RetryPolicy> {
    vec![
        RetryPolicy::Static(4),
        RetryPolicy::Static(32),
        RetryPolicy::Static(512),
        RetryPolicy::Adaptive { low: 4, high: 512 },
    ]
}

/// Runs the experiment.
pub fn run(fast: bool) {
    let count = if fast { 30_000 } else { 150_000 };
    let loads = [
        (
            "steady",
            ParcelStorm::steady(5e5, PAYLOAD, 21).schedule(count),
        ),
        (
            "bursty",
            ParcelStorm::bursty(5e5, PAYLOAD, 22).schedule(count),
        ),
    ];
    let mut table = Table::new(
        "Figure 8: retry-budget policy under a fault storm",
        &[
            "load",
            "policy",
            "goodput_kpps",
            "retry_amp",
            "mean_lat_us",
            "p99_lat_us",
            "abandoned",
            "switches",
        ],
    );
    for (name, schedule) in &loads {
        for policy in policies() {
            let r = simulate(schedule, policy, 77);
            table.row(&[
                name.to_string(),
                r.policy.clone(),
                fmt_f(r.goodput_kpps),
                fmt_f(r.retry_amplification),
                fmt_f(r.mean_lat_us),
                fmt_f(r.p99_lat_us),
                r.abandoned.to_string(),
                r.budget_switches.to_string(),
            ]);
        }
    }
    println!("{}", table.render());
    let path = write_csv(&table, "fig8_faults");
    println!("wrote {}\n", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storm_schedule(count: usize) -> Vec<u64> {
        ParcelStorm::steady(5e5, PAYLOAD, 1).schedule(count)
    }

    #[test]
    fn deterministic_per_seed() {
        let schedule = storm_schedule(8_000);
        let a = simulate(&schedule, RetryPolicy::Adaptive { low: 4, high: 512 }, 5);
        let b = simulate(&schedule, RetryPolicy::Adaptive { low: 4, high: 512 }, 5);
        assert_eq!(a, b);
        let c = simulate(&schedule, RetryPolicy::Adaptive { low: 4, high: 512 }, 6);
        assert_ne!(a, c, "different storm seeds should differ somewhere");
    }

    #[test]
    fn every_parcel_delivered_or_abandoned() {
        let schedule = storm_schedule(8_000);
        for policy in policies() {
            let r = simulate(&schedule, policy, 3);
            assert_eq!(
                r.delivered + r.abandoned,
                schedule.len() as u64,
                "{}: parcels lost",
                r.policy
            );
        }
    }

    #[test]
    fn adaptive_matches_best_static_goodput() {
        let schedule = storm_schedule(20_000);
        let statics: Vec<FaultStormResult> = [4, 32, 512]
            .iter()
            .map(|&b| simulate(&schedule, RetryPolicy::Static(b), 11))
            .collect();
        let adaptive = simulate(&schedule, RetryPolicy::Adaptive { low: 4, high: 512 }, 11);
        assert!(adaptive.budget_switches > 0, "controller never acted");
        let best = statics.iter().map(|r| r.goodput_kpps).fold(0.0, f64::max);
        assert!(
            adaptive.goodput_kpps >= best * 0.95,
            "adaptive {} vs best static {best}",
            adaptive.goodput_kpps
        );
        // Amplification stays bounded: no worse than the worst static
        // policy, and far from retransmission collapse in absolute terms.
        let worst_amp = statics
            .iter()
            .map(|r| r.retry_amplification)
            .fold(0.0, f64::max);
        assert!(
            adaptive.retry_amplification <= worst_amp && adaptive.retry_amplification < 0.2,
            "adaptive amplification {} vs worst static {worst_amp}",
            adaptive.retry_amplification
        );
    }

    #[test]
    fn small_budget_starves_goodput() {
        // The small budget bounds the retry *rate*, but the starved
        // backlog lives through more outage windows, so it loses on
        // goodput without even winning on total amplification.
        let schedule = storm_schedule(10_000);
        let small = simulate(&schedule, RetryPolicy::Static(4), 13);
        let big = simulate(&schedule, RetryPolicy::Static(512), 13);
        assert!(
            small.goodput_kpps < big.goodput_kpps * 0.8,
            "small-budget starvation should cost goodput: {} vs {}",
            small.goodput_kpps,
            big.goodput_kpps
        );
    }

    #[test]
    fn runs_fast() {
        run(true);
    }
}
