//! Ablation 1 — concurrency throttling × DVFS.
//!
//! Throttling (fewer active cores) and DVFS (slower cores) attack the
//! same waste — cores burning power while the memory system is the
//! bottleneck — through different knobs. Sweeping both on the
//! memory-bound workload shows they are complementary: past the
//! bandwidth knee, *either* fewer cores or lower frequency recovers
//! energy at no throughput cost, and the joint optimum beats either knob
//! alone (frequency saves dynamic power cubically; the cap also sheds the
//! stall floor).

use crate::report::{fmt_f, write_csv, Table};
use lg_sim::{MachineSpec, SimRuntime, SimWorkload};

/// Measures EDP for one (cap, freq) cell.
pub fn measure(
    spec: &MachineSpec,
    w: &SimWorkload,
    cap: usize,
    freq: f64,
    steps: usize,
) -> (f64, f64, f64) {
    let mut sim = SimRuntime::new(*spec);
    sim.set_cap(cap);
    sim.set_freq(freq);
    let mut time_s = 0.0;
    let mut energy = 0.0;
    for _ in 0..steps {
        sim.submit_all(w.step_batch());
        let r = sim.run_until_idle();
        time_s += r.elapsed_s();
        energy += r.energy_j;
    }
    (time_s, energy, energy * time_s)
}

/// Runs the experiment.
pub fn run(fast: bool) {
    let spec = MachineSpec::server32();
    let ops = if fast { 5e7 } else { 5e8 };
    let steps = if fast { 2 } else { 10 };
    let w = SimWorkload::stencil(ops, 64);
    let mut table = Table::new(
        "Ablation 1: thread cap × DVFS on the memory-bound workload",
        &["cap", "freq", "time_s", "energy_j", "edp"],
    );
    let mut best: Option<(usize, f64, f64)> = None;
    for &cap in &[2usize, 4, 8, 16, 32] {
        for &freq in &[0.5f64, 0.75, 1.0] {
            let (t, e, edp) = measure(&spec, &w, cap, freq, steps);
            table.row(&[
                cap.to_string(),
                format!("{freq:.2}"),
                fmt_f(t),
                fmt_f(e),
                fmt_f(edp),
            ]);
            if best.map(|(_, _, b)| edp < b).unwrap_or(true) {
                best = Some((cap, freq, edp));
            }
        }
    }
    let (bc, bf, bedp) = best.unwrap();
    println!("{}", table.render());
    println!(
        "joint optimum: cap={bc}, freq={bf:.2} (edp {})",
        fmt_f(bedp)
    );
    let path = write_csv(&table, "abl1_dvfs");
    println!("wrote {}\n", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dvfs_and_throttling_are_complementary() {
        let spec = MachineSpec::server32();
        let w = SimWorkload::stencil(5e7, 64);
        // Baselines: untuned machine; each knob alone; both together.
        let (_, _, none) = measure(&spec, &w, 32, 1.0, 2);
        let (_, _, cap_only) = measure(&spec, &w, 4, 1.0, 2);
        let (_, _, freq_only) = measure(&spec, &w, 32, 0.5, 2);
        let (_, _, both) = measure(&spec, &w, 8, 0.5, 2);
        assert!(cap_only < none, "throttling alone must help");
        assert!(freq_only < none, "DVFS alone must help");
        assert!(
            both < cap_only.min(freq_only) * 1.05,
            "joint {both} vs alone {cap_only}/{freq_only}"
        );
    }

    #[test]
    fn low_freq_does_not_hurt_saturated_throughput() {
        let spec = MachineSpec::server32();
        let w = SimWorkload::stencil(5e7, 64);
        let (t_full, _, _) = measure(&spec, &w, 16, 1.0, 2);
        let (t_half, _, _) = measure(&spec, &w, 16, 0.5, 2);
        // 16 cores at half speed is still 8× the bandwidth knee.
        assert!(t_half < t_full * 1.1, "{t_half} vs {t_full}");
    }

    #[test]
    fn runs_fast() {
        run(true);
    }
}
