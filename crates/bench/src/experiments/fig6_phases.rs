//! Fig 6 — phase-aware adaptation.
//!
//! A workload alternating memory-bound and compute-bound phases defeats
//! any single static configuration: the memory phase wants a throttled
//! cap, the compute phase wants the whole machine. Compared policies:
//!
//! * **static-K** — fixed cap for the whole run;
//! * **oracle** — per-phase best static cap (exhaustive, not realizable
//!   online);
//! * **adaptive** — a hill-climbing session re-started at every detected
//!   phase boundary, paying real search epochs inside each phase.
//!
//! The adaptive controller comes in three detection flavours
//! ([`PhaseDetect`]): *oracle* (a-priori phase markers, the upper bound),
//! *polling* (inspect the observed bytes-per-op signal every K control
//! rounds), and *threshold* (a [`ThresholdWatch::relative_change`] on the
//! same signal, edge-checked every round). Polling trades reaction time
//! for inspection cost; the watch reacts within one round for the price
//! of a cheap edge-check. The summary table reports the measured
//! reaction delay of each flavour.
//!
//! Expected shape: adaptive total energy lands within ~10% of the oracle
//! and clearly beats the best static configuration.

use crate::experiments::common::{best_pow2_cap, run_steps};
use crate::report::{fmt_f, write_csv, Table};
use lg_core::{Clock as _, SessionConfig, SessionStep, ThresholdWatch, TuningSession};
use lg_sim::workload_model::PhasedSimWorkload;
use lg_sim::{MachineSpec, SimRuntime, SimWorkload};
use lg_tuning::HillClimb;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// How the adaptive controller learns that the workload changed phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseDetect {
    /// A-priori phase markers: free and instant, but not realizable
    /// online — the upper bound on reaction time.
    Oracle,
    /// Inspect the observed bytes-per-op signal every `K` control rounds
    /// and restart when it moved; reacts up to `K` rounds late.
    Polling(usize),
    /// [`ThresholdWatch::relative_change`] on the same signal, polled as
    /// a cheap edge-check every round; reacts within one round.
    Threshold,
}

impl PhaseDetect {
    fn label(self) -> String {
        match self {
            PhaseDetect::Oracle => "adaptive-oracle".into(),
            PhaseDetect::Polling(k) => format!("adaptive-poll{k}"),
            PhaseDetect::Threshold => "adaptive-watch".into(),
        }
    }
}

/// Result of one policy run.
#[derive(Clone, Debug)]
pub struct PolicyResult {
    /// Policy label.
    pub name: String,
    /// Total virtual time (s).
    pub time_s: f64,
    /// Total energy (J).
    pub energy_j: f64,
}

impl PolicyResult {
    /// Energy-delay product.
    pub fn edp(&self) -> f64 {
        self.energy_j * self.time_s
    }
}

fn phased(fast: bool) -> (PhasedSimWorkload, usize, usize) {
    let ops = if fast { 5e7 } else { 2e8 };
    let period = if fast { 24 } else { 40 };
    let phases = 4;
    (
        PhasedSimWorkload::new(
            SimWorkload::stencil(ops, 64),
            SimWorkload::compute(ops, 64),
            period,
        ),
        period,
        phases,
    )
}

/// Runs the whole phased workload at one static cap.
pub fn run_static(
    spec: &MachineSpec,
    w: &PhasedSimWorkload,
    total_steps: usize,
    cap: usize,
) -> PolicyResult {
    let mut sim = SimRuntime::new(*spec);
    sim.set_cap(cap);
    let mut time_s = 0.0;
    let mut energy = 0.0;
    for step in 0..total_steps {
        sim.submit_all(w.step_batch(step));
        let r = sim.run_until_idle();
        time_s += r.elapsed_s();
        energy += r.energy_j;
    }
    PolicyResult {
        name: format!("static-{cap}"),
        time_s,
        energy_j: energy,
    }
}

/// Oracle: per-phase best static cap, switched for free at boundaries.
pub fn run_oracle(spec: &MachineSpec, w: &PhasedSimWorkload, total_steps: usize) -> PolicyResult {
    let (cap_a, _) = best_pow2_cap(spec, &w.a, 1);
    let (cap_b, _) = best_pow2_cap(spec, &w.b, 1);
    let mut sim = SimRuntime::new(*spec);
    let mut time_s = 0.0;
    let mut energy = 0.0;
    for step in 0..total_steps {
        let cap = if w.phase_index(step).is_multiple_of(2) {
            cap_a
        } else {
            cap_b
        };
        sim.set_cap(cap);
        sim.submit_all(w.step_batch(step));
        let r = sim.run_until_idle();
        time_s += r.elapsed_s();
        energy += r.energy_j;
    }
    PolicyResult {
        name: format!("oracle({cap_a}/{cap_b})"),
        time_s,
        energy_j: energy,
    }
}

/// Adaptive: hill-climb session restarted at each *detected* phase
/// boundary. Returns the result, the per-step cap trace, the run's final
/// introspection snapshot (the state-of-the-world block the report
/// renders), and the reaction delay (in steps) of every restart after a
/// true phase boundary.
///
/// The detection signal is the bytes-per-op ratio of the batch most
/// recently executed — an intrinsic workload property the runtime
/// observes for free, independent of the cap the tuner happens to be
/// trying (so mid-phase search moves can never false-trigger a restart).
pub fn run_adaptive(
    spec: &MachineSpec,
    w: &PhasedSimWorkload,
    total_steps: usize,
    detect: PhaseDetect,
) -> (
    PolicyResult,
    Vec<(usize, i64)>,
    lg_core::IntrospectionSnapshot,
    Vec<usize>,
) {
    let mut sim = SimRuntime::new(*spec);
    // Typed handles, resolved once: the cap by id, the energy gauge by
    // metric id, and the search space derived from the registry's specs
    // (the sim registers `thread_cap` with Pow2 scale).
    let cap_id = sim.lg().knobs().id("thread_cap").expect("sim registers it");
    let energy_metric = sim
        .lg()
        .introspection()
        .metric_id("sim.energy_j")
        .expect("sim registers it");
    let mut time_s = 0.0;
    let mut energy = 0.0;
    let mut trace = Vec::new();
    let mut session: Option<TuningSession> = None;
    let mut last_phase = usize::MAX;
    let mut step = 0usize;
    // The observed signal: bytes/op of the last executed batch. NaN until
    // the first batch runs, which keeps the watch silent (non-finite
    // readings never fire and never set a baseline).
    let signal = Arc::new(AtomicU64::new(f64::NAN.to_bits()));
    let mut watch = {
        let s = signal.clone();
        ThresholdWatch::relative_change(move || f64::from_bits(s.load(Ordering::Relaxed)), 0.5)
    };
    let mut reactions = Vec::new();
    let period = w.period_steps;
    while step < total_steps {
        let fired = match detect {
            PhaseDetect::Oracle => w.phase_index(step) != last_phase,
            PhaseDetect::Polling(k) => step.is_multiple_of(k.max(1)) && watch.poll(),
            PhaseDetect::Threshold => watch.poll(),
        };
        if fired || session.is_none() {
            // Detected boundary: restart the search from the current cap
            // (warm start — the previous phase's winner is the prior).
            last_phase = w.phase_index(step);
            if fired && step > 0 {
                // Ground truth (for measurement only): boundaries sit at
                // multiples of the phase period.
                reactions.push(step % period);
            }
            let current = sim
                .lg()
                .knobs()
                .value_id(cap_id)
                .unwrap_or(spec.cores as i64);
            let space = sim.lg().knobs().space_for(&["thread_cap"]);
            let search =
                Box::new(HillClimb::from_start(space, &[current]).with_min_improvement(0.01));
            session = Some(
                TuningSession::new(
                    SessionConfig::single("thread_cap", 0, 0),
                    search,
                    sim.lg().knobs().clone(),
                )
                .with_introspection(sim.lg().introspection().clone()),
            );
        }
        let active = w.active_at(step);
        signal.store(active.bytes_per_op.to_bits(), Ordering::Relaxed);
        let s = session.as_mut().expect("session exists");
        if s.is_finished() {
            // Converged for this phase: run at the winner.
            sim.submit_all(w.step_batch(step));
            let r = sim.run_until_idle();
            time_s += r.elapsed_s();
            energy += r.energy_j;
            trace.push((step, sim.lg().knobs().value_id(cap_id).unwrap()));
            step += 1;
            continue;
        }
        match s.next(sim.clock().now_ns()) {
            SessionStep::Done { .. } => { /* loop re-checks is_finished */ }
            SessionStep::Measure { point, .. } => {
                // One epoch = one workload step under the candidate cap.
                // The phase may end mid-epoch; adaptation pays that cost.
                let steps_this_epoch = 1.min(total_steps - step);
                let r = run_steps(&mut sim, w.active_at(step), steps_this_epoch);
                time_s += r.elapsed_s();
                energy += r.energy_j;
                trace.push((step, point[0]));
                step += steps_this_epoch;
                // EDP for the epoch, measured through the snapshot pair
                // the session captured around it (ΔE · Δt).
                s.complete_via(sim.clock().now_ns(), |begin, end| {
                    let de = end.value(energy_metric).unwrap_or(0.0)
                        - begin.value(energy_metric).unwrap_or(0.0);
                    let dt = (end.t_ns - begin.t_ns) as f64 / 1e9;
                    de * dt
                });
            }
        }
    }
    let snapshot = sim.lg().snapshot();
    (
        PolicyResult {
            name: detect.label(),
            time_s,
            energy_j: energy,
        },
        trace,
        snapshot,
        reactions,
    )
}

/// Mean of the reaction delays, `0` when no restart was observed.
pub fn mean_reaction_steps(reactions: &[usize]) -> f64 {
    if reactions.is_empty() {
        return 0.0;
    }
    reactions.iter().sum::<usize>() as f64 / reactions.len() as f64
}

/// Runs the experiment.
pub fn run(fast: bool) {
    let spec = MachineSpec::server32();
    let (w, period, phases) = phased(fast);
    let total_steps = period * phases;

    let mut table = Table::new(
        "Fig 6 / summary: phase-alternating workload, total cost per policy",
        &["policy", "time_s", "energy_j", "edp", "react_steps"],
    );
    let mut results = Vec::new();
    for cap in [4, 8, 16, 32] {
        results.push((run_static(&spec, &w, total_steps, cap), None));
    }
    results.push((run_oracle(&spec, &w, total_steps), None));
    let mut trace = Vec::new();
    let mut snapshot = None;
    for detect in [
        PhaseDetect::Oracle,
        PhaseDetect::Polling(period / 4),
        PhaseDetect::Threshold,
    ] {
        let (r, tr, snap, reactions) = run_adaptive(&spec, &w, total_steps, detect);
        results.push((r, Some(mean_reaction_steps(&reactions))));
        if detect == PhaseDetect::Threshold {
            trace = tr;
            snapshot = Some(snap);
        }
    }
    let snapshot = snapshot.expect("threshold flavour always runs");
    for (r, react) in &results {
        table.row(&[
            r.name.clone(),
            fmt_f(r.time_s),
            fmt_f(r.energy_j),
            fmt_f(r.edp()),
            react.map_or_else(|| "-".into(), fmt_f),
        ]);
    }
    println!("{}", table.render());
    let p = write_csv(&table, "fig6_phases_summary");
    println!("wrote {}", p.display());

    let mut trace_table = Table::new(
        "Fig 6: adaptive-watch cap trace (step, cap)",
        &["step", "cap"],
    );
    for (step, cap) in &trace {
        trace_table.push(&[step.to_string(), cap.to_string()]);
    }
    println!("{} rows in cap trace", trace_table.len());
    let p = write_csv(&trace_table, "fig6_phases_trace");
    println!("wrote {}", p.display());

    // Final state of the adaptive run, rendered from the snapshot.
    println!("{}", crate::report::snapshot_table(&snapshot).render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_beats_worst_static_and_approaches_oracle() {
        let spec = MachineSpec::server32();
        let (w, period, phases) = phased(true);
        let total = period * phases;
        let static32 = run_static(&spec, &w, total, 32);
        let static4 = run_static(&spec, &w, total, 4);
        let oracle = run_oracle(&spec, &w, total);
        let (adaptive, trace, snapshot, _) = run_adaptive(&spec, &w, total, PhaseDetect::Oracle);
        assert!(
            snapshot.value_by_name("sim.energy_j").unwrap() > 0.0,
            "snapshot must carry the run's energy gauge"
        );
        let worst = static32.edp().max(static4.edp());
        assert!(
            adaptive.edp() < worst,
            "adaptive {} should beat worst static {}",
            adaptive.edp(),
            worst
        );
        assert!(
            adaptive.edp() < oracle.edp() * 1.35,
            "adaptive {} should be within 35% of oracle {}",
            adaptive.edp(),
            oracle.edp()
        );
        // The cap must actually move between phases.
        let caps: std::collections::HashSet<i64> = trace.iter().map(|(_, c)| *c).collect();
        assert!(caps.len() > 1, "adaptive cap never moved");
    }

    #[test]
    fn oracle_uses_different_caps_per_phase() {
        let spec = MachineSpec::server32();
        let (w, _, _) = phased(true);
        let (cap_a, _) = best_pow2_cap(&spec, &w.a, 1);
        let (cap_b, _) = best_pow2_cap(&spec, &w.b, 1);
        assert_ne!(cap_a, cap_b, "phases should want different caps");
        assert!(
            cap_a < cap_b,
            "memory phase should throttle below compute phase"
        );
    }

    #[test]
    fn threshold_detection_reacts_within_one_step() {
        let spec = MachineSpec::server32();
        let (w, period, phases) = phased(true);
        let total = period * phases;
        let (_, _, _, reactions) = run_adaptive(&spec, &w, total, PhaseDetect::Threshold);
        assert_eq!(
            reactions.len(),
            phases - 1,
            "one detected restart per true boundary"
        );
        assert!(
            reactions.iter().all(|&d| d == 1),
            "watch should react one step after every boundary, got {reactions:?}"
        );
    }

    #[test]
    fn polling_reacts_slower_than_threshold_but_still_adapts() {
        let spec = MachineSpec::server32();
        let (w, period, phases) = phased(true);
        let total = period * phases;
        let k = period / 4;
        let (poll, trace, _, reactions) = run_adaptive(&spec, &w, total, PhaseDetect::Polling(k));
        assert_eq!(reactions.len(), phases - 1);
        assert!(
            reactions.iter().all(|&d| d > 1 && d <= k),
            "polling delay must sit in (1, {k}], got {reactions:?}"
        );
        let (watch, _, _, watch_reactions) = run_adaptive(&spec, &w, total, PhaseDetect::Threshold);
        assert!(
            mean_reaction_steps(&watch_reactions) < mean_reaction_steps(&reactions),
            "threshold must react faster than polling on average"
        );
        // Slower detection still adapts (caps move) and stays in the same
        // cost regime as the watch-driven controller.
        let caps: std::collections::HashSet<i64> = trace.iter().map(|(_, c)| *c).collect();
        assert!(caps.len() > 1, "polling controller cap never moved");
        assert!(
            watch.edp() <= poll.edp() * 1.10,
            "watch edp {} should not trail polling edp {}",
            watch.edp(),
            poll.edp()
        );
    }

    #[test]
    fn runs_fast() {
        run(true);
    }
}
