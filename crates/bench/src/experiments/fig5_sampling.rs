//! Fig 5 — asynchronous sampling overhead vs sampling period.
//!
//! The async half of observation is a background sampler polling counter
//! sources. Fast sampling gives policies fresh data but steals cycles
//! from the application — on this single-core host, very visibly.
//! Expected shape: application slowdown falls monotonically as the period
//! grows, with a knee around 1 ms after which overhead is noise.

use crate::report::{fmt_f, write_csv, Table};
use lg_metrics::{procfs, FnSource, Sampled, Sampler, SamplerConfig};
use lg_runtime::{PoolConfig, ThreadPool};
use lg_workloads::ComputeKernel;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn workload_time(pool: &ThreadPool, n: usize, iters: usize) -> f64 {
    let mut k = ComputeKernel::new(n, iters);
    let t0 = Instant::now();
    k.run_parallel(pool, n / 16 + 1);
    std::hint::black_box(k.checksum());
    t0.elapsed().as_secs_f64()
}

fn sources() -> Vec<Arc<dyn Sampled>> {
    vec![
        Arc::new(procfs::CpuUtilSource::new()),
        Arc::new(procfs::ProcessSource),
        Arc::new(FnSource::new("synthetic.a", || 1.0)),
        Arc::new(FnSource::new("synthetic.b", || 2.0)),
    ]
}

/// Runs the experiment.
pub fn run(fast: bool) {
    let lg = lg_core::LookingGlass::builder().build();
    let pool = ThreadPool::new(lg, PoolConfig::default());
    let n = if fast { 20_000 } else { 100_000 };
    let iters = if fast { 30 } else { 100 };
    let reps = if fast { 2 } else { 5 };

    let measure = |sampler_period: Option<Duration>| -> (f64, u64) {
        let sink_count = Arc::new(AtomicU64::new(0));
        let sampler = sampler_period.map(|period| {
            let c = sink_count.clone();
            Sampler::start(
                SamplerConfig {
                    period,
                    sample_immediately: true,
                },
                sources(),
                move |_t, _n, _v| {
                    c.fetch_add(1, Ordering::Relaxed);
                },
            )
        });
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            best = best.min(workload_time(&pool, n, iters));
        }
        if let Some(s) = sampler {
            s.stop();
        }
        (best, sink_count.load(Ordering::Relaxed))
    };

    let (baseline, _) = measure(None);

    let mut table = Table::new(
        "Fig 5: application slowdown vs sampling period",
        &["period_ms", "time_ms", "overhead_pct", "samples_delivered"],
    );
    table.row(&["off".into(), fmt_f(baseline * 1e3), "0".into(), "0".into()]);
    let periods_us: &[u64] = if fast {
        &[100, 1_000, 10_000]
    } else {
        &[100, 300, 1_000, 3_000, 10_000, 30_000, 100_000]
    };
    for &us in periods_us {
        let (t, samples) = measure(Some(Duration::from_micros(us)));
        let overhead = (t / baseline - 1.0) * 100.0;
        table.row(&[
            fmt_f(us as f64 / 1e3),
            fmt_f(t * 1e3),
            fmt_f(overhead),
            samples.to_string(),
        ]);
    }
    println!("{}", table.render());
    let path = write_csv(&table, "fig5_sampling");
    println!("wrote {}\n", path.display());
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_fast() {
        super::run(true);
    }
}
