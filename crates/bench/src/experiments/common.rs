//! Shared measurement helpers for the experiment suite.

use lg_sim::{MachineSpec, SimRunReport, SimRuntime, SimWorkload};

/// Outcome of running a workload for a fixed number of steps at a fixed
/// thread cap on the simulated machine.
#[derive(Clone, Copy, Debug)]
pub struct CapMeasurement {
    /// The cap under test.
    pub cap: usize,
    /// Virtual time for the steps (s).
    pub time_s: f64,
    /// Energy over the steps (J).
    pub energy_j: f64,
    /// Achieved throughput (ops/s).
    pub ops_per_sec: f64,
    /// Mean package power (W).
    pub mean_power_w: f64,
}

impl CapMeasurement {
    /// Energy-delay product (J·s).
    pub fn edp(&self) -> f64 {
        self.energy_j * self.time_s
    }
}

/// Runs `steps` timesteps of `workload` at `cap` on a fresh simulated
/// machine and reports the aggregate.
pub fn measure_cap(
    spec: &MachineSpec,
    workload: &SimWorkload,
    cap: usize,
    steps: usize,
) -> CapMeasurement {
    let mut sim = SimRuntime::new(*spec);
    sim.set_cap(cap);
    let mut agg = SimRunReport {
        elapsed_ns: 0,
        energy_j: 0.0,
        tasks: 0,
        ops: 0.0,
    };
    for _ in 0..steps {
        sim.submit_all(workload.step_batch());
        let r = sim.run_until_idle();
        agg.elapsed_ns += r.elapsed_ns;
        agg.energy_j += r.energy_j;
        agg.tasks += r.tasks;
        agg.ops += r.ops;
    }
    CapMeasurement {
        cap,
        time_s: agg.elapsed_s(),
        energy_j: agg.energy_j,
        ops_per_sec: agg.ops_per_sec(),
        mean_power_w: agg.mean_power_w(),
    }
}

/// Runs `steps` timesteps on an *existing* simulator (sharing energy and
/// clock state), returning the window's report.
pub fn run_steps(sim: &mut SimRuntime, workload: &SimWorkload, steps: usize) -> SimRunReport {
    let mut agg = SimRunReport {
        elapsed_ns: 0,
        energy_j: 0.0,
        tasks: 0,
        ops: 0.0,
    };
    for _ in 0..steps {
        sim.submit_all(workload.step_batch());
        let r = sim.run_until_idle();
        agg.elapsed_ns += r.elapsed_ns;
        agg.energy_j += r.energy_j;
        agg.tasks += r.tasks;
        agg.ops += r.ops;
    }
    agg
}

/// Finds the EDP-optimal cap by exhaustive sweep (ground truth).
pub fn best_static_cap(spec: &MachineSpec, workload: &SimWorkload, steps: usize) -> (usize, f64) {
    (1..=spec.cores)
        .map(|cap| {
            let m = measure_cap(spec, workload, cap, steps);
            (cap, m.edp())
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("at least one cap")
}

/// Power-of-two caps up to the core count — the space online throttling
/// searches. Wave quantization (`tasks % cap`) makes the full integer cap
/// range a staircase full of spurious local minima; power-of-two steps are
/// the standard remedy (and shrink the search to a handful of epochs).
pub fn pow2_caps(cores: usize) -> Vec<i64> {
    let mut v = Vec::new();
    let mut c = 1usize;
    while c <= cores {
        v.push(c as i64);
        c *= 2;
    }
    v
}

/// EDP-optimal cap restricted to the power-of-two lattice.
pub fn best_pow2_cap(spec: &MachineSpec, workload: &SimWorkload, steps: usize) -> (usize, f64) {
    pow2_caps(spec.cores)
        .into_iter()
        .map(|cap| {
            let m = measure_cap(spec, workload, cap as usize, steps);
            (cap as usize, m.edp())
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("at least one cap")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_cap_is_deterministic() {
        let spec = MachineSpec::small8();
        let w = SimWorkload::stencil(1e7, 16);
        let a = measure_cap(&spec, &w, 4, 3);
        let b = measure_cap(&spec, &w, 4, 3);
        assert_eq!(a.time_s, b.time_s);
        assert_eq!(a.energy_j, b.energy_j);
    }

    #[test]
    fn best_static_cap_for_compute_is_max_cores() {
        let spec = MachineSpec::small8();
        let w = SimWorkload::compute(1e8, 16);
        let (cap, _) = best_static_cap(&spec, &w, 2);
        assert_eq!(cap, 8, "compute-bound EDP optimum should be all cores");
    }

    #[test]
    fn best_static_cap_for_memory_is_below_max() {
        let spec = MachineSpec::server32();
        let w = SimWorkload::stencil(1e8, 64);
        let (cap, _) = best_static_cap(&spec, &w, 2);
        assert!(
            cap < 32,
            "memory-bound EDP optimum should throttle, got {cap}"
        );
        assert!(cap >= 2, "but not strangle, got {cap}");
    }
}
