//! Fig 3 — online throttling convergence trace.
//!
//! An online tuning session (hill climbing over the thread cap, objective
//! = EDP of a measurement window) runs against the memory-bound workload
//! on the simulated machine, once cold-started from the full machine
//! (cap = 32) and once from a strangled configuration (cap = 1). Expected
//! shape: both traces walk to the same energy-optimal cap (near the
//! bandwidth knee) within a few dozen epochs, and the session leaves the
//! winner applied.

#[cfg(test)]
use crate::experiments::common::best_pow2_cap;
use crate::experiments::common::{best_static_cap, pow2_caps, run_steps};
use crate::report::{fmt_f, write_csv, Table};
use lg_core::{Clock as _, SessionConfig, SessionStep, TuningSession};
use lg_sim::{MachineSpec, SimRuntime, SimWorkload};
use lg_tuning::{Dim, HillClimb, Space};

/// One epoch of the convergence trace.
#[derive(Clone, Debug)]
pub struct TracePoint {
    /// Epoch index.
    pub epoch: usize,
    /// Cap evaluated this epoch.
    pub cap: i64,
    /// Observed EDP.
    pub edp: f64,
}

/// Runs the tuning session from `start_cap`; returns the trace and the
/// final cap.
pub fn converge_from(
    spec: &MachineSpec,
    workload: &SimWorkload,
    start_cap: i64,
    steps_per_epoch: usize,
) -> (Vec<TracePoint>, i64) {
    let mut sim = SimRuntime::new(*spec);
    let space = Space::new(vec![Dim::values("thread_cap", pow2_caps(spec.cores))]);
    let search = Box::new(HillClimb::from_start(space, &[start_cap]));
    let cfg = SessionConfig::single("thread_cap", 0, 0);
    let mut session = TuningSession::new(cfg, search, sim.lg().knobs().clone());
    let mut trace = Vec::new();
    loop {
        match session.next(sim.clock().now_ns()) {
            SessionStep::Done { best } => {
                let final_cap = best.map(|(p, _)| p[0]).unwrap_or(start_cap);
                return (trace, final_cap);
            }
            SessionStep::Measure { point, .. } => {
                let r = run_steps(&mut sim, workload, steps_per_epoch);
                let edp = r.energy_j * r.elapsed_s();
                trace.push(TracePoint {
                    epoch: trace.len(),
                    cap: point[0],
                    edp,
                });
                session.complete(edp);
            }
        }
    }
}

/// Runs the experiment.
pub fn run(fast: bool) {
    let spec = MachineSpec::server32();
    let ops = if fast { 5e7 } else { 5e8 };
    let workload = SimWorkload::stencil(ops, 64);
    let steps = if fast { 1 } else { 4 };

    let (oracle_cap, oracle_edp) = best_static_cap(&spec, &workload, steps);

    let mut table = Table::new(
        "Fig 3: throttling convergence trace (hill climb on EDP)",
        &["start", "epoch", "cap", "edp"],
    );
    for start in [spec.cores as i64, 1] {
        let (trace, final_cap) = converge_from(&spec, &workload, start, steps);
        for t in &trace {
            table.row(&[
                format!("cap={start}"),
                t.epoch.to_string(),
                t.cap.to_string(),
                fmt_f(t.edp),
            ]);
        }
        println!(
            "start cap {start}: converged to cap {final_cap} in {} epochs (oracle: cap {oracle_cap}, edp {})",
            trace.len(),
            fmt_f(oracle_edp)
        );
    }
    println!("{}", table.render());
    let path = write_csv(&table, "fig3_convergence");
    println!("wrote {}\n", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_near_oracle_from_both_sides() {
        let spec = MachineSpec::server32();
        let w = SimWorkload::stencil(5e7, 64);
        let (oracle, _) = best_pow2_cap(&spec, &w, 1);
        for start in [32, 1] {
            let (trace, final_cap) = converge_from(&spec, &w, start, 1);
            // Within one power-of-two level of the restricted oracle.
            assert!(
                final_cap as usize == oracle
                    || final_cap as usize == oracle * 2
                    || oracle == (final_cap as usize) * 2,
                "from {start}: final {final_cap} vs oracle {oracle}"
            );
            assert!(trace.len() <= 12, "too many epochs: {}", trace.len());
        }
    }

    #[test]
    fn winner_left_applied_on_knobs() {
        let spec = MachineSpec::server32();
        let w = SimWorkload::stencil(5e7, 64);
        let mut sim = SimRuntime::new(spec);
        let space = Space::new(vec![Dim::values("thread_cap", pow2_caps(32))]);
        let search = Box::new(HillClimb::from_start(space, &[32]));
        let mut session = TuningSession::new(
            SessionConfig::single("thread_cap", 0, 0),
            search,
            sim.lg().knobs().clone(),
        );
        let best = loop {
            match session.next(sim.clock().now_ns()) {
                SessionStep::Done { best } => break best.unwrap(),
                SessionStep::Measure { .. } => {
                    let r = run_steps(&mut sim, &w, 1);
                    session.complete(r.energy_j * r.elapsed_s());
                }
            }
        };
        assert_eq!(sim.lg().knobs().value("thread_cap"), Some(best.0[0]));
    }

    #[test]
    fn runs_fast() {
        run(true);
    }
}
