//! Fig 1 — inline observation overhead.
//!
//! Measures the per-event cost of the observation pipeline as listeners
//! are added: the disabled path, the enabled-but-empty dispatcher, and
//! 1–4 registered listeners of increasing weight (no-op closures, then
//! the real profiler). Expected shape: the disabled path costs a few
//! nanoseconds (one atomic load); each listener adds tens of nanoseconds;
//! the full profiled timer stays well under a microsecond per event.

use crate::report::{fmt_f, write_csv, Table};
use lg_core::listener::FnListener;
use lg_core::profile::ProfileListener;
use lg_core::{Dispatcher, Event, LookingGlass, TaskNames};
use std::sync::Arc;
use std::time::Instant;

fn ns_per_event(iters: u64, f: impl Fn()) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Runs the experiment.
pub fn run(fast: bool) {
    let iters: u64 = if fast { 50_000 } else { 2_000_000 };
    let names = TaskNames::new();
    let task = names.intern("bench");
    let event = Event::TaskEnd {
        task,
        worker: 0,
        t_ns: 1,
        elapsed_ns: 1,
    };

    let mut table = Table::new(
        "Fig 1: per-event observation cost (lower is better)",
        &["configuration", "ns/event", "events/sec"],
    );
    let mut record = |name: &str, ns: f64| {
        table.row(&[name.to_string(), fmt_f(ns), fmt_f(1e9 / ns)]);
    };

    // Disabled dispatcher: the "observation compiled in but switched off"
    // cost every production deployment pays.
    let d = Dispatcher::new();
    d.set_enabled(false);
    let ns_disabled = ns_per_event(iters, || d.dispatch(&event));
    record("disabled", ns_disabled);

    // Enabled, zero listeners.
    let d = Dispatcher::new();
    let ns_empty = ns_per_event(iters, || d.dispatch(&event));
    record("enabled, 0 listeners", ns_empty);

    // 1..4 no-op listeners.
    for n in 1..=4usize {
        let d = Dispatcher::new();
        for i in 0..n {
            d.register(Arc::new(FnListener::new(format!("noop{i}"), |e| {
                std::hint::black_box(e);
            })));
        }
        record(
            &format!(
                "enabled, {n} no-op listener{}",
                if n == 1 { "" } else { "s" }
            ),
            ns_per_event(iters, || d.dispatch(&event)),
        );
    }

    // Real profiler listener (hash lookup + Welford).
    let d = Dispatcher::new();
    d.register(Arc::new(ProfileListener::new(names.clone())));
    record(
        "enabled, profiler",
        ns_per_event(iters, || d.dispatch(&event)),
    );

    // Full RAII timer through a complete instance (profiler + concurrency
    // + clock reads + two events).
    let lg = LookingGlass::builder().build();
    let ns_timer = ns_per_event(iters / 4, || {
        let _t = lg.timer("bench");
    });
    record("full Timer (begin+end, profiled)", ns_timer);

    println!("{}", table.render());
    // Shape gates (lenient, CI-safe): the disabled path must stay a small
    // fraction of a live dispatch — it is one atomic load, so if it ever
    // approaches the enabled cost the early-out broke. The full timer is
    // two events plus two clock reads and must stay well under 10 µs.
    assert!(
        ns_disabled < ns_empty,
        "disabled dispatch ({ns_disabled:.1} ns) should undercut enabled ({ns_empty:.1} ns)"
    );
    assert!(ns_timer < 10_000.0, "full timer cost {ns_timer:.1} ns");
    let path = write_csv(&table, "fig1_overhead");
    println!("wrote {}\n", path.display());
}

#[cfg(test)]
mod tests {
    #[test]
    fn runs_fast() {
        super::run(true);
    }
}
