//! One module per table/figure of the reconstructed evaluation.
//!
//! Every experiment follows the same contract: a `run(fast: bool)`
//! function that prints an aligned table to stdout and writes a CSV under
//! `target/experiments/`. `fast` shrinks problem sizes so the whole suite
//! (and its tests) stays tractable on small machines; the shapes the
//! experiments demonstrate are preserved.

pub mod abl1_dvfs;
pub mod abl2_stall;
pub mod common;
pub mod fig10_tenancy;
pub mod fig11_dag;
pub mod fig1_overhead;
pub mod fig2_concurrency;
pub mod fig3_convergence;
pub mod fig4_granularity;
pub mod fig5_sampling;
pub mod fig6_phases;
pub mod fig7_dispatch;
pub mod fig8_faults;
pub mod fig9_overload;
pub mod tbl1_static_vs_adaptive;
pub mod tbl2_coalescing;
pub mod tbl3_search;

/// CLI entry point for the `experiments` binary.
pub fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let fast = args.iter().any(|a| a == "--fast");
    let which: Vec<&str> = args
        .iter()
        .map(|s| s.as_str())
        .filter(|a| !a.starts_with("--"))
        .collect();
    let selected = if which.is_empty() || which.contains(&"all") {
        vec![
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
            "fig11", "tbl1", "tbl2", "tbl3", "abl1", "abl2",
        ]
    } else {
        which
    };
    for name in selected {
        run_one(name, fast);
    }
}

/// Runs a single experiment by id.
pub fn run_one(name: &str, fast: bool) {
    match name {
        "fig1" => fig1_overhead::run(fast),
        "fig2" => fig2_concurrency::run(fast),
        "fig3" => fig3_convergence::run(fast),
        "fig4" => fig4_granularity::run(fast),
        "fig5" => fig5_sampling::run(fast),
        "fig6" => fig6_phases::run(fast),
        "fig7" => fig7_dispatch::run(fast),
        "fig8" => fig8_faults::run(fast),
        "fig9" => fig9_overload::run(fast),
        "fig10" => fig10_tenancy::run(fast),
        "fig11" => fig11_dag::run(fast),
        "tbl1" => tbl1_static_vs_adaptive::run(fast),
        "tbl2" => tbl2_coalescing::run(fast),
        "tbl3" => tbl3_search::run(fast),
        "abl1" => abl1_dvfs::run(fast),
        "abl2" => abl2_stall::run(fast),
        other => {
            eprintln!(
                "unknown experiment '{other}'; expected fig1..fig10, tbl1..tbl3, abl1, abl2, or all"
            );
            std::process::exit(2);
        }
    }
}
