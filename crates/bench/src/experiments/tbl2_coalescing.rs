//! Table 2 — parcel coalescing: static windows vs adaptive, three loads.
//!
//! A parcel storm drives the coalescer + simulated link in virtual time.
//! The per-message cost makes window-1 sending saturate the link under
//! heavy load (queueing latency explodes); very large windows bound
//! throughput by the flush deadline and add buffering delay under light
//! load. Expected shape:
//!
//! * heavy steady load: optimal window is moderate (≈16–64); window 1 is
//!   catastrophically slow, window 512 pays deadline delay;
//! * trickle load: window 1 is best (nothing to amortize, buffering only
//!   adds latency);
//! * adaptive tracks the regime it is offered without being told.

use crate::report::{fmt_f, write_csv, Table};
use lg_core::Knob;
use lg_net::parcel::Parcel;
use lg_net::{Coalescer, SimLink, TransportCost};
use lg_tuning::{Dim, HillClimb, Search, Space};
use lg_workloads::ParcelStorm;

/// Result of one (load, policy) run.
#[derive(Clone, Debug)]
pub struct CoalesceResult {
    /// Policy label.
    pub policy: String,
    /// Mean parcels per wire message achieved.
    pub mean_coalesce: f64,
    /// Mean end-to-end parcel latency (µs).
    pub mean_latency_us: f64,
    /// 99th percentile latency (µs).
    pub p99_latency_us: f64,
    /// Makespan (ms): when the last parcel arrived.
    pub makespan_ms: f64,
}

const PAYLOAD: usize = 64;
const MAX_DELAY_NS: u64 = 50_000;

/// Simulates the full storm through a coalescer with either a fixed
/// window or an online tuner adjusting the window every `epoch` parcels.
pub fn simulate(schedule: &[u64], window: usize, adaptive: bool) -> CoalesceResult {
    let mut coal = Coalescer::new(window, 512, MAX_DELAY_NS);
    let mut link = SimLink::new(TransportCost::cluster());
    let offer_times: Vec<u64> = schedule.to_vec();

    // Online tuner state (used when `adaptive`).
    let space = Space::new(vec![Dim::pow2("coalesce_window", 0, 9)]);
    let mut search = HillClimb::from_start(space, &[window as i64]).with_min_improvement(0.02);
    let mut pending: Option<Vec<i64>> = None;
    let epoch_parcels = 2_000usize;
    let mut epoch_count = 0usize;
    let mut epoch_latency_sum = 0.0f64;
    if adaptive {
        if let Some(p) = search.propose() {
            coal.window_knob().set(p[0]);
            pending = Some(p);
        }
    }

    let transmit = |link: &mut SimLink, msg: &lg_net::coalesce::WireMessage| -> (usize, f64) {
        let deliveries = link.transmit(msg, |seq| offer_times[seq as usize]);
        let n = deliveries.len();
        let lat_sum: f64 = deliveries
            .iter()
            .map(|d| (d.arrived_ns - offer_times[d.seq as usize]) as f64)
            .sum();
        (n, lat_sum)
    };

    for (seq, &t) in schedule.iter().enumerate() {
        // Deadline flushes due strictly before this arrival.
        while let Some(d) = coal.next_deadline_ns() {
            if d > t {
                break;
            }
            for msg in coal.poll(d) {
                let (n, lat) = transmit(&mut link, &msg);
                epoch_count += n;
                epoch_latency_sum += lat;
            }
        }
        let parcel = Parcel::new(0, 1, 0, seq as u64, vec![0u8; PAYLOAD]);
        if let Some(msg) = coal.offer(parcel, t) {
            let (n, lat) = transmit(&mut link, &msg);
            epoch_count += n;
            epoch_latency_sum += lat;
        }
        // Tuner epoch boundary.
        if adaptive && epoch_count >= epoch_parcels {
            if let Some(p) = pending.take() {
                let mean_lat = epoch_latency_sum / epoch_count as f64;
                search.report(&p, mean_lat);
            }
            if let Some(p) = search.propose() {
                coal.window_knob().set(p[0]);
                pending = Some(p);
            } else if let Some((best, _)) = search.best() {
                coal.window_knob().set(best[0]);
            }
            epoch_count = 0;
            epoch_latency_sum = 0.0;
        }
    }
    let end = *schedule.last().expect("non-empty schedule");
    for msg in coal.flush_all(end) {
        transmit(&mut link, &msg);
    }
    let r = link.report();
    CoalesceResult {
        policy: if adaptive {
            "adaptive".into()
        } else {
            format!("static-{window}")
        },
        mean_coalesce: r.mean_coalesce,
        mean_latency_us: r.mean_latency_ns / 1e3,
        p99_latency_us: r.p99_latency_ns as f64 / 1e3,
        makespan_ms: r.last_arrival_ns as f64 / 1e6,
    }
}

/// Runs the experiment.
pub fn run(fast: bool) {
    let count = if fast { 20_000 } else { 200_000 };
    let loads = [
        (
            "steady-heavy",
            ParcelStorm::steady(1.2e6, PAYLOAD, 11).schedule(count),
        ),
        (
            "bursty",
            ParcelStorm::bursty(2e5, PAYLOAD, 12).schedule(count),
        ),
        (
            "trickle",
            ParcelStorm::trickle(1.2e6, PAYLOAD, 13).schedule(count),
        ),
    ];
    let mut table = Table::new(
        "Table 2: coalescing window vs offered load",
        &[
            "load",
            "policy",
            "mean_coalesce",
            "mean_lat_us",
            "p99_lat_us",
            "makespan_ms",
        ],
    );
    for (name, schedule) in &loads {
        for &w in &[1usize, 8, 64, 512] {
            let r = simulate(schedule, w, false);
            table.row(&[
                name.to_string(),
                r.policy.clone(),
                fmt_f(r.mean_coalesce),
                fmt_f(r.mean_latency_us),
                fmt_f(r.p99_latency_us),
                fmt_f(r.makespan_ms),
            ]);
        }
        let r = simulate(schedule, 8, true);
        table.row(&[
            name.to_string(),
            r.policy.clone(),
            fmt_f(r.mean_coalesce),
            fmt_f(r.mean_latency_us),
            fmt_f(r.p99_latency_us),
            fmt_f(r.makespan_ms),
        ]);
    }
    println!("{}", table.render());
    let path = write_csv(&table, "tbl2_coalescing");
    println!("wrote {}\n", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_load_punishes_window_one() {
        let schedule = ParcelStorm::steady(1.2e6, PAYLOAD, 1).schedule(20_000);
        let w1 = simulate(&schedule, 1, false);
        let w64 = simulate(&schedule, 64, false);
        assert!(
            w1.mean_latency_us > w64.mean_latency_us * 10.0,
            "w1 {} vs w64 {}",
            w1.mean_latency_us,
            w64.mean_latency_us
        );
    }

    #[test]
    fn trickle_load_punishes_big_windows() {
        let schedule = ParcelStorm::trickle(1.2e6, PAYLOAD, 2).schedule(5_000);
        let w1 = simulate(&schedule, 1, false);
        let w512 = simulate(&schedule, 512, false);
        assert!(
            w512.mean_latency_us > w1.mean_latency_us * 5.0,
            "w512 {} vs w1 {}",
            w512.mean_latency_us,
            w1.mean_latency_us
        );
    }

    #[test]
    fn adaptive_tracks_both_regimes() {
        // The adaptive run's mean includes its search epochs (it must
        // *measure* bad windows to reject them), so it cannot match the
        // best static exactly; it must land in the right regime — far
        // below the worst static and within a small factor of the best.
        for (schedule, tolerance) in [
            (ParcelStorm::steady(1.2e6, PAYLOAD, 3).schedule(30_000), 6.0),
            (
                ParcelStorm::trickle(1.2e6, PAYLOAD, 4).schedule(30_000),
                6.0,
            ),
        ] {
            let statics: Vec<f64> = [1usize, 8, 64, 512]
                .iter()
                .map(|&w| simulate(&schedule, w, false).mean_latency_us)
                .collect();
            let best_static = statics.iter().cloned().fold(f64::INFINITY, f64::min);
            let worst_static = statics.iter().cloned().fold(0.0, f64::max);
            let adaptive = simulate(&schedule, 8, true);
            assert!(
                adaptive.mean_latency_us < best_static * tolerance,
                "adaptive {} vs best static {}",
                adaptive.mean_latency_us,
                best_static
            );
            assert!(
                adaptive.mean_latency_us < worst_static,
                "adaptive {} should beat worst static {}",
                adaptive.mean_latency_us,
                worst_static
            );
        }
    }

    #[test]
    fn no_parcel_lost() {
        let schedule = ParcelStorm::bursty(2e5, PAYLOAD, 5).schedule(10_000);
        let r = simulate(&schedule, 64, false);
        // mean_coalesce × wire_messages = parcels; verified indirectly by
        // makespan being finite and > 0.
        assert!(r.makespan_ms > 0.0);
        assert!(r.mean_coalesce >= 1.0);
    }

    #[test]
    fn runs_fast() {
        run(true);
    }
}
